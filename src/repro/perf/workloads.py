"""Deterministic workloads for the hot-path microbenchmarks.

Everything here is seeded and fixed-size, so two runs of the same bench
process identical packet sequences — the only thing that varies between
runs is how long the hot path takes.
"""

from __future__ import annotations

from typing import List

from repro.net.addr import FiveTuple
from repro.net.batch import PacketBatch
from repro.net.constants import MSS
from repro.net.packet import Packet
from repro.sim.rng import RngRegistry

#: Figure 10 workload shape: many concurrent flows into one RX queue.
MANY_FLOWS = 256


def reordered_stream(
    n_flows: int,
    pkts_per_flow: int,
    *,
    window: int = 8,
    burst: int = 16,
    concurrency: int = 8,
    seed: int = 9,
) -> List[Packet]:
    """A lightly reordered multi-flow packet stream.

    Per flow, packets are in sequence but shuffled within a sliding
    ``window`` (the per-packet-spraying displacement the paper measures).
    Flows land on the queue the way TSO senders share one: ``burst``-packet
    runs back-to-back, with ``concurrency`` flows interleaving their bursts
    at any moment and fresh flows rotating in as earlier ones finish —
    which keeps the stream exercising the merge path rather than pure
    table-eviction churn.
    """
    rng = RngRegistry(seed).stream("perf-reorder")
    flows = [FiveTuple(1 + (i % 16), 99, 10_000 + i, 80)
             for i in range(n_flows)]
    per_flow: List[List[Packet]] = []
    for flow in flows:
        order = list(range(pkts_per_flow))
        for i in range(0, pkts_per_flow - window, window):
            chunk = order[i:i + window]
            rng.shuffle(chunk)
            order[i:i + window] = chunk
        per_flow.append([Packet(flow, k * MSS, MSS) for k in order])
    stream: List[Packet] = []
    for g in range(0, n_flows, concurrency):
        group = per_flow[g:g + concurrency]
        for start in range(0, pkts_per_flow, burst):
            for packets in group:
                stream.extend(packets[start:start + burst])
    return stream


def drive_gro(gro, packets: List[Packet], *, batch: int = 32,
              ns_per_packet: int = 100) -> None:
    """Drive a GRO engine the way the NAPI layer does: per-poll batches,
    one ``poll_complete`` per batch.

    Uses the engine's batch entry point when it has one (the optimized
    path) and falls back to per-packet ``receive`` otherwise, so the same
    bench runs against pre- and post-optimization code.
    """
    receive_batch = getattr(gro, "receive_batch", None)
    now = 0
    for start in range(0, len(packets), batch):
        chunk = packets[start:start + batch]
        now = (start + len(chunk)) * ns_per_packet
        if receive_batch is not None:
            # Wrap each poll the way the columnar RX ring hands it down —
            # an object-backed PacketBatch with its flow-run index built —
            # so engines with a columnar path take it.
            receive_batch(PacketBatch.from_packets(chunk), now)
        else:
            for packet in chunk:
                gro.receive(packet, now)
        gro.poll_complete(now)
    gro.flush_all(now + 1)


def native_batches(packets: List[Packet], *, batch: int = 32,
                   ns_per_packet: int = 100) -> List[PacketBatch]:
    """Pre-build the sealed native (column-only) batches for ``packets``.

    One batch per poll of :func:`drive_gro_batches`, filled the way the
    columnar RX ring fills them — ``append_wire`` per row, then ``seal`` —
    so driving them measures pure column-wise GRO with zero ``Packet``
    objects in sight.
    """
    batches: List[PacketBatch] = []
    for start in range(0, len(packets), batch):
        chunk = packets[start:start + batch]
        b = PacketBatch()
        received_at = (start + len(chunk)) * ns_per_packet
        for p in chunk:
            b.append_wire(p.flow, p.seq, p.payload_len, flags=p.fint,
                          ce=p.ce, sent_at=p.sent_at,
                          received_at=received_at)
        batches.append(b.seal())
    return batches


def drive_gro_batches(gro, batches: List[PacketBatch], *, batch: int = 32,
                      ns_per_packet: int = 100) -> None:
    """Drive prebuilt native batches through ``gro.receive_batch``."""
    receive_batch = gro.receive_batch
    poll_complete = gro.poll_complete
    now = 0
    pkts = 0
    for b in batches:
        pkts += b.length
        now = pkts * ns_per_packet
        receive_batch(b, now)
        poll_complete(now)
    gro.flush_all(now + 1)


def steering_lookup_churn(policy, flows: List[FiveTuple], lookups: int,
                          *, rebalance_every: int = 0) -> int:
    """The NIC demux inner loop: one ``queue_index`` call per packet.

    Cycles the flow set round-robin for ``lookups`` packets; when
    ``rebalance_every`` is non-zero the policy is rebalanced on that cadence
    (half the groups each time), which keeps Flow Director's
    install/migrate/evict machinery hot instead of settling into pure
    table hits.  Returns a checksum of the chosen queues so the loop
    cannot be optimised away.
    """
    n_flows = len(flows)
    queue_index = policy.queue_index
    acc = 0
    for i in range(lookups):
        acc += queue_index(flows[i % n_flows])
        if rebalance_every and (i + 1) % rebalance_every == 0:
            policy.rebalance(0.5)
    return acc


def cc_ack_clock(cc, n_acks: int, *, rtt_ns: int = 100_000) -> int:
    """The congestion-control ACK clock: one ``on_ack`` per cumulative ACK.

    A steady two-MSS-per-ACK clock with a fast-retransmit episode every
    8192 ACKs, so the policy keeps exercising its recovery entry/exit
    arithmetic instead of growing its window without bound.  Returns a
    cwnd checksum so the loop cannot be optimised away.
    """
    cc.rtt.sample(rtt_ns, 0)
    now = 0
    ack = 0
    acc = 0
    step = rtt_ns // 32
    flight = 64 * MSS
    on_ack = cc.on_ack
    for i in range(n_acks):
        now += step
        ack += 2 * MSS
        on_ack(2 * MSS, now, ack=ack, snd_nxt=ack + flight, flight=flight,
               in_recovery=False, recovery_exit=False)
        if (i + 1) % 8192 == 0:
            cc.on_recovery_start(flight, now)
            ack += MSS
            on_ack(MSS, now, ack=ack, snd_nxt=ack + flight, flight=flight,
                   in_recovery=False, recovery_exit=True)
            acc += cc.cwnd
    return acc + cc.cwnd


def bbr_steady_clock(cc, n_rounds: int, *, rtt_ns: int = 100_000,
                     bw_gbps: float = 10.0) -> int:
    """BBR's steady-state pipe: send one flight, ACK it one RTT later.

    Every round runs the full model update — delivery-rate sample, bw
    filter, RTprop tracking, the state machine and the cwnd/pacing
    computation — at a constant bottleneck rate, which is the per-ACK
    cost a BBR flow pays forever once out of startup.
    """
    flight = int(bw_gbps * rtt_ns / 8)
    now = 0
    seq = 0
    sample = cc.rtt.sample
    on_send = cc.on_send
    on_ack = cc.on_ack
    for _ in range(n_rounds):
        seq += flight
        on_send(seq, flight, now)
        now += rtt_ns
        sample(rtt_ns, now)
        on_ack(flight, now, ack=seq, snd_nxt=seq, flight=flight,
               in_recovery=False, recovery_exit=False)
    return cc.cwnd


def engine_event_churn(engine_cls, n_events: int) -> int:
    """Schedule/fire churn through the event engine.

    A self-rescheduling fan of callbacks with mixed short deadlines —
    the link-transmit/pacing pattern that dominates experiment runtime.
    Uses the fire-and-forget ``post`` entry point when the engine has one
    (pre-optimization engines fall back to ``schedule``).
    Returns the number of callbacks executed.
    """
    engine = engine_cls()
    post = getattr(engine, "post", engine.schedule)
    fired = [0]

    def tick(delay: int) -> None:
        fired[0] += 1
        if fired[0] < n_events:
            post(delay, tick, delay)

    for i, delay in enumerate((700, 1_300, 2_900, 5_100, 12_000, 45_000,
                               130_000, 1_100_000)):
        engine.schedule(i, tick, delay)
    engine.run(max_events=n_events)
    return fired[0]


def timer_rearm_churn(engine_cls, timer_cls, n_timers: int,
                      polls: int) -> int:
    """The RxQueue hrtimer pattern: every "poll", every timer is re-armed.

    Each re-arm cancels the pending event and schedules a new one — the
    tombstone-churn case the timer wheel and compaction exist for.
    Returns the number of timer fires.
    """
    engine = engine_cls()
    fires = [0]

    def on_fire() -> None:
        fires[0] += 1

    timers = [timer_cls(engine, on_fire) for _ in range(n_timers)]

    def poll(round_no: int) -> None:
        # Deadlines sit far out (ofo_timeout-scale, ~1ms) while polls
        # re-arm every microsecond, so each cancelled event outlives
        # ~1000 re-arms — the worst case for lazy cancellation.
        base = engine.now + 1_000_000
        for k, timer in enumerate(timers):
            timer.arm_at(base + ((round_no * 37 + k * 13) % 64) * 100)
        if round_no < polls:
            engine.schedule(1_000, poll, round_no + 1)

    engine.schedule(0, poll, 0)
    engine.run()
    return fires[0]


class _RouteProbe:
    """The minimal packet shape a routing policy inspects (a flow key)."""

    __slots__ = ("flow",)

    def __init__(self, flow: FiveTuple):
        self.flow = flow


def flowcut_route_churn(policy, flows: List[FiveTuple], lookups: int,
                        *, nports: int = 4, burst: int = 16,
                        gap_ns: int = 2_000) -> int:
    """The flowcut fast path under pin/drain/move churn.

    Exact-drain mode, no exit taps needed: each flow sends a ``burst`` of
    back-to-back packets, then every packet of the burst exits — so the
    next burst of that flow finds its flowcut drained and eligible to
    move.  One iteration exercises the full entry lifecycle (table hit,
    in-flight accounting, drain check, re-pin) rather than settling into
    pure dictionary hits.  Returns a checksum of the chosen ports so the
    loop cannot be optimised away.
    """
    policy.track_inflight()
    probes = [_RouteProbe(f) for f in flows]
    n_flows = len(probes)
    choose = policy.choose
    exited = policy.packet_exited
    observe = policy.observe
    now = 0
    acc = 0
    done = 0
    i = 0
    while done < lookups:
        probe = probes[i % n_flows]
        i += 1
        observe(now)
        for _ in range(burst):
            acc += choose(probe, nports)
        flow = probe.flow
        for _ in range(burst):
            exited(flow)
        now += gap_ns
        done += burst
    return acc


def detector_update_churn(detector, packets: List[Packet]) -> int:
    """The detector's per-packet path over a reordered stream.

    One ``observe`` per packet of a :func:`reordered_stream` — table hits,
    watermark updates, and (for the reordered fraction) sketch updates.
    Returns the packet count.
    """
    observe = detector.observe
    for p in packets:
        observe(p.flow, p.seq, p.end_seq, p.payload_len)
    return len(packets)

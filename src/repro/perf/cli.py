"""``juggler-repro bench``: run the hot-path suite, gate, or refresh.

::

    juggler-repro bench                      # run + print, no gate
    juggler-repro bench --check              # fail (exit 1) on regression
    juggler-repro bench --update             # rewrite BENCH_core.json
    juggler-repro bench --bench gro.juggler_many_flows --rounds 5
    juggler-repro bench --json out.json      # machine-readable results
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf.bench import BENCHES, run_benches
from repro.perf.gate import (
    DEFAULT_TOLERANCE,
    check_against_baseline,
    default_baseline_path,
    load_baseline,
    regressions,
    write_baseline,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="juggler-repro bench",
        description="Run the pinned hot-path microbenchmarks "
                    "(see docs/performance.md).",
    )
    parser.add_argument("--bench", action="append", metavar="NAME",
                        help="run only this bench (repeatable); "
                             "default: the full suite")
    parser.add_argument("--list", action="store_true",
                        help="list available benches and exit")
    parser.add_argument("--rounds", type=int, default=3, metavar="N",
                        help="repetitions per bench; best round is "
                             "reported (default 3)")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed baseline; "
                             "exit 1 on regression")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the committed baseline from this run")
    parser.add_argument("--tolerance", type=float,
                        default=DEFAULT_TOLERANCE, metavar="FRAC",
                        help="relative gate band (default "
                             f"{DEFAULT_TOLERANCE:.2f} = ±30%%)")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file (default: BENCH_core.json "
                             "at the repo root)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write this run's results as JSON")
    args = parser.parse_args(argv)

    if args.list:
        for name, spec in BENCHES.items():
            print(f"  {name:30s} [{spec.unit}]  {spec.description}")
        return 0

    baseline_path = (Path(args.baseline) if args.baseline
                     else default_baseline_path())

    print(f"running {len(args.bench) if args.bench else len(BENCHES)} "
          f"bench(es), {args.rounds} round(s) each:")
    try:
        results = run_benches(args.bench, rounds=args.rounds,
                              progress=print)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    if args.json:
        payload = {
            name: {"value": r.value, "unit": r.unit,
                   "higher_is_better": r.higher_is_better,
                   "rounds": r.rounds}
            for name, r in sorted(results.items())
        }
        Path(args.json).write_text(json.dumps(payload, indent=2,
                                              sort_keys=True) + "\n")
        print(f"results written to {args.json}")

    if args.update:
        path = write_baseline(results, baseline_path)
        print(f"baseline updated: {path}")
        return 0

    if args.check:
        baseline = load_baseline(baseline_path)
        if not baseline.get("benchmarks"):
            print(f"no baseline at {baseline_path}; "
                  "run 'juggler-repro bench --update' first",
                  file=sys.stderr)
            return 2
        findings = check_against_baseline(results, baseline,
                                          tolerance=args.tolerance)
        print(f"\ngate (±{args.tolerance:.0%} band) vs {baseline_path}:")
        for finding in findings:
            print(finding.line())
        failed = regressions(findings)
        if failed:
            print(f"\nFAIL: {len(failed)} bench(es) regressed beyond the "
                  "band", file=sys.stderr)
            return 1
        print("\nOK: no regression beyond the band")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

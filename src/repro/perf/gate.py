"""The perf-regression gate: ``BENCH_core.json`` baseline handling.

The committed baseline records, per bench, the value a healthy checkout
produces.  ``check_against_baseline`` compares a fresh run against it with
a relative tolerance band: a rate bench fails when it drops more than
``tolerance`` below baseline, a footprint bench when it grows more than
``tolerance`` above it.  Improvements never fail — they are the point —
but the gate reports them so the baseline can be refreshed
(``juggler-repro bench --update``).
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.perf.bench import BenchResult

#: Default relative band; generous because CI machines are noisy.
DEFAULT_TOLERANCE = 0.30

#: Default baseline location: the repo root, next to BENCH_campaign.json.
BASELINE_NAME = "BENCH_core.json"


def default_baseline_path() -> Path:
    """``BENCH_core.json`` at the repo root (three levels above here)."""
    return Path(__file__).resolve().parents[3] / BASELINE_NAME


@dataclass
class GateFinding:
    """One bench's verdict against the baseline."""

    name: str
    status: str  # "ok" | "improved" | "regressed" | "new" | "missing"
    value: Optional[float]
    baseline: Optional[float]
    ratio: Optional[float]  # value / baseline

    def line(self) -> str:
        if self.baseline is None or self.value is None or self.ratio is None:
            return f"  {self.name:30s} {self.status}"
        return (f"  {self.name:30s} {self.value:>14,.0f} vs "
                f"{self.baseline:>14,.0f}  ({self.ratio:.2f}x)  "
                f"{self.status}")


def load_baseline(path: Optional[Path] = None) -> dict:
    """Read the committed baseline (empty skeleton when absent)."""
    path = default_baseline_path() if path is None else path
    if not path.exists():
        return {"benchmarks": {}}
    with open(path) as handle:
        return json.load(handle)


def write_baseline(
    results: Dict[str, BenchResult],
    path: Optional[Path] = None,
    *,
    pre_pr: Optional[dict] = None,
    note: str = "",
) -> Path:
    """Record ``results`` as the new committed baseline.

    ``pre_pr`` (numbers measured before an optimization pass) is kept
    verbatim when given, or carried over from the existing file, so the
    before/after record survives refreshes.
    """
    path = default_baseline_path() if path is None else path
    existing = load_baseline(path)
    record = {
        "meta": {
            "python": platform.python_version(),
            "note": note or existing.get("meta", {}).get("note", ""),
        },
        "benchmarks": {
            name: {
                "value": round(r.value, 2),
                "unit": r.unit,
                "higher_is_better": r.higher_is_better,
                "rounds": r.rounds,
            }
            for name, r in sorted(results.items())
        },
    }
    kept_pre = pre_pr if pre_pr is not None else existing.get("pre_pr")
    if kept_pre:
        record["pre_pr"] = kept_pre
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def check_against_baseline(
    results: Dict[str, BenchResult],
    baseline: dict,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[GateFinding]:
    """Compare a fresh run against the committed baseline."""
    findings: List[GateFinding] = []
    recorded = baseline.get("benchmarks", {})
    for name, result in sorted(results.items()):
        entry = recorded.get(name)
        if entry is None:
            findings.append(GateFinding(name, "new", result.value,
                                        None, None))
            continue
        base = float(entry["value"])
        ratio = result.value / base if base else float("inf")
        if result.higher_is_better:
            if ratio < 1.0 - tolerance:
                status = "regressed"
            elif ratio > 1.0 + tolerance:
                status = "improved"
            else:
                status = "ok"
        else:
            if ratio > 1.0 + tolerance:
                status = "regressed"
            elif ratio < 1.0 - tolerance:
                status = "improved"
            else:
                status = "ok"
        findings.append(GateFinding(name, status, result.value, base, ratio))
    for name in recorded:
        if name not in results:
            findings.append(GateFinding(name, "missing", None,
                                        float(recorded[name]["value"]),
                                        None))
    return findings


def regressions(findings: List[GateFinding]) -> List[GateFinding]:
    """The findings that should fail the gate."""
    return [f for f in findings if f.status in ("regressed", "missing")]

"""Hot-path microbenchmarks and the perf-regression gate.

The reproduction's north star includes "runs as fast as the hardware
allows"; this package is where that claim is *measured* instead of
asserted.  It has three parts:

* :mod:`repro.perf.workloads` — deterministic packet streams and drive
  loops shaped like the paper's experiments (the many-flows stream is the
  Figure 10 workload shape: 256 flows through one RX queue);
* :mod:`repro.perf.bench` — the pinned microbenchmark suite: packets/sec
  through each GRO variant, events/sec through the engine under timer
  churn, and allocation footprint per packet via ``tracemalloc``;
* :mod:`repro.perf.gate` — the regression gate: results are recorded in
  ``BENCH_core.json`` at the repo root, and ``juggler-repro bench
  --check`` compares a fresh run against that committed baseline inside a
  tolerance band, failing CI on a regression.

Workloads and drive loops are fully deterministic (seeded streams, fixed
iteration counts); only the measurement itself reads the host clock, which
is why the package is linted under the relaxed determinism policy.
"""

from repro.perf.bench import BENCHES, BenchResult, run_benches
from repro.perf.gate import (
    check_against_baseline,
    load_baseline,
    write_baseline,
)

__all__ = [
    "BENCHES",
    "BenchResult",
    "run_benches",
    "check_against_baseline",
    "load_baseline",
    "write_baseline",
]

"""The pinned microbenchmark suite.

Each bench is deterministic in *work* (seeded workload, fixed iteration
counts) and measured in wall-clock; the reported value is the best of
``rounds`` repetitions, which is the standard way to suppress scheduler
noise when benchmarking a hot loop.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.cc import make_cc
from repro.cc.rtt import RttEstimator
from repro.core.config import JugglerConfig
from repro.core.juggler import JugglerGRO
from repro.core.standard_gro import StandardGRO
from repro.fabric.detector import DetectorConfig, ReorderDetector
from repro.fabric.flowcut import FlowcutRouting
from repro.net.addr import FiveTuple
from repro.perf import workloads
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.timer import Timer
from repro.steer import FlowDirectorConfig, FlowDirectorSteering, RssSteering
from repro.tcp.config import TcpConfig


@dataclass(frozen=True)
class BenchSpec:
    """One registered microbenchmark."""

    name: str
    unit: str
    #: True: bigger value is better (a rate); False: smaller is better
    #: (a footprint).
    higher_is_better: bool
    #: Returns (work_items, elapsed_seconds) — or, for footprint benches,
    #: (value, None) with the value already in ``unit``.
    run: Callable[[], tuple]
    description: str = ""


@dataclass
class BenchResult:
    """One bench's measured value (best across rounds)."""

    name: str
    unit: str
    higher_is_better: bool
    value: float
    rounds: int


def _timed_rate(work: Callable[[], int]) -> tuple:
    """Run ``work`` once; return (items, elapsed)."""
    gc.collect()
    started = time.perf_counter()
    items = work()
    elapsed = time.perf_counter() - started
    return items, max(elapsed, 1e-9)


# -- GRO receive-path benches -------------------------------------------------

#: Many-flows stream: the Figure 10 shape (256 flows, one queue), the
#: acceptance workload for this optimization pass.
_MANY_FLOWS_PKTS = 100
#: Single-flow stream: the Figure 9 shape.
_SINGLE_FLOW_PKTS = 20_000
_BATCH = 32


def _bench_juggler_many_flows() -> tuple:
    packets = workloads.reordered_stream(workloads.MANY_FLOWS,
                                         _MANY_FLOWS_PKTS)
    gro = JugglerGRO(lambda s: None, config=JugglerConfig())
    items, elapsed = _timed_rate(
        lambda: workloads.drive_gro(gro, packets, batch=_BATCH) or len(packets))
    assert gro.stats.packets == len(packets)
    return items, elapsed


def _bench_juggler_single_flow() -> tuple:
    packets = workloads.reordered_stream(1, _SINGLE_FLOW_PKTS, window=16)
    gro = JugglerGRO(lambda s: None, config=JugglerConfig())
    items, elapsed = _timed_rate(
        lambda: workloads.drive_gro(gro, packets, batch=_BATCH) or len(packets))
    assert gro.stats.packets == len(packets)
    return items, elapsed


def _bench_standard_many_flows() -> tuple:
    packets = workloads.reordered_stream(workloads.MANY_FLOWS,
                                         _MANY_FLOWS_PKTS)
    gro = StandardGRO(lambda s: None)
    return _timed_rate(
        lambda: workloads.drive_gro(gro, packets, batch=_BATCH) or len(packets))


def _bench_juggler_soa_many_flows() -> tuple:
    """The pure column-wise receive path: prebuilt native batches (no
    ``Packet`` objects anywhere) through JugglerGRO's SoA fast path."""
    packets = workloads.reordered_stream(workloads.MANY_FLOWS,
                                         _MANY_FLOWS_PKTS)
    batches = workloads.native_batches(packets, batch=_BATCH)
    n = len(packets)
    gro = JugglerGRO(lambda s: None, config=JugglerConfig())
    items, elapsed = _timed_rate(
        lambda: workloads.drive_gro_batches(gro, batches) or n)
    assert gro.stats.packets == n
    assert gro.soa_fast_packets > 0
    return items, elapsed


def _bench_nic_batch_fill() -> tuple:
    """The columnar ring fill: ``enqueue_wire`` per frame into one RxQueue,
    sealed and handed to GRO at each coalescing interrupt."""
    from repro.nic.rxqueue import RxQueue

    packets = workloads.reordered_stream(workloads.MANY_FLOWS,
                                         _MANY_FLOWS_PKTS)
    rows = [(p.flow, p.seq, p.payload_len, p.fint) for p in packets]
    n = len(rows)

    def work() -> int:
        engine = Engine()
        gro = JugglerGRO(lambda s: None, config=JugglerConfig())
        queue = RxQueue(engine, gro, coalesce_ns=100 * _BATCH,
                        coalesce_frames=_BATCH, columnar=True)
        enqueue_wire = queue.enqueue_wire
        run_until = engine.run_until
        for start in range(0, n, _BATCH):
            for flow, seq, ln, fl in rows[start:start + _BATCH]:
                enqueue_wire(flow, seq, ln, flags=fl)
            # Let the frame-triggered interrupt fire: one poll per batch.
            run_until(engine.now + 100 * _BATCH)
        run_until(engine.now + 10_000_000)
        queue.drain()
        assert gro.stats.packets == n, gro.stats.packets
        return n
    return _timed_rate(work)


# -- engine benches -----------------------------------------------------------

_CHURN_EVENTS = 200_000
_CHURN_TIMERS = 64
_CHURN_POLLS = 2_000


def _bench_engine_events() -> tuple:
    return _timed_rate(
        lambda: workloads.engine_event_churn(Engine, _CHURN_EVENTS))


def _bench_timer_rearm() -> tuple:
    def work() -> int:
        workloads.timer_rearm_churn(Engine, Timer, _CHURN_TIMERS,
                                    _CHURN_POLLS)
        return _CHURN_TIMERS * _CHURN_POLLS  # re-arm operations
    return _timed_rate(work)


# -- steering benches ---------------------------------------------------------

_STEER_FLOWS = 512
_STEER_LOOKUPS = 200_000
_STEER_QUEUES = 8
#: Rebalance cadence for the churn bench — frequent enough that stale
#: rules, migrations and signature evictions stay a steady fraction of
#: the lookups rather than a warm-up transient.
_STEER_REBALANCE_EVERY = 5_000


def _steer_flows() -> list:
    return [FiveTuple(1 + (i % 16), 99, 10_000 + i, 80)
            for i in range(_STEER_FLOWS)]


def _bench_rss_demux() -> tuple:
    flows = _steer_flows()
    policy = RssSteering()
    policy.bind(_STEER_QUEUES)

    def work() -> int:
        workloads.steering_lookup_churn(policy, flows, _STEER_LOOKUPS)
        return _STEER_LOOKUPS
    return _timed_rate(work)


def _bench_flow_director_churn() -> tuple:
    flows = _steer_flows()
    policy = FlowDirectorSteering(
        FlowDirectorConfig(table_size=256, sample_rate=8))
    policy.bind(_STEER_QUEUES)

    def work() -> int:
        workloads.steering_lookup_churn(policy, flows, _STEER_LOOKUPS,
                                        rebalance_every=_STEER_REBALANCE_EVERY)
        return _STEER_LOOKUPS
    items, elapsed = _timed_rate(work)
    assert policy.migrations > 0 and policy.rule_evictions > 0
    return items, elapsed


# -- fabric benches -----------------------------------------------------------

_FABRIC_FLOWS = 256
_FABRIC_LOOKUPS = 200_000
_DETECTOR_PKTS_PER_FLOW = 400


def _bench_flowcut_route() -> tuple:
    flows = [FiveTuple(1 + (i % 16), 99, 10_000 + i, 80)
             for i in range(_FABRIC_FLOWS)]
    policy = FlowcutRouting(RngRegistry(7).stream("flowcut"),
                            table_capacity=_FABRIC_FLOWS)

    def work() -> int:
        workloads.flowcut_route_churn(policy, flows, _FABRIC_LOOKUPS)
        return _FABRIC_LOOKUPS
    items, elapsed = _timed_rate(work)
    assert policy.stats.pins > 0 and policy.stats.exits > 0
    return items, elapsed


def _bench_detector_update() -> tuple:
    packets = workloads.reordered_stream(workloads.MANY_FLOWS,
                                         _DETECTOR_PKTS_PER_FLOW)
    detector = ReorderDetector(DetectorConfig())

    def work() -> int:
        return workloads.detector_update_churn(detector, packets)
    items, elapsed = _timed_rate(work)
    assert detector.stats.packets == len(packets)
    assert detector.stats.reordered_packets > 0
    return items, elapsed


# -- congestion-control benches -----------------------------------------------

_CC_ACKS = 200_000
_BBR_ROUNDS = 100_000


def _bench_cc_reno_ack_path() -> tuple:
    cc = make_cc("reno", TcpConfig(), RttEstimator())

    def work() -> int:
        workloads.cc_ack_clock(cc, _CC_ACKS)
        return _CC_ACKS
    return _timed_rate(work)


def _bench_cc_bbr_steady_state() -> tuple:
    cc = make_cc("bbr", TcpConfig(cc="bbr"), RttEstimator())

    def work() -> int:
        workloads.bbr_steady_clock(cc, _BBR_ROUNDS)
        return _BBR_ROUNDS
    return _timed_rate(work)


# -- allocation bench ---------------------------------------------------------


def _traced_peak_kb(work) -> float:
    """Peak tracemalloc KB while running ``work`` once."""
    gc.collect()
    tracemalloc.start()
    try:
        tracemalloc.reset_peak()
        work()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 1024.0


def _bench_alloc_gro_drive() -> tuple:
    """Peak traced KB through the many-flows drive — the per-packet
    allocation footprint of the GRO hot path.  Lower is better."""
    packets = workloads.reordered_stream(workloads.MANY_FLOWS,
                                         _MANY_FLOWS_PKTS)
    gro = JugglerGRO(lambda s: None, config=JugglerConfig())
    return _traced_peak_kb(
        lambda: workloads.drive_gro(gro, packets, batch=_BATCH)), None


def _bench_alloc_timer_churn() -> tuple:
    """Peak traced KB under sustained hrtimer re-arm churn.

    Every re-arm leaves a cancelled event behind; this is the direct
    measure of tombstone residency in the engine (bounded by compaction,
    unbounded before it).  Lower is better."""
    return _traced_peak_kb(
        lambda: workloads.timer_rearm_churn(Engine, Timer, _CHURN_TIMERS,
                                            _CHURN_POLLS)), None


BENCHES: Dict[str, BenchSpec] = {
    spec.name: spec for spec in (
        BenchSpec(
            "gro.juggler_many_flows", "pkts/s", True,
            _bench_juggler_many_flows,
            "256 reordered flows through JugglerGRO (Figure 10 shape)"),
        BenchSpec(
            "gro.juggler_single_flow", "pkts/s", True,
            _bench_juggler_single_flow,
            "one reordered flow through JugglerGRO (Figure 9 shape)"),
        BenchSpec(
            "gro.standard_many_flows", "pkts/s", True,
            _bench_standard_many_flows,
            "256 reordered flows through StandardGRO"),
        BenchSpec(
            "gro.juggler_soa_many_flows", "pkts/s", True,
            _bench_juggler_soa_many_flows,
            "256 reordered flows as prebuilt native column batches "
            "through JugglerGRO's SoA path (zero Packet objects)"),
        BenchSpec(
            "nic.batch_fill", "pkts/s", True,
            _bench_nic_batch_fill,
            "columnar RX ring fill: enqueue_wire per frame, sealed "
            "batch per coalescing interrupt, through JugglerGRO"),
        BenchSpec(
            "engine.event_churn", "events/s", True,
            _bench_engine_events,
            "schedule/fire churn through the event engine"),
        BenchSpec(
            "engine.timer_rearm", "rearms/s", True,
            _bench_timer_rearm,
            "hrtimer re-arm churn (cancel + reschedule per poll)"),
        BenchSpec(
            "steer.rss_demux", "lookups/s", True,
            _bench_rss_demux,
            "stateless RSS queue_index over 512 flows, 8 queues"),
        BenchSpec(
            "steer.flow_director_churn", "lookups/s", True,
            _bench_flow_director_churn,
            "Flow Director lookups under periodic rebalance churn "
            "(installs + migrations + signature evictions)"),
        BenchSpec(
            "fabric.flowcut_route", "routes/s", True,
            _bench_flowcut_route,
            "flowcut choose/exit churn over 256 flows, exact drain, "
            "pin + move lifecycle per burst"),
        BenchSpec(
            "fabric.detector_update", "pkts/s", True,
            _bench_detector_update,
            "sketch detector observe per packet over a reordered "
            "256-flow stream at the default memory budget"),
        BenchSpec(
            "cc.reno_ack_path", "acks/s", True,
            _bench_cc_reno_ack_path,
            "RenoCC on_ack clock with periodic fast-retransmit episodes"),
        BenchSpec(
            "cc.bbr_steady_state", "acks/s", True,
            _bench_cc_bbr_steady_state,
            "BBRv1 full model update per ACK at a steady 10 Gb/s pipe"),
        BenchSpec(
            "alloc.gro_drive_peak_kb", "KiB", False,
            _bench_alloc_gro_drive,
            "peak tracemalloc KiB across the many-flows drive"),
        BenchSpec(
            "alloc.timer_churn_peak_kb", "KiB", False,
            _bench_alloc_timer_churn,
            "peak tracemalloc KiB under hrtimer re-arm churn "
            "(tombstone residency)"),
    )
}


def run_benches(
    names: Optional[List[str]] = None,
    *,
    rounds: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, BenchResult]:
    """Run the selected benches; report each one's best round."""
    selected = list(BENCHES) if names is None else names
    unknown = [n for n in selected if n not in BENCHES]
    if unknown:
        raise KeyError(f"unknown bench(es): {', '.join(unknown)}")
    results: Dict[str, BenchResult] = {}
    for name in selected:
        spec = BENCHES[name]
        best: Optional[float] = None
        for _ in range(rounds):
            items, elapsed = spec.run()
            value = items if elapsed is None else items / elapsed
            if best is None:
                best = value
            elif spec.higher_is_better:
                best = max(best, value)
            else:
                best = min(best, value)
        assert best is not None
        results[name] = BenchResult(name, spec.unit, spec.higher_is_better,
                                    best, rounds)
        if progress is not None:
            progress(f"  {name:30s} {best:>14,.0f} {spec.unit}")
    return results

"""Dynamic flow scheduling by packet priority — the paper's §2.1 motivation.

"Dynamically changing a flow's priority is a powerful technique for
fine-grained traffic differentiation and flow scheduling controlled by
end-hosts.  For example, pFabric dynamically increases a flow's priority as
it nears completion to implement the Shortest Remaining Processing Time
(SRPT) scheduling policy."

Two end-host markers over the fabric's two strict-priority levels:

* :class:`SrptMarker` — pFabric-style: a packet goes high priority when the
  flow's *remaining* bytes fall below a threshold (requires knowing flow
  sizes, as pFabric does).
* :class:`PiasMarker` — PIAS-style: a packet goes high priority while the
  flow's *sent-so-far* bytes are below a threshold (information-agnostic;
  flows demote themselves as they age).

Both change a flow's priority mid-stream, so packets of one flow straddle
two switch queues — precisely the reordering Juggler exists to absorb.
"""

from __future__ import annotations

from repro.net.constants import PRIORITY_HIGH, PRIORITY_LOW
from repro.net.packet import Packet
from repro.tcp.sender import TcpSender


class SrptMarker:
    """pFabric-flavoured: high priority once the flow is near completion."""

    def __init__(self, sender: TcpSender, threshold_bytes: int):
        if threshold_bytes < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold_bytes}")
        self._sender = sender
        self.threshold_bytes = threshold_bytes
        self.high_marked = 0
        self.low_marked = 0

    def priority_fn(self, packet: Packet) -> int:
        """High priority when few bytes remain after this packet."""
        remaining = self._sender.data_target - packet.seq
        if remaining <= self.threshold_bytes:
            self.high_marked += 1
            return PRIORITY_HIGH
        self.low_marked += 1
        return PRIORITY_LOW


class PiasMarker:
    """PIAS-flavoured: high priority for a flow's first bytes, then demote."""

    def __init__(self, threshold_bytes: int):
        if threshold_bytes < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold_bytes}")
        self.threshold_bytes = threshold_bytes
        self.high_marked = 0
        self.low_marked = 0

    def priority_fn(self, packet: Packet) -> int:
        """High priority while the byte offset is below the threshold.

        Retransmissions keep whatever class their offset dictates, so a
        demoted flow's recovery does not jump the queue.
        """
        if packet.seq < self.threshold_bytes:
            self.high_marked += 1
            return PRIORITY_HIGH
        self.low_marked += 1
        return PRIORITY_LOW

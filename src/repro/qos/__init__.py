"""Dynamic packet prioritisation — the bandwidth-guarantee system of §2.1.

A purely end-host, passive mechanism: mark each packet high priority with
probability ``p`` and adapt ``p ← p + α(Rt − Rm)``.  No hypervisor rate
limiting, no switch changes beyond two strict-priority queues — but it only
works if the receiver stack tolerates the reordering that mixing priorities
induces, which is where Juggler comes in (Figures 1, 17, 18).
"""

from repro.qos.bandwidth_guarantee import BandwidthGuaranteeController
from repro.qos.flow_scheduling import PiasMarker, SrptMarker

__all__ = ["BandwidthGuaranteeController", "PiasMarker", "SrptMarker"]

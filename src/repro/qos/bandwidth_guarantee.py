"""The p ← p + α(Rt − Rm) marking controller (Eq. 1 of the paper).

The controller watches a TCP sender's acknowledged-byte counter, compares
the measured rate against the guarantee, and adjusts the probability with
which outgoing packets are marked high priority.  If the flow runs below
its guarantee, more of its packets jump the low-priority queue, raising its
rate — a simple integral control loop that converges whenever the high
priority class is not over-committed.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.net.constants import PRIORITY_HIGH, PRIORITY_LOW
from repro.net.packet import Packet
from repro.sim.engine import Engine
from repro.sim.time import US
from repro.tcp.sender import TcpSender


class BandwidthGuaranteeController:
    """Adaptive priority marker for one guaranteed flow.

    Attach by passing :meth:`priority_fn` as the sender's ``priority_fn``
    and calling :meth:`start`.  Rates are normalised to the line rate, as in
    the paper; ``alpha`` defaults to the paper's 0.1.
    """

    def __init__(
        self,
        engine: Engine,
        sender: TcpSender,
        rng: random.Random,
        *,
        target_gbps: float,
        line_rate_gbps: float,
        alpha: float = 0.1,
        update_interval_ns: int = 200 * US,
        smoothing: float = 0.25,
    ):
        if target_gbps < 0 or line_rate_gbps <= 0:
            raise ValueError("rates must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError(f"smoothing must be in (0, 1], got {smoothing}")
        self._engine = engine
        self._sender = sender
        self._rng = rng
        self.target_gbps = target_gbps
        self.line_rate_gbps = line_rate_gbps
        self.alpha = alpha
        self.update_interval_ns = update_interval_ns
        #: EWMA factor applied to per-interval rate samples.  The paper
        #: measures "for every ACK received"; sampling windows plus smoothing
        #: give the same low-pass behaviour on the simulation clock.
        self.smoothing = smoothing
        #: Probability an outgoing packet is marked high priority.
        self.p = 0.0
        self._rate_ewma_gbps = 0.0
        self._last_acked = 0
        self._running = False
        #: (time, measured_gbps, p) samples for the Figure 1 time series.
        self.trace: List[tuple] = []

    def start(self) -> None:
        """Begin the periodic adaptation loop."""
        if self._running:
            return
        self._running = True
        self._last_acked = self._sender.bytes_acked
        self._engine.schedule(self.update_interval_ns, self._update)

    def stop(self) -> None:
        """Halt adaptation; the current ``p`` keeps being applied."""
        self._running = False

    def priority_fn(self, packet: Packet) -> int:
        """Marking decision for one outgoing packet."""
        if self.p > 0.0 and self._rng.random() < self.p:
            return PRIORITY_HIGH
        return PRIORITY_LOW

    def measured_gbps(self) -> Optional[float]:
        """Most recent rate sample, or None before the first update."""
        return self.trace[-1][1] if self.trace else None

    def _update(self) -> None:
        if not self._running:
            return
        acked = self._sender.bytes_acked
        sample_gbps = (
            (acked - self._last_acked) * 8 / self.update_interval_ns
        )  # bytes/ns * 8 = Gb/s
        self._last_acked = acked
        self._rate_ewma_gbps += self.smoothing * (sample_gbps - self._rate_ewma_gbps)
        r_target = self.target_gbps / self.line_rate_gbps
        r_measured = self._rate_ewma_gbps / self.line_rate_gbps
        self.p = min(1.0, max(0.0, self.p + self.alpha * (r_target - r_measured)))
        self.trace.append((self._engine.now, self._rate_ewma_gbps, self.p))
        self._engine.schedule(self.update_interval_ns, self._update)

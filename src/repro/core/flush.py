"""Flush reasons — Table 2 of the paper, plus reproduction bookkeeping.

Every segment delivered up the stack is tagged with why it was flushed; the
stats collectors aggregate these to reproduce the paper's batching and
segment-count analyses.
"""

from __future__ import annotations

import enum


class FlushReason(enum.Enum):
    """Why a segment left the GRO layer (Table 2 + engine-internal causes)."""

    #: Packet sequence number is before ``seq_next`` — likely retransmission.
    RETRANSMISSION = "retransmission"
    #: In-sequence segment reached the 64 KB limit.
    SEGMENT_FULL = "segment_full"
    #: Packet carried PUSH/URGENT/SYN/FIN/RST — urgent delivery required.
    FLAGS = "flags"
    #: Next packet differs in TCP options / CE marks — cannot merge.
    UNMERGEABLE = "unmergeable"
    #: ``inseq_timeout`` expired — don't delay in-sequence packets too much.
    INSEQ_TIMEOUT = "inseq_timeout"
    #: ``ofo_timeout`` expired — the missing packet is likely lost.
    OFO_TIMEOUT = "ofo_timeout"
    #: Flow evicted to make room in gro_table (§4.3).
    EVICTION = "eviction"
    #: Standard GRO's flush-everything at polling completion (§3.1).
    POLL_END = "poll_end"
    #: Standard GRO only: the next packet was not in sequence, terminating
    #: the batch (the reordering failure mode Juggler fixes).
    OUT_OF_SEQUENCE = "out_of_sequence"
    #: Zero-payload ACKs and other unbatchable packets passed straight up.
    PASSTHROUGH = "passthrough"
    #: Payload bytes already buffered — duplicate delivered up for TCP.
    DUPLICATE = "duplicate"
    #: End-of-experiment drain requested by the harness.
    SHUTDOWN = "shutdown"

    @property
    def from_table2(self) -> bool:
        """True for the six conditions enumerated in the paper's Table 2."""
        return self in (
            FlushReason.RETRANSMISSION,
            FlushReason.SEGMENT_FULL,
            FlushReason.FLAGS,
            FlushReason.UNMERGEABLE,
            FlushReason.INSEQ_TIMEOUT,
            FlushReason.OFO_TIMEOUT,
        )

"""Counters every GRO engine maintains.

These are the raw quantities the paper's evaluation reports: segments per
packet (batching extent, Fig. 12), flush-reason mix, OOO segments delivered
to TCP (§5.1.1's "40% are out of order"), flows created/evicted, and list
length samples (Figs. 15, 16).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.flush import FlushReason
from repro.core.phases import Phase


@dataclass
class GroStats:
    """Aggregate counters for one GRO engine instance."""

    #: Data packets processed (pure ACK passthroughs excluded).
    packets: int = 0
    #: Pure-ACK / unbatchable packets passed straight up.
    passthrough_packets: int = 0
    #: Segments delivered up the stack (passthroughs excluded).
    segments: int = 0
    #: MTU packets contained in those segments.
    batched_mtus: int = 0
    #: Segments whose first byte was not the next expected byte of the flow
    #: at delivery time (i.e. visible reordering for the TCP layer).
    ooo_segments: int = 0
    #: Flush counts by reason.
    flush_reasons: Counter = field(default_factory=Counter)
    #: New flow entries created.
    flows_created: int = 0
    #: Evictions by the phase the victim was in.
    evictions: Counter = field(default_factory=Counter)
    #: OOO-queue nodes scanned during inserts (CPU-relevant work measure).
    nodes_scanned: int = 0
    #: Packets merged into an existing segment (append/prepend/extend).
    merges: int = 0
    #: Duplicate-payload packets seen.
    duplicates: int = 0

    # Next-expected byte per flow, for ooo_segments accounting.  Keyed by
    # five-tuple; bounded by the number of distinct flows in an experiment.
    _expected: dict = field(default_factory=dict)

    @property
    def batching_extent(self) -> float:
        """Average MTUs per delivered segment — Figure 12's y-axis."""
        if self.segments == 0:
            return 0.0
        return self.batched_mtus / self.segments

    @property
    def ooo_fraction(self) -> float:
        """Fraction of delivered segments that were out of order."""
        if self.segments == 0:
            return 0.0
        return self.ooo_segments / self.segments

    def record_delivery(self, flow_key, seq: int, end_seq: int, mtus: int,
                        reason: FlushReason) -> None:
        """Account one segment delivered up the stack."""
        self.segments += 1
        self.batched_mtus += mtus
        self.flush_reasons[reason] += 1
        expected = self._expected.get(flow_key)
        if expected is not None and seq != expected:
            self.ooo_segments += 1
        if expected is None or end_seq > expected:
            self._expected[flow_key] = end_seq

    def record_eviction(self, phase: Phase) -> None:
        """Account one flow eviction."""
        self.evictions[phase] += 1

    def bind(self, registry, prefix: str = "gro") -> None:
        """Register these counters as live gauges in a
        :class:`~repro.trace.metrics.MetricsRegistry` under ``prefix``."""
        for attr in ("packets", "passthrough_packets", "segments",
                     "batched_mtus", "ooo_segments", "flows_created",
                     "nodes_scanned", "merges", "duplicates"):
            registry.gauge(f"{prefix}.{attr}",
                           lambda a=attr: getattr(self, a))
        registry.gauge(f"{prefix}.evictions", lambda: self.total_evictions)
        registry.gauge(f"{prefix}.batching_extent",
                       lambda: self.batching_extent)
        registry.gauge(f"{prefix}.ooo_fraction", lambda: self.ooo_fraction)

    @property
    def total_evictions(self) -> int:
        """Evictions across all phases."""
        return sum(self.evictions.values())

    def summary(self) -> dict:
        """A plain-dict snapshot for harness reporting."""
        return {
            "packets": self.packets,
            "segments": self.segments,
            "batching_extent": round(self.batching_extent, 2),
            "ooo_fraction": round(self.ooo_fraction, 4),
            "flows_created": self.flows_created,
            "evictions": self.total_evictions,
            "merges": self.merges,
            "duplicates": self.duplicates,
            "flush_reasons": {r.value: n for r, n in self.flush_reasons.items()},
        }

"""Juggler's tunables.

The paper exposes exactly two global timeouts (§5.2.1) plus the gro_table
capacity (§5.2.2).  Defaults follow §5: ``inseq_timeout`` = 15 µs,
``ofo_timeout`` = 50 µs, and a 64-entry table ("Even if the application
requires J UGGLER to handle up to 1ms of reordering, a 64 entry gro_table is
adequate").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.constants import MAX_GRO_SEGMENT
from repro.sim.time import US


@dataclass(frozen=True)
class JugglerConfig:
    """Tunable parameters of a Juggler GRO instance (one per RX queue)."""

    #: Max time (ns) a partially merged *in-sequence* segment may be held
    #: before being flushed up the stack.  Rule of thumb (§5.2.1): the time
    #: to receive one maximum-size 64 KB segment at line rate — 52 µs at
    #: 10 Gb/s, 13 µs at 40 Gb/s.
    inseq_timeout: int = 15 * US

    #: Max time (ns) to wait for a missing packet before flushing the whole
    #: OOO queue and entering loss recovery.  Should be the largest expected
    #: out-of-order delay, minus the interrupt-coalescing period (§5.2.1).
    ofo_timeout: int = 50 * US

    #: Hard upper bound on flows tracked per gro_table (per RX queue) —
    #: the defence against memory-exhaustion DoS (§3.3).
    table_capacity: int = 64

    #: Flush a merged segment once it reaches this many payload bytes.
    max_segment_bytes: int = MAX_GRO_SEGMENT

    #: Ablation knob: disable the build-up phase (Remark 1).  When False, a
    #: new flow pins ``seq_next`` to its first packet's sequence number and
    #: enters active merging immediately — the paper measured ~6% more
    #: segments up the stack without the build-up optimisation.
    enable_buildup: bool = True

    #: Transports whose packets Juggler buffers and reorders.  TCP by
    #: default; the design "holds for other transports such as SCTP that
    #: impose packet order as well" (§4) — add protocol 132 to enable the
    #: SCTP-style transport in :mod:`repro.sctp`.
    protocols: tuple = (6,)

    #: Ablation knob: victim-selection order when the table is full.
    #: ``"inactive_first"`` is the paper's policy (§4.3); ``"fifo"`` evicts
    #: the oldest entry regardless of phase; ``"active_first"`` is the
    #: adversarial inversion used to demonstrate why the paper's order wins.
    eviction_policy: str = "inactive_first"

    def __post_init__(self) -> None:
        if self.inseq_timeout < 0:
            raise ValueError(f"inseq_timeout must be >= 0, got {self.inseq_timeout}")
        if self.ofo_timeout < 0:
            raise ValueError(f"ofo_timeout must be >= 0, got {self.ofo_timeout}")
        if self.table_capacity < 1:
            raise ValueError(f"table_capacity must be >= 1, got {self.table_capacity}")
        if self.max_segment_bytes < 1:
            raise ValueError(
                f"max_segment_bytes must be >= 1, got {self.max_segment_bytes}"
            )
        if self.eviction_policy not in ("inactive_first", "fifo", "active_first"):
            raise ValueError(
                f"unknown eviction_policy: {self.eviction_policy!r}"
            )

"""The per-flow out-of-order queue.

The kernel patch keeps "a doubly-linked list that stores packets sorted in
sequence number order" (§4.1).  We store *merged runs* (:class:`Segment`
nodes) rather than raw packets: contiguous same-header packets collapse into
one node, which is both what the frags[] merging produces and what keeps the
queue short — the queue length is the number of discontiguous runs, not the
number of buffered packets.

Inserts scan from the tail because arrivals are nearly in order; the scan
count is surfaced so the CPU model can charge it (§3.2's concern that
"searching the queue ... [is] costly in terms of CPU").
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.net.packet import Packet
from repro.net.segment import Segment


class InsertResult:
    """Outcome of one :meth:`OfoQueue.insert`.

    Each queue owns a single instance that :meth:`OfoQueue.insert`
    overwrites and returns — one insert per packet makes this the stack's
    highest-frequency allocation otherwise.  Read it before the next
    insert on the same queue.
    """

    __slots__ = ("scanned", "merged", "duplicate")

    def __init__(self, scanned: int = 0, merged: bool = False,
                 duplicate: bool = False):
        #: Nodes examined while locating the insert position.
        self.scanned = scanned
        #: True if the packet merged into an existing node (vs new node).
        self.merged = merged
        #: True if the packet's bytes were already present — caller should
        #: pass the duplicate up for TCP's dupACK machinery, not buffer it.
        self.duplicate = duplicate

    def _set(self, scanned: int, merged: bool, duplicate: bool) -> "InsertResult":
        self.scanned = scanned
        self.merged = merged
        self.duplicate = duplicate
        return self


class OfoQueue:
    """Sorted, non-overlapping runs of buffered packets for one flow."""

    __slots__ = ("nodes", "max_payload", "_result", "owner_domain")

    def __init__(self, max_payload: Optional[int] = None):
        self.nodes: List[Segment] = []
        self.max_payload = max_payload
        self._result = InsertResult()
        #: OSAN shard ownership tag (see repro.analysis.ownership); set
        #: alongside the owning FlowEntry's, None = unowned/ambient.
        self.owner_domain = None

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self) -> Iterator[Segment]:
        return iter(self.nodes)

    def __bool__(self) -> bool:
        return bool(self.nodes)

    @property
    def head(self) -> Optional[Segment]:
        """The lowest-sequence run, or None when empty."""
        return self.nodes[0] if self.nodes else None

    @property
    def buffered_packets(self) -> int:
        """Total MTU packets currently buffered."""
        return sum(node.mtus for node in self.nodes)

    @property
    def buffered_bytes(self) -> int:
        """Total payload bytes currently buffered."""
        return sum(node.payload_len for node in self.nodes)

    @property
    def min_seq(self) -> Optional[int]:
        """Lowest buffered sequence number."""
        return self.nodes[0].seq if self.nodes else None

    @property
    def max_end_seq(self) -> Optional[int]:
        """Highest buffered end-sequence number."""
        return self.nodes[-1].end_seq if self.nodes else None

    def insert(self, packet: Packet) -> InsertResult:
        """Place ``packet`` into the queue, merging where possible.

        Position lookup is a binary search (keeps the simulation fast); the
        *reported* scan count models the kernel's doubly-linked list walked
        from whichever end is closer — in-order arrivals touch the tail,
        late stragglers re-enter near the head, so both common cases cost
        O(1) rather than O(queue length).
        """
        nodes = self.nodes
        # idx = number of nodes with node.seq <= packet.seq.
        lo, hi = 0, len(nodes)
        while lo < hi:
            mid = (lo + hi) // 2
            if nodes[mid].seq <= packet.seq:
                lo = mid + 1
            else:
                hi = mid
        idx = lo
        scanned = min(len(nodes) - idx, idx + 1) if nodes else 0

        pred = nodes[idx - 1] if idx > 0 else None
        succ = nodes[idx] if idx < len(nodes) else None

        if pred is not None and packet.seq < pred.end_seq:
            # Overlaps existing buffered bytes: a duplicate/overlapping
            # retransmission.  Never buffer it twice.
            return self._result._set(scanned, merged=False, duplicate=True)
        if succ is not None and packet.end_seq > succ.seq:
            return self._result._set(scanned, merged=False, duplicate=True)

        if pred is not None and pred.can_append(packet, self.max_payload):
            pred.append(packet)
            # Appending may have closed the gap to the successor.
            if succ is not None and pred.can_extend(succ, self.max_payload):
                pred.extend(succ)
                nodes.pop(idx)
            return self._result._set(scanned, merged=True, duplicate=False)

        if succ is not None and succ.can_prepend(packet, self.max_payload):
            succ.prepend(packet)
            return self._result._set(scanned, merged=True, duplicate=False)

        nodes.insert(idx, Segment([packet]))
        return self._result._set(scanned, merged=False, duplicate=False)

    def pop_head(self) -> Segment:
        """Remove and return the lowest-sequence run."""
        return self.nodes.pop(0)

    def pop_all(self) -> List[Segment]:
        """Drain the queue, returning runs in sequence order."""
        drained = self.nodes
        self.nodes = []
        return drained

    def pop_inseq_run(self, seq_next: int) -> List[Segment]:
        """Pop the maximal chain of runs forming in-order data at ``seq_next``.

        Returns the (possibly empty) list of runs whose bytes are contiguous
        starting exactly at ``seq_next``.  Runs stay separate segments when
        they could not merge (header mismatch) — they are still in-order.
        """
        popped: List[Segment] = []
        expect = seq_next
        while self.nodes and self.nodes[0].seq == expect:
            node = self.nodes.pop(0)
            popped.append(node)
            expect = node.end_seq
        return popped

    def invariant_violations(self) -> List[str]:
        """Structural audit for JSAN (see :mod:`repro.analysis.sanitizer`).

        The queue must hold strictly increasing, non-overlapping,
        non-empty runs, each within the configured payload cap.  Returns
        human-readable violation strings; empty means healthy.
        """
        violations: List[str] = []
        prev_end: Optional[int] = None
        for i, node in enumerate(self.nodes):
            if node.seq >= node.end_seq:
                violations.append(
                    f"node[{i}] is empty or inverted: "
                    f"[{node.seq}, {node.end_seq})")
            if prev_end is not None:
                if node.seq < prev_end:
                    violations.append(
                        f"node[{i}] starting at {node.seq} overlaps the "
                        f"previous run ending at {prev_end}")
                elif node.seq == prev_end and i > 0:
                    # Touching runs are legal (header mismatch keeps them
                    # unmerged) — only out-of-order starts are not.
                    pass
            if prev_end is not None and node.seq < self.nodes[i - 1].seq:
                violations.append(
                    f"node[{i}] at {node.seq} breaks sequence "
                    f"monotonicity (previous starts at "
                    f"{self.nodes[i - 1].seq})")
            if (self.max_payload is not None
                    and node.payload_len > self.max_payload):
                violations.append(
                    f"node[{i}] holds {node.payload_len} payload bytes, "
                    f"over the {self.max_payload} cap")
            prev_end = node.end_seq
        return violations

    def covers(self, seq: int) -> bool:
        """True if byte ``seq`` is currently buffered."""
        for node in self.nodes:
            if node.seq <= seq < node.end_seq:
                return True
            if node.seq > seq:
                return False
        return False

"""The rejected design from §3.1: batch regardless of order, chain sk_buffs.

"Batching packets regardless of order in GRO also has notably higher CPU
overhead ... non-contiguous packet payloads cannot be merged into a larger
segment.  Instead multiple sk_buffs would have to be chained in a linked
list (see Figure 3).  We implemented this approach and found that it causes
50% more CPU usage due to more cache misses in a simple experiment with
in-order traffic."

This engine reproduces that measurement point: every packet is chained onto
the flow's linked-list batch in *arrival* order (so TCP still sees the
reordering — the design needs TCP-side fixes too), and the CPU accountant
charges the chain-element cache-miss cost per merge and per delivery.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.base import DeliverFn, GroEngine
from repro.core.flush import FlushReason
from repro.cpu.accounting import GroCpuAccountant
from repro.net.addr import FiveTuple
from repro.net.constants import MAX_GRO_SEGMENT, MSS
from repro.net.packet import Packet
from repro.net.segment import BatchingMode, Segment


class ChainedGRO(GroEngine):
    """Linked-list batching of packets in arrival order, per flow."""

    def __init__(
        self,
        deliver: DeliverFn,
        accountant: Optional[GroCpuAccountant] = None,
        max_segment_bytes: int = MAX_GRO_SEGMENT,
    ):
        super().__init__(deliver, accountant)
        self.max_segment_bytes = max_segment_bytes
        self._chains: Dict[FiveTuple, List[Packet]] = {}
        self._chain_bytes: Dict[FiveTuple, int] = {}

    def receive(self, packet: Packet, now: int) -> None:
        """Chain the packet onto its flow's batch, whatever its sequence."""
        self.accountant.on_rx_packet()
        self.accountant.on_gro_packet()
        if packet.payload_len == 0:
            self._passthrough(packet, now)
            return
        self.stats.packets += 1

        chain = self._chains.get(packet.flow)
        if chain is None:
            self._chains[packet.flow] = [packet]
            self._chain_bytes[packet.flow] = packet.payload_len
        else:
            chain.append(packet)
            self._chain_bytes[packet.flow] += packet.payload_len
            self.stats.merges += 1
            self.accountant.on_merge(BatchingMode.LINKED_LIST)

        if packet.forces_flush:
            self._flush(packet.flow, FlushReason.FLAGS, now)
        elif self._chain_bytes[packet.flow] + MSS > self.max_segment_bytes:
            self._flush(packet.flow, FlushReason.SEGMENT_FULL, now)

    def _flush(self, flow: FiveTuple, reason: FlushReason, now: int) -> None:
        chain = self._chains.pop(flow)
        del self._chain_bytes[flow]
        self._deliver_segment(Segment.chain(chain), reason, now)

    def poll_complete(self, now: int) -> None:
        """Like vanilla GRO, everything flushes at polling completion."""
        self.accountant.on_poll()
        for flow in list(self._chains):
            self._flush(flow, FlushReason.POLL_END, now)

    def flush_all(self, now: int) -> None:
        """Teardown drain."""
        for flow in list(self._chains):
            self._flush(flow, FlushReason.SHUTDOWN, now)

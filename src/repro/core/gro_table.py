"""The bounded flow table and its three lists (Figure 4).

Each flow entry "is part of exactly one of three doubly linked lists" —
active, inactive, loss recovery.  The table has a strict capacity; when a
new flow arrives at a full table, a victim is chosen in the paper's order
(§4.3): inactive flows first (their OOO queues are empty and their history
has no holes), then FIFO from the active list, and only as a last resort
from the loss-recovery list.

Python dicts preserve insertion order, so each "list" is a dict used as an
ordered set — O(1) membership, append and (amortised) pop-front, the same
complexity profile as the kernel's doubly linked lists.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.analysis import runtime as sanitize_runtime
from repro.core.flow_entry import FlowEntry
from repro.core.phases import Phase
from repro.net.addr import FiveTuple


class GroTable:
    """Capacity-bounded collection of :class:`FlowEntry` in three lists."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Optional :class:`~repro.trace.tracer.Tracer` for phase events;
        #: set by the owning engine, None when tracing is disabled.
        self.tracer = None
        #: Optional :class:`~repro.analysis.sanitizer.Sanitizer` (JSAN);
        #: None when sanitizing is disabled, so every hook below costs one
        #: identity test on the hot path.
        self.sanitizer = sanitize_runtime.current()
        #: Optional :class:`~repro.analysis.ownership.OwnershipSanitizer`
        #: (OSAN), same cost contract.  ``owner_domain`` is set when the
        #: table is claimed by a per-core context (see RxQueue.claim);
        #: None means shared/ambient and exempt from ownership checks.
        self.osan = sanitize_runtime.current_osan()
        self.owner_domain = None
        self._flows: Dict[FiveTuple, FlowEntry] = {}
        self._lists: Dict[str, Dict[FiveTuple, FlowEntry]] = {
            "active": {},
            "inactive": {},
            "loss_recovery": {},
        }

    def __len__(self) -> int:
        return len(self._flows)

    def __contains__(self, key: FiveTuple) -> bool:
        return key in self._flows

    def __iter__(self) -> Iterator[FlowEntry]:
        return iter(self._flows.values())

    @property
    def full(self) -> bool:
        """True when no entry can be added without evicting."""
        return len(self._flows) >= self.capacity

    @property
    def active_len(self) -> int:
        """Flows in the build-up or active-merging phase (Figs. 15, 16)."""
        return len(self._lists["active"])

    @property
    def inactive_len(self) -> int:
        """Flows parked in the post-merge phase."""
        return len(self._lists["inactive"])

    @property
    def loss_recovery_len(self) -> int:
        """Flows waiting for a presumed-lost packet."""
        return len(self._lists["loss_recovery"])

    def lookup(self, key: FiveTuple) -> Optional[FlowEntry]:
        """Fetch the entry for ``key`` if tracked."""
        return self._flows.get(key)

    def add(self, entry: FlowEntry) -> None:
        """Insert a new entry (caller must have made room; see :meth:`full`)."""
        if entry.key in self._flows:
            raise ValueError(f"flow {entry.key} already tracked")
        if self.full:
            raise ValueError("gro_table is full; evict first")
        self._flows[entry.key] = entry
        self._lists[entry.phase.list_name][entry.key] = entry
        if self.sanitizer is not None:
            self.sanitizer.check_admission(self, entry)
        if self.osan is not None:
            self.osan.check(self, "add")
            if self.owner_domain is not None:
                # New flow state inherits the table's shard at bind time.
                entry.owner_domain = self.owner_domain
                entry.ofo.owner_domain = self.owner_domain

    def move(self, entry: FlowEntry, phase: Phase, now: int = 0) -> None:
        """Transition ``entry`` to ``phase``, re-homing it on the right list.

        Moving to the same list re-enqueues at the tail, which implements the
        FIFO ordering eviction relies on.  ``now`` timestamps the phase
        trace event when tracing is enabled.
        """
        old_phase = entry.phase
        if self.sanitizer is not None:
            self.sanitizer.check_transition(entry, old_phase, phase)
        if self.osan is not None:
            self.osan.check(entry, "move")
        old_list = self._lists[old_phase.list_name]
        old_list.pop(entry.key, None)
        entry.phase = phase
        self._lists[phase.list_name][entry.key] = entry
        if self.tracer is not None and old_phase is not phase:
            self.tracer.phase(now, entry.key, old_phase, phase)

    def remove(self, entry: FlowEntry) -> None:
        """Drop ``entry`` from the table entirely (eviction / teardown)."""
        if self.osan is not None:
            self.osan.check(entry, "remove")
        del self._flows[entry.key]
        self._lists[entry.phase.list_name].pop(entry.key, None)

    def pick_victim(self, policy: str = "inactive_first") -> FlowEntry:
        """Choose the flow to evict.

        ``"inactive_first"`` is the paper's order (§4.3): post-merge flows
        first (empty queues, no holes), then FIFO from the active list, and
        only if unavoidable from the loss-recovery list.  ``"fifo"`` ignores
        phases and evicts the oldest entry; ``"active_first"`` inverts the
        preference (ablation baselines).
        """
        if self.osan is not None:
            self.osan.check(self, "pick_victim")
        if not self._flows:
            raise LookupError("gro_table is empty; nothing to evict")
        if policy == "fifo":
            return next(iter(self._flows.values()))
        if policy == "active_first":
            order = ("active", "loss_recovery", "inactive")
        elif policy == "inactive_first":
            order = ("inactive", "active", "loss_recovery")
        else:
            raise ValueError(f"unknown eviction policy: {policy!r}")
        for list_name in order:
            bucket = self._lists[list_name]
            if bucket:
                return next(iter(bucket.values()))
        raise LookupError("gro_table lists are inconsistent")

    def invariant_violations(self) -> List[str]:
        """Figure 4 audit for JSAN: every tracked flow resident in exactly
        one list, stored where its phase says, with the per-list length
        gauges (:attr:`active_len` & friends) consistent with the index —
        plus each entry's own invariants.  Returns human-readable
        violation strings; empty means healthy."""
        violations: List[str] = []
        seen: Dict[FiveTuple, str] = {}
        for list_name, bucket in self._lists.items():
            for key, entry in bucket.items():
                if key in seen:
                    violations.append(
                        f"flow {key} resident on both the {seen[key]} "
                        f"and {list_name} lists")
                seen[key] = list_name
                if entry.phase.list_name != list_name:
                    violations.append(
                        f"flow {key} in phase {entry.phase.value} stored "
                        f"on the {list_name} list (belongs on "
                        f"{entry.phase.list_name})")
                if self._flows.get(key) is not entry:
                    violations.append(
                        f"flow {key} on the {list_name} list but absent "
                        "from (or stale in) the table index")
        for key in self._flows:
            if key not in seen:
                violations.append(
                    f"flow {key} tracked but resident on no list")
        gauge_total = (self.active_len + self.inactive_len
                       + self.loss_recovery_len)
        if gauge_total != len(self._flows):
            violations.append(
                f"list length gauges sum to {gauge_total} but the table "
                f"tracks {len(self._flows)} flow(s)")
        if len(self._flows) > self.capacity:
            violations.append(
                f"table holds {len(self._flows)} flows, over its "
                f"capacity {self.capacity}")
        for key, entry in self._flows.items():
            for violation in entry.invariant_violations():
                violations.append(f"flow {key}: {violation}")
        return violations

    def iter_with_deadlines(self) -> Iterator[FlowEntry]:
        """Flows that may have pending timeout work (non-empty OOO queues
        or unflushed in-sequence data): everything on the active and
        loss-recovery lists."""
        yield from self._lists["active"].values()
        yield from self._lists["loss_recovery"].values()

    def deadline_lists(self) -> tuple:
        """The same flows as :meth:`iter_with_deadlines`, as two dict
        views — the timeout pre-scan runs every poll completion and the
        generator overhead is measurable there."""
        lists = self._lists
        return lists["active"].values(), lists["loss_recovery"].values()

"""Common interface and plumbing for all GRO engine variants.

An engine is driven exactly like the kernel GRO path: the NAPI layer calls
:meth:`receive` once per wire packet during a polling cycle and
:meth:`poll_complete` when the cycle ends; a per-table high-resolution timer
calls :meth:`check_timeouts` between cycles.  Merged segments leave through
the ``deliver`` callback, which in the full simulation is the TCP receiver.
"""

from __future__ import annotations

import abc
from typing import Callable, Optional

from repro.core.flush import FlushReason
from repro.core.stats import GroStats
from repro.cpu.accounting import GroCpuAccountant, NullAccountant
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.net.pool import PacketPool
from repro.net.segment import Segment
from repro.trace import runtime as trace_runtime
from repro.trace.tracer import Tracer

DeliverFn = Callable[[Segment], None]


class GroEngine(abc.ABC):
    """Abstract GRO engine: packets in, merged segments out."""

    def __init__(
        self,
        deliver: DeliverFn,
        accountant: Optional[GroCpuAccountant] = None,
    ):
        self.deliver = deliver
        self.accountant = accountant if accountant is not None else NullAccountant()
        self.stats = GroStats()
        #: None = tracing disabled; hot paths guard on this before emitting.
        self.tracer: Optional[Tracer] = trace_runtime.current()
        if self.tracer is not None:
            index = self.tracer.component_index("gro")
            self.stats.bind(self.tracer.metrics, prefix=f"gro{index}")
        #: Lazily-built pool the columnar paths rehydrate fallback packets
        #: from (see :meth:`rehydrate_pool`); None until first needed.
        self._rehydrate_pool: Optional[PacketPool] = None

    def rehydrate_pool(self) -> PacketPool:
        """The pool native-batch rows are materialized from on fallback."""
        pool = self._rehydrate_pool
        if pool is None:
            pool = self._rehydrate_pool = PacketPool()
        return pool

    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Enable (or disable, with None) tracing on a built engine."""
        self.tracer = tracer

    @abc.abstractmethod
    def receive(self, packet: Packet, now: int) -> None:
        """Process one packet arriving from the driver at time ``now``."""

    def receive_batch(self, packets, now: int) -> None:
        """Process one NAPI poll's worth of packets, all at time ``now``.

        The NAPI layer hands the whole poll batch down at once (the kernel
        equivalent: the driver's poll loop calling ``napi_gro_receive`` per
        descriptor inside one softirq).  Engines may override this to hoist
        per-packet overhead out of the loop; the default just loops.

        ``packets`` may also be a struct-of-arrays
        :class:`~repro.net.batch.PacketBatch`; the default rehydrates real
        packets (from :meth:`rehydrate_pool` for native batches) so engines
        without a columnar path — e.g. ChainedGRO, which keeps the very
        packet objects in its linked lists — stay correct unchanged.
        """
        if isinstance(packets, PacketBatch):
            if packets.is_native:
                packets = packets.to_packets(self.rehydrate_pool())
            else:
                packets = packets.packets
        for packet in packets:
            self.receive(packet, now)

    @abc.abstractmethod
    def poll_complete(self, now: int) -> None:
        """NAPI polling cycle finished; run end-of-poll housekeeping."""

    def check_timeouts(self, now: int) -> None:
        """High-resolution-timer callback; default engines have no timers."""

    def next_deadline(self) -> Optional[int]:
        """Earliest absolute time a timeout could fire, or None."""
        return None

    @abc.abstractmethod
    def flush_all(self, now: int) -> None:
        """Drain every buffered packet (experiment teardown)."""

    # -- shared delivery plumbing -------------------------------------------

    def _deliver_segment(self, segment: Segment, reason: FlushReason, now: int) -> None:
        """Push one merged segment up the stack, with accounting."""
        segment.flushed_at = now
        self.stats.record_delivery(
            segment.flow, segment.seq, segment.end_seq, segment.mtus, reason
        )
        self.accountant.on_flush_segment(segment)
        tracer = self.tracer
        if tracer is not None:
            tracer.flush(now, segment.flow, segment.seq, segment.end_seq,
                         segment.mtus, reason)
        self.deliver(segment)

    def _deliver_packet(self, packet: Packet, reason: FlushReason, now: int) -> None:
        """Push one unmerged packet up as a single-MTU segment."""
        self._deliver_segment(Segment([packet]), reason, now)

    def _passthrough(self, packet: Packet, now: int) -> None:
        """Bypass batching entirely (pure ACKs and other unbatchables)."""
        self.stats.passthrough_packets += 1
        segment = Segment([packet])
        segment.flushed_at = now
        self.deliver(segment)

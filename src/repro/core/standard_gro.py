"""The vanilla kernel's GRO — the paper's baseline (§3.1).

Standard GRO "assumes the first packet of a flow in a batch is in sequence
and continues to merge packets as long as the packet arrivals are in the
sequence number order.  It flushes the batched packet whenever its size
exceeds a preconfigured maximum (64KB) or when the next packet is not in
sequence.  ...  When the kernel finishes polling, standard GRO flushes all
its packets and starts fresh from the next polling interval."

Under reordering this collapses batching to a couple of MTUs per segment —
the "roughly 15 times more segments" of §5.1.1 — which is what saturates the
vanilla receiver's CPU in Figures 9 and 10.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.base import DeliverFn, GroEngine
from repro.core.flush import FlushReason
from repro.cpu.accounting import GroCpuAccountant
from repro.net.addr import FiveTuple
from repro.net.constants import MAX_GRO_SEGMENT, MSS
from repro.net.packet import Packet
from repro.net.segment import BatchingMode, Segment


class StandardGRO(GroEngine):
    """In-sequence-only batching, state cleared at every poll completion."""

    def __init__(
        self,
        deliver: DeliverFn,
        accountant: Optional[GroCpuAccountant] = None,
        max_segment_bytes: int = MAX_GRO_SEGMENT,
    ):
        super().__init__(deliver, accountant)
        self.max_segment_bytes = max_segment_bytes
        self._batch: Dict[FiveTuple, Segment] = {}

    @property
    def held_flows(self) -> int:
        """Flows with a partially merged segment in the current batch."""
        return len(self._batch)

    def receive(self, packet: Packet, now: int) -> None:
        """Merge if next-in-sequence; otherwise flush and restart."""
        self.accountant.on_rx_packet()
        self.accountant.on_gro_packet()
        if packet.payload_len == 0:
            self._passthrough(packet, now)
            return
        self.stats.packets += 1

        held = self._batch.get(packet.flow)
        if held is not None:
            if held.can_append(packet, self.max_segment_bytes):
                held.append(packet)
                self.stats.merges += 1
                self.accountant.on_merge(BatchingMode.FRAGS_ARRAY)
                if held.closed:
                    self._flush(packet.flow, FlushReason.FLAGS, now)
                elif held.payload_len + MSS > self.max_segment_bytes:
                    self._flush(packet.flow, FlushReason.SEGMENT_FULL, now)
                return
            # Not mergeable: out of sequence or header mismatch.  Flush the
            # held segment, then start fresh with this packet.
            reason = (
                FlushReason.UNMERGEABLE
                if packet.seq == held.end_seq
                else FlushReason.OUT_OF_SEQUENCE
            )
            self._flush(packet.flow, reason, now)

        segment = Segment([packet])
        if segment.closed:
            self._deliver_segment(segment, FlushReason.FLAGS, now)
            return
        self._batch[packet.flow] = segment

    def _flush(self, flow: FiveTuple, reason: FlushReason, now: int) -> None:
        segment = self._batch.pop(flow)
        self._deliver_segment(segment, reason, now)

    def poll_complete(self, now: int) -> None:
        """Flush everything and start fresh — vanilla GRO keeps no state
        across polling intervals."""
        self.accountant.on_poll()
        for flow in list(self._batch):
            self._flush(flow, FlushReason.POLL_END, now)

    def flush_all(self, now: int) -> None:
        """Teardown drain (same as a poll completion for vanilla GRO)."""
        for flow in list(self._batch):
            self._flush(flow, FlushReason.SHUTDOWN, now)

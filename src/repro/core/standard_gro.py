"""The vanilla kernel's GRO — the paper's baseline (§3.1).

Standard GRO "assumes the first packet of a flow in a batch is in sequence
and continues to merge packets as long as the packet arrivals are in the
sequence number order.  It flushes the batched packet whenever its size
exceeds a preconfigured maximum (64KB) or when the next packet is not in
sequence.  ...  When the kernel finishes polling, standard GRO flushes all
its packets and starts fresh from the next polling interval."

Under reordering this collapses batching to a couple of MTUs per segment —
the "roughly 15 times more segments" of §5.1.1 — which is what saturates the
vanilla receiver's CPU in Figures 9 and 10.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.base import DeliverFn, GroEngine
from repro.core.flush import FlushReason
from repro.cpu.accounting import GroCpuAccountant, NullAccountant
from repro.net.addr import FiveTuple
from repro.net.batch import FLUSH_MASK, ODD_SIG_MASK, PacketBatch, SoaSegment
from repro.net.constants import MAX_GRO_SEGMENT, MSS
from repro.net.packet import Packet
from repro.net.segment import BatchingMode, Segment


class StandardGRO(GroEngine):
    """In-sequence-only batching, state cleared at every poll completion."""

    def __init__(
        self,
        deliver: DeliverFn,
        accountant: Optional[GroCpuAccountant] = None,
        max_segment_bytes: int = MAX_GRO_SEGMENT,
    ):
        super().__init__(deliver, accountant)
        self.max_segment_bytes = max_segment_bytes
        self._batch: Dict[FiveTuple, Segment] = {}

    @property
    def held_flows(self) -> int:
        """Flows with a partially merged segment in the current batch."""
        return len(self._batch)

    def receive(self, packet: Packet, now: int) -> None:
        """Merge if next-in-sequence; otherwise flush and restart."""
        self.accountant.on_rx_packet()
        self.accountant.on_gro_packet()
        if packet.payload_len == 0:
            self._passthrough(packet, now)
            return
        self.stats.packets += 1

        held = self._batch.get(packet.flow)
        if held is not None:
            if held.can_append(packet, self.max_segment_bytes):
                held.append(packet)
                self.stats.merges += 1
                self.accountant.on_merge(BatchingMode.FRAGS_ARRAY)
                if held.closed:
                    self._flush(packet.flow, FlushReason.FLAGS, now)
                elif held.payload_len + MSS > self.max_segment_bytes:
                    self._flush(packet.flow, FlushReason.SEGMENT_FULL, now)
                return
            # Not mergeable: out of sequence or header mismatch.  Flush the
            # held segment, then start fresh with this packet.
            reason = (
                FlushReason.UNMERGEABLE
                if packet.seq == held.end_seq
                else FlushReason.OUT_OF_SEQUENCE
            )
            self._flush(packet.flow, reason, now)

        segment = Segment([packet])
        if segment.closed:
            self._deliver_segment(segment, FlushReason.FLAGS, now)
            return
        self._batch[packet.flow] = segment

    def receive_batch(self, packets, now: int) -> None:
        """Columnar path for struct-of-arrays batches; lists just loop.

        Same fast/fallback contract as the Juggler engine: eligible rows
        (payload in (0, MSS], no flush-forcing flags, no CE/options) run
        inline per flow run with int-signature merge probes; everything
        else punts to :meth:`receive`.  Equivalence is pinned by
        ``tests/core/test_receive_batch_mirror.py``.
        """
        if type(packets) is not PacketBatch:
            for packet in packets:
                self.receive(packet, now)
            return
        if type(self.accountant) is not NullAccountant:
            GroEngine.receive_batch(self, packets, now)
            return
        if packets.runs is None:
            packets.seal()
        stats = self.stats
        batch_map = self._batch
        receive = self.receive
        maxseg = self.max_segment_bytes
        seg_budget = maxseg - MSS
        unmergeable = FlushReason.UNMERGEABLE
        out_of_seq = FlushReason.OUT_OF_SEQUENCE
        segment_full = FlushReason.SEGMENT_FULL
        frags = BatchingMode.FRAGS_ARRAY
        flows = packets.flows
        objs = packets.packets
        pool = None
        seqs = lens = fcol = scol = tcol = None
        if objs is None:
            pool = self.rehydrate_pool()
            seqs = packets.seq
            lens = packets.payload_len
            fcol = packets.flags
            scol = packets.sig
            tcol = packets.sent_at
        fl = 0
        for slot, start, stop in packets.runs:
            flow = flows[slot]
            held = batch_map.get(flow)
            in_loop = 0
            merges = 0
            for i in range(start, stop):
                if objs is not None:
                    pk = objs[i]
                    ln = pk.payload_len
                    s = pk.seq
                    sk = pk.sig_key
                    odd = (ln <= 0 or ln > MSS or pk.forces_flush
                           or (sk & ODD_SIG_MASK))
                else:
                    pk = None
                    ln = lens[i]
                    s = seqs[i]
                    sk = scol[i]
                    fl = fcol[i]
                    odd = (ln <= 0 or ln > MSS or (fl & FLUSH_MASK)
                           or (sk & ODD_SIG_MASK))
                if odd:
                    if pk is None:
                        pk = packets.materialize(i, pool)
                    receive(pk, now)
                    held = batch_map.get(flow)
                    continue
                in_loop += 1
                if held is not None:
                    if (held.end_seq == s and held.sig_key == sk
                            and held._payload + ln <= maxseg):
                        if pk is not None:
                            if held.__class__ is Segment:
                                held.packets.append(pk)
                                held.end_seq = s + ln
                                held.mtus += 1
                                held._payload += ln
                                if pk.sent_at < held.first_sent_at:
                                    held.first_sent_at = pk.sent_at
                            else:
                                held.append(pk)
                        elif held.__class__ is SoaSegment and held._mat is None:
                            held._pseq.append(s)
                            held._plen.append(ln)
                            held._pflags.append(fl)
                            sent = tcol[i]
                            held._psent.append(sent)
                            held.end_seq = s + ln
                            held.mtus += 1
                            held._payload += ln
                            if sent < held.first_sent_at:
                                held.first_sent_at = sent
                        elif held.__class__ is SoaSegment:
                            held.append_value(s, s + ln, ln, fl, tcol[i])
                        else:
                            held.append(packets.materialize(i, pool))
                        merges += 1
                        # Eligible rows never close the segment (no
                        # flush-forcing flags), so only the size check
                        # from the object path applies here.
                        if held._payload > seg_budget:
                            self._flush(flow, segment_full, now)
                            held = None
                        continue
                    reason = unmergeable if s == held.end_seq else out_of_seq
                    self._flush(flow, reason, now)
                if pk is not None:
                    seg = Segment.__new__(Segment)
                    seg.flow = pk.flow
                    seg.packets = [pk]
                    seg.mode = frags
                    seg.seq = s
                    seg.end_seq = s + ln
                    seg.mtus = 1
                    seg.first_sent_at = pk.sent_at
                    seg.flushed_at = 0
                    seg.in_order = True
                    seg.sig = pk.sig
                    seg.sig_key = sk
                    seg._payload = ln
                    seg._closed = False
                else:
                    seg = SoaSegment.open(flow, s, s + ln, ln, fl, tcol[i])
                batch_map[flow] = seg
                held = seg
            if in_loop:
                stats.packets += in_loop
                stats.merges += merges

    def _flush(self, flow: FiveTuple, reason: FlushReason, now: int) -> None:
        segment = self._batch.pop(flow)
        self._deliver_segment(segment, reason, now)

    def poll_complete(self, now: int) -> None:
        """Flush everything and start fresh — vanilla GRO keeps no state
        across polling intervals."""
        self.accountant.on_poll()
        for flow in list(self._batch):
            self._flush(flow, FlushReason.POLL_END, now)

    def flush_all(self, now: int) -> None:
        """Teardown drain (same as a poll completion for vanilla GRO)."""
        for flow in list(self._batch):
            self._flush(flow, FlushReason.SHUTDOWN, now)

"""Per-flow state — the paper's ``struct flow_entry`` (§4.1).

::

    struct flow_entry {
        struct five_tuple key;
        struct sk_buff_head *ofo_queue;
        u64 flush_timestamp;
        u32 seq_next;
        u32 lost_seq;
    }

plus the lifecycle phase (which of the three lists the entry lives on) and
``hole_since`` — when the head of the OOO queue first detached from
``seq_next``, which is what arms the ``ofo_timeout``.
"""

from __future__ import annotations

from typing import Optional

from repro.core.ofo_queue import OfoQueue
from repro.core.phases import Phase
from repro.net.addr import FiveTuple


class FlowEntry:
    """State Juggler tracks for one five-tuple flow."""

    __slots__ = (
        "key",
        "ofo",
        "flush_timestamp",
        "seq_next",
        "lost_seq",
        "phase",
        "hole_since",
        "created_at",
        "last_seen",
        "owner_domain",
    )

    def __init__(self, key: FiveTuple, now: int, max_payload: Optional[int] = None):
        self.key = key
        self.ofo = OfoQueue(max_payload)
        #: Last time packets of this flow were flushed (ns since epoch).
        self.flush_timestamp = now
        #: Best guess of the largest sequence number already flushed up.
        #: None until the first packet is seen (INITIAL phase).
        self.seq_next: Optional[int] = None
        #: First missing packet's sequence number, set on entering loss
        #: recovery; None otherwise.
        self.lost_seq: Optional[int] = None
        self.phase = Phase.INITIAL
        #: When the head of the OOO queue first stopped being in-sequence
        #: (a "hole" appeared); arms the ofo_timeout.  None = no hole.
        self.hole_since: Optional[int] = None
        self.created_at = now
        self.last_seen = now
        #: OSAN shard ownership tag (see repro.analysis.ownership); None
        #: means unowned/ambient.  Assigned by GroTable.add when the
        #: table itself is bound to a per-core context.
        self.owner_domain = None

    @property
    def has_hole(self) -> bool:
        """True when buffered data exists but does not start at seq_next."""
        head = self.ofo.head
        return (
            head is not None
            and self.seq_next is not None
            and head.seq > self.seq_next
        )

    @property
    def head_in_sequence(self) -> bool:
        """True when the head run starts exactly at seq_next."""
        head = self.ofo.head
        return head is not None and head.seq == self.seq_next

    def refresh_hole_state(self, now: int) -> None:
        """Recompute ``hole_since`` after any queue or seq_next change.

        A pre-existing hole keeps its original timestamp (the timeout clock
        keeps running); a new hole starts the clock now; no hole clears it.
        """
        if self.has_hole:
            if self.hole_since is None:
                self.hole_since = now
        else:
            self.hole_since = None

    def learn_seq_next(self, seq: int) -> None:
        """Build-up phase learning: seq_next may move *backwards* (§4.2.2)."""
        if self.seq_next is None or seq < self.seq_next:
            self.seq_next = seq

    def advance_seq_next(self, end_seq: int) -> None:
        """Active-merge semantics: seq_next only moves forward (§4.2.3)."""
        assert self.seq_next is not None
        if end_seq > self.seq_next:
            self.seq_next = end_seq

    def invariant_violations(self) -> list:
        """Per-entry audit for JSAN (see :mod:`repro.analysis.sanitizer`).

        Checks the cross-field contracts the engine maintains between
        hook points: ``seq_next`` known once past build-up, ``lost_seq``
        set exactly in loss recovery (§4.2.5), post-merge entries drained
        (§4.2.4), ``hole_since`` armed iff a hole exists, the head run at
        or past ``seq_next``, and the ofo queue's own structure.
        """
        violations = []
        if self.phase in (Phase.ACTIVE_MERGE, Phase.POST_MERGE,
                          Phase.LOSS_RECOVERY) and self.seq_next is None:
            violations.append(
                f"phase {self.phase.value} but seq_next is unknown "
                "(only initial/build_up may still be learning)")
        if (self.lost_seq is not None) != (self.phase is Phase.LOSS_RECOVERY):
            violations.append(
                f"lost_seq={self.lost_seq} in phase {self.phase.value} "
                "(must be set exactly while in loss_recovery, §4.2.5)")
        if self.phase is Phase.POST_MERGE:
            if self.ofo:
                violations.append(
                    f"post_merge entry still buffers {len(self.ofo)} "
                    "run(s); the inactive list must hold drained flows "
                    "only (§4.2.4)")
            if self.hole_since is not None:
                violations.append(
                    "post_merge entry has an armed hole; it would never "
                    "be swept (inactive flows carry no deadlines)")
        if self.hole_since is not None and not self.has_hole:
            violations.append(
                f"hole_since={self.hole_since} armed but the queue head "
                "is in sequence — a phantom ofo_timeout would fire")
        if self.has_hole and self.hole_since is None:
            violations.append(
                "a hole exists but hole_since is unarmed — its "
                "ofo_timeout would never fire")
        head = self.ofo.head
        if (head is not None and self.seq_next is not None
                and head.seq < self.seq_next):
            violations.append(
                f"head run starts at {head.seq}, below seq_next "
                f"{self.seq_next} — stale bytes the flush logic cannot "
                "release")
        violations.extend(self.ofo.invariant_violations())
        return violations

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FlowEntry {self.key} phase={self.phase.value} "
            f"seq_next={self.seq_next} lost_seq={self.lost_seq} "
            f"ofo_nodes={len(self.ofo)}>"
        )

"""The five phases in the lifetime of a flow (Table 1 / Figure 5).

====================  =======================================================
Phase                 Rationale (paper section)
====================  =======================================================
INITIAL               Packet seen for the first time, ``seq_next`` unknown
                      (§4.2.1).  Transient — the entry immediately moves on.
BUILD_UP              Learn an initial estimate of ``seq_next``, which may
                      move *backwards* (§4.2.2, Remark 1).
ACTIVE_MERGE          Merge and flush; ``seq_next`` only moves forward
                      (§4.2.3).
POST_MERGE            OOO queue drained; flow parked on the inactive list and
                      safe to evict (§4.2.4).
LOSS_RECOVERY         An ``ofo_timeout`` fired — a packet is presumed lost;
                      evicting now would cause stalls, so the flow is
                      protected until the hole is filled (§4.2.5).
====================  =======================================================
"""

from __future__ import annotations

import enum


class Phase(enum.Enum):
    """Lifecycle phase of a flow entry; determines which list holds it."""

    INITIAL = "initial"
    BUILD_UP = "build_up"
    ACTIVE_MERGE = "active_merge"
    POST_MERGE = "post_merge"
    LOSS_RECOVERY = "loss_recovery"

    @property
    def list_name(self) -> str:
        """Which of the three gro_table lists flows in this phase live on."""
        if self in (Phase.BUILD_UP, Phase.ACTIVE_MERGE):
            return "active"
        if self is Phase.POST_MERGE:
            return "inactive"
        if self is Phase.LOSS_RECOVERY:
            return "loss_recovery"
        return "none"  # INITIAL is transient, never stored

    @property
    def evictable_rank(self) -> int:
        """Eviction preference: lower rank is evicted first (§4.3).

        Post-merge flows have empty OOO queues and no holes — evicting them
        is free.  Active flows may have holes; evicting them risks timeout
        stalls on re-entry (Figure 8).  Loss-recovery flows are the worst
        candidates because their future packets are *known* to have holes.
        """
        if self is Phase.POST_MERGE:
            return 0
        if self in (Phase.BUILD_UP, Phase.ACTIVE_MERGE):
            return 1
        return 2

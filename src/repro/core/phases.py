"""The five phases in the lifetime of a flow (Table 1 / Figure 5).

====================  =======================================================
Phase                 Rationale (paper section)
====================  =======================================================
INITIAL               Packet seen for the first time, ``seq_next`` unknown
                      (§4.2.1).  Transient — the entry immediately moves on.
BUILD_UP              Learn an initial estimate of ``seq_next``, which may
                      move *backwards* (§4.2.2, Remark 1).
ACTIVE_MERGE          Merge and flush; ``seq_next`` only moves forward
                      (§4.2.3).
POST_MERGE            OOO queue drained; flow parked on the inactive list and
                      safe to evict (§4.2.4).
LOSS_RECOVERY         An ``ofo_timeout`` fired — a packet is presumed lost;
                      evicting now would cause stalls, so the flow is
                      protected until the hole is filled (§4.2.5).
====================  =======================================================
"""

from __future__ import annotations

import enum


class Phase(enum.Enum):
    """Lifecycle phase of a flow entry; determines which list holds it.

    ``list_name`` — which of the three gro_table lists flows in this phase
    live on ("none" for the transient INITIAL, which is never stored).

    ``evictable_rank`` — eviction preference, lower evicted first (§4.3):
    post-merge flows have empty OOO queues and no holes, so evicting them
    is free; active flows may have holes and risk timeout stalls on
    re-entry (Figure 8); loss-recovery flows are the worst candidates
    because their future packets are *known* to have holes.

    Both are precomputed member attributes — the table re-homes entries on
    every phase transition, so these sit on the receive hot path.
    """

    INITIAL = ("initial", "none", 2)
    BUILD_UP = ("build_up", "active", 1)
    ACTIVE_MERGE = ("active_merge", "active", 1)
    POST_MERGE = ("post_merge", "inactive", 0)
    LOSS_RECOVERY = ("loss_recovery", "loss_recovery", 2)

    def __new__(cls, value: str, list_name: str, evictable_rank: int):
        member = object.__new__(cls)
        member._value_ = value
        member.list_name = list_name
        member.evictable_rank = evictable_rank
        return member

"""A Presto-style receive-side OOO buffer, for the related-work comparison.

Presto [24] "also adds an out of order buffer to GRO" but "maintains state
for all established connections, which may suffer from performance issues
and is vulnerable to memory resource exhaustion attacks" (§6).  We model
that design point as Juggler's buffering logic with an *unbounded* flow
table and no eviction: functionally resilient to (TSO-granular) reordering,
but its memory footprint grows with every flow ever seen — the property the
ablation benches contrast with Juggler's bounded table.
"""

from __future__ import annotations

from typing import Optional

from repro.core.base import DeliverFn
from repro.core.config import JugglerConfig
from repro.core.juggler import JugglerGRO
from repro.cpu.accounting import GroCpuAccountant

#: Effectively-unbounded table capacity standing in for "track everything".
_UNBOUNDED = 2**31


class PrestoGRO(JugglerGRO):
    """Juggler's buffering with per-connection state that never goes away."""

    def __init__(
        self,
        deliver: DeliverFn,
        config: Optional[JugglerConfig] = None,
        accountant: Optional[GroCpuAccountant] = None,
    ):
        base = config if config is not None else JugglerConfig()
        unbounded = JugglerConfig(
            inseq_timeout=base.inseq_timeout,
            ofo_timeout=base.ofo_timeout,
            table_capacity=_UNBOUNDED,
            max_segment_bytes=base.max_segment_bytes,
        )
        super().__init__(deliver, unbounded, accountant)

    @property
    def tracked_flows(self) -> int:
        """Flow entries resident in memory — grows without bound (§6)."""
        return len(self.table)

    @property
    def resident_state_bytes(self) -> int:
        """Rough kernel-memory footprint: ~96 bytes of flow_entry + list
        linkage per connection ever seen (the O(connections) growth
        Juggler's bounded table avoids), plus buffered payload."""
        return 96 * len(self.table) + self.buffered_bytes

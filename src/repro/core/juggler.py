"""The Juggler GRO engine (§4 of the paper).

One instance serves one NIC receive queue, exactly as the kernel patch
instantiates its data structures per-queue.  The engine:

* keys flows in a capacity-bounded :class:`~repro.core.gro_table.GroTable`;
* walks each flow through the five-phase lifecycle of Figure 5;
* buffers out-of-order packets in per-flow :class:`~repro.core.ofo_queue.OfoQueue`
  runs, merging into frags[]-style segments;
* flushes on the Table 2 conditions — event-driven checks after every merge,
  timeout checks at polling completion and from the per-table hrtimer;
* evicts aggressively in the §4.3 preference order when the table fills.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import runtime as sanitize_runtime
from repro.core.base import DeliverFn, GroEngine
from repro.core.config import JugglerConfig
from repro.core.flow_entry import FlowEntry
from repro.core.flush import FlushReason
from repro.core.gro_table import GroTable
from repro.core.phases import Phase
from repro.cpu.accounting import GroCpuAccountant, NullAccountant
from repro.net.batch import FLUSH_MASK, ODD_SIG_MASK, PacketBatch, SoaSegment
from repro.net.constants import MSS
from repro.net.packet import Packet
from repro.net.segment import BatchingMode, Segment


class JugglerGRO(GroEngine):
    """Reordering-resilient GRO for one RX queue."""

    def __init__(
        self,
        deliver: DeliverFn,
        config: Optional[JugglerConfig] = None,
        accountant: Optional[GroCpuAccountant] = None,
    ):
        super().__init__(deliver, accountant)
        self.config = config if config is not None else JugglerConfig()
        self.table = GroTable(self.config.table_capacity)
        self.table.tracer = self.tracer
        #: None = sanitizing disabled (the common case); every hook below
        #: guards on this, so the hot path pays one identity test and
        #: allocates nothing — the same contract as ``self.tracer``.
        self.sanitizer = sanitize_runtime.current()
        self.table.sanitizer = self.sanitizer
        #: Columnar-path diagnostics.  Deliberately *not* on GroStats: the
        #: mirror-equivalence test asserts stats equality across the
        #: per-packet and columnar paths, and these two necessarily differ.
        self.soa_fast_packets = 0
        self.soa_fallback_packets = 0
        #: Stable bound methods, created once: ``_receive_soa`` unpacks
        #: this instead of re-binding seven methods per poll, which is what
        #: keeps the degenerate length-1 batch within 10% of ``receive()``
        #: (benchmarks/test_batch_overhead.py).  Mutable collaborators
        #: (tracer, sanitizer, stats) are still read per call.
        self._soa_hot = (self._passthrough, self._deliver_packet,
                         self._admit_new_flow, self._receive_established,
                         self._event_checks, self._deliver_segment,
                         self.rehydrate_pool())

    def attach_tracer(self, tracer) -> None:
        """Enable tracing on engine and table together."""
        super().attach_tracer(tracer)
        self.table.tracer = tracer

    def attach_sanitizer(self, sanitizer) -> None:
        """Enable (or with None, disable) JSAN on engine and table."""
        self.sanitizer = sanitizer
        self.table.sanitizer = sanitizer

    # -- public state inspection (Figs. 15, 16 sample these) ----------------

    @property
    def active_list_len(self) -> int:
        """Flows currently in build-up or active merging."""
        return self.table.active_len

    @property
    def inactive_list_len(self) -> int:
        """Flows parked in post-merge."""
        return self.table.inactive_len

    @property
    def loss_recovery_list_len(self) -> int:
        """Flows awaiting a presumed-lost packet."""
        return self.table.loss_recovery_len

    @property
    def buffered_bytes(self) -> int:
        """Payload bytes currently held across all OOO queues.

        Bounded by design: at most ``table_capacity`` flows are tracked, and
        each flow's queue drains within ``ofo_timeout`` — the §3.3 defence
        against memory-exhaustion attacks.
        """
        return sum(entry.ofo.buffered_bytes for entry in self.table)

    @property
    def resident_state_bytes(self) -> int:
        """Rough kernel-memory footprint of the flow table (cf. PrestoGRO):
        ~96 bytes of flow_entry + list linkage per tracked flow, plus the
        buffered payload."""
        return 96 * len(self.table) + self.buffered_bytes

    # -- the receive path ----------------------------------------------------

    def receive(self, packet: Packet, now: int) -> None:
        """Per-packet entry point, called from the NAPI poll loop."""
        self.accountant.on_rx_packet()
        self.accountant.on_gro_packet()
        tracer = self.tracer
        if tracer is not None:
            tracer.packet_rx(now, packet.flow, packet.seq, packet.end_seq,
                             packet.payload_len)

        if (packet.payload_len == 0
                or packet.flow.proto not in self.config.protocols):
            # Pure ACKs are never batched, and traffic from unconfigured
            # transports is not Juggler's business (§4: "we primarily focus
            # on the handling of TCP traffic") — both bypass the flow table.
            self._passthrough(packet, now)
            return

        self.stats.packets += 1
        entry = self.table.lookup(packet.flow)
        if entry is None:
            entry = self._admit_new_flow(packet, now)
        entry.last_seen = now

        if entry.phase is Phase.BUILD_UP:
            # seq_next may still move backwards while we learn it (§4.2.2).
            entry.learn_seq_next(packet.seq)
            self._buffer_packet(entry, packet, now)
        else:
            self._receive_established(entry, packet, now)

        self._event_checks(entry, now)
        if self.sanitizer is not None:
            self.sanitizer.check_flow(entry)

    def receive_batch(self, packets, now: int) -> None:
        """One NAPI poll's packets through the same per-packet pipeline.

        A struct-of-arrays :class:`~repro.net.batch.PacketBatch` takes the
        columnar path (:meth:`_receive_soa`); a plain packet list mirrors
        :meth:`receive` exactly (same calls, same order) with the
        engine-level attribute lookups hoisted out of the loop.
        Behavioural equivalence of ``receive``, this loop, and the columnar
        path is pinned by ``tests/core/test_receive_batch_mirror.py`` —
        change any one of them and that test arbitrates.
        """
        if type(packets) is PacketBatch:
            if type(self.accountant) is NullAccountant:
                self._receive_soa(packets, now)
            else:
                # CPU-accounted experiments charge costs per packet by
                # design; keep them on the per-packet reference path.
                GroEngine.receive_batch(self, packets, now)
            return
        accountant = self.accountant
        tracer = self.tracer
        sanitizer = self.sanitizer
        stats = self.stats
        lookup = self.table.lookup
        protocols = self.config.protocols
        buildup = Phase.BUILD_UP
        for packet in packets:
            accountant.on_rx_packet()
            accountant.on_gro_packet()
            if tracer is not None:
                tracer.packet_rx(now, packet.flow, packet.seq,
                                 packet.end_seq, packet.payload_len)
            if (packet.payload_len == 0
                    or packet.flow.proto not in protocols):
                self._passthrough(packet, now)
                continue
            stats.packets += 1
            entry = lookup(packet.flow)
            if entry is None:
                entry = self._admit_new_flow(packet, now)
            entry.last_seen = now
            if entry.phase is buildup:
                entry.learn_seq_next(packet.seq)
                self._buffer_packet(entry, packet, now)
            else:
                self._receive_established(entry, packet, now)
            self._event_checks(entry, now)
            if sanitizer is not None:
                sanitizer.check_flow(entry)

    def _receive_soa(self, batch: PacketBatch, now: int) -> None:
        """Columnar fast path over a struct-of-arrays batch.

        Walks the batch's flow-run index; for each run of an established
        (active/post-merge) flow it processes fast-path-eligible rows
        inline against hoisted flow state — binary-search insert,
        int-signature merge probes, per-packet event checks — with stats
        batched per run and zero per-row object construction in native
        mode.  Everything else punts, row by row, to :meth:`receive`:
        admission/eviction, build-up and loss-recovery flows,
        retransmissions (``seq < seq_next``), flush-forcing flags,
        CE marks, TCP options, and zero/jumbo payloads.  Punts re-read
        ``seq_next``/``phase`` afterwards, so resuming in-loop is exact:
        each row is classified independently against refreshed state.
        """
        if batch.runs is None:
            batch.seal()
        stats = self.stats
        table = self.table
        lookup = table.lookup
        san = self.sanitizer
        tracer = self.tracer
        (passthrough, deliver_packet, admit, receive_established,
         event_checks, deliver_segment, pool) = self._soa_hot
        protocols = self.config.protocols
        buildup = Phase.BUILD_UP
        max_payload = self.config.max_segment_bytes
        seg_budget = max_payload - MSS
        active = Phase.ACTIVE_MERGE
        post = Phase.POST_MERGE
        frags = BatchingMode.FRAGS_ARRAY
        duplicate = FlushReason.DUPLICATE
        segment_full = FlushReason.SEGMENT_FULL
        flags_reason = FlushReason.FLAGS
        unmergeable = FlushReason.UNMERGEABLE
        flows = batch.flows
        objs = batch.packets
        seqs = lens = fcol = scol = tcol = None
        if objs is None:
            # Sealed native batch: the columns are frozen arrays — read
            # the slots straight, skipping five property dispatches.
            seqs = batch._seq
            lens = batch._payload_len
            fcol = batch._flags
            scol = batch._sig
            tcol = batch._sent_at
        fast = 0
        fallback = 0
        fl = 0
        for slot, start, stop in batch.runs:
            flow = flows[slot]
            entry = lookup(flow)
            if (flow.proto not in protocols or entry is None
                    or entry.seq_next is None
                    or (entry.phase is not active
                        and entry.phase is not post)):
                # Admission (and any eviction it triggers), build-up and
                # loss recovery all stay on the reference path — the
                # fast/fallback boundary contract.  The loop is
                # :meth:`receive`'s body with the engine-level lookups
                # hoisted and the accountant hooks elided (the columnar
                # dispatch guarantees a NullAccountant, whose hooks are
                # no-ops).  The build-up branch further unrolls
                # ``_buffer_packet``/``OfoQueue.insert``/``_event_checks``
                # in their *general* form — tuple signatures, flush-forcing
                # flags, duplicates — since build-up packets may be
                # anything.  Build-up queues only ever contain plain
                # Segments (the phase is entered once, from admission, and
                # its packets never take the columnar path), but each
                # dispatch still guards on the concrete class and falls
                # back to the Segment methods otherwise.
                for j in range(start, stop):
                    pk = objs[j] if objs is not None else \
                        batch.materialize(j, pool)
                    if tracer is not None:
                        tracer.packet_rx(now, pk.flow, pk.seq, pk.end_seq,
                                         pk.payload_len)
                    if (pk.payload_len == 0
                            or pk.flow.proto not in protocols):
                        passthrough(pk, now)
                        continue
                    stats.packets += 1
                    if entry is None:
                        entry = admit(pk, now)
                    entry.last_seen = now
                    if entry.phase is not buildup:
                        receive_established(entry, pk, now)
                        event_checks(entry, now)
                        if san is not None:
                            san.check_flow(entry)
                        continue
                    # seq_next may still move backwards while we learn it
                    # (§4.2.2) — learn_seq_next, inlined.
                    s2 = pk.seq
                    sq = entry.seq_next
                    if sq is None or s2 < sq:
                        entry.seq_next = sq = s2
                    # -- OfoQueue.insert, inlined (general form) ---------
                    ln2 = pk.payload_len
                    e2 = s2 + ln2
                    nds = entry.ofo.nodes
                    n2 = len(nds)
                    scanned2 = 0
                    if n2 == 0:
                        idx2 = 0
                        pred2 = None
                        succ2 = None
                    else:
                        last2 = nds[-1]
                        if s2 >= last2.seq:
                            idx2 = n2
                            pred2 = last2
                            succ2 = None
                        else:
                            lo = 0
                            hi = n2
                            while lo < hi:
                                mid = (lo + hi) >> 1
                                if nds[mid].seq <= s2:
                                    lo = mid + 1
                                else:
                                    hi = mid
                            idx2 = lo
                            rem = n2 - idx2
                            scanned2 = rem if rem < idx2 + 1 else idx2 + 1
                            stats.nodes_scanned += scanned2
                            pred2 = nds[idx2 - 1] if idx2 else None
                            succ2 = nds[idx2]
                    if ((pred2 is not None and s2 < pred2.end_seq)
                            or (succ2 is not None and e2 > succ2.seq)):
                        # Overlaps buffered bytes: duplicate (never buffer
                        # twice); _event_checks still runs below.
                        stats.duplicates += 1
                        deliver_packet(pk, duplicate, now)
                    else:
                        psig = pk.sig
                        merged2 = True
                        if (pred2 is not None and not pred2._closed
                                and pred2.end_seq == s2 and pred2.sig == psig
                                and pred2._payload + ln2 <= max_payload):
                            # Segment.append (general: tracks _closed).
                            if pred2.__class__ is Segment:
                                pred2.packets.append(pk)
                                pred2.end_seq = e2
                                pred2.mtus += 1
                                pred2._payload += ln2
                                pred2._closed = pk.forces_flush
                                if pk.sent_at < pred2.first_sent_at:
                                    pred2.first_sent_at = pk.sent_at
                            else:
                                pred2.append(pk)
                            if (succ2 is not None and not pred2._closed
                                    and succ2.seq == pred2.end_seq
                                    and succ2.sig == pred2.sig
                                    and pred2._payload + succ2._payload
                                    <= max_payload):
                                # The append closed the gap: extend.
                                if (pred2.__class__ is Segment
                                        and succ2.__class__ is Segment):
                                    pred2.packets.extend(succ2.packets)
                                    pred2.end_seq = succ2.end_seq
                                    pred2.mtus += succ2.mtus
                                    pred2._payload += succ2._payload
                                    pred2._closed = succ2._closed
                                    if (succ2.first_sent_at
                                            < pred2.first_sent_at):
                                        pred2.first_sent_at = \
                                            succ2.first_sent_at
                                else:
                                    pred2.extend(succ2)
                                del nds[idx2]
                        elif (succ2 is not None
                                and (not pk.forces_flush
                                     or e2 == succ2.end_seq)
                                and e2 == succ2.seq and psig == succ2.sig
                                and succ2._payload + ln2 <= max_payload):
                            # Segment.prepend (PSH may only be a tail).
                            if succ2.__class__ is Segment:
                                succ2.packets.insert(0, pk)
                                succ2.seq = s2
                                succ2.mtus += 1
                                succ2._payload += ln2
                                if pk.sent_at < succ2.first_sent_at:
                                    succ2.first_sent_at = pk.sent_at
                            else:
                                succ2.prepend(pk)
                        else:
                            merged2 = False
                            seg = Segment.__new__(Segment)
                            seg.flow = pk.flow
                            seg.packets = [pk]
                            seg.mode = frags
                            seg.seq = s2
                            seg.end_seq = e2
                            seg.mtus = 1
                            seg.first_sent_at = pk.sent_at
                            seg.flushed_at = 0
                            seg.in_order = True
                            seg.sig = psig
                            seg.sig_key = pk.sig_key
                            seg._payload = ln2
                            seg._closed = pk.forces_flush
                            if idx2 == len(nds):
                                nds.append(seg)
                            else:
                                nds.insert(idx2, seg)
                        if merged2:
                            stats.merges += 1
                            if tracer is not None:
                                tracer.merge(now, entry.key, s2, e2,
                                             scanned2)
                        # refresh_hole_state (a pre-existing hole keeps
                        # its timestamp; sq is known after learning).
                        if nds and nds[0].seq > sq:
                            if entry.hole_since is None:
                                entry.hole_since = now
                        else:
                            entry.hole_since = None
                        if san is not None:
                            san.check_ofo(entry)
                    # -- _event_checks, inlined (Table 2 rows 1-4) -------
                    while nds:
                        head = nds[0]
                        if head.seq != sq:
                            break
                        if head._payload > seg_budget:
                            reason = segment_full
                        elif head._closed:
                            reason = flags_reason
                        elif len(nds) > 1 and nds[1].seq == head.end_seq:
                            reason = unmergeable
                        else:
                            break
                        # _flush_head: build-up's first event flush is the
                        # phase's exit point (§4.2.2).
                        if san is not None:
                            san.check_event_flush(entry, reason)
                        del nds[0]
                        if entry.phase is buildup:
                            table.move(entry, active, now)
                        if head.end_seq > sq:
                            sq = head.end_seq
                        entry.seq_next = sq
                        entry.flush_timestamp = now
                        deliver_segment(head, reason, now)
                    # _after_flush_transitions.
                    if nds:
                        if nds[0].seq > sq:
                            if entry.hole_since is None:
                                entry.hole_since = now
                        else:
                            entry.hole_since = None
                    else:
                        entry.hole_since = None
                        if entry.phase is active:
                            table.move(entry, post, now)
                    if san is not None:
                        san.check_flow(entry)
                fallback += stop - start
                continue
            entry.last_seen = now
            nodes = entry.ofo.nodes
            sn = entry.seq_next
            phase = entry.phase
            key = entry.key
            in_loop = 0
            scanned_sum = 0
            merges_sum = 0
            dups_sum = 0
            for i in range(start, stop):
                if objs is not None:
                    pk = objs[i]
                    ln = pk.payload_len
                    s = pk.seq
                    sk = pk.sig_key
                    odd = (ln <= 0 or ln > MSS or pk.forces_flush
                           or (sk & ODD_SIG_MASK))
                else:
                    pk = None
                    ln = lens[i]
                    s = seqs[i]
                    sk = scol[i]
                    fl = fcol[i]
                    odd = (ln <= 0 or ln > MSS or (fl & FLUSH_MASK)
                           or (sk & ODD_SIG_MASK))
                if odd or s < sn:
                    # Same inlined receive() body as the run-level punt,
                    # specialized: the entry is known (admission cannot
                    # occur) and the phase is established, so only the
                    # zero-payload passthrough needs separate handling.
                    if pk is None:
                        pk = batch.materialize(i, pool)
                    if tracer is not None:
                        tracer.packet_rx(now, flow, pk.seq, pk.end_seq, ln)
                    if ln == 0:
                        passthrough(pk, now)
                    else:
                        stats.packets += 1
                        entry.last_seen = now
                        receive_established(entry, pk, now)
                        event_checks(entry, now)
                        if san is not None:
                            san.check_flow(entry)
                        sn = entry.seq_next
                        phase = entry.phase
                    fallback += 1
                    continue
                e = s + ln
                if tracer is not None:
                    tracer.packet_rx(now, flow, s, e, ln)
                in_loop += 1
                if phase is post:
                    table.move(entry, active, now)
                    phase = active
                # -- OfoQueue.insert, inlined ----------------------------
                n = len(nodes)
                scanned = 0
                if n == 0:
                    idx = 0
                    pred = None
                    succ = None
                else:
                    last = nodes[-1]
                    if s >= last.seq:
                        idx = n
                        pred = last
                        succ = None
                    else:
                        lo = 0
                        hi = n
                        while lo < hi:
                            mid = (lo + hi) >> 1
                            if nodes[mid].seq <= s:
                                lo = mid + 1
                            else:
                                hi = mid
                        idx = lo
                        rem = n - idx
                        scanned = rem if rem < idx + 1 else idx + 1
                        scanned_sum += scanned
                        pred = nodes[idx - 1] if idx else None
                        succ = nodes[idx]
                if ((pred is not None and s < pred.end_seq)
                        or (succ is not None and e > succ.seq)):
                    # Overlaps buffered bytes: duplicate — deliver for
                    # TCP's DSACK machinery, never buffer twice.
                    dups_sum += 1
                    if pk is None:
                        pk = batch.materialize(i, pool)
                    self._deliver_packet(pk, duplicate, now)
                    if san is not None:
                        san.check_flow(entry)
                    continue
                merged = True
                if (pred is not None and not pred._closed
                        and pred.end_seq == s and pred.sig_key == sk
                        and pred._payload + ln <= max_payload):
                    cls = pred.__class__
                    if pk is not None:
                        sent = pk.sent_at
                        if cls is Segment:
                            pred.packets.append(pk)
                            pred.end_seq = e
                            pred.mtus += 1
                            pred._payload += ln
                            if sent < pred.first_sent_at:
                                pred.first_sent_at = sent
                        else:
                            pred.append(pk)
                    else:
                        sent = tcol[i]
                        if cls is SoaSegment and pred._mat is None:
                            pred._pseq.append(s)
                            pred._plen.append(ln)
                            pred._pflags.append(fl)
                            pred._psent.append(sent)
                            pred.end_seq = e
                            pred.mtus += 1
                            pred._payload += ln
                            if sent < pred.first_sent_at:
                                pred.first_sent_at = sent
                        elif cls is SoaSegment:
                            pred.append_value(s, e, ln, fl, sent)
                        else:
                            pred.append(batch.materialize(i, pool))
                    if (succ is not None and succ.seq == e
                            and succ.sig_key == pred.sig_key
                            and pred._payload + succ._payload <= max_payload):
                        # The append closed the gap to the successor.
                        if pred.__class__ is Segment and succ.__class__ is Segment:
                            pred.packets.extend(succ.packets)
                            pred.end_seq = succ.end_seq
                            pred.mtus += succ.mtus
                            pred._payload += succ._payload
                            pred._closed = succ._closed
                            if succ.first_sent_at < pred.first_sent_at:
                                pred.first_sent_at = succ.first_sent_at
                        else:
                            pred.extend(succ)
                        del nodes[idx]
                elif (succ is not None and succ.seq == e
                        and succ.sig_key == sk
                        and succ._payload + ln <= max_payload):
                    cls = succ.__class__
                    if pk is not None:
                        sent = pk.sent_at
                        if cls is Segment:
                            succ.packets.insert(0, pk)
                            succ.seq = s
                            succ.mtus += 1
                            succ._payload += ln
                            if sent < succ.first_sent_at:
                                succ.first_sent_at = sent
                        else:
                            succ.prepend(pk)
                    else:
                        sent = tcol[i]
                        if cls is SoaSegment and succ._mat is None:
                            succ._pseq.insert(0, s)
                            succ._plen.insert(0, ln)
                            succ._pflags.insert(0, fl)
                            succ._psent.insert(0, sent)
                            succ.seq = s
                            succ.mtus += 1
                            succ._payload += ln
                            if sent < succ.first_sent_at:
                                succ.first_sent_at = sent
                        elif cls is SoaSegment:
                            succ.prepend_value(s, ln, fl, sent)
                        else:
                            succ.prepend(batch.materialize(i, pool))
                else:
                    merged = False
                    if pk is not None:
                        seg = Segment.__new__(Segment)
                        seg.flow = pk.flow
                        seg.packets = [pk]
                        seg.mode = frags
                        seg.seq = s
                        seg.end_seq = e
                        seg.mtus = 1
                        seg.first_sent_at = pk.sent_at
                        seg.flushed_at = 0
                        seg.in_order = True
                        seg.sig = pk.sig
                        seg.sig_key = sk
                        seg._payload = ln
                        seg._closed = False
                    else:
                        seg = SoaSegment.open(flow, s, e, ln, fl, tcol[i])
                    if idx == len(nodes):
                        nodes.append(seg)
                    else:
                        nodes.insert(idx, seg)
                if merged:
                    merges_sum += 1
                    if tracer is not None:
                        tracer.merge(now, key, s, e, scanned)
                # -- refresh_hole_state (pre-event-check, as in
                # _buffer_packet: a pre-existing hole keeps its timestamp)
                if nodes[0].seq > sn:
                    if entry.hole_since is None:
                        entry.hole_since = now
                else:
                    entry.hole_since = None
                if san is not None:
                    san.check_ofo(entry)
                # -- event-driven flush checks (Table 2 rows 1-4) --------
                while nodes:
                    head = nodes[0]
                    if head.seq != sn:
                        break
                    if head._payload > seg_budget:
                        reason = segment_full
                    elif head._closed:
                        reason = flags_reason
                    elif len(nodes) > 1 and nodes[1].seq == head.end_seq:
                        reason = unmergeable
                    else:
                        break
                    if san is not None:
                        san.check_event_flush(entry, reason)
                    del nodes[0]
                    sn = head.end_seq
                    entry.seq_next = sn
                    entry.flush_timestamp = now
                    deliver_segment(head, reason, now)
                # -- after-flush transitions -----------------------------
                if nodes:
                    if nodes[0].seq > sn:
                        if entry.hole_since is None:
                            entry.hole_since = now
                    else:
                        entry.hole_since = None
                else:
                    entry.hole_since = None
                    if phase is active:
                        # Queue drained by in-sequence flushing: park on
                        # the inactive list (§4.2.4).
                        table.move(entry, post, now)
                        phase = post
                if san is not None:
                    san.check_flow(entry)
            if in_loop:
                stats.packets += in_loop
                stats.nodes_scanned += scanned_sum
                stats.merges += merges_sum
                stats.duplicates += dups_sum
                fast += in_loop
        self.soa_fast_packets += fast
        self.soa_fallback_packets += fallback

    def _admit_new_flow(self, packet: Packet, now: int) -> FlowEntry:
        """Initial phase: create the entry, evicting if the table is full."""
        if self.table.full:
            self._evict(self.table.pick_victim(self.config.eviction_policy), now)
        entry = FlowEntry(packet.flow, now,
                          max_payload=self.config.max_segment_bytes)
        self.stats.flows_created += 1
        # The initial phase is transient: the entry is stored already in the
        # build-up phase, on the active list (Figure 5).  With the build-up
        # ablation disabled, seq_next pins to the first packet seen and the
        # flow starts merging immediately — if that packet was out of order,
        # the rest of its burst gets flushed prematurely (Remark 1).
        if self.config.enable_buildup:
            entry.phase = Phase.BUILD_UP
        else:
            entry.phase = Phase.ACTIVE_MERGE
            entry.seq_next = packet.seq
        self.table.add(entry)
        if self.tracer is not None:
            self.tracer.phase(now, entry.key, Phase.INITIAL, entry.phase)
        return entry

    def _receive_established(self, entry: FlowEntry, packet: Packet, now: int) -> None:
        """Active-merge / post-merge / loss-recovery packet handling."""
        assert entry.seq_next is not None
        if packet.end_seq <= entry.seq_next:
            # Entirely before seq_next: those bytes were already flushed, so
            # this is likely a retransmission — deliver it immediately
            # (Figure 6) and let TCP sort it out.
            self._deliver_packet(packet, FlushReason.RETRANSMISSION, now)
            self._maybe_fill_hole(entry, packet, now)
            return

        if packet.seq < entry.seq_next:
            # Straddles seq_next: partially old, partially new.  Best-effort:
            # deliver immediately (TCP trims the overlap) and account the new
            # bytes as flushed.
            self._deliver_packet(packet, FlushReason.RETRANSMISSION, now)
            self._maybe_fill_hole(entry, packet, now)
            entry.advance_seq_next(packet.end_seq)
            # Advancing seq_next may leave buffered nodes starting below it;
            # such nodes would be neither "in sequence" nor "a hole" and no
            # timeout would ever release them — flush them now.
            self._normalize_queue(entry, now)
            entry.refresh_hole_state(now)
            return

        if entry.phase is Phase.POST_MERGE:
            # Fresh data after a quiescent period: back to active merging.
            self.table.move(entry, Phase.ACTIVE_MERGE, now)
        self._buffer_packet(entry, packet, now)

    def _maybe_fill_hole(self, entry: FlowEntry, packet: Packet, now: int) -> None:
        """Loss recovery exit: the retransmission covered ``lost_seq``."""
        if (
            entry.phase is Phase.LOSS_RECOVERY
            and entry.lost_seq is not None
            and packet.seq <= entry.lost_seq < packet.end_seq
        ):
            entry.lost_seq = None
            self.table.move(entry, Phase.ACTIVE_MERGE, now)

    def _normalize_queue(self, entry: FlowEntry, now: int) -> None:
        """Restore the invariant that every buffered node starts at or after
        ``seq_next`` by flushing the ones that no longer do."""
        assert entry.seq_next is not None
        while entry.ofo.head is not None and entry.ofo.head.seq < entry.seq_next:
            node = entry.ofo.pop_head()
            if node.end_seq <= entry.seq_next:
                # Entirely behind the watermark: stale duplicate bytes.
                self._deliver_segment(node, FlushReason.DUPLICATE, now)
            else:
                # Carries fresh bytes past the watermark: deliver the whole
                # node (TCP trims the overlap) and advance.
                entry.advance_seq_next(node.end_seq)
                self._deliver_segment(node, FlushReason.RETRANSMISSION, now)
        if not entry.ofo and entry.phase is Phase.ACTIVE_MERGE:
            self.table.move(entry, Phase.POST_MERGE, now)

    def _buffer_packet(self, entry: FlowEntry, packet: Packet, now: int) -> None:
        """Insert into the flow's OOO queue, merging where possible."""
        result = entry.ofo.insert(packet)
        self.stats.nodes_scanned += result.scanned
        self.accountant.on_node_scan(result.scanned)
        if result.duplicate:
            # Bytes already buffered: never hold the copy (memory safety);
            # hand it up so TCP's DSACK machinery sees it.
            self.stats.duplicates += 1
            self._deliver_packet(packet, FlushReason.DUPLICATE, now)
            return
        if result.merged:
            self.stats.merges += 1
            self.accountant.on_merge(BatchingMode.FRAGS_ARRAY)
            if self.tracer is not None:
                self.tracer.merge(now, entry.key, packet.seq, packet.end_seq,
                                  result.scanned)
        entry.refresh_hole_state(now)
        if self.sanitizer is not None:
            self.sanitizer.check_ofo(entry)

    # -- event-driven flush checks (rows 1-4 of Table 2) ----------------------

    def _event_checks(self, entry: FlowEntry, now: int) -> None:
        """Flush in-sequence head runs that meet an event-driven condition.

        Runs after every packet ("in-sequence packet flushing decisions are
        made after merging every packet", Figure 2 caption).
        """
        while True:
            head = entry.ofo.head
            if head is None or head.seq != entry.seq_next:
                break
            if head.payload_len + MSS > self.config.max_segment_bytes:
                reason = FlushReason.SEGMENT_FULL
            elif head.closed:
                reason = FlushReason.FLAGS
            elif len(entry.ofo.nodes) > 1 and entry.ofo.nodes[1].seq == head.end_seq:
                # Contiguous with the next run yet unmerged: header mismatch
                # (TCP options / CE marks) — flush rather than delay.
                reason = FlushReason.UNMERGEABLE
            else:
                break
            self._flush_head(entry, reason, now)
        self._after_flush_transitions(entry, now)

    def _flush_head(self, entry: FlowEntry, reason: FlushReason, now: int) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_event_flush(entry, reason)
        node = entry.ofo.pop_head()
        if entry.phase is Phase.BUILD_UP:
            self.table.move(entry, Phase.ACTIVE_MERGE, now)
        entry.advance_seq_next(node.end_seq)
        entry.flush_timestamp = now
        self._deliver_segment(node, reason, now)

    def _after_flush_transitions(self, entry: FlowEntry, now: int) -> None:
        entry.refresh_hole_state(now)
        if not entry.ofo and entry.phase is Phase.ACTIVE_MERGE:
            # Queue drained by in-sequence flushing: park on the inactive
            # list, the preferred eviction pool (§4.2.4).
            self.table.move(entry, Phase.POST_MERGE, now)

    # -- timeout checks (rows 5-6 of Table 2) --------------------------------

    def poll_complete(self, now: int) -> None:
        """End of a NAPI polling cycle: run the timeout checks (§4.1)."""
        self.accountant.on_poll()
        self.check_timeouts(now)
        if self.sanitizer is not None:
            self.sanitizer.check_table(self.table)

    def check_timeouts(self, now: int) -> None:
        """inseq/ofo timeout sweep — poll completions and the hrtimer."""
        ofo_timeout = self.config.ofo_timeout
        inseq_timeout = self.config.inseq_timeout
        # Side-effect-free pre-scan: most sweeps fire nothing, so find out
        # with plain attribute reads before paying for the snapshot list
        # (needed below because firing re-homes entries mid-iteration).
        # The pre-scan over-approximates "due" (it ignores the hole/inseq
        # precedence) — a false positive just runs the exact loop, which
        # then fires nothing.
        due = False
        for entries in self.table.deadline_lists():
            for entry in entries:
                hole_since = entry.hole_since
                if hole_since is not None and now - hole_since >= ofo_timeout:
                    due = True
                    break
                nodes = entry.ofo.nodes
                if (nodes and nodes[0].seq == entry.seq_next
                        and now - entry.flush_timestamp >= inseq_timeout):
                    due = True
                    break
            if due:
                break
        if not due:
            return
        for entry in list(self.table.iter_with_deadlines()):
            if (
                entry.hole_since is not None
                and now - entry.hole_since >= ofo_timeout
            ):
                self._ofo_timeout_fire(entry, now)
            elif (
                entry.head_in_sequence
                and now - entry.flush_timestamp >= inseq_timeout
            ):
                self._inseq_timeout_fire(entry, now)

    def _inseq_timeout_fire(self, entry: FlowEntry, now: int) -> None:
        """Flush the in-order run at the head — don't delay it any longer."""
        assert entry.seq_next is not None
        if self.sanitizer is not None:
            self.sanitizer.check_inseq_timeout(entry, now,
                                               self.config.inseq_timeout)
        run = entry.ofo.pop_inseq_run(entry.seq_next)
        if not run:
            return
        if entry.phase is Phase.BUILD_UP:
            self.table.move(entry, Phase.ACTIVE_MERGE, now)
        for node in run:
            entry.advance_seq_next(node.end_seq)
            self._deliver_segment(node, FlushReason.INSEQ_TIMEOUT, now)
        entry.flush_timestamp = now
        self._after_flush_transitions(entry, now)

    def _ofo_timeout_fire(self, entry: FlowEntry, now: int) -> None:
        """The missing packet is presumed lost: flush everything, enter loss
        recovery (§4.2.5, Figure 7)."""
        assert entry.seq_next is not None
        if self.sanitizer is not None:
            self.sanitizer.check_ofo_timeout(entry, now,
                                             self.config.ofo_timeout)
        nodes = entry.ofo.pop_all()
        if entry.phase is not Phase.LOSS_RECOVERY:
            # Remember only the *first* lost packet (best-effort design).
            entry.lost_seq = entry.seq_next
        for node in nodes:
            entry.advance_seq_next(node.end_seq)
            self._deliver_segment(node, FlushReason.OFO_TIMEOUT, now)
        entry.flush_timestamp = now
        entry.hole_since = None
        if entry.phase is not Phase.LOSS_RECOVERY:
            self.table.move(entry, Phase.LOSS_RECOVERY, now)

    def next_deadline(self) -> Optional[int]:
        """Earliest pending inseq/ofo deadline, for arming the hrtimer."""
        deadline: Optional[int] = None
        for entry in self.table.iter_with_deadlines():
            if entry.head_in_sequence:
                candidate = entry.flush_timestamp + self.config.inseq_timeout
                if deadline is None or candidate < deadline:
                    deadline = candidate
            if entry.hole_since is not None:
                candidate = entry.hole_since + self.config.ofo_timeout
                if deadline is None or candidate < deadline:
                    deadline = candidate
        return deadline

    # -- delivery interposition (Table 2 reason validity) ---------------------

    def _deliver_segment(self, segment: Segment, reason: FlushReason,
                         now: int) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_flush_reason(segment.flow, reason)
        super()._deliver_segment(segment, reason, now)

    # -- eviction and teardown ------------------------------------------------

    def _evict(self, entry: FlowEntry, now: int) -> None:
        """Flush all of a victim's packets and drop its state (§4.3)."""
        if self.sanitizer is not None:
            self.sanitizer.check_eviction(self.table, entry,
                                          self.config.eviction_policy)
        self.stats.record_eviction(entry.phase)
        if self.tracer is not None:
            self.tracer.eviction(now, entry.key, entry.phase)
        for node in entry.ofo.pop_all():
            self._deliver_segment(node, FlushReason.EVICTION, now)
        self.table.remove(entry)

    def flush_all(self, now: int) -> None:
        """Drain every flow (experiment teardown); the table empties."""
        for entry in list(self.table):
            for node in entry.ofo.pop_all():
                self._deliver_segment(node, FlushReason.SHUTDOWN, now)
            self.table.remove(entry)

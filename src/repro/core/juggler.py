"""The Juggler GRO engine (§4 of the paper).

One instance serves one NIC receive queue, exactly as the kernel patch
instantiates its data structures per-queue.  The engine:

* keys flows in a capacity-bounded :class:`~repro.core.gro_table.GroTable`;
* walks each flow through the five-phase lifecycle of Figure 5;
* buffers out-of-order packets in per-flow :class:`~repro.core.ofo_queue.OfoQueue`
  runs, merging into frags[]-style segments;
* flushes on the Table 2 conditions — event-driven checks after every merge,
  timeout checks at polling completion and from the per-table hrtimer;
* evicts aggressively in the §4.3 preference order when the table fills.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis import runtime as sanitize_runtime
from repro.core.base import DeliverFn, GroEngine
from repro.core.config import JugglerConfig
from repro.core.flow_entry import FlowEntry
from repro.core.flush import FlushReason
from repro.core.gro_table import GroTable
from repro.core.phases import Phase
from repro.cpu.accounting import GroCpuAccountant
from repro.net.constants import MSS
from repro.net.packet import Packet
from repro.net.segment import BatchingMode, Segment


class JugglerGRO(GroEngine):
    """Reordering-resilient GRO for one RX queue."""

    def __init__(
        self,
        deliver: DeliverFn,
        config: Optional[JugglerConfig] = None,
        accountant: Optional[GroCpuAccountant] = None,
    ):
        super().__init__(deliver, accountant)
        self.config = config if config is not None else JugglerConfig()
        self.table = GroTable(self.config.table_capacity)
        self.table.tracer = self.tracer
        #: None = sanitizing disabled (the common case); every hook below
        #: guards on this, so the hot path pays one identity test and
        #: allocates nothing — the same contract as ``self.tracer``.
        self.sanitizer = sanitize_runtime.current()
        self.table.sanitizer = self.sanitizer

    def attach_tracer(self, tracer) -> None:
        """Enable tracing on engine and table together."""
        super().attach_tracer(tracer)
        self.table.tracer = tracer

    def attach_sanitizer(self, sanitizer) -> None:
        """Enable (or with None, disable) JSAN on engine and table."""
        self.sanitizer = sanitizer
        self.table.sanitizer = sanitizer

    # -- public state inspection (Figs. 15, 16 sample these) ----------------

    @property
    def active_list_len(self) -> int:
        """Flows currently in build-up or active merging."""
        return self.table.active_len

    @property
    def inactive_list_len(self) -> int:
        """Flows parked in post-merge."""
        return self.table.inactive_len

    @property
    def loss_recovery_list_len(self) -> int:
        """Flows awaiting a presumed-lost packet."""
        return self.table.loss_recovery_len

    @property
    def buffered_bytes(self) -> int:
        """Payload bytes currently held across all OOO queues.

        Bounded by design: at most ``table_capacity`` flows are tracked, and
        each flow's queue drains within ``ofo_timeout`` — the §3.3 defence
        against memory-exhaustion attacks.
        """
        return sum(entry.ofo.buffered_bytes for entry in self.table)

    @property
    def resident_state_bytes(self) -> int:
        """Rough kernel-memory footprint of the flow table (cf. PrestoGRO):
        ~96 bytes of flow_entry + list linkage per tracked flow, plus the
        buffered payload."""
        return 96 * len(self.table) + self.buffered_bytes

    # -- the receive path ----------------------------------------------------

    def receive(self, packet: Packet, now: int) -> None:
        """Per-packet entry point, called from the NAPI poll loop."""
        self.accountant.on_rx_packet()
        self.accountant.on_gro_packet()
        tracer = self.tracer
        if tracer is not None:
            tracer.packet_rx(now, packet.flow, packet.seq, packet.end_seq,
                             packet.payload_len)

        if (packet.payload_len == 0
                or packet.flow.proto not in self.config.protocols):
            # Pure ACKs are never batched, and traffic from unconfigured
            # transports is not Juggler's business (§4: "we primarily focus
            # on the handling of TCP traffic") — both bypass the flow table.
            self._passthrough(packet, now)
            return

        self.stats.packets += 1
        entry = self.table.lookup(packet.flow)
        if entry is None:
            entry = self._admit_new_flow(packet, now)
        entry.last_seen = now

        if entry.phase is Phase.BUILD_UP:
            # seq_next may still move backwards while we learn it (§4.2.2).
            entry.learn_seq_next(packet.seq)
            self._buffer_packet(entry, packet, now)
        else:
            self._receive_established(entry, packet, now)

        self._event_checks(entry, now)
        if self.sanitizer is not None:
            self.sanitizer.check_flow(entry)

    def receive_batch(self, packets, now: int) -> None:
        """One NAPI poll's packets through the same per-packet pipeline.

        Mirrors :meth:`receive` exactly (same calls, same order) with the
        engine-level attribute lookups hoisted out of the loop — at tens of
        packets per poll that is the receive path's dominant interpreter
        overhead.  Any behavioural change must be made in both places.
        """
        accountant = self.accountant
        tracer = self.tracer
        sanitizer = self.sanitizer
        stats = self.stats
        lookup = self.table.lookup
        protocols = self.config.protocols
        buildup = Phase.BUILD_UP
        for packet in packets:
            accountant.on_rx_packet()
            accountant.on_gro_packet()
            if tracer is not None:
                tracer.packet_rx(now, packet.flow, packet.seq,
                                 packet.end_seq, packet.payload_len)
            if (packet.payload_len == 0
                    or packet.flow.proto not in protocols):
                self._passthrough(packet, now)
                continue
            stats.packets += 1
            entry = lookup(packet.flow)
            if entry is None:
                entry = self._admit_new_flow(packet, now)
            entry.last_seen = now
            if entry.phase is buildup:
                entry.learn_seq_next(packet.seq)
                self._buffer_packet(entry, packet, now)
            else:
                self._receive_established(entry, packet, now)
            self._event_checks(entry, now)
            if sanitizer is not None:
                sanitizer.check_flow(entry)

    def _admit_new_flow(self, packet: Packet, now: int) -> FlowEntry:
        """Initial phase: create the entry, evicting if the table is full."""
        if self.table.full:
            self._evict(self.table.pick_victim(self.config.eviction_policy), now)
        entry = FlowEntry(packet.flow, now,
                          max_payload=self.config.max_segment_bytes)
        self.stats.flows_created += 1
        # The initial phase is transient: the entry is stored already in the
        # build-up phase, on the active list (Figure 5).  With the build-up
        # ablation disabled, seq_next pins to the first packet seen and the
        # flow starts merging immediately — if that packet was out of order,
        # the rest of its burst gets flushed prematurely (Remark 1).
        if self.config.enable_buildup:
            entry.phase = Phase.BUILD_UP
        else:
            entry.phase = Phase.ACTIVE_MERGE
            entry.seq_next = packet.seq
        self.table.add(entry)
        if self.tracer is not None:
            self.tracer.phase(now, entry.key, Phase.INITIAL, entry.phase)
        return entry

    def _receive_established(self, entry: FlowEntry, packet: Packet, now: int) -> None:
        """Active-merge / post-merge / loss-recovery packet handling."""
        assert entry.seq_next is not None
        if packet.end_seq <= entry.seq_next:
            # Entirely before seq_next: those bytes were already flushed, so
            # this is likely a retransmission — deliver it immediately
            # (Figure 6) and let TCP sort it out.
            self._deliver_packet(packet, FlushReason.RETRANSMISSION, now)
            self._maybe_fill_hole(entry, packet, now)
            return

        if packet.seq < entry.seq_next:
            # Straddles seq_next: partially old, partially new.  Best-effort:
            # deliver immediately (TCP trims the overlap) and account the new
            # bytes as flushed.
            self._deliver_packet(packet, FlushReason.RETRANSMISSION, now)
            self._maybe_fill_hole(entry, packet, now)
            entry.advance_seq_next(packet.end_seq)
            # Advancing seq_next may leave buffered nodes starting below it;
            # such nodes would be neither "in sequence" nor "a hole" and no
            # timeout would ever release them — flush them now.
            self._normalize_queue(entry, now)
            entry.refresh_hole_state(now)
            return

        if entry.phase is Phase.POST_MERGE:
            # Fresh data after a quiescent period: back to active merging.
            self.table.move(entry, Phase.ACTIVE_MERGE, now)
        self._buffer_packet(entry, packet, now)

    def _maybe_fill_hole(self, entry: FlowEntry, packet: Packet, now: int) -> None:
        """Loss recovery exit: the retransmission covered ``lost_seq``."""
        if (
            entry.phase is Phase.LOSS_RECOVERY
            and entry.lost_seq is not None
            and packet.seq <= entry.lost_seq < packet.end_seq
        ):
            entry.lost_seq = None
            self.table.move(entry, Phase.ACTIVE_MERGE, now)

    def _normalize_queue(self, entry: FlowEntry, now: int) -> None:
        """Restore the invariant that every buffered node starts at or after
        ``seq_next`` by flushing the ones that no longer do."""
        assert entry.seq_next is not None
        while entry.ofo.head is not None and entry.ofo.head.seq < entry.seq_next:
            node = entry.ofo.pop_head()
            if node.end_seq <= entry.seq_next:
                # Entirely behind the watermark: stale duplicate bytes.
                self._deliver_segment(node, FlushReason.DUPLICATE, now)
            else:
                # Carries fresh bytes past the watermark: deliver the whole
                # node (TCP trims the overlap) and advance.
                entry.advance_seq_next(node.end_seq)
                self._deliver_segment(node, FlushReason.RETRANSMISSION, now)
        if not entry.ofo and entry.phase is Phase.ACTIVE_MERGE:
            self.table.move(entry, Phase.POST_MERGE, now)

    def _buffer_packet(self, entry: FlowEntry, packet: Packet, now: int) -> None:
        """Insert into the flow's OOO queue, merging where possible."""
        result = entry.ofo.insert(packet)
        self.stats.nodes_scanned += result.scanned
        self.accountant.on_node_scan(result.scanned)
        if result.duplicate:
            # Bytes already buffered: never hold the copy (memory safety);
            # hand it up so TCP's DSACK machinery sees it.
            self.stats.duplicates += 1
            self._deliver_packet(packet, FlushReason.DUPLICATE, now)
            return
        if result.merged:
            self.stats.merges += 1
            self.accountant.on_merge(BatchingMode.FRAGS_ARRAY)
            if self.tracer is not None:
                self.tracer.merge(now, entry.key, packet.seq, packet.end_seq,
                                  result.scanned)
        entry.refresh_hole_state(now)
        if self.sanitizer is not None:
            self.sanitizer.check_ofo(entry)

    # -- event-driven flush checks (rows 1-4 of Table 2) ----------------------

    def _event_checks(self, entry: FlowEntry, now: int) -> None:
        """Flush in-sequence head runs that meet an event-driven condition.

        Runs after every packet ("in-sequence packet flushing decisions are
        made after merging every packet", Figure 2 caption).
        """
        while True:
            head = entry.ofo.head
            if head is None or head.seq != entry.seq_next:
                break
            if head.payload_len + MSS > self.config.max_segment_bytes:
                reason = FlushReason.SEGMENT_FULL
            elif head.closed:
                reason = FlushReason.FLAGS
            elif len(entry.ofo.nodes) > 1 and entry.ofo.nodes[1].seq == head.end_seq:
                # Contiguous with the next run yet unmerged: header mismatch
                # (TCP options / CE marks) — flush rather than delay.
                reason = FlushReason.UNMERGEABLE
            else:
                break
            self._flush_head(entry, reason, now)
        self._after_flush_transitions(entry, now)

    def _flush_head(self, entry: FlowEntry, reason: FlushReason, now: int) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_event_flush(entry, reason)
        node = entry.ofo.pop_head()
        if entry.phase is Phase.BUILD_UP:
            self.table.move(entry, Phase.ACTIVE_MERGE, now)
        entry.advance_seq_next(node.end_seq)
        entry.flush_timestamp = now
        self._deliver_segment(node, reason, now)

    def _after_flush_transitions(self, entry: FlowEntry, now: int) -> None:
        entry.refresh_hole_state(now)
        if not entry.ofo and entry.phase is Phase.ACTIVE_MERGE:
            # Queue drained by in-sequence flushing: park on the inactive
            # list, the preferred eviction pool (§4.2.4).
            self.table.move(entry, Phase.POST_MERGE, now)

    # -- timeout checks (rows 5-6 of Table 2) --------------------------------

    def poll_complete(self, now: int) -> None:
        """End of a NAPI polling cycle: run the timeout checks (§4.1)."""
        self.accountant.on_poll()
        self.check_timeouts(now)
        if self.sanitizer is not None:
            self.sanitizer.check_table(self.table)

    def check_timeouts(self, now: int) -> None:
        """inseq/ofo timeout sweep — poll completions and the hrtimer."""
        for entry in list(self.table.iter_with_deadlines()):
            if (
                entry.hole_since is not None
                and now - entry.hole_since >= self.config.ofo_timeout
            ):
                self._ofo_timeout_fire(entry, now)
            elif (
                entry.head_in_sequence
                and now - entry.flush_timestamp >= self.config.inseq_timeout
            ):
                self._inseq_timeout_fire(entry, now)

    def _inseq_timeout_fire(self, entry: FlowEntry, now: int) -> None:
        """Flush the in-order run at the head — don't delay it any longer."""
        assert entry.seq_next is not None
        if self.sanitizer is not None:
            self.sanitizer.check_inseq_timeout(entry, now,
                                               self.config.inseq_timeout)
        run = entry.ofo.pop_inseq_run(entry.seq_next)
        if not run:
            return
        if entry.phase is Phase.BUILD_UP:
            self.table.move(entry, Phase.ACTIVE_MERGE, now)
        for node in run:
            entry.advance_seq_next(node.end_seq)
            self._deliver_segment(node, FlushReason.INSEQ_TIMEOUT, now)
        entry.flush_timestamp = now
        self._after_flush_transitions(entry, now)

    def _ofo_timeout_fire(self, entry: FlowEntry, now: int) -> None:
        """The missing packet is presumed lost: flush everything, enter loss
        recovery (§4.2.5, Figure 7)."""
        assert entry.seq_next is not None
        if self.sanitizer is not None:
            self.sanitizer.check_ofo_timeout(entry, now,
                                             self.config.ofo_timeout)
        nodes = entry.ofo.pop_all()
        if entry.phase is not Phase.LOSS_RECOVERY:
            # Remember only the *first* lost packet (best-effort design).
            entry.lost_seq = entry.seq_next
        for node in nodes:
            entry.advance_seq_next(node.end_seq)
            self._deliver_segment(node, FlushReason.OFO_TIMEOUT, now)
        entry.flush_timestamp = now
        entry.hole_since = None
        if entry.phase is not Phase.LOSS_RECOVERY:
            self.table.move(entry, Phase.LOSS_RECOVERY, now)

    def next_deadline(self) -> Optional[int]:
        """Earliest pending inseq/ofo deadline, for arming the hrtimer."""
        deadline: Optional[int] = None
        for entry in self.table.iter_with_deadlines():
            if entry.head_in_sequence:
                candidate = entry.flush_timestamp + self.config.inseq_timeout
                if deadline is None or candidate < deadline:
                    deadline = candidate
            if entry.hole_since is not None:
                candidate = entry.hole_since + self.config.ofo_timeout
                if deadline is None or candidate < deadline:
                    deadline = candidate
        return deadline

    # -- delivery interposition (Table 2 reason validity) ---------------------

    def _deliver_segment(self, segment: Segment, reason: FlushReason,
                         now: int) -> None:
        if self.sanitizer is not None:
            self.sanitizer.check_flush_reason(segment.flow, reason)
        super()._deliver_segment(segment, reason, now)

    # -- eviction and teardown ------------------------------------------------

    def _evict(self, entry: FlowEntry, now: int) -> None:
        """Flush all of a victim's packets and drop its state (§4.3)."""
        if self.sanitizer is not None:
            self.sanitizer.check_eviction(self.table, entry,
                                          self.config.eviction_policy)
        self.stats.record_eviction(entry.phase)
        if self.tracer is not None:
            self.tracer.eviction(now, entry.key, entry.phase)
        for node in entry.ofo.pop_all():
            self._deliver_segment(node, FlushReason.EVICTION, now)
        self.table.remove(entry)

    def flush_all(self, now: int) -> None:
        """Drain every flow (experiment teardown); the table empties."""
        for entry in list(self.table):
            for node in entry.ofo.pop_all():
                self._deliver_segment(node, FlushReason.SHUTDOWN, now)
            self.table.remove(entry)

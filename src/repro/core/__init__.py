"""The paper's contribution: the Juggler GRO engine and its baselines.

Everything in this package is a pure algorithm over ``(packet, timestamp)``
inputs — no dependence on the simulator — so the reordering logic can be
unit-tested, property-tested and reused standalone, exactly as the kernel
patch sits behind the GRO API.

Engines share one interface (:class:`~repro.core.base.GroEngine`):

* :class:`JugglerGRO` — the paper's design: per-flow OOO queues, five-phase
  lifecycle, bounded ``gro_table`` with aggressive eviction (§4).
* :class:`StandardGRO` — the vanilla kernel baseline: in-sequence merging
  only, everything flushed at every polling completion (§3.1).
* :class:`ChainedGRO` — the rejected alternative from §3.1 that batches
  regardless of order into linked-list chains (50% extra CPU).
* :class:`PrestoGRO` — a Presto-style OOO buffer that keeps state for every
  connection with no eviction (§6, related work).
"""

from repro.core.config import JugglerConfig
from repro.core.phases import Phase
from repro.core.flush import FlushReason
from repro.core.stats import GroStats
from repro.core.ofo_queue import OfoQueue
from repro.core.flow_entry import FlowEntry
from repro.core.gro_table import GroTable
from repro.core.base import GroEngine
from repro.core.juggler import JugglerGRO
from repro.core.standard_gro import StandardGRO
from repro.core.chained_gro import ChainedGRO
from repro.core.presto_gro import PrestoGRO

__all__ = [
    "JugglerConfig",
    "Phase",
    "FlushReason",
    "GroStats",
    "OfoQueue",
    "FlowEntry",
    "GroTable",
    "GroEngine",
    "JugglerGRO",
    "StandardGRO",
    "ChainedGRO",
    "PrestoGRO",
]

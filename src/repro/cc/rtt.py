"""The RFC 6298 RTT estimator, shared by every congestion-control policy.

Extracted verbatim from the pre-split ``TcpSender._sample_rtt`` /
``_rto_value`` arithmetic: integer EWMAs (``srtt = (7*srtt + rtt) // 8``,
``rttvar = (3*rttvar + |err|) // 4``) and the clamped ``srtt + 4*rttvar``
RTO with exponential backoff applied by the caller.  Keeping the arithmetic
integral (floor division, nanoseconds end to end) is what lets the sender
refactor stay byte-identical: the estimator produces the same values, on
the same ACKs, as the inlined code did.

Rate-based policies (BBR) additionally need the *latest* raw sample and a
windowed minimum (RTprop); both live here so every policy reads one clock.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


class RttEstimator:
    """RFC 6298 smoothed RTT / variance, plus BBR's min-RTT window."""

    __slots__ = ("srtt", "rttvar", "latest", "samples", "_min_window")

    def __init__(self) -> None:
        #: Smoothed RTT in ns; None until the first sample.
        self.srtt: Optional[int] = None
        #: RTT variance in ns (0 until the first sample).
        self.rttvar = 0
        #: Most recent raw sample in ns; None until the first sample.
        self.latest: Optional[int] = None
        #: Total samples absorbed.
        self.samples = 0
        #: (taken_at, rtt) pairs backing :meth:`min_rtt`, pruned lazily.
        self._min_window: List[Tuple[int, int]] = []

    def sample(self, rtt: int, now: int = 0) -> None:
        """Absorb one RTT measurement taken at simulation time ``now``."""
        self.latest = rtt
        self.samples += 1
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt // 2
        else:
            err = abs(rtt - self.srtt)
            self.rttvar = (3 * self.rttvar + err) // 4
            self.srtt = (7 * self.srtt + rtt) // 8
        # Maintain a monotonic deque of candidate minima for min_rtt().
        window = self._min_window
        while window and window[-1][1] >= rtt:
            window.pop()
        window.append((now, rtt))

    def min_rtt(self, now: int, horizon: int) -> Optional[int]:
        """The smallest sample seen within the last ``horizon`` ns."""
        window = self._min_window
        while window and window[0][0] < now - horizon:
            window.pop(0)
        if not window:
            return self.latest
        return window[0][1]

    def rto(self, *, min_rto: int, max_rto: int, initial_rtt: int,
            backoff: int = 1) -> int:
        """The retransmission timeout, clamped and backed off.

        Mirrors the historical ``TcpSender._rto_value``: before any sample
        the base is ``2 * initial_rtt``; afterwards ``srtt + 4*rttvar``;
        the base clamps to [min_rto, max_rto] *before* the backoff
        multiplier, and the product clamps to max_rto again.
        """
        if self.srtt is None:
            base = 2 * initial_rtt
        else:
            base = self.srtt + 4 * self.rttvar
        base = max(min_rto, min(base, max_rto))
        return min(base * backoff, max_rto)

"""BBRv1: model-based congestion control (startup/drain/probe_bw/probe_rtt).

Where the loss-based policies infer congestion from duplicate ACKs —
exactly the signal packet reordering forges — BBR builds an explicit model
of the path: the windowed-max *bottleneck bandwidth* from delivery-rate
samples (:mod:`repro.cc.rate`) and the windowed-min *round-trip propagation
time* from the shared RFC 6298 estimator.  The sender paces at
``pacing_gain × BtlBw`` (enforced by the sender's timer-wheel wakeups
between bursts) and caps inflight at ``cwnd_gain × BDP``.  Duplicate ACKs
and SACK holes still trigger the mechanism's retransmissions, but the
*rate* barely moves — which is precisely the property the cc × reordering
campaign family measures against Reno's dupACK fragility.

The state machine follows the BBR draft (and the net-rl ``BBRv1``
exemplar): STARTUP at 2/ln2 gain until the bandwidth filter plateaus for
three rounds, DRAIN below unity gain until inflight falls to one BDP,
then PROBE_BW's eight-phase gain cycle, with PROBE_RTT visits when the
RTprop sample goes stale.
"""

from __future__ import annotations

from typing import Optional

from repro.cc.base import CongestionControl
from repro.cc.rate import DeliveryRateSampler, WindowedMax
from repro.net.constants import MSS
from repro.sim.time import MS, SEC

#: 2/ln2 — fills the pipe in the same number of RTTs as slow start.
STARTUP_GAIN = 2.885
DRAIN_GAIN = 1.0 / STARTUP_GAIN
#: PROBE_BW's gain cycle: probe up, drain the queue, then cruise.
PROBE_BW_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
#: Bandwidth max-filter window, in packet-timed rounds.
BW_WINDOW_ROUNDS = 10
#: RTprop min-filter window and PROBE_RTT dwell time.
RTPROP_WINDOW = 10 * SEC
PROBE_RTT_DURATION = 200 * MS
#: Floor that keeps ACK clocking alive through PROBE_RTT.
MIN_CWND = 4 * MSS


class BbrV1CC(CongestionControl):
    """BBRv1 over the delivery-rate sampler and the shared RTT estimator."""

    name = "bbr"

    def __init__(self, config, rtt, *, tracer=None, flow=None):
        super().__init__(config, rtt, tracer=tracer, flow=flow)
        self.sampler = DeliveryRateSampler()
        self.bw_filter = WindowedMax(BW_WINDOW_ROUNDS)
        self._state = "startup"
        self.pacing_gain = STARTUP_GAIN
        self.cwnd_gain = STARTUP_GAIN
        #: Packet-timed round counter and the seq that closes the round.
        self.round_count = 0
        self._round_end_seq = 0
        # STARTUP plateau detection.
        self.filled_pipe = False
        self._full_bw = 0.0
        self._full_bw_count = 0
        # PROBE_BW gain cycling.
        self._cycle_index = 0
        self._cycle_started = 0
        # RTprop tracking (int ns; 0 = no sample yet).
        self.rtprop = 0
        self._rtprop_stamp = 0
        self._probe_rtt_until = 0

    # -- outputs ---------------------------------------------------------------

    def pacing_rate_gbps(self) -> Optional[float]:
        bw = self.bw_filter.get()
        if bw is None:
            return None
        return self.pacing_gain * bw

    def delivery_rate_gbps(self) -> Optional[float]:
        return self.sampler.rate_gbps

    def state(self) -> str:
        return self._state

    def bdp_bytes(self, gain: float = 1.0) -> Optional[int]:
        """``gain × BtlBw × RTprop`` in bytes, or None before estimates."""
        bw = self.bw_filter.get()
        if bw is None or self.rtprop <= 0:
            return None
        return int(gain * bw * self.rtprop / 8)

    # -- hooks -----------------------------------------------------------------

    def on_send(self, end_seq: int, nbytes: int, now: int, *,
                app_limited: bool = False) -> None:
        self.sampler.app_limited = app_limited
        self.sampler.on_send(end_seq, now)

    def on_ack(self, acked: int, now: int, *, ack: int, snd_nxt: int,
               flight: int, in_recovery: bool,
               recovery_exit: bool) -> None:
        sample = self.sampler.on_ack(ack, acked, now)
        round_advanced = ack >= self._round_end_seq
        if round_advanced:
            self.round_count += 1
            self._round_end_seq = snd_nxt
        if sample is not None:
            current = self.bw_filter.get()
            if not self.sampler.app_limited or current is None \
                    or sample > current:
                self.bw_filter.update(sample, self.round_count)
        self._update_rtprop(now)
        self._advance_machine(now, flight, round_advanced)
        self._set_cwnd(acked)

    def on_recovery_start(self, flight: int, now: int) -> None:
        # Loss (or reordering forged as loss) does not move the model:
        # the mechanism retransmits, the rate holds.  Count the episode.
        super().on_recovery_start(flight, now)

    def on_rto(self, flight: int, now: int) -> None:
        # Genuine silence: restart conservatively; the bandwidth filter
        # survives, so one ACK restores the operating point.
        self.sampler.clear_marks()
        self.cwnd = MSS

    # -- model maintenance -----------------------------------------------------

    def _update_rtprop(self, now: int) -> None:
        latest = self.rtt.latest
        if latest is None:
            return
        expired = now - self._rtprop_stamp > RTPROP_WINDOW
        if latest <= self.rtprop or self.rtprop == 0 or expired:
            self.rtprop = latest
            self._rtprop_stamp = now

    def _advance_machine(self, now: int, flight: int,
                         round_advanced: bool) -> None:
        if not self.filled_pipe and round_advanced \
                and not self.sampler.app_limited:
            bw = self.bw_filter.get()
            if bw is not None:
                if bw >= self._full_bw * 1.25:
                    self._full_bw = bw
                    self._full_bw_count = 0
                else:
                    self._full_bw_count += 1
                    if self._full_bw_count >= 3:
                        self.filled_pipe = True
        state = self._state
        if state == "startup" and self.filled_pipe:
            self._transition(now, "drain", pacing=DRAIN_GAIN,
                             cwnd=STARTUP_GAIN)
        elif state == "drain":
            bdp = self.bdp_bytes()
            if bdp is not None and flight <= bdp:
                self._enter_probe_bw(now)
        elif state == "probe_bw":
            if self.rtprop > 0 and now - self._cycle_started > self.rtprop:
                self._cycle_index = (self._cycle_index + 1) \
                    % len(PROBE_BW_GAINS)
                self._cycle_started = now
                self.pacing_gain = PROBE_BW_GAINS[self._cycle_index]
            if self._rtprop_stamp and \
                    now - self._rtprop_stamp > RTPROP_WINDOW:
                self._probe_rtt_until = now + max(PROBE_RTT_DURATION,
                                                  self.rtprop)
                self._transition(now, "probe_rtt", pacing=1.0, cwnd=1.0)
        elif state == "probe_rtt":
            if now >= self._probe_rtt_until:
                self._rtprop_stamp = now
                if self.filled_pipe:
                    self._enter_probe_bw(now)
                else:
                    self._transition(now, "startup", pacing=STARTUP_GAIN,
                                     cwnd=STARTUP_GAIN)

    def _enter_probe_bw(self, now: int) -> None:
        self._cycle_index = 0
        self._cycle_started = now
        self._transition(now, "probe_bw",
                         pacing=PROBE_BW_GAINS[0], cwnd=2.0)

    def _transition(self, now: int, new_state: str, *, pacing: float,
                    cwnd: float) -> None:
        old = self._state
        self._state = new_state
        self.pacing_gain = pacing
        self.cwnd_gain = cwnd
        self._trace_state(now, old, new_state)

    def _set_cwnd(self, acked: int) -> None:
        if self._state == "probe_rtt":
            self.cwnd = MIN_CWND
            return
        target = self.bdp_bytes(self.cwnd_gain)
        if target is None:
            # No model yet: grow with the ACK clock (startup-like).
            self.cwnd += acked
        elif self.cwnd < target:
            self.cwnd = min(self.cwnd + acked, target)
        else:
            self.cwnd = max(target, MIN_CWND)

"""repro.cc — pluggable congestion control for the TCP sender.

The sender (:mod:`repro.tcp.sender`) is the mechanism; the classes here
are the policies.  Select one with ``TcpConfig.cc``:

======== ===========================================================
``reno``   NewReno + legacy ECN-gated DCTCP reaction (the default —
           byte-identical to the pre-split sender).
``cubic``  RFC 8312 cubic window growth, β = 0.7 loss response.
``dctcp``  Canonical RFC 8257 DCTCP (always-on ECN reaction, α₀ = 1).
``bbr``    BBRv1 model-based rate control (startup/drain/probe_bw/
           probe_rtt), paced by the sim timer wheel.
======== ===========================================================

See docs/transport.md for the mechanism/policy contract and the
``cc_reordering`` campaign family that sweeps these policies against
reordering intensity.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.cc.base import CongestionControl
from repro.cc.bbr import BbrV1CC
from repro.cc.cubic import CubicCC
from repro.cc.dctcp import DctcpCC
from repro.cc.rate import DeliveryRateSampler, WindowedMax
from repro.cc.reno import RenoCC
from repro.cc.rtt import RttEstimator

#: ``TcpConfig.cc`` selector -> policy class.
CC_ALGORITHMS: Dict[str, Type[CongestionControl]] = {
    RenoCC.name: RenoCC,
    CubicCC.name: CubicCC,
    DctcpCC.name: DctcpCC,
    BbrV1CC.name: BbrV1CC,
}


def make_cc(name: str, config, rtt: RttEstimator, *, tracer=None,
            flow=None) -> CongestionControl:
    """Instantiate the policy registered under ``name``."""
    try:
        cls = CC_ALGORITHMS[name]
    except KeyError:
        raise ValueError(
            f"unknown congestion control {name!r}; "
            f"choose from {sorted(CC_ALGORITHMS)}"
        ) from None
    return cls(config, rtt, tracer=tracer, flow=flow)


__all__ = [
    "BbrV1CC",
    "CC_ALGORITHMS",
    "CongestionControl",
    "CubicCC",
    "DctcpCC",
    "DeliveryRateSampler",
    "RenoCC",
    "RttEstimator",
    "WindowedMax",
    "make_cc",
]

"""Delivery-rate sampling for rate-based senders (BBR's bottleneck-bw input).

A light adaptation of the rate-sample algorithm from the BBR draft
(``delivery_rate = (delivered_now - delivered_at_send) / elapsed``): at
each burst emission the sender marks the current cumulative delivered
count; when the cumulative ACK passes the burst, the sampler computes the
delivery rate over that flight.  Because the simulator's clock is integer
nanoseconds and rates are reported in Gb/s, the conversion is exact:
``bytes * 8 / ns`` *is* Gb/s.

The bandwidth filter is the windowed max over the last ``window`` rounds —
BBR's max-filter over ~10 round trips — implemented as a monotonic deque.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class DeliveryRateSampler:
    """Per-flight delivery-rate samples off the cumulative ACK stream."""

    __slots__ = ("delivered", "delivered_time", "_marks", "rate_gbps",
                 "app_limited")

    def __init__(self) -> None:
        #: Cumulative bytes delivered (cumulatively ACKed) so far.
        self.delivered = 0
        #: Simulation time of the last delivery accounting.
        self.delivered_time = 0
        #: end_seq -> (sent_at, delivered_at_send); consumed by ACKs.
        self._marks: Dict[int, Tuple[int, int]] = {}
        #: Most recent delivery-rate sample, Gb/s (None before the first).
        self.rate_gbps: Optional[float] = None
        #: True when the latest sample was taken while the sender had no
        #: more data to stream (the sample under-estimates the path).
        self.app_limited = False

    def on_send(self, end_seq: int, now: int) -> None:
        """A burst ending at ``end_seq`` left the sender at time ``now``."""
        if end_seq not in self._marks:
            self._marks[end_seq] = (now, self.delivered)

    def on_ack(self, ack: int, acked: int, now: int) -> Optional[float]:
        """A cumulative ACK advanced by ``acked`` bytes; maybe sample.

        Returns the fresh delivery-rate sample in Gb/s, or None when no
        marked burst was fully covered by this ACK.
        """
        self.delivered += acked
        self.delivered_time = now
        covered = [end for end in self._marks if end <= ack]
        if not covered:
            return None
        newest = max(covered)
        sent_at, delivered_at_send = self._marks[newest]
        for end in covered:
            del self._marks[end]
        elapsed = now - sent_at
        if elapsed <= 0:
            return None
        self.rate_gbps = (self.delivered - delivered_at_send) * 8 / elapsed
        return self.rate_gbps

    def clear_marks(self) -> None:
        """Drop in-flight marks (RTO rewinds the send pointer)."""
        self._marks.clear()


class WindowedMax:
    """Max of samples over the last ``window`` abstract ticks (rounds)."""

    __slots__ = ("window", "_samples")

    def __init__(self, window: int):
        self.window = window
        #: (tick, value) with values strictly decreasing (monotonic deque).
        self._samples: List[Tuple[int, float]] = []

    def update(self, value: float, tick: int) -> float:
        """Absorb ``value`` at ``tick``; return the windowed max."""
        samples = self._samples
        while samples and samples[-1][1] <= value:
            samples.pop()
        samples.append((tick, value))
        while samples and samples[0][0] < tick - self.window:
            samples.pop(0)
        return samples[0][1]

    def get(self) -> Optional[float]:
        """The current windowed max, or None before any sample."""
        return self._samples[0][1] if self._samples else None

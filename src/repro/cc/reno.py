"""NewReno with DCTCP-style ECN reaction — the historical default policy.

This is the window arithmetic extracted *verbatim* from the pre-split
``TcpSender``: byte-granular slow start (``cwnd += acked``), congestion
avoidance (``cwnd += max(1, MSS * acked // cwnd)``), the halve-plus-three
fast-retransmit entry, per-dupACK window inflation during recovery, the
deflate-to-ssthresh exit, and the go-back-N RTO collapse to one MSS.  The
DCTCP congestion-extent EWMA rides along exactly as it always did, gated
on ``TcpConfig.ecn`` (on fabrics that never mark, it is arithmetic-free
bookkeeping) — so ``cc="reno"`` reproduces the old sender's behavior
byte-for-byte, marks or no marks.
"""

from __future__ import annotations

from repro.cc.base import CongestionControl
from repro.net.constants import MSS


class RenoCC(CongestionControl):
    """NewReno windows, with the legacy ECN-gated DCTCP reaction."""

    name = "reno"

    def __init__(self, config, rtt, *, tracer=None, flow=None):
        super().__init__(config, rtt, tracer=tracer, flow=flow)
        #: Whether CE echoes feed the DCTCP EWMA (legacy: config-gated).
        self._ecn = config.ecn
        # DCTCP state: congestion-extent EWMA and per-window counters.
        self.dctcp_alpha = 0.0
        self._window_acked = 0
        self._window_ce = 0
        self._window_end = 0

    def state(self) -> str:
        if self.cwnd < self.ssthresh:
            return "slow_start"
        return "cong_avoid"

    # -- hooks -----------------------------------------------------------------

    def on_ack(self, acked: int, now: int, *, ack: int, snd_nxt: int,
               flight: int, in_recovery: bool,
               recovery_exit: bool) -> None:
        if recovery_exit:
            self.cwnd = self.ssthresh
        elif not in_recovery:
            if self.cwnd < self.ssthresh:
                self.cwnd += acked  # slow start
            else:
                # Congestion avoidance: ~one MSS per RTT.
                self.cwnd += max(1, MSS * acked // self.cwnd)
        if self._ecn:
            self._dctcp_window_update(acked, ack, snd_nxt)

    def on_dupack(self, count: int, *, in_recovery: bool) -> None:
        if in_recovery:
            self.cwnd += MSS  # window inflation keeps the pipe full

    def on_ce(self, ce_bytes: int) -> None:
        if self._ecn:
            self._window_ce += ce_bytes

    def on_recovery_start(self, flight: int, now: int) -> None:
        super().on_recovery_start(flight, now)
        self.ssthresh = max(flight // 2, 2 * MSS)
        self.cwnd = self.ssthresh + 3 * MSS

    def on_rto(self, flight: int, now: int) -> None:
        self.ssthresh = max(flight // 2, 2 * MSS)
        self.cwnd = MSS

    # -- DCTCP reaction --------------------------------------------------------

    def _dctcp_window_update(self, acked: int, ack: int,
                             snd_nxt: int) -> None:
        """DCTCP: once per window, estimate the marked fraction and shrink
        cwnd proportionally (cwnd ← cwnd·(1 − α/2))."""
        self._window_acked += acked
        if ack < self._window_end:
            return
        if self._window_acked > 0:
            fraction = min(1.0, self._window_ce / self._window_acked)
            g = self.config.dctcp_g
            self.dctcp_alpha += g * (fraction - self.dctcp_alpha)
            if self._window_ce > 0:
                reduced = int(self.cwnd * (1.0 - self.dctcp_alpha / 2.0))
                self.cwnd = max(2 * MSS, reduced)
                # Marking ends slow start: converge via gentle reductions.
                self.ssthresh = min(self.ssthresh, self.cwnd)
        self._window_acked = 0
        self._window_ce = 0
        self._window_end = snd_nxt

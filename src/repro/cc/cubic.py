"""CUBIC (RFC 8312): window growth as a cubic of time since last loss.

The window grows along ``W(t) = C·(t − K)³ + W_max`` — concave while
recovering toward the pre-loss plateau ``W_max``, then convex while
probing beyond it — which makes growth independent of RTT and far more
aggressive than Reno on long-RTT or large-BDP paths.  The TCP-friendly
region (``W_est``) keeps it at least as fast as Reno where Reno would
win.  Loss reaction is a β = 0.7 multiplicative decrease with fast
convergence (release the plateau early when losses repeat).

Internally the cubic is computed in MSS-segment units with time in float
seconds — exactly how the RFC states it — and the result is converted to
integer bytes once per ACK.  All inputs are integers from the simulator,
so the arithmetic is deterministic across runs and platforms.
"""

from __future__ import annotations

from repro.cc.base import CongestionControl
from repro.net.constants import MSS

#: RFC 8312 constants.
CUBIC_C = 0.4
CUBIC_BETA = 0.7


class CubicCC(CongestionControl):
    """CUBIC windows; DCTCP/ECN echoes are treated as plain congestion."""

    name = "cubic"

    def __init__(self, config, rtt, *, tracer=None, flow=None):
        super().__init__(config, rtt, tracer=tracer, flow=flow)
        #: The pre-loss plateau in segments (0 until the first loss).
        self.w_max = 0.0
        #: Epoch start (ns) of the current cubic curve; None resets it.
        self._epoch_start = None
        #: Time (s) at which the curve crosses w_max again.
        self._k = 0.0
        #: Reno-estimate accumulator for the TCP-friendly region.
        self._w_est = 0.0
        #: Segments ACKed since the epoch began (drives W_est).
        self._acked_since_epoch = 0.0

    def state(self) -> str:
        if self.cwnd < self.ssthresh:
            return "slow_start"
        return "cubic_growth"

    # -- hooks -----------------------------------------------------------------

    def on_ack(self, acked: int, now: int, *, ack: int, snd_nxt: int,
               flight: int, in_recovery: bool,
               recovery_exit: bool) -> None:
        if recovery_exit:
            self.cwnd = max(self.ssthresh, 2 * MSS)
            return
        if in_recovery:
            return
        if self.cwnd < self.ssthresh:
            self.cwnd += acked  # slow start, same as Reno
            return
        self._cubic_update(acked, now)

    def on_dupack(self, count: int, *, in_recovery: bool) -> None:
        if in_recovery:
            self.cwnd += MSS  # keep the pipe full, as Reno does

    def on_recovery_start(self, flight: int, now: int) -> None:
        super().on_recovery_start(flight, now)
        cwnd_seg = self.cwnd / MSS
        # Fast convergence: when losses repeat below the old plateau,
        # release capacity by remembering a lowered W_max.
        if cwnd_seg < self.w_max:
            self.w_max = cwnd_seg * (2.0 - CUBIC_BETA) / 2.0
        else:
            self.w_max = cwnd_seg
        self.ssthresh = max(int(self.cwnd * CUBIC_BETA), 2 * MSS)
        self.cwnd = self.ssthresh
        self._epoch_start = None

    def on_rto(self, flight: int, now: int) -> None:
        self.w_max = self.cwnd / MSS
        self.ssthresh = max(int(self.cwnd * CUBIC_BETA), 2 * MSS)
        self.cwnd = MSS
        self._epoch_start = None

    # -- the cubic -------------------------------------------------------------

    def _cubic_update(self, acked: int, now: int) -> None:
        if self._epoch_start is None:
            self._epoch_start = now
            cwnd_seg = self.cwnd / MSS
            if self.w_max < cwnd_seg:
                self.w_max = cwnd_seg
            self._k = ((self.w_max - cwnd_seg) / CUBIC_C) ** (1.0 / 3.0)
            self._w_est = cwnd_seg
            self._acked_since_epoch = 0.0
        self._acked_since_epoch += acked / MSS
        srtt = self.rtt.srtt if self.rtt.srtt is not None \
            else self.config.initial_rtt
        # Target the curve one RTT ahead (RFC 8312 §4.1).
        t_sec = (now - self._epoch_start + srtt) / 1e9
        target_seg = self.w_max + CUBIC_C * (t_sec - self._k) ** 3
        cwnd_seg = self.cwnd / MSS
        # TCP-friendly region: the window Reno would have reached.
        self._w_est += (3.0 * (1.0 - CUBIC_BETA) / (1.0 + CUBIC_BETA)
                        * (acked / MSS) / cwnd_seg)
        if target_seg < self._w_est:
            target_seg = self._w_est
        if target_seg > cwnd_seg:
            # Spread the climb over the window's worth of ACKs; never
            # more than a slow-start doubling per ACK.
            step = (target_seg - cwnd_seg) / cwnd_seg * acked
            self.cwnd += min(int(step), acked)
        else:
            # At or beyond target: creep so the epoch clock still moves.
            self.cwnd += max(1, MSS * acked // (100 * self.cwnd))

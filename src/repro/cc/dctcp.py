"""DCTCP as a first-class policy (RFC 8257, the SIGCOMM '10 algorithm).

Structurally this is :class:`~repro.cc.reno.RenoCC` — DCTCP *is* Reno
between marks — with the canonical differences applied:

* the ECN reaction is always armed, whatever ``TcpConfig.ecn`` says
  (selecting ``cc="dctcp"`` without marking would be a misconfiguration,
  and the α estimate simply decays to zero on unmarked fabrics);
* α starts at 1.0, the conservative RFC 8257 initialisation (Linux
  ``dctcp_alpha_on_init``), so the first marked window reacts strongly
  instead of waiting for the EWMA to warm up.
"""

from __future__ import annotations

from repro.cc.reno import RenoCC


class DctcpCC(RenoCC):
    """Canonical DCTCP: Reno windows plus the always-on α reaction."""

    name = "dctcp"

    def __init__(self, config, rtt, *, tracer=None, flow=None):
        super().__init__(config, rtt, tracer=tracer, flow=flow)
        self._ecn = True
        self.dctcp_alpha = 1.0

"""The congestion-control policy interface.

:class:`~repro.tcp.sender.TcpSender` is the *mechanism* layer — sequence
state, SACK scoreboard, retransmit queue, RTO timer, burst emission — and
delegates every window/rate decision to a :class:`CongestionControl`
policy.  The split follows the kernel's ``tcp_congestion_ops``: the
mechanism detects events (ACK progress, duplicate ACKs, SACK news, CE
echoes, timeouts) and calls the policy's hooks; the policy answers with a
congestion window (``cwnd``), a slow-start threshold (``ssthresh``) and,
for rate-based senders, a pacing rate the sender's timer-wheel wakeups
enforce between bursts.

Hook call order on the ACK path (the mechanism guarantees it):

1. ``on_ce`` with any CE-marked bytes echoed on the ACK,
2. ``on_sack`` when the scoreboard gained new SACK information,
3. ``on_ack`` for cumulative progress (after the mechanism's own
   recovery bookkeeping and hole retransmissions), or
4. ``on_dupack`` when the ACK was a duplicate.

``on_send`` fires only for *new* data leaving the sender (retransmissions
never feed the delivery-rate sampler), and ``on_recovery_start`` /
``on_rto`` fire when the mechanism enters fast recovery or backs off on a
timeout.  See docs/transport.md for the full contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cc.rtt import RttEstimator

if TYPE_CHECKING:  # repro.cc must not import repro.tcp at runtime (cycle)
    from repro.tcp.config import TcpConfig


class CongestionControl:
    """Base policy: hooks are no-ops, the window never moves."""

    #: The ``TcpConfig.cc`` selector value.
    name = "base"

    def __init__(self, config: TcpConfig, rtt: RttEstimator, *,
                 tracer=None, flow=None):
        self.config = config
        #: Shared RFC 6298 estimator, owned by the sender, fed by it.
        self.rtt = rtt
        self.tracer = tracer
        self.flow = flow
        #: Congestion window, bytes.
        self.cwnd = config.init_cwnd
        #: Slow-start threshold, bytes (effectively infinite at start).
        self.ssthresh = 1 << 62
        #: Fast-recovery episodes this policy reacted to.
        self.recoveries = 0

    # -- outputs ---------------------------------------------------------------

    def pacing_rate_gbps(self) -> Optional[float]:
        """Pacing rate in Gb/s, or None for pure window-based sending."""
        return None

    def delivery_rate_gbps(self) -> Optional[float]:
        """Most recent delivery-rate estimate, when the policy samples one."""
        return None

    def state(self) -> str:
        """The policy's current state-machine phase (for cc_state traces)."""
        return "steady"

    # -- event hooks -----------------------------------------------------------

    def on_send(self, end_seq: int, nbytes: int, now: int, *,
                app_limited: bool = False) -> None:
        """New data through ``end_seq`` left the sender at ``now``."""

    def on_ack(self, acked: int, now: int, *, ack: int, snd_nxt: int,
               flight: int, in_recovery: bool,
               recovery_exit: bool) -> None:
        """The cumulative ACK advanced by ``acked`` bytes."""

    def on_dupack(self, count: int, *, in_recovery: bool) -> None:
        """A duplicate ACK arrived (``count`` consecutive so far)."""

    def on_sack(self, sacked_bytes: int, now: int) -> None:
        """The scoreboard gained new SACK information."""

    def on_ce(self, ce_bytes: int) -> None:
        """The ACK echoed ``ce_bytes`` of CE-marked payload."""

    def on_recovery_start(self, flight: int, now: int) -> None:
        """The mechanism entered fast recovery (dupACK/SACK trigger)."""
        self.recoveries += 1

    def on_rto(self, flight: int, now: int) -> None:
        """The retransmission timer fired; the window should collapse."""

    # -- tracing ---------------------------------------------------------------

    def _trace_state(self, now: int, old_state: str, new_state: str) -> None:
        """Emit a ``cc_state`` event when tracing is on."""
        if self.tracer is not None:
            self.tracer.cc_state(now, self.flow, self.name, old_state,
                                 new_state, self.cwnd,
                                 self.pacing_rate_gbps())

"""``juggler-repro cc`` — the congestion-control × reordering sweep.

::

    juggler-repro cc sweep                             # full family
    juggler-repro cc sweep --ccs reno,bbr --intensities 0,3 \\
        --gros juggler,standard --jobs 4 \\
        --store cc.jsonl --json out.json

``sweep`` routes the ``cc_reordering`` family (congestion control ×
reordering intensity × GRO engine) through the campaign scheduler —
parallel and resumable: re-running with the same ``--store`` skips
completed cells.  See docs/transport.md for the policies and the column
vocabulary.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments.cc_reordering import CcParams


def _csv(text: str, cast=str) -> list:
    return [cast(part.strip()) for part in text.split(",") if part.strip()]


def cmd_sweep(argv) -> int:
    """The cc_reordering sweep, via the campaign scheduler."""
    import tempfile

    from repro.campaign import (
        CampaignSpec,
        ExperimentSpec,
        ResultStore,
        SchedulerConfig,
        expand,
        render_report,
        run_campaign,
    )

    defaults = CcParams()
    parser = argparse.ArgumentParser(
        prog="juggler-repro cc sweep",
        description="Sweep congestion control x reordering intensity x GRO "
                    "engine; parallel and resumable via repro.campaign.",
    )
    parser.add_argument("--ccs", default=",".join(defaults.ccs),
                        help="comma-separated congestion controls "
                             "(reno, cubic, dctcp, bbr)")
    parser.add_argument("--intensities",
                        default=",".join(map(str, defaults.intensities)),
                        help="comma-separated reordering intensities (0..3)")
    parser.add_argument("--gros", default=",".join(defaults.engines),
                        help="comma-separated GRO engines "
                             "(juggler, standard, presto)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--seed", type=int, default=None,
                        help="campaign root seed (default: the experiment's "
                             "baked-in seed)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="result JSONL; reuse to resume (default: temp)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a JSON summary here")
    args = parser.parse_args(argv)

    grid = {
        "cc": _csv(args.ccs),
        "intensity": _csv(args.intensities, int),
        "engine": _csv(args.gros),
    }
    spec = CampaignSpec(
        name="cc-reordering",
        experiments=(ExperimentSpec("cc_reordering", grid=grid),),
        seed=args.seed,
    )
    try:
        tasks = expand(spec)
    except (KeyError, ValueError) as exc:
        print(f"bad sweep selection: {exc}", file=sys.stderr)
        return 2

    store_path = args.store
    if store_path is None:
        fd, store_path = tempfile.mkstemp(prefix="juggler_cc_",
                                          suffix=".jsonl")
        os.close(fd)
    store = ResultStore(store_path)
    print(f"cc reordering sweep: {len(tasks)} cell(s), "
          f"{args.jobs} worker(s); results -> {store_path}")
    stats = run_campaign(tasks, store, SchedulerConfig(jobs=max(1, args.jobs)),
                         progress=print)
    print(stats.summary_line(spec.name))
    print()
    print(render_report(store.load(), spec))
    if args.json:
        payload = {
            "spec": spec.to_dict(),
            "planned": stats.planned,
            "skipped": stats.skipped,
            "failed": stats.failed,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json}")
    return 0 if stats.failed == 0 else 1


def main(argv) -> int:
    """``juggler-repro cc`` dispatcher."""
    if argv and argv[0] == "sweep":
        return cmd_sweep(argv[1:])
    print("usage: juggler-repro cc sweep [options]\n"
          "  sweep  congestion control x reordering intensity x GRO engine\n"
          "see docs/transport.md", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

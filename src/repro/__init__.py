"""Reproduction of "Juggler: A Practical Reordering Resilient Network Stack
for Datacenters" (Geng, Jeyakumar, Kabbani, Alizadeh — EuroSys 2016).

The package provides:

* ``repro.core`` — the Juggler GRO engine (the paper's contribution) and its
  baselines (vanilla GRO, linked-list batching, Presto-style buffering);
* ``repro.sim`` / ``repro.net`` / ``repro.nic`` / ``repro.fabric`` /
  ``repro.tcp`` / ``repro.cpu`` — the simulated substrate replacing the
  paper's 10/40 Gb/s hardware testbeds;
* ``repro.qos`` — the dynamic-prioritisation bandwidth-guarantee system;
* ``repro.workloads`` / ``repro.harness`` — traffic generators and metrics;
* ``repro.experiments`` — one module per paper table/figure.

Quickstart::

    import random
    from repro.sim import Engine, MS, US
    from repro.core import JugglerGRO, JugglerConfig
    from repro.fabric import build_netfpga_pair
    from repro.tcp import Connection

    engine = Engine()
    rng = random.Random(1)
    factory = lambda deliver: JugglerGRO(
        deliver, JugglerConfig(inseq_timeout=52 * US, ofo_timeout=400 * US))
    bed = build_netfpga_pair(engine, rng, factory, reorder_delay_ns=250 * US)
    conn = Connection(engine, bed.sender, bed.receiver, 1000, 80)
    conn.send(1 << 30)
    engine.run_until(20 * MS)
    print(conn.delivered_bytes * 8 / (20 * MS), "Gb/s despite reordering")
"""

__version__ = "1.0.0"

from repro.core import JugglerConfig, JugglerGRO, StandardGRO
from repro.harness import GroKind, make_gro_factory
from repro.sim import MS, NS, SEC, US, Engine

__all__ = [
    "__version__",
    "JugglerConfig",
    "JugglerGRO",
    "StandardGRO",
    "GroKind",
    "make_gro_factory",
    "Engine",
    "NS",
    "US",
    "MS",
    "SEC",
]

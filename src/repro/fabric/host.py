"""An end host: NIC + GRO on the receive side, a TX port on the send side,
and a demultiplexer that hands delivered segments to registered transport
endpoints (TCP senders receive ACK segments, TCP receivers data segments).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.base import GroEngine
from repro.cpu.core import CpuCore
from repro.fabric.link import PacketSink
from repro.net.addr import FiveTuple
from repro.net.packet import Packet
from repro.net.segment import Segment
from repro.nic.nic import GroFactory, Nic, NicConfig
from repro.sim.engine import Engine
from repro.steer.policy import SteeringPolicy

SegmentHandler = Callable[[Segment], None]


class Host:
    """One server: wire in via the NIC/GRO path, wire out via the TX port."""

    def __init__(
        self,
        engine: Engine,
        host_id: int,
        gro_factory: GroFactory,
        *,
        nic_config: Optional[NicConfig] = None,
        name: Optional[str] = None,
        steering: Optional[SteeringPolicy] = None,
    ):
        self.engine = engine
        self.host_id = host_id
        self.name = name if name is not None else f"host{host_id}"
        self.nic = Nic(engine, self.deliver, gro_factory, nic_config,
                       name=self.name, steering=steering)
        #: Where transmitted packets go (the access link); set by the topology.
        self.tx: Optional[PacketSink] = None
        #: Application-core model; endpoints use it when present.
        self.app_core: Optional[CpuCore] = None
        self._handlers: Dict[FiveTuple, SegmentHandler] = {}
        #: Segments delivered with no registered endpoint.
        self.stray_segments = 0

    # -- wiring ---------------------------------------------------------------

    def attach_tx(self, sink: PacketSink) -> None:
        """Connect the host's transmit side to its access link."""
        self.tx = sink

    def register_handler(self, flow: FiveTuple, handler: SegmentHandler) -> None:
        """Route delivered segments of ``flow`` to a transport endpoint."""
        if flow in self._handlers:
            raise ValueError(f"{self.name}: handler already registered for {flow}")
        self._handlers[flow] = handler

    def unregister_handler(self, flow: FiveTuple) -> None:
        """Remove a transport endpoint's registration."""
        self._handlers.pop(flow, None)

    # -- data path --------------------------------------------------------------

    def receive(self, packet: Packet) -> None:
        """Entry from the wire — straight into the NIC."""
        self.nic.receive(packet)

    def deliver(self, segment: Segment) -> None:
        """Exit from GRO — dispatch to the endpoint that owns the flow."""
        handler = self._handlers.get(segment.flow)
        if handler is None:
            self.stray_segments += 1
            return
        handler(segment)

    def transmit(self, packet: Packet) -> None:
        """Send one packet toward the fabric."""
        if self.tx is None:
            raise RuntimeError(f"{self.name} has no TX link attached")
        self.tx.receive(packet)

    # -- introspection -----------------------------------------------------------

    @property
    def gro_engines(self) -> list[GroEngine]:
        """The per-RX-queue GRO instances (for stats collection)."""
        return [q.gro for q in self.nic.queues]

    def drain(self) -> None:
        """Teardown: flush rings and GRO state."""
        self.nic.drain()

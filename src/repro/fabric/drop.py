"""Uniform random packet dropper.

The Figure 14 experiment drops "0.1% of the packets uniformly at random
before they enter Juggler" at the client.  :class:`DropElement` is that
inline bit-bucket: wrap any sink with it and a fraction ``p`` of packets
never arrive.
"""

from __future__ import annotations

import random

from repro.fabric.link import PacketSink
from repro.net.packet import Packet


class DropElement:
    """Pass-through sink that loses each packet with probability ``p``."""

    def __init__(self, sink: PacketSink, rng: random.Random, p: float):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {p}")
        self.sink = sink
        self._rng = rng
        self.p = p
        self.dropped = 0
        self.passed = 0

    def receive(self, packet: Packet) -> None:
        """Drop or forward one packet."""
        if self.p > 0.0 and self._rng.random() < self.p:
            self.dropped += 1
            return
        self.passed += 1
        self.sink.receive(packet)

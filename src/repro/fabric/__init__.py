"""The network fabric: links, switches, load balancing, topologies.

Substitutes for the paper's hardware testbeds: the 40 Gb/s two-stage Clos
(Figure 19), the strict-priority bottleneck of the bandwidth-guarantee
experiment (Figure 17), and the NetFPGA-10G switch that injects precisely
controlled reordering (Figure 11).  Reordering emerges here exactly as in
the testbed — from queueing-delay differences across parallel paths and
priority levels — not from any artificial shuffling of the packet stream.
"""

from repro.fabric.link import QueuedLink, LinkStats
from repro.fabric.routing import (
    EcmpRouting,
    FlowletRouting,
    PerPacketRouting,
    PerTsoRouting,
    RoutingPolicy,
)
from repro.fabric.flowcut import ExitTap, FlowcutRouting, FlowcutStats
from repro.fabric.detector import (
    DetectorConfig,
    DetectorStats,
    ReorderDetector,
)
from repro.fabric.switch import Switch
from repro.fabric.netfpga import ReorderingSwitch
from repro.fabric.host import Host
from repro.fabric.topology import (
    ClosNetwork,
    build_clos,
    build_netfpga_pair,
    build_priority_dumbbell,
)

__all__ = [
    "QueuedLink",
    "LinkStats",
    "RoutingPolicy",
    "EcmpRouting",
    "FlowletRouting",
    "PerPacketRouting",
    "PerTsoRouting",
    "FlowcutRouting",
    "FlowcutStats",
    "ExitTap",
    "ReorderDetector",
    "DetectorConfig",
    "DetectorStats",
    "Switch",
    "ReorderingSwitch",
    "Host",
    "ClosNetwork",
    "build_clos",
    "build_netfpga_pair",
    "build_priority_dumbbell",
]

"""``juggler-repro fabric`` — the host-vs-fabric comparison sweep.

::

    juggler-repro fabric sweep                       # full family
    juggler-repro fabric sweep --gros juggler,standard \\
        --routings ecmp,per_packet,flowcut --loads 1,3 --faults 0,1 \\
        --jobs 4 --store fabric.jsonl --json out.json

``sweep`` routes the ``host_vs_fabric`` family (GRO engine × routing
policy × load × fault intensity) through the campaign scheduler —
parallel and resumable: re-running with the same ``--store`` skips
completed cells.  See docs/fabric.md for the model and the column
vocabulary.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.experiments.host_vs_fabric import HostFabricParams


def _csv(text: str, cast=str) -> list:
    return [cast(part.strip()) for part in text.split(",") if part.strip()]


def cmd_sweep(argv) -> int:
    """The host_vs_fabric sweep, via the campaign scheduler."""
    import tempfile

    from repro.campaign import (
        CampaignSpec,
        ExperimentSpec,
        ResultStore,
        SchedulerConfig,
        expand,
        render_report,
        run_campaign,
    )

    defaults = HostFabricParams()
    parser = argparse.ArgumentParser(
        prog="juggler-repro fabric sweep",
        description="Sweep GRO engine x routing policy x load x fault "
                    "intensity on the Clos fabric; parallel and resumable "
                    "via repro.campaign.",
    )
    parser.add_argument("--gros", default=",".join(defaults.engines),
                        help="comma-separated GRO engines "
                             "(juggler, standard)")
    parser.add_argument("--routings", default=",".join(defaults.routings),
                        help="comma-separated routing policies "
                             "(ecmp, per_packet, flowlet, flowcut)")
    parser.add_argument("--loads",
                        default=",".join(map(str, defaults.loads)),
                        help="comma-separated load levels (1..3)")
    parser.add_argument("--faults",
                        default=",".join(map(str, defaults.faults)),
                        help="comma-separated fault levels (0..2)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--seed", type=int, default=None,
                        help="campaign root seed (default: the experiment's "
                             "baked-in seed)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="result JSONL; reuse to resume (default: temp)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a JSON summary here")
    args = parser.parse_args(argv)

    grid = {
        "engine": _csv(args.gros),
        "routing": _csv(args.routings),
        "load": _csv(args.loads, int),
        "fault": _csv(args.faults, int),
    }
    spec = CampaignSpec(
        name="host-vs-fabric",
        experiments=(ExperimentSpec("host_vs_fabric", grid=grid),),
        seed=args.seed,
    )
    try:
        tasks = expand(spec)
    except (KeyError, ValueError) as exc:
        print(f"bad sweep selection: {exc}", file=sys.stderr)
        return 2

    store_path = args.store
    if store_path is None:
        fd, store_path = tempfile.mkstemp(prefix="juggler_fabric_",
                                          suffix=".jsonl")
        os.close(fd)
    store = ResultStore(store_path)
    print(f"host-vs-fabric sweep: {len(tasks)} cell(s), "
          f"{args.jobs} worker(s); results -> {store_path}")
    stats = run_campaign(tasks, store, SchedulerConfig(jobs=max(1, args.jobs)),
                         progress=print)
    print(stats.summary_line(spec.name))
    print()
    print(render_report(store.load(), spec))
    if args.json:
        payload = {
            "spec": spec.to_dict(),
            "planned": stats.planned,
            "skipped": stats.skipped,
            "failed": stats.failed,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json}")
    return 0 if stats.failed == 0 else 1


def main(argv) -> int:
    """``juggler-repro fabric`` dispatcher."""
    if argv and argv[0] == "sweep":
        return cmd_sweep(argv[1:])
    print("usage: juggler-repro fabric sweep [options]\n"
          "  sweep  GRO engine x routing policy x load x fault intensity\n"
          "see docs/fabric.md", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

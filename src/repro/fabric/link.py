"""Output-queued links with optional strict-priority service.

A :class:`QueuedLink` models one switch/NIC output port: packets enqueue
into one of N strict-priority FIFO queues and are serialised one at a time
at the link rate, then delivered to the downstream sink after the
propagation delay.  Queue depth statistics feed the paper's buffer-occupancy
observations (§5.3.2); the two-priority configuration is the substrate for
the bandwidth-guarantee system (Figures 17, 18).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Protocol

from repro.net.constants import transmit_time_ns
from repro.net.packet import Packet
from repro.net.pool import release_terminal
from repro.sim.engine import Engine


class PacketSink(Protocol):
    """Anything that accepts packets at their arrival instant."""

    def receive(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


@dataclass
class LinkStats:
    """Per-link counters."""

    packets: int = 0
    bytes: int = 0
    drops: int = 0
    busy_ns: int = 0
    max_queue_bytes: int = 0
    ce_marked: int = 0
    #: Per-priority packet counts.
    per_priority: dict = field(default_factory=dict)

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of the window the transmitter was busy."""
        if elapsed_ns <= 0:
            return 0.0
        return self.busy_ns / elapsed_ns


class QueuedLink:
    """One transmitter, N strict-priority queues, infinite-or-capped buffer."""

    def __init__(
        self,
        engine: Engine,
        rate_gbps: float,
        sink: PacketSink,
        *,
        prop_delay_ns: int = 500,
        priorities: int = 1,
        capacity_bytes: Optional[int] = None,
        ecn_threshold_bytes: Optional[int] = None,
        name: str = "link",
    ):
        if rate_gbps <= 0:
            raise ValueError(f"link rate must be positive, got {rate_gbps}")
        if priorities < 1:
            raise ValueError(f"need at least one priority level, got {priorities}")
        self._engine = engine
        self.rate_gbps = rate_gbps
        self.sink = sink
        self.prop_delay_ns = prop_delay_ns
        self.capacity_bytes = capacity_bytes
        #: DCTCP-style marking: packets arriving at a queue whose depth
        #: exceeds this get CE-marked (None disables marking).
        self.ecn_threshold_bytes = ecn_threshold_bytes
        self.name = name
        self._queues: List[Deque[Packet]] = [deque() for _ in range(priorities)]
        self._queue_bytes: List[int] = [0] * priorities
        self._queued_bytes = 0
        self._busy = False
        self.stats = LinkStats()

    @property
    def queued_bytes(self) -> int:
        """Bytes waiting (excludes the packet currently on the wire)."""
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        """Packets waiting across all priority levels."""
        return sum(len(q) for q in self._queues)

    def queue_depth(self, priority: int) -> int:
        """Packets waiting at one priority level."""
        return len(self._queues[priority])

    def receive(self, packet: Packet) -> None:
        """Alias so a link can terminate another link directly."""
        self.enqueue(packet)

    def enqueue(self, packet: Packet) -> None:
        """Queue ``packet`` for transmission.

        ``capacity_bytes`` bounds each priority level's queue separately
        (switch output queues have per-queue buffers); overflow tail-drops.
        """
        level = min(packet.priority, len(self._queues) - 1)
        if (
            self.capacity_bytes is not None
            and self._queue_bytes[level] + packet.wire_len > self.capacity_bytes
        ):
            self.stats.drops += 1
            release_terminal(packet)
            return
        if (
            self.ecn_threshold_bytes is not None
            and packet.payload_len > 0
            and self._queue_bytes[level] > self.ecn_threshold_bytes
        ):
            packet.mark_ce()
            self.stats.ce_marked += 1
        self._queues[level].append(packet)
        self._queue_bytes[level] += packet.wire_len
        self._queued_bytes += packet.wire_len
        if self._queued_bytes > self.stats.max_queue_bytes:
            self.stats.max_queue_bytes = self._queued_bytes
        if not self._busy:
            self._transmit_next()

    def _transmit_next(self) -> None:
        for level, queue in enumerate(self._queues):
            if queue:
                packet = queue.popleft()
                break
        else:
            self._busy = False
            return
        self._busy = True
        self._queue_bytes[level] -= packet.wire_len
        self._queued_bytes -= packet.wire_len
        tx_ns = transmit_time_ns(packet.payload_len, self.rate_gbps)
        self.stats.packets += 1
        self.stats.bytes += packet.wire_len
        self.stats.busy_ns += tx_ns
        self.stats.per_priority[level] = self.stats.per_priority.get(level, 0) + 1
        self._engine.schedule(tx_ns, self._tx_done, packet)

    def _tx_done(self, packet: Packet) -> None:
        self._engine.schedule(self.prop_delay_ns, self.sink.receive, packet)
        self._transmit_next()

"""Uplink selection policies — the load-balancing granularities of Figure 20.

* :class:`EcmpRouting` — per-flow hashing, the status quo the paper's §2.2
  criticises: one elephant pins one path.
* :class:`PerTsoRouting` — Presto-style: every 64 KB TSO burst is sprayed as
  a unit, so packets inside a burst stay ordered but bursts interleave.
* :class:`PerPacketRouting` — the finest granularity, ideal balance, and the
  one that needs Juggler: consecutive packets of one flow take different
  paths and can reorder.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.net.packet import Packet


class RoutingPolicy(abc.ABC):
    """Chooses an uplink index for each packet."""

    @abc.abstractmethod
    def choose(self, packet: Packet, nports: int) -> int:
        """Return the uplink index in ``[0, nports)`` for ``packet``."""

    @staticmethod
    def _mix(value: int, salt: int) -> int:
        """Cheap integer hash, independent of the NIC's RSS function."""
        h = (value ^ salt) * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 31
        return h


class EcmpRouting(RoutingPolicy):
    """Hash the five-tuple: all packets of a flow share one path."""

    def __init__(self, salt: int = 0x5CA1AB1E):
        self.salt = salt

    def choose(self, packet: Packet, nports: int) -> int:
        return self._mix(hash(packet.flow), self.salt) % nports


class PerTsoRouting(RoutingPolicy):
    """Hash (five-tuple, TSO burst id): bursts spray, packets inside don't."""

    def __init__(self, salt: int = 0x7E570):
        self.salt = salt

    def choose(self, packet: Packet, nports: int) -> int:
        burst = packet.tso_id if packet.tso_id is not None else -1
        return self._mix(hash((packet.flow, burst)), self.salt) % nports


class PerPacketRouting(RoutingPolicy):
    """Spray every packet independently (round-robin or uniform random)."""

    def __init__(self, rng: Optional[random.Random] = None):
        #: With an rng, choices are uniform random; without, round-robin.
        self._rng = rng
        self._counter = 0

    def choose(self, packet: Packet, nports: int) -> int:
        if self._rng is not None:
            return self._rng.randrange(nports)
        self._counter = (self._counter + 1) % nports
        return self._counter


class FlowletRouting(RoutingPolicy):
    """CONGA-style flowlet switching (§2.2's related-work middle ground).

    A flow's packets keep their current path while they arrive back to
    back; a gap longer than ``flowlet_gap_ns`` ends the flowlet, and the
    next burst may take a new path.  If the gap exceeds the path-delay
    skew, no reordering reaches the end host — the property CONGA relies on
    so that it "eliminate[s] almost all packet reordering seen at the
    end-host" without a resilient stack.

    Needs a clock: the switch passes arrival times via :meth:`observe`
    before :meth:`choose` (our :class:`~repro.fabric.switch.Switch` does
    this automatically when the policy exposes ``wants_time``).
    """

    wants_time = True

    def __init__(self, rng: random.Random, flowlet_gap_ns: int = 100_000):
        if flowlet_gap_ns < 0:
            raise ValueError(f"flowlet gap must be >= 0, got {flowlet_gap_ns}")
        self._rng = rng
        self.flowlet_gap_ns = flowlet_gap_ns
        #: flow -> (current port, last packet time)
        self._state: dict = {}
        self._now = 0
        self.flowlets_started = 0

    def observe(self, now: int) -> None:
        """Supply the current time for gap detection."""
        self._now = now

    def choose(self, packet: Packet, nports: int) -> int:
        entry = self._state.get(packet.flow)
        if entry is not None:
            port, last = entry
            if self._now - last <= self.flowlet_gap_ns:
                self._state[packet.flow] = (port, self._now)
                return port
        port = self._rng.randrange(nports)
        self._state[packet.flow] = (port, self._now)
        self.flowlets_started += 1
        return port

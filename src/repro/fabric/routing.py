"""Uplink selection policies — the load-balancing granularities of Figure 20.

* :class:`EcmpRouting` — per-flow hashing, the status quo the paper's §2.2
  criticises: one elephant pins one path.
* :class:`PerTsoRouting` — Presto-style: every 64 KB TSO burst is sprayed as
  a unit, so packets inside a burst stay ordered but bursts interleave.
* :class:`PerPacketRouting` — the finest granularity, ideal balance, and the
  one that needs Juggler: consecutive packets of one flow take different
  paths and can reorder.
"""

from __future__ import annotations

import abc
import random
from typing import Optional

from repro.net.packet import Packet
from repro.trace import runtime as trace_runtime


class RoutingPolicy(abc.ABC):
    """Chooses an uplink index for each packet."""

    @abc.abstractmethod
    def choose(self, packet: Packet, nports: int) -> int:
        """Return the uplink index in ``[0, nports)`` for ``packet``."""

    @staticmethod
    def _mix(value: int, salt: int) -> int:
        """Cheap integer hash, independent of the NIC's RSS function."""
        h = (value ^ salt) * 0x9E3779B97F4A7C15 & 0xFFFFFFFFFFFFFFFF
        h ^= h >> 31
        return h


class EcmpRouting(RoutingPolicy):
    """Hash the five-tuple: all packets of a flow share one path."""

    def __init__(self, salt: int = 0x5CA1AB1E):
        self.salt = salt

    def choose(self, packet: Packet, nports: int) -> int:
        return self._mix(hash(packet.flow), self.salt) % nports


class PerTsoRouting(RoutingPolicy):
    """Hash (five-tuple, TSO burst id): bursts spray, packets inside don't."""

    def __init__(self, salt: int = 0x7E570):
        self.salt = salt

    def choose(self, packet: Packet, nports: int) -> int:
        burst = packet.tso_id if packet.tso_id is not None else -1
        return self._mix(hash((packet.flow, burst)), self.salt) % nports


class PerPacketRouting(RoutingPolicy):
    """Spray every packet independently (round-robin or uniform random)."""

    def __init__(self, rng: Optional[random.Random] = None):
        #: With an rng, choices are uniform random; without, round-robin.
        self._rng = rng
        self._counter = 0

    def choose(self, packet: Packet, nports: int) -> int:
        if self._rng is not None:
            return self._rng.randrange(nports)
        self._counter = (self._counter + 1) % nports
        return self._counter


class FlowletRouting(RoutingPolicy):
    """CONGA-style flowlet switching (§2.2's related-work middle ground).

    A flow's packets keep their current path while they arrive back to
    back; a gap longer than ``flowlet_gap_ns`` ends the flowlet, and the
    next burst may take a new path.  If the gap exceeds the path-delay
    skew, no reordering reaches the end host — the property CONGA relies on
    so that it "eliminate[s] almost all packet reordering seen at the
    end-host" without a resilient stack.

    Needs a clock: pass the simulation ``engine`` so gap detection reads
    ``sim.time`` directly, or rely on the switch calling :meth:`observe`
    with arrival times (our :class:`~repro.fabric.switch.Switch` does this
    automatically when the policy exposes ``wants_time``).  Both paths see
    the same engine clock; the explicit ``engine`` makes the policy safe
    to use outside a switch too.

    Emits the same ``flowcut_pin`` / ``flowcut_move`` trace events as
    :class:`~repro.fabric.flowcut.FlowcutRouting` (with
    ``policy="flowlet"``), so the two arms of the fabric comparison read
    identically in traces (see docs/fabric.md).
    """

    wants_time = True

    def __init__(self, rng: random.Random, flowlet_gap_ns: int = 100_000,
                 *, engine=None):
        if flowlet_gap_ns < 0:
            raise ValueError(f"flowlet gap must be >= 0, got {flowlet_gap_ns}")
        self._rng = rng
        self.flowlet_gap_ns = flowlet_gap_ns
        #: Optional engine; when set, :meth:`choose` reads its clock
        #: directly instead of depending on an ``observe`` call.
        self._engine = engine
        #: flow -> (current port, last packet time)
        self._state: dict = {}
        self._now = 0
        self.flowlets_started = 0
        #: Flowlet boundaries that actually changed uplink.
        self.flowlets_moved = 0
        self.tracer = trace_runtime.current()

    def observe(self, now: int) -> None:
        """Supply the current time for gap detection."""
        self._now = now

    def choose(self, packet: Packet, nports: int) -> int:
        now = self._engine.now if self._engine is not None else self._now
        entry = self._state.get(packet.flow)
        if entry is not None:
            port, last = entry
            if now - last <= self.flowlet_gap_ns:
                self._state[packet.flow] = (port, now)
                return port
        port = self._rng.randrange(nports)
        self._state[packet.flow] = (port, now)
        self.flowlets_started += 1
        if entry is not None and port != entry[0]:
            self.flowlets_moved += 1
            if self.tracer is not None:
                self.tracer.flowcut_move(now, packet.flow, "flowlet",
                                         entry[0], port)
        elif entry is None and self.tracer is not None:
            self.tracer.flowcut_pin(now, packet.flow, "flowlet", port)
        return port

"""Sketch-based data-plane reordering detection (the Princeton design).

Zheng, Yu & Rexford ("Detecting TCP Packet Reordering in the Data Plane",
arXiv:2301.00058) showed a switch can *measure* TCP reordering with the
few hundred kilobytes of register memory a programmable data plane
actually has, instead of the per-flow gigabytes an end-host sees.  This
module reproduces that design point inside the simulated fabric:

* a **compact flow table** — fixed slots holding only a 32-bit flow
  signature, the highest sequence watermark, and a last-touched tick;
  2-choice hashing, stale-slot reclamation, and oldest-of-two eviction
  under pressure.  No flow keys are stored: collisions and evictions are
  the price of boundedness, and exactly what the precision/recall grading
  measures.
* a **count-min sketch** accumulating *reordered bytes* per flow, whose
  (over-)estimates feed
* a small **heavy-reorderer store** keeping actual flow identities for
  flows whose estimate crossed the report threshold — the switch's answer
  to "which flows is the fabric reordering?".

All three structures are sized from one ``memory_budget_bytes`` knob, so
the memory→accuracy tradeoff is a single axis (docs/fabric.md tabulates
it).  Ground truth for grading comes from
:class:`repro.trace.groundtruth.GroundTruthSink`, which watches the same
packets with unbounded state.

Determinism: everything hashes through :meth:`_mix`-style integer mixing
of the :class:`~repro.net.addr.FiveTuple`'s precomputed deterministic
hash; staleness uses a logical packet tick, not wall or simulation time —
the detector needs no engine and produces identical output for identical
packet sequences.

Cost contract: a switch holds ``detector=None`` by default and the hot
path guards with ``if detector is not None`` — the disabled path
allocates nothing (pinned by ``benchmarks/test_fabric_overhead.py``).
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Dict, Optional, Set

#: Modeled register cost of one flow-table slot: 32-bit signature +
#: 32-bit sequence watermark + 32-bit tick, padded to 16 bytes.
_SLOT_BYTES = 16
#: Modeled cost of one count-min counter (32-bit byte count).
_COUNTER_BYTES = 4
#: Modeled cost of one heavy-store entry (flow id + estimate).
_HEAVY_BYTES = 16

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix(value: int, salt: int) -> int:
    """The fabric's cheap deterministic integer hash (see routing.py)."""
    h = (value ^ salt) * 0x9E3779B97F4A7C15 & _MASK64
    h ^= h >> 31
    return h


@dataclass(frozen=True)
class DetectorConfig:
    """Sizing and reporting knobs, all derived from one memory budget."""

    #: Total register budget across flow table + sketch + heavy store.
    memory_budget_bytes: int = 8192
    #: Reordered-byte estimate at which a flow is reported heavy.
    heavy_threshold_bytes: int = 10_000
    #: Flow slots idle this many observed packets are reclaimable.
    stale_after: int = 4096
    #: Count-min rows (independent hash functions).
    sketch_rows: int = 2

    def __post_init__(self):
        if self.memory_budget_bytes < 256:
            raise ValueError(
                f"budget too small to size all three structures: "
                f"{self.memory_budget_bytes} < 256 bytes")
        if self.heavy_threshold_bytes < 1:
            raise ValueError("heavy threshold must be positive")
        if self.sketch_rows < 1:
            raise ValueError("need at least one sketch row")

    @property
    def flow_slots(self) -> int:
        """Half the budget buys flow-table slots."""
        return max(2, (self.memory_budget_bytes // 2) // _SLOT_BYTES)

    @property
    def sketch_width(self) -> int:
        """Three eighths of the budget buys count-min counters."""
        budget = self.memory_budget_bytes * 3 // 8
        return max(2, budget // (_COUNTER_BYTES * self.sketch_rows))

    @property
    def heavy_capacity(self) -> int:
        """One eighth of the budget buys heavy-store entries."""
        return max(2, (self.memory_budget_bytes // 8) // _HEAVY_BYTES)


@dataclass
class DetectorStats:
    """Operational counters (distinct from the reordering answer)."""

    packets: int = 0
    #: Packets that matched a tracked flow and arrived below its watermark.
    reordered_packets: int = 0
    #: Fresh slot installs (first sight of a signature).
    inserts: int = 0
    #: Installs that displaced a live entry (table pressure).
    evictions: int = 0
    #: Installs into a slot whose entry had gone stale.
    stale_reclaims: int = 0
    #: Heavy-store inserts that displaced the smallest estimate.
    heavy_evictions: int = 0


class ReorderDetector:
    """Per-switch reordering telemetry under a fixed memory budget.

    Attach to an egress ToR (see ``Switch.attach_detector``); call
    :meth:`observe` once per host-bound data packet.  Query
    :meth:`heavy_reorderers` for the reported flow set and
    :meth:`estimate` for a flow's sketched reordered-byte count.
    """

    def __init__(self, config: Optional[DetectorConfig] = None,
                 *, salt: int = 0xD7EC7):
        self.config = config if config is not None else DetectorConfig()
        cfg = self.config
        self.salt = salt
        # The three per-packet hash salts, precomputed (observe inlines
        # the mixing; this is the hottest per-packet path in the fabric).
        self._salt_sig = salt ^ 0x516
        self._salt_i1 = salt
        self._salt_i2 = salt ^ 0xBEEF
        self._slots = cfg.flow_slots
        # Parallel slot columns: signature 0 marks an empty slot.
        self._sig = array("L", [0]) * self._slots
        self._expected = array("q", [0]) * self._slots
        self._tick_col = array("q", [0]) * self._slots
        self._rows = [array("q", [0]) * cfg.sketch_width
                      for _ in range(cfg.sketch_rows)]
        self._row_salts = [_mix(salt, 0xA11CE + r)
                           for r in range(cfg.sketch_rows)]
        #: flow -> last estimate at crossing time (real keys, bounded).
        self._heavy: Dict[object, int] = {}
        self._tick = 0
        self.stats = DetectorStats()

    # -- the per-packet path ---------------------------------------------------

    def observe(self, flow, seq: int, end_seq: int,
                payload_len: int) -> None:
        """One data packet headed for a directly-attached host."""
        self._tick += 1
        self.stats.packets += 1
        h = hash(flow)
        # Three inlined _mix() calls — this is the hottest fabric path.
        m = (h ^ self._salt_sig) * 0x9E3779B97F4A7C15 & _MASK64
        sig = (m ^ (m >> 31)) & 0xFFFFFFFF
        if sig == 0:
            sig = 1
        m = (h ^ self._salt_i1) * 0x9E3779B97F4A7C15 & _MASK64
        i1 = (m ^ (m >> 31)) % self._slots
        m = (h ^ self._salt_i2) * 0x9E3779B97F4A7C15 & _MASK64
        i2 = (m ^ (m >> 31)) % self._slots

        idx = -1
        if self._sig[i1] == sig:
            idx = i1
        elif self._sig[i2] == sig:
            idx = i2

        if idx >= 0:
            expected = self._expected[idx]
            if seq < expected:
                self.stats.reordered_packets += 1
                self._sketch_add(h, payload_len, flow)
            if end_seq > expected:
                self._expected[idx] = end_seq
            self._tick_col[idx] = self._tick
            return

        # Miss: install. Prefer an empty slot, then a stale one, then
        # displace whichever candidate was touched longer ago.
        if self._sig[i1] == 0:
            idx = i1
        elif self._sig[i2] == 0:
            idx = i2
        else:
            stale_before = self._tick - self.config.stale_after
            if self._tick_col[i1] < stale_before:
                idx = i1
                self.stats.stale_reclaims += 1
            elif self._tick_col[i2] < stale_before:
                idx = i2
                self.stats.stale_reclaims += 1
            else:
                idx = i1 if self._tick_col[i1] <= self._tick_col[i2] else i2
                self.stats.evictions += 1
        self._sig[idx] = sig
        self._expected[idx] = end_seq
        self._tick_col[idx] = self._tick
        self.stats.inserts += 1

    def _sketch_add(self, h: int, payload_len: int, flow) -> None:
        cfg = self.config
        width = cfg.sketch_width
        estimate = None
        for r, row in enumerate(self._rows):
            j = _mix(h, self._row_salts[r]) % width
            row[j] += payload_len
            if estimate is None or row[j] < estimate:
                estimate = row[j]
        if estimate >= cfg.heavy_threshold_bytes:
            self._report_heavy(flow, estimate)

    def _report_heavy(self, flow, estimate: int) -> None:
        heavy = self._heavy
        if flow in heavy or len(heavy) < self.config.heavy_capacity:
            heavy[flow] = estimate
            return
        # Full: displace the smallest estimate, but only for a larger one.
        victim = min(heavy, key=heavy.__getitem__)
        if heavy[victim] < estimate:
            del heavy[victim]
            heavy[flow] = estimate
            self.stats.heavy_evictions += 1

    # -- the answers -----------------------------------------------------------

    def heavy_reorderers(self) -> Set[object]:
        """Flows reported as heavy reorderers (real flow identities)."""
        return set(self._heavy)

    def estimate(self, flow) -> int:
        """Count-min estimate of the flow's reordered bytes (never under
        the true value for flows the table tracked continuously)."""
        h = hash(flow)
        width = self.config.sketch_width
        return min(row[_mix(h, self._row_salts[r]) % width]
                   for r, row in enumerate(self._rows))

    @property
    def tracked_flows(self) -> int:
        """Occupied flow-table slots."""
        return sum(1 for s in self._sig if s != 0)

    @property
    def memory_bytes(self) -> int:
        """Modeled register usage (≤ the configured budget)."""
        cfg = self.config
        return (self._slots * _SLOT_BYTES
                + cfg.sketch_rows * cfg.sketch_width * _COUNTER_BYTES
                + cfg.heavy_capacity * _HEAVY_BYTES)

    # -- metrics export --------------------------------------------------------

    def bind_metrics(self, registry, prefix: str) -> None:
        """Register gauges on a :class:`~repro.trace.metrics.MetricsRegistry`.

        Uses gauges (sampled at read time) rather than counters so the
        per-packet path stays registry-free.
        """
        registry.gauge(f"{prefix}.packets", lambda: self.stats.packets)
        registry.gauge(f"{prefix}.reordered_packets",
                       lambda: self.stats.reordered_packets)
        registry.gauge(f"{prefix}.tracked_flows",
                       lambda: self.tracked_flows)
        registry.gauge(f"{prefix}.evictions", lambda: self.stats.evictions)
        registry.gauge(f"{prefix}.heavy_flows", lambda: len(self._heavy))
        registry.gauge(f"{prefix}.memory_bytes", lambda: self.memory_bytes)

"""The NetFPGA-10G reordering switch of Figure 11.

"Two hosts are connected by a NetFPGA-10G switch, which hashes each inbound
packet to one of two output queues uniformly at random.  The delay of each
output queue can be configured per-packet to precisely control the amount
of reordering seen by the hosts."

We model the two queues as parallel line-rate transmitters into the same
sink, the second adding a configurable extra delay τ.  A packet sent to the
slow queue arrives τ later than its wire position — exactly the paper's
knob for the Figure 12/13/14 sweeps.
"""

from __future__ import annotations

import random

from repro.fabric.link import PacketSink, QueuedLink
from repro.net.packet import Packet
from repro.sim.engine import Engine


class ReorderingSwitch:
    """Uniform-random two-queue delay switch between one pair of hosts."""

    def __init__(
        self,
        engine: Engine,
        sink: PacketSink,
        rng: random.Random,
        *,
        rate_gbps: float = 10.0,
        delay_ns: int = 250_000,
        prop_delay_ns: int = 500,
        name: str = "netfpga",
    ):
        self._rng = rng
        self.delay_ns = delay_ns
        self.fast_queue = QueuedLink(
            engine, rate_gbps, sink, prop_delay_ns=prop_delay_ns,
            name=f"{name}.fast",
        )
        self.slow_queue = QueuedLink(
            engine, rate_gbps, sink, prop_delay_ns=prop_delay_ns + delay_ns,
            name=f"{name}.slow",
        )

    def receive(self, packet: Packet) -> None:
        """Hash to the fast or slow queue with probability 1/2 each."""
        if self._rng.random() < 0.5:
            packet.path_id = 0
            self.fast_queue.enqueue(packet)
        else:
            packet.path_id = 1
            self.slow_queue.enqueue(packet)

    @property
    def packets_delayed(self) -> int:
        """Packets that took the slow queue."""
        return self.slow_queue.stats.packets

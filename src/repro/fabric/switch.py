"""An output-queued switch with direct routes and load-balanced uplinks."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.fabric.link import QueuedLink
from repro.fabric.routing import EcmpRouting, RoutingPolicy
from repro.net.packet import Packet


class Switch:
    """Forwards by destination: directly-attached hosts win, else an uplink.

    A ToR registers its local hosts as direct routes and its spine links as
    uplinks; a spine registers every host via the downlink toward the host's
    ToR.  The uplink-selection policy is the experiment's load-balancing
    granularity knob (Figure 20).
    """

    def __init__(self, name: str = "switch",
                 policy: Optional[RoutingPolicy] = None,
                 engine=None):
        self.name = name
        self.policy: RoutingPolicy = policy if policy is not None else EcmpRouting()
        #: Needed only by time-aware policies (flowlet/flowcut switching).
        self.engine = engine
        self._direct: Dict[int, QueuedLink] = {}
        self.uplinks: List[QueuedLink] = []
        #: Optional reordering telemetry on the host-bound path
        #: (see repro.fabric.detector); None costs nothing per packet.
        self.detector = None
        #: Packets with no matching route (should stay zero in experiments).
        self.unroutable = 0

    def add_route(self, dst: int, link: QueuedLink) -> None:
        """Route packets destined for host ``dst`` out of ``link``."""
        self._direct[dst] = link

    def add_uplink(self, link: QueuedLink) -> None:
        """Register a load-balanced uplink for non-local destinations.

        Congestion-aware policies (flowcut switching) get sight of the
        uplink queues via ``bind_links`` as they are registered.
        """
        self.uplinks.append(link)
        bind = getattr(self.policy, "bind_links", None)
        if bind is not None:
            bind(self.uplinks)

    def attach_detector(self, detector) -> None:
        """Observe host-bound data packets with a reordering detector."""
        self.detector = detector

    def direct_links(self) -> List[QueuedLink]:
        """The registered direct (host-facing) links, in route order."""
        return list(self._direct.values())

    def receive(self, packet: Packet) -> None:
        """Forward one packet."""
        direct = self._direct.get(packet.flow.dst)
        if direct is not None:
            if self.detector is not None and packet.payload_len > 0:
                self.detector.observe(packet.flow, packet.seq,
                                      packet.end_seq, packet.payload_len)
            direct.enqueue(packet)
            return
        if not self.uplinks:
            self.unroutable += 1
            return
        if getattr(self.policy, "wants_time", False) and self.engine is not None:
            self.policy.observe(self.engine.now)
        index = self.policy.choose(packet, len(self.uplinks))
        packet.path_id = index
        self.uplinks[index].enqueue(packet)

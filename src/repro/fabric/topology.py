"""Testbed topology builders — the paper's three experimental setups.

* :func:`build_netfpga_pair` — Figure 11: two hosts across a NetFPGA-10G
  switch with a configurable reordering delay (used by Figs. 12, 13, 14).
* :func:`build_priority_dumbbell` — Figure 17: senders and receivers across
  a strict-priority bottleneck (Figures 1 and 18).
* :func:`build_clos` — Figure 19: a parametric two-stage Clos with
  selectable load-balancing granularity (Figures 9, 10, 15, 16, 20).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.fabric.flowcut import ExitTap
from repro.fabric.host import Host
from repro.fabric.link import QueuedLink
from repro.fabric.netfpga import ReorderingSwitch
from repro.fabric.routing import RoutingPolicy
from repro.fabric.switch import Switch
from repro.faults import runtime as faults_runtime
from repro.faults.controller import FaultEngine
from repro.faults.injectors import LossInjector
from repro.faults.plan import FaultPlan
from repro.nic.nic import GroFactory, NicConfig
from repro.sim.engine import Engine
from repro.steer.policy import SteeringPolicy

#: Builds a routing policy; one instance per switch so round-robin state
#: (and any RNG) is not shared across switches.
PolicyFactory = Callable[[], RoutingPolicy]


@dataclass
class NetfpgaTestbed:
    """Figure 11's two-host reordering rig."""

    sender: Host
    receiver: Host
    switch: ReorderingSwitch
    #: Optional uniform dropper in front of the receiver (Figure 14).
    dropper: Optional[LossInjector]
    #: Sender-side serialisation link (the 10G port).
    sender_link: QueuedLink
    #: Reverse (ACK) path link.
    reverse_link: QueuedLink
    #: Armed fault engine when a fault plan is active (see repro.faults).
    faults: Optional[FaultEngine] = None


def build_netfpga_pair(
    engine: Engine,
    rng: random.Random,
    gro_factory: GroFactory,
    *,
    rate_gbps: float = 10.0,
    reorder_delay_ns: int = 250_000,
    drop_p: float = 0.0,
    nic_config: Optional[NicConfig] = None,
    sender_gro_factory: Optional[GroFactory] = None,
    fault_plan: Optional[FaultPlan] = None,
    receiver_steering: Optional[SteeringPolicy] = None,
) -> NetfpgaTestbed:
    """Two hosts joined by a reordering switch on the data direction.

    Data (host 0 → host 1) traverses the sender's line-rate port, then the
    two-queue reordering switch, then (optionally) a uniform dropper.  ACKs
    return over a plain link so control traffic is never reordered — the
    same asymmetry the testbed had.

    When a fault plan is supplied (or installed process-wide — see
    :mod:`repro.faults.runtime`), its wire faults are chained in front of
    the receiver and its link/NIC faults are bound to the data-direction
    queues; host-layer faults need receivers bound by the caller via
    ``testbed.faults.bind(receivers=...)``.  With no plan the packet path
    is untouched.

    ``receiver_steering`` selects the receiver NIC's steering policy
    (default RSS); the ``fdir_reordering`` experiments pass a
    :class:`~repro.steer.flow_director.FlowDirectorSteering` here.
    """
    receiver = Host(engine, 1, gro_factory, nic_config=nic_config,
                    name="receiver", steering=receiver_steering)
    sender = Host(
        engine,
        0,
        sender_gro_factory if sender_gro_factory is not None else gro_factory,
        nic_config=nic_config,
        name="sender",
    )

    plan = (fault_plan if fault_plan is not None
            else faults_runtime.current_plan())
    faults: Optional[FaultEngine] = None
    into_receiver = receiver
    if plan is not None:
        faults = FaultEngine(engine, plan)
        into_receiver = faults.wrap(receiver)

    dropper = (
        LossInjector(into_receiver, rng, drop_p) if drop_p > 0.0 else None
    )
    switch = ReorderingSwitch(
        engine,
        dropper if dropper is not None else into_receiver,
        rng,
        rate_gbps=rate_gbps,
        delay_ns=reorder_delay_ns,
    )
    sender_link = QueuedLink(engine, rate_gbps, switch, name="sender-port")
    sender.attach_tx(sender_link)

    reverse_link = QueuedLink(engine, rate_gbps, sender, name="ack-path")
    receiver.attach_tx(reverse_link)

    if faults is not None:
        faults.bind(
            links=[sender_link, switch.fast_queue, switch.slow_queue],
            rxqueues=list(receiver.nic.queues),
            nics=[receiver.nic],
        )
        faults.start()

    return NetfpgaTestbed(sender, receiver, switch, dropper,
                          sender_link, reverse_link, faults)


@dataclass
class PriorityDumbbell:
    """Figure 17's strict-priority bottleneck testbed."""

    senders: List[Host]
    receivers: List[Host]
    #: The contended inter-ToR link, two strict priorities.
    bottleneck: QueuedLink
    left_tor: Switch
    right_tor: Switch


def build_priority_dumbbell(
    engine: Engine,
    gro_factory: GroFactory,
    *,
    n_senders: int = 2,
    n_receivers: int = 2,
    host_rate_gbps: float = 40.0,
    bottleneck_gbps: float = 40.0,
    queue_capacity_bytes: Optional[int] = 512 * 1024,
    ecn_threshold_bytes: Optional[int] = 100 * 1024,
    nic_config: Optional[NicConfig] = None,
) -> PriorityDumbbell:
    """Senders on the left ToR, receivers on the right, one shared
    two-priority bottleneck between the ToRs.

    The bottleneck's queues have finite buffers (``queue_capacity_bytes``
    per priority level) — loss there is what drives the TCP flows to their
    fair shares before the guarantee controller starts.
    """
    left_tor = Switch("left-tor")
    right_tor = Switch("right-tor")

    senders: List[Host] = []
    for i in range(n_senders):
        host = Host(engine, i, gro_factory, nic_config=nic_config,
                    name=f"sender{i}")
        # Host access links do not ECN-mark: marking is a switch-queue
        # behaviour; a host's own NIC queue is invisible to DCTCP.
        host.attach_tx(QueuedLink(engine, host_rate_gbps, left_tor,
                                  capacity_bytes=queue_capacity_bytes,
                                  name=f"sender{i}-up"))
        left_tor.add_route(
            host.host_id,
            QueuedLink(engine, host_rate_gbps, host,
                       capacity_bytes=queue_capacity_bytes,
                       name=f"sender{i}-down"),
        )
        senders.append(host)

    receivers: List[Host] = []
    for i in range(n_receivers):
        host_id = 100 + i
        host = Host(engine, host_id, gro_factory, nic_config=nic_config,
                    name=f"receiver{i}")
        host.attach_tx(QueuedLink(engine, host_rate_gbps, right_tor,
                                  capacity_bytes=queue_capacity_bytes,
                                  name=f"receiver{i}-up"))
        right_tor.add_route(
            host_id,
            QueuedLink(engine, host_rate_gbps, host,
                       capacity_bytes=queue_capacity_bytes,
                       name=f"receiver{i}-down"),
        )
        receivers.append(host)

    bottleneck = QueuedLink(
        engine, bottleneck_gbps, right_tor, priorities=2,
        capacity_bytes=queue_capacity_bytes,
        ecn_threshold_bytes=ecn_threshold_bytes, name="bottleneck"
    )
    left_tor.add_uplink(bottleneck)
    reverse = QueuedLink(engine, bottleneck_gbps, left_tor, priorities=2,
                         name="bottleneck-rev")
    right_tor.add_uplink(reverse)

    return PriorityDumbbell(senders, receivers, bottleneck, left_tor, right_tor)


@dataclass
class ClosNetwork:
    """A two-stage Clos fabric (Figure 19)."""

    hosts: List[Host]
    tors: List[Switch]
    spines: List[Switch]
    #: ToR→spine links, indexed [tor][spine] — the contended uplinks.
    uplinks: List[List[QueuedLink]] = field(default_factory=list)
    #: spine→ToR links, indexed [spine][tor].
    downlinks: List[List[QueuedLink]] = field(default_factory=list)
    #: Per-ToR reordering detectors when a detector_factory was supplied
    #: (see repro.fabric.detector); empty otherwise.
    detectors: List = field(default_factory=list)

    def hosts_of_tor(self, tor_index: int, hosts_per_tor: int) -> List[Host]:
        """The hosts attached to one ToR."""
        return self.hosts[tor_index * hosts_per_tor:(tor_index + 1) * hosts_per_tor]

    def uplink_utilization(self, elapsed_ns: int) -> float:
        """Mean utilisation across every ToR→spine uplink."""
        links = [l for row in self.uplinks for l in row]
        if not links:
            return 0.0
        return sum(l.stats.utilization(elapsed_ns) for l in links) / len(links)


def build_clos(
    engine: Engine,
    gro_factory: GroFactory,
    policy_factory: PolicyFactory,
    *,
    n_tors: int = 2,
    hosts_per_tor: int = 8,
    n_spines: int = 2,
    host_rate_gbps: float = 40.0,
    uplink_rate_gbps: float = 40.0,
    nic_config: Optional[NicConfig] = None,
    queue_capacity_bytes: Optional[int] = None,
    ecn_threshold_bytes: Optional[int] = None,
    detector_factory: Optional[Callable] = None,
) -> ClosNetwork:
    """Build hosts ↔ ToRs ↔ spines with one uplink per (ToR, spine) pair.

    Host ids are assigned ``tor_index * hosts_per_tor + i``.  Each ToR
    load-balances non-local traffic over its spine uplinks using a fresh
    policy from ``policy_factory`` — swap in ECMP / per-TSO / per-packet to
    reproduce the Figure 20 comparison.

    Two fabric-side extensions wire themselves in automatically:

    * If the ToR policies are flowcut policies (they expose
      ``packet_exited``), every spine→ToR downlink terminates in an
      :class:`~repro.fabric.flowcut.ExitTap` that notifies the *source*
      ToR's policy at the path reconvergence point, and the policies are
      switched to exact in-flight drain detection — the configuration
      whose in-order delivery the property tests prove.
    * If ``detector_factory`` is given, each ToR gets a fresh reordering
      detector (see :mod:`repro.fabric.detector`) observing its host-bound
      data packets; they are returned in ``ClosNetwork.detectors`` in ToR
      order.
    """
    tors = [Switch(f"tor{t}", policy=policy_factory(), engine=engine)
            for t in range(n_tors)]
    spines = [Switch(f"spine{s}") for s in range(n_spines)]

    detectors: List = []
    if detector_factory is not None:
        for tor in tors:
            detector = detector_factory()
            tor.attach_detector(detector)
            detectors.append(detector)

    # Flowcut policies need exit notifications from the reconvergence
    # point; map a packet back to its source ToR's policy by host id.
    exact_policies = [
        tor.policy if hasattr(tor.policy, "packet_exited") else None
        for tor in tors
    ]
    wire_taps = any(p is not None for p in exact_policies)
    if wire_taps:
        for policy in exact_policies:
            if policy is not None:
                policy.track_inflight()

    def _resolve(packet, _policies=exact_policies, _hpt=hosts_per_tor):
        src_tor = packet.flow.src // _hpt
        if 0 <= src_tor < len(_policies):
            return _policies[src_tor]
        return None

    hosts: List[Host] = []
    for t, tor in enumerate(tors):
        for i in range(hosts_per_tor):
            host_id = t * hosts_per_tor + i
            host = Host(engine, host_id, gro_factory, nic_config=nic_config,
                        name=f"h{host_id}")
            host.attach_tx(
                QueuedLink(engine, host_rate_gbps, tor, name=f"h{host_id}-up")
            )
            tor.add_route(
                host_id,
                QueuedLink(engine, host_rate_gbps, host,
                           capacity_bytes=queue_capacity_bytes,
                           ecn_threshold_bytes=ecn_threshold_bytes,
                           name=f"h{host_id}-down"),
            )
            hosts.append(host)

    uplinks: List[List[QueuedLink]] = []
    for t, tor in enumerate(tors):
        row = []
        for s, spine in enumerate(spines):
            link = QueuedLink(engine, uplink_rate_gbps, spine,
                              capacity_bytes=queue_capacity_bytes,
                              ecn_threshold_bytes=ecn_threshold_bytes,
                              name=f"tor{t}-spine{s}")
            tor.add_uplink(link)
            row.append(link)
        uplinks.append(row)

    downlinks: List[List[QueuedLink]] = []
    for s, spine in enumerate(spines):
        row = []
        for t, tor in enumerate(tors):
            sink = ExitTap(tor, _resolve) if wire_taps else tor
            link = QueuedLink(engine, uplink_rate_gbps, sink,
                              capacity_bytes=queue_capacity_bytes,
                              ecn_threshold_bytes=ecn_threshold_bytes,
                              name=f"spine{s}-tor{t}")
            for i in range(hosts_per_tor):
                spine.add_route(t * hosts_per_tor + i, link)
            row.append(link)
        downlinks.append(row)

    return ClosNetwork(hosts, tors, spines, uplinks, downlinks, detectors)

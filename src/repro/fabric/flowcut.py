"""Flowcut switching — adaptive load balancing that cannot reorder.

Flowlet switching (:class:`~repro.fabric.routing.FlowletRouting`) re-routes
a flow whenever an idle gap *probably* exceeds the path-delay skew; under
congestion the skew grows past the gap and packets reorder anyway.  Flowcut
switching (Bonato et al., "Flowcut Switching", arXiv:2506.21406) makes the
condition exact: a *flowcut* is the maximal run of a flow's packets pinned
to one path, and the switch may start a new flowcut on a different path
only once **no packet of the previous flowcut remains in the divergent
path segment**.  Every packet then either follows its predecessor on the
same FIFO path or departs after the predecessor has already exited the
divergence — in-order delivery by construction, not by heuristic.

In the two-stage Clos of :func:`~repro.fabric.topology.build_clos` the
divergent segment is exactly "source-ToR uplink → spine → destination-ToR
downlink": paths fork at the source ToR's uplink choice and reconverge
where the spine's downlink terminates at the destination ToR, and every
link is a FIFO.  So the drain condition is countable: :meth:`choose`
increments a per-flowcut in-flight counter at the fork, and an
:class:`ExitTap` wrapped around each spine→ToR downlink decrements it at
the reconvergence point.  ``inflight == 0`` *is* the drain proof.

Switches that cannot see the reconvergence point (no taps wired) fall back
to a conservative time-based drain — behaviourally a flowlet policy with a
congestion-aware path picker — so the class degrades gracefully outside
:func:`build_clos`.

State is hardware-plausible: a bounded table (drained entries evicted
LRU-ish, never live ones), and a stable-hash fallback when the table is
full — an overflowed flow simply behaves like ECMP, which is still
per-flow in-order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.fabric.link import PacketSink, QueuedLink
from repro.fabric.routing import RoutingPolicy
from repro.net.packet import Packet
from repro.trace import runtime as trace_runtime

#: Entries examined per insert when hunting a drained eviction victim.
#: Bounded like a real switch's pipelined table walk; misses fall back to
#: the stable hash rather than stalling on an unbounded scan.
_EVICT_SCAN = 8


class _Flowcut:
    """One table entry: the pinned port and the drain bookkeeping."""

    __slots__ = ("port", "last_ns", "inflight")

    def __init__(self, port: int, last_ns: int):
        self.port = port
        self.last_ns = last_ns
        #: Packets chosen onto the divergent segment and not yet exited
        #: (only maintained in exact-drain mode).
        self.inflight = 0


@dataclass
class FlowcutStats:
    """Per-policy counters (one policy instance per switch)."""

    #: New flowcuts pinned (first packet of a flow, or after eviction).
    pins: int = 0
    #: Drained flowcuts re-pinned to a *different* uplink.
    moves: int = 0
    #: Drained entries evicted to admit new flows.
    evictions: int = 0
    #: Packets routed by the stable-hash fallback because the table was
    #: full of live flowcuts.
    overflows: int = 0
    #: Exit-tap notifications received (exact-drain mode only).
    exits: int = 0
    #: Re-pins forced by the failsafe timer (implies packets were lost —
    #: nonzero only under faults; the in-order proof stands regardless,
    #: because dropped packets cannot arrive out of order).
    failsafe_drains: int = 0


class FlowcutRouting(RoutingPolicy):
    """Pin each flowcut to the least-loaded uplink; move only when drained.

    Drain detection has two modes:

    * **exact** (after :meth:`track_inflight`, wired automatically by
      :func:`~repro.fabric.topology.build_clos`): a flowcut is drained when
      its in-flight count — incremented per :meth:`choose`, decremented by
      the destination ToR's :class:`ExitTap` — reaches zero.  This is the
      provable in-order mode the property tests pin.
    * **time-based** (standalone): drained after ``drain_ns`` of idleness,
      i.e. flowlet semantics with a deliberately conservative gap.

    ``failsafe_drain_ns`` guards exact mode against dropped packets, whose
    exits never arrive: a flowcut idle that long is declared drained and
    its counter reset.  Lost packets cannot be overtaken, so the guarantee
    survives; the event is counted in ``stats.failsafe_drains``.

    Path choice is congestion-aware when :meth:`bind_links` has been called
    (the :class:`~repro.fabric.switch.Switch` does this as uplinks are
    added): least ``queued_bytes`` wins, ties broken by the seeded rng.
    """

    wants_time = True

    def __init__(
        self,
        rng: random.Random,
        *,
        table_capacity: int = 1024,
        drain_ns: int = 500_000,
        failsafe_drain_ns: int = 5_000_000,
        salt: int = 0xF10C,
    ):
        if table_capacity < 1:
            raise ValueError(
                f"flowcut table needs >= 1 entry, got {table_capacity}")
        if drain_ns < 0:
            raise ValueError(f"drain_ns must be >= 0, got {drain_ns}")
        if failsafe_drain_ns < drain_ns:
            raise ValueError(
                f"failsafe_drain_ns ({failsafe_drain_ns}) must be >= "
                f"drain_ns ({drain_ns})")
        self._rng = rng
        self.table_capacity = table_capacity
        self.drain_ns = drain_ns
        self.failsafe_drain_ns = failsafe_drain_ns
        self.salt = salt
        self._table: dict = {}
        self._links: Optional[List[QueuedLink]] = None
        self._exact = False
        self._now = 0
        self.stats = FlowcutStats()
        self.tracer = trace_runtime.current()

    # -- wiring ---------------------------------------------------------------

    def bind_links(self, links: List[QueuedLink]) -> None:
        """Give the policy sight of its uplinks' queue depths."""
        self._links = links

    def track_inflight(self) -> None:
        """Switch to exact drain detection (exit taps are wired)."""
        self._exact = True

    def observe(self, now: int) -> None:
        """Supply the current simulation time (called by the switch)."""
        self._now = now

    # -- routing --------------------------------------------------------------

    def choose(self, packet: Packet, nports: int) -> int:
        now = self._now
        flow = packet.flow
        entry = self._table.get(flow)
        if entry is not None:
            if self._drained(entry, now):
                port = self._best_port(nports)
                if port != entry.port:
                    self.stats.moves += 1
                    if self.tracer is not None:
                        self.tracer.flowcut_move(now, flow, "flowcut",
                                                 entry.port, port)
                    entry.port = port
                entry.inflight = 0
            entry.last_ns = now
            if self._exact:
                entry.inflight += 1
            return entry.port

        if len(self._table) >= self.table_capacity and not self._evict():
            # Table full of live flowcuts: stable hash, still in-order.
            self.stats.overflows += 1
            return self._mix(hash(flow), self.salt) % nports

        port = self._best_port(nports)
        entry = _Flowcut(port, now)
        if self._exact:
            entry.inflight = 1
        self._table[flow] = entry
        self.stats.pins += 1
        if self.tracer is not None:
            self.tracer.flowcut_pin(now, flow, "flowcut", port)
        return port

    def packet_exited(self, flow) -> None:
        """A packet of ``flow`` left the divergent segment (exit tap)."""
        self.stats.exits += 1
        entry = self._table.get(flow)
        if entry is not None and entry.inflight > 0:
            entry.inflight -= 1

    # -- internals ------------------------------------------------------------

    def _drained(self, entry: _Flowcut, now: int) -> bool:
        if self._exact:
            if entry.inflight == 0:
                return True
            if now - entry.last_ns > self.failsafe_drain_ns:
                self.stats.failsafe_drains += 1
                return True
            return False
        return now - entry.last_ns > self.drain_ns

    def _best_port(self, nports: int) -> int:
        links = self._links
        if links is None or len(links) < nports:
            return self._rng.randrange(nports)
        best = min(links[p].queued_bytes for p in range(nports))
        candidates = [p for p in range(nports)
                      if links[p].queued_bytes == best]
        if len(candidates) == 1:
            return candidates[0]
        return candidates[self._rng.randrange(len(candidates))]

    def _evict(self) -> bool:
        """Evict one drained entry (bounded scan); False if none found."""
        now = self._now
        victim = None
        for i, (flow, entry) in enumerate(self._table.items()):
            if i >= _EVICT_SCAN:
                break
            if self._drained(entry, now):
                victim = flow
                break
        if victim is None:
            return False
        del self._table[victim]
        self.stats.evictions += 1
        return True

    # -- introspection --------------------------------------------------------

    @property
    def active(self) -> int:
        """Flowcut entries currently in the table."""
        return len(self._table)

    def port_of(self, flow) -> Optional[int]:
        """The flow's pinned uplink, or None if untracked."""
        entry = self._table.get(flow)
        return None if entry is None else entry.port

    def inflight_of(self, flow) -> int:
        """The flow's current in-flight count (0 if untracked)."""
        entry = self._table.get(flow)
        return 0 if entry is None else entry.inflight


class ExitTap:
    """Decrements flowcut in-flight counts at the path reconvergence point.

    Wraps the sink of a spine→ToR downlink (the destination ToR itself):
    every packet arriving there has fully left the divergent segment, so
    its *source* ToR's flowcut may be told about the exit before the packet
    is forwarded on.  ``resolve`` maps a packet to the policy that pinned
    it (or None for locally-switched traffic that never forked).
    """

    __slots__ = ("_sink", "_resolve")

    def __init__(self, sink: PacketSink,
                 resolve: Callable[[Packet], Optional[FlowcutRouting]]):
        self._sink = sink
        self._resolve = resolve

    def receive(self, packet: Packet) -> None:
        policy = self._resolve(packet)
        if policy is not None:
            policy.packet_exited(packet.flow)
        self._sink.receive(packet)

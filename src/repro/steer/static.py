"""Pinned static affinity — the ground-truth steering policy.

Every flow is explicitly pinned to a queue (``ethtool -N ... flow-type``
style n-tuple rules); unpinned flows fall back to RSS.  Nothing ever
migrates, so any reordering observed under this policy is, by
construction, *not* the steering layer's doing — which is exactly what an
experiment needs on the control arm when measuring Flow Director's
self-inflicted reordering.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.net.addr import FiveTuple
from repro.steer.policy import SteeringPolicy


class StaticAffinitySteering(SteeringPolicy):
    """An explicit flow → queue pin table with RSS fallback."""

    name = "static"

    def __init__(self, pins: Optional[Mapping[FiveTuple, int]] = None):
        super().__init__()
        self._pins: Dict[FiveTuple, int] = dict(pins) if pins else {}
        self.pinned_hits = 0
        self.fallback_lookups = 0

    def pin(self, flow: FiveTuple, queue: int) -> None:
        """Pin ``flow`` to ``queue`` (indices wrap modulo the queue count)."""
        if queue < 0:
            raise ValueError(f"queue index must be >= 0, got {queue}")
        self._pins[flow] = queue

    def queue_index(self, flow: FiveTuple) -> int:
        queue = self._pins.get(flow)
        if queue is None:
            self.fallback_lookups += 1
            return flow.rss_hash() % self._n
        self.pinned_hits += 1
        return queue % self._n

    def current_queue(self, flow: FiveTuple) -> int:
        queue = self._pins.get(flow)
        if queue is None:
            return flow.rss_hash() % self._n
        return queue % self._n

    def counters(self) -> Dict[str, int]:
        return {
            "pins": len(self._pins),
            "pinned_hits": self.pinned_hits,
            "fallback_lookups": self.fallback_lookups,
        }

"""Per-core receive contexts: the private state the steering stage feeds.

A :class:`CoreSet` owns one :class:`RxCore` per receive core; each core
owns its own :class:`~repro.nic.rxqueue.RxQueue` and, through it, its own
GRO engine with a private ``gro_table`` shard — the §4 independence
invariant ("different RX queues operate independently and have their
private data structures") made structural.  Nothing in a core's context is
reachable from another core, which is what makes per-core parallel engines
(ROADMAP) a scheduling change rather than a locking project.

When a tracer is installed, each shard registers ``steer.shardN.*`` gauges
(occupancy, eviction pressure, deliveries, drops) into the shared
:class:`~repro.trace.metrics.MetricsRegistry`; :meth:`reconcile` writes the
final per-queue poll/drop counters at teardown so multi-queue runs account
every ring-overflow drop to the queue that dropped it.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.analysis import runtime as sanitize_runtime
from repro.core.base import DeliverFn, GroEngine
from repro.nic.rxqueue import RxQueue
from repro.sim.engine import Engine

#: Fields reconciled per queue into the metrics registry at drain time.
RECONCILED_FIELDS = ("polls", "delivered", "dropped", "checksum_drops")


class RxCore:
    """One receive core: its queue, its GRO shard, nothing shared."""

    __slots__ = ("index", "queue", "name", "domain")

    def __init__(self, index: int, queue: RxQueue, name: str):
        self.index = index
        self.queue = queue
        self.name = name
        #: OSAN ownership domain this core executes as (see
        #: repro.analysis.ownership); None when checking is disabled.
        self.domain = None

    @property
    def gro(self) -> GroEngine:
        """This core's private GRO engine."""
        return self.queue.gro

    @property
    def occupancy(self) -> int:
        """Flows resident in this shard's ``gro_table`` right now."""
        table = getattr(self.queue.gro, "table", None)
        return len(table) if table is not None else 0

    @property
    def evictions(self) -> int:
        """Flows evicted from this shard under capacity pressure."""
        return self.queue.gro.stats.total_evictions


class CoreSet:
    """The per-core contexts of one NIC, built and indexed together."""

    def __init__(
        self,
        engine: Engine,
        deliver: DeliverFn,
        gro_factory,
        *,
        num_cores: int,
        coalesce_ns: int,
        coalesce_frames: int,
        ring_size: int,
        columnar: bool = False,
        name: str = "nic",
        tracer=None,
        metrics_prefix: Optional[str] = None,
    ):
        if num_cores < 1:
            raise ValueError(f"need at least one core, got {num_cores}")
        self.name = name
        self.cores: List[RxCore] = []
        for i in range(num_cores):
            queue = RxQueue(
                engine,
                gro_factory(deliver),
                coalesce_ns=coalesce_ns,
                coalesce_frames=coalesce_frames,
                ring_size=ring_size,
                columnar=columnar,
                name=f"{name}.rxq{i}",
            )
            self.cores.append(RxCore(i, queue, f"{name}.core{i}"))
        #: The queues in core order — the steering policy indexes into this.
        self.queues: List[RxQueue] = [core.queue for core in self.cores]
        osan = sanitize_runtime.current_osan()
        if osan is not None:
            # Each RxCore registers its ownership domain and claims its
            # private queue + table shard (docs/shardcheck.md).
            for core in self.cores:
                core.domain = osan.register_domain(core.name)
                core.queue.claim(core.domain)
        if tracer is not None and metrics_prefix is not None:
            self._bind_metrics(tracer, metrics_prefix)

    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self) -> Iterator[RxCore]:
        return iter(self.cores)

    def _bind_metrics(self, tracer, prefix: str) -> None:
        metrics = tracer.metrics
        for core in self.cores:
            shard = f"{prefix}.shard{core.index}"
            metrics.gauge(f"{shard}.occupancy",
                          lambda c=core: c.occupancy)
            metrics.gauge(f"{shard}.evictions",
                          lambda c=core: c.evictions)
            metrics.gauge(f"{shard}.delivered",
                          lambda c=core: c.queue.delivered)
            metrics.gauge(f"{shard}.dropped",
                          lambda c=core: c.queue.dropped)

    # -- teardown accounting --------------------------------------------------

    def reconcile(self, metrics) -> None:
        """Write final per-queue counters into ``metrics``.

        Idempotent: counters are raised to each queue's current totals, so
        calling again after more traffic tops them up and calling twice in
        a row changes nothing.  This is what lets a multi-queue run account
        every ring-overflow drop per queue instead of only the NIC-level
        ``dropped`` aggregate.
        """
        for core in self.cores:
            queue = core.queue
            for field in RECONCILED_FIELDS:
                counter = metrics.counter(f"{queue.name}.{field}")
                value = getattr(queue, field)
                if value > counter.value:
                    counter.inc(value - counter.value)

    # -- aggregates -----------------------------------------------------------

    def totals(self) -> dict:
        """Per-coreset sums of the reconciled fields, plus occupancy."""
        out = {field: sum(getattr(c.queue, field) for c in self.cores)
               for field in RECONCILED_FIELDS}
        out["occupancy"] = sum(c.occupancy for c in self.cores)
        out["evictions"] = sum(c.evictions for c in self.cores)
        return out

    def imbalance(self) -> float:
        """Max/mean delivered-packets ratio across cores (1.0 = perfect).

        The steering-quality headline: RSS should sit near 1, a churning
        Flow Director drifts as migrations pile flows onto fewer queues.
        """
        delivered = [core.queue.delivered for core in self.cores]
        total = sum(delivered)
        if total == 0:
            return 1.0
        mean = total / len(delivered)
        return max(delivered) / mean

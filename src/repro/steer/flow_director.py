"""ATR-style Flow Director steering — the self-inflicted reordering source.

Intel's Application Targeted Routing keeps a bounded hash table of
flow → queue rules, installed from *sampled* transmit-side traffic so a
flow's RX packets follow the core its application runs on.  "Why Does Flow
Director Cause Packet Reordering?" (PAPERS.md) documents the pathology this
module reproduces: when the affinity assignment changes (the scheduler
moves the application, or the table is flushed), the rule is rewritten only
at the *next sampled packet* — so in-flight packets of the moved flow land
on two queues, and the flow's byte stream reaches TCP out of order even
though the fabric delivered every packet in order.

The model, end to end:

* **Rules** live in a bounded table.  ``signature`` mode mirrors the
  hardware: one slot per hash bucket, a colliding new flow *overwrites* the
  incumbent (that overwrite is the eviction-pressure metric).  ``lru``
  mode is the idealised software variant.
* **Affinity** (which core a flow's application "runs on") is a
  deterministic mix of the flow hash with one of ``groups`` salts;
  :meth:`rebalance` re-salts ``migrate_fraction`` of the groups from the
  policy's seeded stream — the scheduler shuffling applications across
  cores.
* **Sampling**: every ``sample_rate``-th steered packet stands in for the
  echoed TX traffic and (re)installs its flow's rule toward the flow's
  current affinity.  Between a rebalance and the next sample, packets keep
  following the stale rule — exactly the window that manufactures the
  two-queue straddle.

Unmatched flows fall back to RSS, so a freshly flushed table degrades to
:class:`~repro.steer.policy.RssSteering` (a mass migration) rather than
dropping anything.  Every counter is deterministic given the seed stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.addr import FiveTuple
from repro.steer.policy import SteeringPolicy

#: 64-bit golden-ratio multiplier for the affinity mix.
_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix(h: int, salt: int) -> int:
    """A well-mixed 64-bit hash of (flow hash, salt)."""
    x = ((h ^ salt) * _GOLDEN) & _MASK64
    return x ^ (x >> 31)


@dataclass(frozen=True)
class FlowDirectorConfig:
    """Knobs of the ATR model."""

    #: Rule-table capacity (slots in ``signature`` mode, rules in ``lru``).
    table_size: int = 8192
    #: Install/update a rule every Nth steered packet (ATR samples TX
    #: traffic at a configurable rate; ixgbe's default is 20).
    sample_rate: int = 20
    #: ``signature`` — hash-indexed slots, collisions overwrite (hardware);
    #: ``lru`` — least-recently-used rule evicted (idealised).
    eviction: str = "signature"
    #: Affinity groups; ``rebalance(fraction)`` re-salts ``fraction`` of
    #: them, so a fraction-f rebalance migrates ~f of the flows.
    groups: int = 64

    def __post_init__(self) -> None:
        if self.table_size < 1:
            raise ValueError(f"table_size must be >= 1, got {self.table_size}")
        if self.sample_rate < 1:
            raise ValueError(
                f"sample_rate must be >= 1, got {self.sample_rate}")
        if self.eviction not in ("signature", "lru"):
            raise ValueError(
                f"eviction must be 'signature' or 'lru', got "
                f"{self.eviction!r}")
        if self.groups < 1:
            raise ValueError(f"groups must be >= 1, got {self.groups}")


class _Rule:
    """One installed flow → queue rule."""

    __slots__ = ("flow", "queue", "last_queue")

    def __init__(self, flow: FiveTuple, queue: int, last_queue: int):
        self.flow = flow
        self.queue = queue
        #: The queue this flow's previous packet actually landed on — the
        #: probe that detects cross-queue (reordering-capable) handoffs.
        self.last_queue = last_queue


class FlowDirectorSteering(SteeringPolicy):
    """Bounded flow-affinity steering with migration on rebalance."""

    name = "flow_director"

    def __init__(self, config: Optional[FlowDirectorConfig] = None,
                 rng: Optional[random.Random] = None):
        super().__init__()
        self.config = config if config is not None else FlowDirectorConfig()
        #: Seeded stream for rebalance salts (experiments pass a named
        #: ``sim.rng`` stream so churn replays byte-identically).
        self._rng = (rng if rng is not None
                     else random.Random(0x51EE12))  # det: allow(raw-rng) -- constant-seeded fallback for standalone use; experiments inject a named RngRegistry stream
        self._salts = [self._rng.getrandbits(32)
                       for _ in range(self.config.groups)]
        self._cursor = 0
        self._tick = 0
        #: flow -> rule (lru mode) / bucket -> rule (signature mode); both
        #: bounded by ``table_size``.
        self._rules: Dict = {}
        # Counters (see docs/steering.md for the vocabulary).
        self.hits = 0
        self.misses = 0
        self.installs = 0
        self.rule_updates = 0
        self.migrations = 0
        self.rule_evictions = 0
        self.cross_queue_events = 0
        self.rebalances = 0
        self.groups_moved = 0
        self.table_flushes = 0
        self.rules_flushed = 0

    # -- wiring ---------------------------------------------------------------

    def _bind_metrics(self, tracer, prefix: str) -> None:
        metrics = tracer.metrics
        metrics.gauge(f"{prefix}.rules", lambda: len(self._rules))
        metrics.gauge(f"{prefix}.hits", lambda: self.hits)
        metrics.gauge(f"{prefix}.misses", lambda: self.misses)
        metrics.gauge(f"{prefix}.migrations", lambda: self.migrations)
        metrics.gauge(f"{prefix}.rule_evictions",
                      lambda: self.rule_evictions)
        metrics.gauge(f"{prefix}.cross_queue_events",
                      lambda: self.cross_queue_events)
        metrics.gauge(f"{prefix}.rebalances", lambda: self.rebalances)
        metrics.gauge(f"{prefix}.table_flushes", lambda: self.table_flushes)

    # -- affinity -------------------------------------------------------------

    def _home(self, h: int) -> int:
        """The queue the flow's application currently runs on."""
        return _mix(h, self._salts[h % self.config.groups]) % self._n

    def _lookup(self, flow: FiveTuple, h: int) -> Optional[_Rule]:
        if self.config.eviction == "signature":
            rule = self._rules.get(h % self.config.table_size)
            if rule is not None and rule.flow == flow:
                return rule
            return None
        return self._rules.get(flow)

    # -- data path ------------------------------------------------------------

    def queue_index(self, flow: FiveTuple) -> int:
        h = flow.rss_hash()
        rule = self._lookup(flow, h)
        if rule is not None:
            self.hits += 1
            queue = rule.queue
            if queue != rule.last_queue:
                # The rule moved since this flow's previous packet: the
                # stream now straddles two queues' private GRO state.
                self.cross_queue_events += 1
                rule.last_queue = queue
        else:
            self.misses += 1
            queue = h % self._n
        self._tick += 1
        if self._tick >= self.config.sample_rate:
            self._tick = 0
            self._install(flow, h)
        return queue

    def current_queue(self, flow: FiveTuple) -> int:
        """Pure probe: no sampling tick, no counters."""
        h = flow.rss_hash()
        rule = self._lookup(flow, h)
        if rule is not None:
            return rule.queue
        return h % self._n

    def _install(self, flow: FiveTuple, h: int) -> None:
        """A sampled packet (the TX-echo stand-in) refreshes its rule."""
        target = self._home(h)
        rule = self._lookup(flow, h)
        if rule is not None:
            if rule.queue != target:
                self.migrations += 1
                if self.tracer is not None and self._engine is not None:
                    self.tracer.steer_migration(self._engine.now, flow,
                                                rule.queue, target)
                if self._osan is not None:
                    # The steer.migration rendezvous: future packets of
                    # this flow belong to the target queue's shard.
                    self._osan.record_migration(flow, rule.queue, target)
                rule.queue = target
            else:
                self.rule_updates += 1
            if self.config.eviction == "lru":
                self._rules[flow] = self._rules.pop(flow)  # touch
            return
        # New rule: the flow's packets were landing on the RSS fallback
        # queue until now, so that is the rule's last-seen queue.
        new_rule = _Rule(flow, target, last_queue=h % self._n)
        if self.config.eviction == "signature":
            slot = h % self.config.table_size
            if slot in self._rules:
                self.rule_evictions += 1
            self._rules[slot] = new_rule
        else:
            if len(self._rules) >= self.config.table_size:
                oldest = next(iter(self._rules))
                del self._rules[oldest]
                self.rule_evictions += 1
            self._rules[flow] = new_rule
        self.installs += 1

    # -- control plane --------------------------------------------------------

    def rebalance(self, migrate_fraction: float = 1.0, *,
                  flush_table: bool = False) -> int:
        """Re-salt ``migrate_fraction`` of the affinity groups.

        Installed rules keep steering to their old queues until the next
        sampled packet of each flow rewrites them — that lag is the
        reordering window.  ``flush_table`` additionally clears every rule
        (the driver-reset case): all flows revert to RSS at once and
        re-install from scratch.
        """
        if not 0.0 <= migrate_fraction <= 1.0:
            raise ValueError(
                f"migrate_fraction must be in [0, 1], got {migrate_fraction}")
        self.rebalances += 1
        moved = 0
        if migrate_fraction > 0.0:
            moved = max(1, round(migrate_fraction * self.config.groups))
            for _ in range(moved):
                group = self._cursor % self.config.groups
                self._cursor += 1
                self._salts[group] = self._rng.getrandbits(32)
        self.groups_moved += moved
        if flush_table:
            self.table_flushes += 1
            self.rules_flushed += len(self._rules)
            self._rules.clear()
        if self.tracer is not None and self._engine is not None:
            self.tracer.steer_rebalance(self._engine.now, moved, flush_table)
        return moved

    # -- reporting ------------------------------------------------------------

    @property
    def rule_count(self) -> int:
        """Rules currently installed (bounded by ``table_size``)."""
        return len(self._rules)

    def counters(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "installs": self.installs,
            "rule_updates": self.rule_updates,
            "migrations": self.migrations,
            "rule_evictions": self.rule_evictions,
            "cross_queue_events": self.cross_queue_events,
            "rebalances": self.rebalances,
            "groups_moved": self.groups_moved,
            "table_flushes": self.table_flushes,
            "rules_flushed": self.rules_flushed,
            "rules": len(self._rules),
        }

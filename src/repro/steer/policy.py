"""The steering stage: which RX queue does a wire packet land on?

Juggler assumes "different RX queues operate independently and have their
private data structures" (§4) and leans on the NIC steering one flow to one
queue.  Real NICs offer more than one way to do that, and the choice is a
*policy*: plain RSS hashing (stateless, stable), Intel Flow Director's
ATR-style per-flow affinity table (stateful — and, per "Why Does Flow
Director Cause Packet Reordering?", capable of manufacturing reordering all
by itself when it migrates a flow between queues), or a pinned static map
(ground truth).  This module defines the interface and the stateless RSS
implementation; :mod:`repro.steer.flow_director` and
:mod:`repro.steer.static` carry the stateful ones.

The cost contract mirrors tracing: when the policy is plain RSS the
steering layer adds one method call over the pre-policy inline hash and
allocates nothing per packet (``benchmarks/test_steer_overhead.py`` holds
that line).  Stateful policies pay only for the state they keep.
"""

from __future__ import annotations

import abc
from typing import Dict, Optional

from repro.net.addr import FiveTuple


class SteeringPolicy(abc.ABC):
    """Maps a flow key to an RX queue index for one NIC.

    A policy instance is **per NIC**: stateful implementations key private
    tables by flow, so sharing one instance across NICs would cross their
    streams.  :meth:`bind` is called exactly once, by the NIC that owns the
    policy, before any packet is steered.

    Two lookup entry points exist on purpose:

    * :meth:`queue_index` is the data path — it may tick samplers, install
      affinity rules, and bump counters;
    * :meth:`current_queue` is a pure probe (tests, introspection,
      ``Nic.queue_for``) — it must not mutate anything.
    """

    #: Short name used by experiment grids and reports.
    name = "abstract"
    #: True when :meth:`queue_index` is a pure function of the flow key —
    #: the columnar NIC demux then consults it once per *flow slot* of a
    #: batch instead of once per packet.  Stateful policies (Flow Director
    #: ticks samplers and installs rules per lookup) must leave this False
    #: so the batch path drives them per row in arrival order.
    stateless = False

    def __init__(self) -> None:
        self._n = 1
        self._engine = None
        self.tracer = None
        #: Optional OSAN (repro.analysis.ownership), picked up at bind
        #: time; stateful policies report flow migrations to it — the
        #: ``steer.migration`` rendezvous of the shard isolation contract.
        self._osan = None
        self._bound = False

    # -- wiring ---------------------------------------------------------------

    def bind(self, num_queues: int, *, engine=None, tracer=None,
             metrics_prefix: Optional[str] = None) -> None:
        """Attach this policy to its NIC's queue set.

        ``engine`` (when present) supplies timestamps for trace events;
        ``tracer``/``metrics_prefix`` let stateful policies register their
        ``steer.*`` gauges.  Binding twice is an error — see the class
        docstring.
        """
        if self._bound:
            raise ValueError(
                f"{type(self).__name__} is already bound to a NIC; "
                "steering policies are per-NIC (build one per NIC)")
        if num_queues < 1:
            raise ValueError(f"need at least one RX queue, got {num_queues}")
        self._bound = True
        self._n = num_queues
        self._engine = engine
        self.tracer = tracer
        from repro.analysis import runtime as sanitize_runtime

        self._osan = sanitize_runtime.current_osan()
        if tracer is not None and metrics_prefix is not None:
            self._bind_metrics(tracer, metrics_prefix)

    def _bind_metrics(self, tracer, prefix: str) -> None:
        """Register policy gauges (stateless policies register none)."""

    # -- lookups --------------------------------------------------------------

    @abc.abstractmethod
    def queue_index(self, flow: FiveTuple) -> int:
        """The RX queue this flow's next packet lands on (data path)."""

    def current_queue(self, flow: FiveTuple) -> int:
        """Side-effect-free probe of where ``flow`` is steered right now."""
        return self.queue_index(flow)

    # -- control plane --------------------------------------------------------

    def rebalance(self, migrate_fraction: float = 1.0, *,
                  flush_table: bool = False) -> int:
        """A steering rebalance event (core/affinity churn).

        Stateless policies have nothing to rebalance and return 0; Flow
        Director migrates flows.  Returns how many affinity groups moved.
        """
        return 0

    def counters(self) -> Dict[str, int]:
        """Steering counters for reports (empty for stateless policies)."""
        return {}


class RssSteering(SteeringPolicy):
    """Toeplitz-style receive-side scaling: ``rss_hash(flow) % num_queues``.

    Exactly the demux the NIC model shipped with before the steering layer
    existed — the hash is computed once at :class:`FiveTuple` construction,
    so the per-packet cost is one attribute load and one modulo.  Stateless:
    a flow's queue never changes, so RSS never self-inflicts reordering.
    """

    name = "rss"
    stateless = True

    def bind(self, num_queues: int, *, engine=None, tracer=None,
             metrics_prefix: Optional[str] = None) -> None:
        super().bind(num_queues, engine=engine, tracer=tracer,
                     metrics_prefix=metrics_prefix)
        # Fast path, pinned as instance attributes at bind time: the demux
        # runs per wire packet, so it reads the precomputed ``_rss`` slot
        # through a closure with the queue count as a default arg — no
        # ``self`` hops left (the cost contract in the module docstring).
        def queue_index(flow: FiveTuple, _n: int = num_queues) -> int:
            return flow._rss % _n

        self.queue_index = queue_index  # type: ignore[method-assign]
        self.current_queue = queue_index  # type: ignore[method-assign]

    def queue_index(self, flow: FiveTuple) -> int:
        return flow.rss_hash() % self._n

    current_queue = queue_index

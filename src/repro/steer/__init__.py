"""repro.steer — the multi-core receive path's steering stage.

Which RX queue does a wire packet land on?  Juggler (§4) assumes the NIC
answers that question *stably* — one flow, one queue, private GRO state —
but real NICs expose several answers with very different failure modes:

* :class:`RssSteering` — stateless Toeplitz-style hashing; stable, and the
  byte-identical default (the pre-steering NIC demux, now a policy).
* :class:`FlowDirectorSteering` — Intel ATR modelled faithfully enough to
  reproduce its documented pathology: sampled rule installs lag affinity
  changes, so a migrating flow's in-flight packets straddle two queues and
  arrive at TCP reordered with zero fabric misbehaviour.
* :class:`StaticAffinitySteering` — explicit pins, the control arm.

:class:`CoreSet` supplies the per-core receive contexts (RX queue + private
GRO shard, per-shard ``steer.*`` metrics) the policies steer into.  The
``steering_churn`` fault kind (repro.faults) drives ``rebalance()`` from
fault plans, and the ``fdir_reordering`` experiment family (repro.
experiments.fdir_reordering) sweeps policy x flow count x churn x engine.
"""

from repro.steer.coreset import CoreSet, RxCore
from repro.steer.flow_director import FlowDirectorConfig, FlowDirectorSteering
from repro.steer.policy import RssSteering, SteeringPolicy
from repro.steer.static import StaticAffinitySteering

__all__ = [
    "SteeringPolicy",
    "RssSteering",
    "FlowDirectorSteering",
    "FlowDirectorConfig",
    "StaticAffinitySteering",
    "CoreSet",
    "RxCore",
]


def make_policy(name: str, **kwargs) -> SteeringPolicy:
    """Build a policy by grid name (``rss``/``flow_director``/``static``).

    ``kwargs`` are forwarded to the policy constructor — the experiment
    runner uses this to hand Flow Director its config and seeded rng.
    """
    if name == "rss":
        return RssSteering()
    if name == "flow_director":
        return FlowDirectorSteering(**kwargs)
    if name == "static":
        return StaticAffinitySteering(**kwargs)
    raise ValueError(
        f"unknown steering policy {name!r} "
        "(expected rss, flow_director, or static)")

"""Plain-text tables — every bench prints the rows its paper figure plots."""

from __future__ import annotations

from typing import List, Sequence


def banner(title: str, width: int = 72) -> str:
    """A section header line."""
    bar = "=" * width
    return f"{bar}\n{title}\n{bar}"


def format_row(cells: Sequence, widths: Sequence[int]) -> str:
    """One aligned table row."""
    parts = []
    for cell, width in zip(cells, widths):
        text = f"{cell:.3f}" if isinstance(cell, float) else str(cell)
        parts.append(text.rjust(width))
    return "  ".join(parts)


def format_table(headers: Sequence[str], rows: List[Sequence]) -> str:
    """A full aligned table with a header rule."""
    widths = [len(h) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [
            f"{c:.3f}" if isinstance(c, float) else str(c) for c in row
        ]
        rendered_rows.append(rendered)
        for i, cell in enumerate(rendered):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for rendered in rendered_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(rendered, widths)))
    return "\n".join(lines)

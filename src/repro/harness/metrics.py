"""Percentiles, histograms and periodic samplers used by every experiment."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.sim.engine import Engine


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for empty input."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def _interpolate(ordered: Sequence[float], q: float) -> float:
    """The q-th percentile of an already-sorted, non-empty sequence."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def percentile(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation; 0.0 if empty."""
    if not values:
        return 0.0
    return _interpolate(sorted(values), q)


def percentiles(values: Sequence[float], qs: Sequence[float]) -> List[float]:
    """Several percentiles with a single sort.

    Returns one value per entry of ``qs``, in order — report code asking for
    (p50, p99, ...) of the same samples should use this rather than calling
    :func:`percentile` repeatedly, which re-sorts per call.
    """
    if not values:
        return [0.0 for _ in qs]
    ordered = sorted(values)
    return [_interpolate(ordered, q) for q in qs]


class Histogram:
    """Fixed-width integer histogram (Figure 16's list-length histograms)."""

    def __init__(self, bin_width: int = 1):
        if bin_width < 1:
            raise ValueError(f"bin_width must be >= 1, got {bin_width}")
        self.bin_width = bin_width
        self._counts: dict[int, int] = {}
        self.total = 0

    def add(self, value: float) -> None:
        """Record one observation."""
        bucket = int(value) // self.bin_width
        self._counts[bucket] = self._counts.get(bucket, 0) + 1
        self.total += 1

    def fraction_at_most(self, value: float) -> float:
        """Fraction of observations <= value."""
        if self.total == 0:
            return 0.0
        limit = int(value) // self.bin_width
        hits = sum(n for b, n in self._counts.items() if b <= limit)
        return hits / self.total

    def buckets(self) -> List[Tuple[int, int]]:
        """Sorted (bucket_start, count) pairs."""
        return sorted(
            (b * self.bin_width, n) for b, n in self._counts.items()
        )


class Sampler:
    """Calls ``probe()`` every ``interval_ns`` and keeps (time, value) pairs.

    ``into`` optionally mirrors each sample into a registered metric — any
    object with ``add(ts, value)``, typically a
    :class:`repro.trace.metrics.Timeseries` from a ``MetricsRegistry`` — so
    experiment samplers feed the same telemetry namespace as everything else.
    """

    def __init__(
        self,
        engine: Engine,
        probe: Callable[[], float],
        interval_ns: int,
        *,
        stop_at_ns: Optional[int] = None,
        into=None,
    ):
        if interval_ns < 1:
            raise ValueError(f"interval must be >= 1 ns, got {interval_ns}")
        self._engine = engine
        self._probe = probe
        self.interval_ns = interval_ns
        self.stop_at_ns = stop_at_ns
        self.into = into
        self.samples: List[Tuple[int, float]] = []

    def start(self) -> None:
        """Begin sampling."""
        self._engine.schedule(self.interval_ns, self._tick)

    def _tick(self) -> None:
        now = self._engine.now
        if self.stop_at_ns is not None and now > self.stop_at_ns:
            return
        value = self._probe()
        self.samples.append((now, value))
        if self.into is not None:
            self.into.add(now, value)
        self._engine.schedule(self.interval_ns, self._tick)

    def values(self) -> List[float]:
        """Just the sampled values."""
        return [v for _, v in self.samples]


class ThroughputProbe:
    """Converts a monotone byte counter into Gb/s over sample intervals."""

    def __init__(self, counter: Callable[[], int], interval_ns: int):
        self._counter = counter
        self._interval_ns = interval_ns
        self._last = counter()

    def __call__(self) -> float:
        current = self._counter()
        gbps = (current - self._last) * 8 / self._interval_ns
        self._last = current
        return gbps

"""Shared experiment plumbing: GRO engine selection by name."""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.base import DeliverFn, GroEngine
from repro.core.chained_gro import ChainedGRO
from repro.core.config import JugglerConfig
from repro.core.juggler import JugglerGRO
from repro.core.presto_gro import PrestoGRO
from repro.core.standard_gro import StandardGRO
from repro.cpu.accounting import GroCpuAccountant
from repro.nic.nic import GroFactory


class GroKind(enum.Enum):
    """Which receive-offload implementation a host runs."""

    JUGGLER = "juggler"
    VANILLA = "vanilla"
    CHAINED = "chained"
    PRESTO = "presto"


def make_gro_factory(
    kind: GroKind,
    config: Optional[JugglerConfig] = None,
    accountant: Optional[GroCpuAccountant] = None,
) -> GroFactory:
    """Build a per-RX-queue GRO factory for the requested engine.

    When an ``accountant`` is given, all queues share it, so its meter
    reports the host's total RX-core work — matching the paper's setup of
    aiming "all flows on a single RX queue".
    """

    def factory(deliver: DeliverFn) -> GroEngine:
        if kind is GroKind.JUGGLER:
            return JugglerGRO(deliver, config, accountant)
        if kind is GroKind.VANILLA:
            return StandardGRO(deliver, accountant)
        if kind is GroKind.CHAINED:
            return ChainedGRO(deliver, accountant)
        if kind is GroKind.PRESTO:
            return PrestoGRO(deliver, config, accountant)
        raise ValueError(f"unknown GRO kind: {kind}")

    return factory

"""Reordering metrics over observed packet arrival sequences.

Quantifies *how much* reordering a path introduced — the quantity the
paper's experiments dial in with the NetFPGA switch and that Juggler's
``ofo_timeout`` must cover.  Metrics follow RFC 4737's spirit:

* **reordered fraction** — packets that arrive after a later-sequenced
  packet already arrived (Type-P-Reordered).
* **displacement** — how many positions early/late a packet arrived versus
  the in-order sequence (reordering extent); its maximum bounds the buffer
  Juggler needs in packets.
* **reorder delay** — how long a late packet's data was blocked: the time
  between its arrival and the arrival of the earliest later-sequenced
  packet that preceded it; its maximum is the paper's τ, the knob
  ``ofo_timeout`` must match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.harness.metrics import mean, percentile


@dataclass
class ReorderStats:
    """Aggregate view of one observation run."""

    packets: int
    reordered: int
    max_displacement: int
    mean_displacement: float
    max_delay_ns: int
    p99_delay_ns: float

    @property
    def reordered_fraction(self) -> float:
        """Fraction of packets that arrived late (RFC 4737 Type-P)."""
        if self.packets == 0:
            return 0.0
        return self.reordered / self.packets


class ReorderObserver:
    """Feed it (sequence, arrival_time) pairs; read the metrics out.

    Sequences may be byte offsets or packet indices — any strictly
    increasing per-flow numbering.  Duplicates (same sequence again) are
    ignored for the reordering metrics, matching RFC 4737.
    """

    def __init__(self) -> None:
        self._arrivals: List[Tuple[int, int]] = []
        self._seen: set = set()
        self.duplicates = 0

    def observe(self, seq: int, now: int) -> None:
        """Record one packet arrival."""
        if seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(seq)
        self._arrivals.append((seq, now))

    @property
    def packets(self) -> int:
        """Distinct packets observed."""
        return len(self._arrivals)

    def stats(self) -> ReorderStats:
        """Compute the aggregate metrics for everything observed so far."""
        n = len(self._arrivals)
        if n == 0:
            return ReorderStats(0, 0, 0, 0.0, 0, 0.0)

        # Rank of each packet in sequence order vs its arrival position.
        order = sorted(range(n), key=lambda i: self._arrivals[i][0])
        rank_of_arrival = [0] * n
        for rank, arrival_index in enumerate(order):
            rank_of_arrival[arrival_index] = rank

        displacements = [abs(pos - rank_of_arrival[pos]) for pos in range(n)]

        reordered = 0
        delays: List[int] = []
        # Ascending record of (sequence, arrival time) each time the running
        # maximum advanced — the candidates for "earliest overtaker".
        frontier: List[Tuple[int, int]] = []
        for pos in range(n):
            seq, now = self._arrivals[pos]
            if frontier and seq < frontier[-1][0]:
                reordered += 1
                # Blocked since the EARLIEST later-sequenced arrival:
                # binary search the frontier for the first seq > ours.
                lo, hi = 0, len(frontier)
                while lo < hi:
                    mid = (lo + hi) // 2
                    if frontier[mid][0] > seq:
                        hi = mid
                    else:
                        lo = mid + 1
                delays.append(now - frontier[lo][1])
            else:
                frontier.append((seq, now))

        return ReorderStats(
            packets=n,
            reordered=reordered,
            max_displacement=max(displacements),
            mean_displacement=mean(displacements),
            max_delay_ns=max(delays) if delays else 0,
            p99_delay_ns=percentile(delays, 99) if delays else 0.0,
        )


def recommend_ofo_timeout(stats: ReorderStats, coalesce_ns: int = 0,
                          headroom: float = 1.2) -> int:
    """The §5.2.1 tuning rule as code: ofo_timeout ≈ τ − τ₀, with headroom.

    τ is the worst observed reorder delay; τ₀ the interrupt-coalescing
    period that re-orders for free inside the ring buffer.  The paper
    advises it is "better to slightly over-estimate" — ``headroom`` supplies
    that margin.
    """
    tau = stats.max_delay_ns
    return max(0, round((tau - coalesce_ns) * headroom))

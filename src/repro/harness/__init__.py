"""Experiment harness: metric collection and plain-text result rendering."""

from repro.harness.metrics import (
    Histogram,
    Sampler,
    ThroughputProbe,
    mean,
    percentile,
    percentiles,
)
from repro.harness.reporting import banner, format_row, format_table
from repro.harness.experiment import GroKind, make_gro_factory

__all__ = [
    "Histogram",
    "Sampler",
    "ThroughputProbe",
    "mean",
    "percentile",
    "percentiles",
    "banner",
    "format_row",
    "format_table",
    "GroKind",
    "make_gro_factory",
]

"""Process-wide fault-plan installation (mirrors ``trace.runtime``).

Testbed builders construct their packet paths internally, so a chaos run
cannot thread a plan through every constructor.  Instead a plan is
*installed* here — explicitly via :func:`install` / :func:`injecting`, or
ambiently via the ``JUGGLER_FAULT_PLAN`` environment variable (a path to a
plan JSON; how CI runs the tier-1 suite under a committed plan).  The
NetFPGA testbed builder consults :func:`current_plan` and arms a
:class:`~repro.faults.controller.FaultEngine` when one is present; with no
plan installed the packet path is exactly what it always was.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

from repro.faults.plan import FaultPlan, load_plan

#: Environment variable naming a plan file to apply ambient chaos from.
ENV_PLAN = "JUGGLER_FAULT_PLAN"

_current: Optional[FaultPlan] = None
#: (path, plan) cache for the env-var source.
_env_cache: Optional[Tuple[str, FaultPlan]] = None


def current_plan() -> Optional[FaultPlan]:
    """The installed plan, else the env-var plan, else None."""
    if _current is not None:
        return _current
    return _from_env()


def install(plan: FaultPlan) -> FaultPlan:
    """Make ``plan`` the process-wide plan for testbeds built next."""
    global _current
    _current = plan
    return plan


def uninstall() -> None:
    """Disable ambient fault injection for testbeds built from now on."""
    global _current
    _current = None


@contextmanager
def injecting(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block."""
    install(plan)
    try:
        yield plan
    finally:
        uninstall()


def _from_env() -> Optional[FaultPlan]:
    global _env_cache
    path = os.environ.get(ENV_PLAN)
    if not path:
        return None
    if _env_cache is not None and _env_cache[0] == path:
        return _env_cache[1]
    plan = load_plan(path)
    _env_cache = (path, plan)
    return plan

"""repro.faults — deterministic fault injection for the whole stack.

A :class:`~repro.faults.plan.FaultPlan` (declarative JSON, mirroring
``campaign.spec``) names fault *kinds* at every layer — wire loss/
duplication/corruption/jitter/blackholes, switch-queue saturation and
CE-mark storms, NIC ring overflow and paused polling, receiver stalls —
with activation windows on the simulation timeline.  The
:class:`~repro.faults.controller.FaultEngine` expands the plan into
scheduled activations, drawing randomness only from named ``sim.rng``
streams so chaos replays byte-identically.  Window boundaries emit
``fault_injected`` / ``fault_cleared`` trace events and ``faults.*``
metrics.

On top sits the resilience matrix (:mod:`repro.faults.experiments`): a
campaign-schedulable sweep of fault kind × intensity × GRO engine.  See
docs/faults.md and ``juggler-repro faults run|matrix``.
"""

from repro.faults.controller import FaultEngine
from repro.faults.injectors import (
    BlackholeInjector,
    BurstLossInjector,
    CorruptInjector,
    DuplicateInjector,
    FaultInjector,
    JitterInjector,
    LossInjector,
    build_injector,
)
from repro.faults.plan import KINDS, WIRE_KINDS, FaultPlan, FaultSpec, load_plan
from repro.faults.runtime import current_plan, injecting, install, uninstall

__all__ = [
    "FaultEngine",
    "FaultInjector",
    "LossInjector",
    "BurstLossInjector",
    "DuplicateInjector",
    "CorruptInjector",
    "JitterInjector",
    "BlackholeInjector",
    "build_injector",
    "FaultPlan",
    "FaultSpec",
    "KINDS",
    "WIRE_KINDS",
    "load_plan",
    "current_plan",
    "install",
    "uninstall",
    "injecting",
]

"""Wire-layer fault injectors: pass-through sinks that misbehave.

Each injector wraps a downstream :class:`PacketSink` and perturbs the
packet stream while :attr:`~FaultInjector.active` is set — losing,
duplicating, corrupting, delaying, or black-holing packets.  Inactive
injectors forward untouched, draw nothing from their rng stream, and
touch no counters, so a closed fault window is invisible to the traffic,
to the random sequence, and to the allocator (the overhead contract
``benchmarks/test_faults_overhead.py`` enforces).

Determinism: every random decision comes from the injector's own
``random.Random`` (a named ``sim.rng`` stream when driven by the
:class:`~repro.faults.controller.FaultEngine`), and decisions are made in
packet-arrival order — which the event engine pins.  Dropped packets are
recycled through :func:`repro.net.pool.release_terminal`, keeping the
packet-pool balance exact under chaos.

:class:`LossInjector` doubles as the repo's only uniform-loss element: it
is what Figure 14's "drop 0.1% of the packets uniformly at random" testbed
wires in front of the receiver (formerly ``fabric.drop.DropElement``, now
unified here).  Its draw pattern — one draw per packet, only when ``p > 0``
— is deliberately identical, keeping fig14's golden output byte-stable.
"""

from __future__ import annotations

import random
from typing import Optional, Protocol

from repro.net.packet import Packet
from repro.net.pool import pooled_or_new, release_terminal
from repro.sim.engine import Engine


class PacketSink(Protocol):
    """Anything that accepts packets at their arrival instant.

    (Structurally identical to ``repro.fabric.link.PacketSink``; declared
    locally so the fault layer has no import edge into the fabric package.)
    """

    def receive(self, packet: Packet) -> None:  # pragma: no cover - protocol
        ...


class FaultInjector:
    """Base pass-through: counters, the active flag, activation hooks."""

    #: Catalog kind this class implements (see plan.KINDS).
    kind = "base"

    def __init__(self, sink: PacketSink, rng: random.Random,
                 name: str = ""):
        self.sink = sink
        self._rng = rng
        self.name = name or self.kind
        #: Perturb only while set; toggled by the FaultEngine timeline.
        self.active = True
        #: Packets forwarded unharmed.
        self.passed = 0
        #: Packets destroyed by this injector.
        self.dropped = 0
        #: Extra copies emitted.
        self.duplicated = 0
        #: Packets whose payload was damaged.
        self.corrupted = 0
        #: Packets forwarded late.
        self.delayed = 0

    def on_activate(self, now: int) -> None:
        """Window opened (state-machine injectors reset here)."""

    def on_clear(self, now: int) -> None:
        """Window closed."""

    def receive(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class LossInjector(FaultInjector):
    """Lose each packet independently with probability ``p``."""

    kind = "loss"

    def __init__(self, sink: PacketSink, rng: random.Random, p: float,
                 name: str = ""):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {p}")
        super().__init__(sink, rng, name)
        self.p = p

    def receive(self, packet: Packet) -> None:
        """Drop or forward one packet."""
        if not self.active:  # closed window: no draw, no bookkeeping
            self.sink.receive(packet)
            return
        if self.p > 0.0 and self._rng.random() < self.p:
            self.dropped += 1
            release_terminal(packet)
            return
        self.passed += 1
        self.sink.receive(packet)


class BurstLossInjector(FaultInjector):
    """Gilbert–Elliott bursty loss: a good/bad two-state channel.

    Each packet first advances the channel state (good->bad with
    ``p_enter``, bad->good with ``p_exit``), then is lost with the state's
    loss rate.  Mean burst length is ``1 / p_exit`` packets.
    """

    kind = "burst_loss"

    def __init__(self, sink: PacketSink, rng: random.Random, *,
                 p_enter: float, p_exit: float, p_loss_bad: float,
                 p_loss_good: float = 0.0, name: str = ""):
        for label, p in (("p_enter", p_enter), ("p_exit", p_exit),
                         ("p_loss_bad", p_loss_bad),
                         ("p_loss_good", p_loss_good)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {p}")
        super().__init__(sink, rng, name)
        self.p_enter = p_enter
        self.p_exit = p_exit
        self.p_loss_bad = p_loss_bad
        self.p_loss_good = p_loss_good
        self.in_bad_state = False

    def on_activate(self, now: int) -> None:
        self.in_bad_state = False

    def receive(self, packet: Packet) -> None:
        """Advance the channel, then drop or forward."""
        if not self.active:
            self.sink.receive(packet)
            return
        rng = self._rng
        if self.in_bad_state:
            if rng.random() < self.p_exit:
                self.in_bad_state = False
        elif rng.random() < self.p_enter:
            self.in_bad_state = True
        p_loss = self.p_loss_bad if self.in_bad_state else self.p_loss_good
        if p_loss > 0.0 and rng.random() < p_loss:
            self.dropped += 1
            release_terminal(packet)
            return
        self.passed += 1
        self.sink.receive(packet)


class DuplicateInjector(FaultInjector):
    """Forward every packet; with probability ``p`` forward a copy too.

    The copy is a distinct wire packet (fresh ``pid``) carrying identical
    header state, allocated from the original's pool when it has one — the
    same mechanics as a fabric retransmitting a frame it already delivered.
    """

    kind = "duplicate"

    def __init__(self, sink: PacketSink, rng: random.Random, p: float,
                 name: str = ""):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"duplicate probability must be in [0, 1], got {p}")
        super().__init__(sink, rng, name)
        self.p = p

    def receive(self, packet: Packet) -> None:
        """Forward, occasionally twice."""
        if not self.active:
            self.sink.receive(packet)
            return
        self.passed += 1
        dup = None
        if self.p > 0.0 and self._rng.random() < self.p:
            dup = pooled_or_new(
                packet.origin, packet.flow, packet.seq, packet.payload_len,
                flags=packet.flags, ack=packet.ack, options=packet.options,
                ce=packet.ce, priority=packet.priority, tso_id=packet.tso_id,
                sent_at=packet.sent_at,
                is_retransmission=packet.is_retransmission,
                rwnd=packet.rwnd, sack=packet.sack)
            dup.path_id = packet.path_id
            self.duplicated += 1
        self.sink.receive(packet)
        if dup is not None:
            self.sink.receive(dup)


class CorruptInjector(FaultInjector):
    """Damage each packet's payload with probability ``p``.

    The frame still travels (it occupies queues and wire time) but fails
    the NIC's checksum verification and is destroyed at the rx ring —
    which is where real corruption becomes loss that the sender discovers
    only via duplicate ACKs or RTO.
    """

    kind = "corrupt"

    def __init__(self, sink: PacketSink, rng: random.Random, p: float,
                 name: str = ""):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"corrupt probability must be in [0, 1], got {p}")
        super().__init__(sink, rng, name)
        self.p = p

    def receive(self, packet: Packet) -> None:
        """Mark and forward."""
        if not self.active:
            self.sink.receive(packet)
            return
        if (self.p > 0.0 and packet.payload_len > 0
                and self._rng.random() < self.p):
            packet.corrupt = True
            self.corrupted += 1
        self.passed += 1
        self.sink.receive(packet)


class JitterInjector(FaultInjector):
    """Hold a random subset of packets back for extra wire time.

    With probability ``p`` a packet is delivered ``U(0, extra_ns_max)``
    late instead of now — later packets overtake it, which is exactly the
    reordering amplification multi-path fabrics produce under churn.
    """

    kind = "jitter"

    def __init__(self, sink: PacketSink, rng: random.Random, engine: Engine,
                 *, p: float, extra_ns_max: int, name: str = ""):
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"jitter probability must be in [0, 1], got {p}")
        if extra_ns_max <= 0:
            raise ValueError(f"extra_ns_max must be > 0, got {extra_ns_max}")
        super().__init__(sink, rng, name)
        self._engine = engine
        self.p = p
        self.extra_ns_max = extra_ns_max

    def receive(self, packet: Packet) -> None:
        """Forward now, or a little later."""
        if not self.active:
            self.sink.receive(packet)
            return
        if self.p > 0.0 and self._rng.random() < self.p:
            self.delayed += 1
            extra = 1 + self._rng.randrange(self.extra_ns_max)
            self._engine.post(extra, self.sink.receive, packet)
            return
        self.passed += 1
        self.sink.receive(packet)


class BlackholeInjector(FaultInjector):
    """Drop everything while active — a link flap / routing blackhole."""

    kind = "blackhole"

    def receive(self, packet: Packet) -> None:
        """Swallow or forward."""
        if not self.active:
            self.sink.receive(packet)
            return
        self.dropped += 1
        release_terminal(packet)


def build_injector(spec, sink: PacketSink, rng: random.Random,
                   engine: Optional[Engine] = None) -> FaultInjector:
    """Construct the injector a wire :class:`FaultSpec` describes."""
    kind = spec.kind
    if kind == "loss":
        return LossInjector(sink, rng, spec.param("p"), name=spec.name)
    if kind == "burst_loss":
        return BurstLossInjector(
            sink, rng, p_enter=spec.param("p_enter"),
            p_exit=spec.param("p_exit"),
            p_loss_bad=spec.param("p_loss_bad"),
            p_loss_good=spec.param("p_loss_good"), name=spec.name)
    if kind == "duplicate":
        return DuplicateInjector(sink, rng, spec.param("p"), name=spec.name)
    if kind == "corrupt":
        return CorruptInjector(sink, rng, spec.param("p"), name=spec.name)
    if kind == "jitter":
        if engine is None:
            raise ValueError("jitter faults need the simulation engine")
        return JitterInjector(
            sink, rng, engine, p=spec.param("p"),
            extra_ns_max=int(spec.param("extra_us_max")) * 1_000,
            name=spec.name)
    if kind == "blackhole":
        return BlackholeInjector(sink, rng, name=spec.name)
    raise ValueError(f"not a wire fault kind: {kind!r}")

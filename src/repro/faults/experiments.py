"""The resilience matrix: fault kind × intensity × GRO engine.

Each cell rebuilds the NetFPGA reordering rig (Figure 11), multiplexes an
open-loop Poisson RPC load over several connections, arms a periodic-window
fault plan generated from ``(kind, intensity)`` presets, and measures what
the paper's Tables 1/2 machinery does under hostile traffic: goodput, p99
RPC completion latency, loss-recovery-phase occupancy, evictions, and the
flush-reason mix.  Sweeping the three engines side by side shows where
Juggler's bounded-table lifecycle wins (and what it costs) relative to
standard GRO and the Presto-style unbounded variant.

Determinism: every cell derives one seed from
``(params.seed, fault_kind, intensity)`` — deliberately *not* the engine
name, so the three engines face identical fabric and workload randomness —
and all randomness flows through named ``sim.rng`` streams.  Same seed ⇒
byte-identical result rows, which the campaign fingerprinting relies on.

Run with ``JUGGLER_SANITIZE=1`` to have the invariant sanitizer re-prove
Table 1 transition legality, Table 2 flush validity, and the §4.3 eviction
order on every packet of every cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.spec import derive_seed
from repro.core.config import JugglerConfig
from repro.core.flush import FlushReason
from repro.core.juggler import JugglerGRO
from repro.core.presto_gro import PrestoGRO
from repro.core.standard_gro import StandardGRO
from repro.experiments.common import gbps, grid_points
from repro.fabric.topology import build_netfpga_pair
from repro.faults.plan import KINDS, FaultPlan
from repro.harness.metrics import Sampler, percentiles
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.steer import FlowDirectorConfig, FlowDirectorSteering
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection
from repro.workloads.rpc import RpcWorkload

#: Per-kind intensity presets, levels 1..3: (params, window_us).  Faults
#: whose damage is parametric keep a fixed 1 ms window and escalate their
#: parameters; faults whose only knob is exposure escalate the window.
_PRESETS: Dict[str, tuple] = {
    "loss": (({"p": 0.002}, 1000), ({"p": 0.01}, 1000), ({"p": 0.05}, 1000)),
    "burst_loss": (
        ({"p_enter": 0.02, "p_exit": 0.4, "p_loss_bad": 0.2}, 1000),
        ({"p_enter": 0.05, "p_exit": 0.3, "p_loss_bad": 0.5}, 1000),
        ({"p_enter": 0.10, "p_exit": 0.2, "p_loss_bad": 0.9}, 1000),
    ),
    "duplicate": (({"p": 0.01}, 1000), ({"p": 0.05}, 1000),
                  ({"p": 0.20}, 1000)),
    "corrupt": (({"p": 0.002}, 1000), ({"p": 0.01}, 1000),
                ({"p": 0.05}, 1000)),
    "jitter": (
        ({"p": 0.05, "extra_us_max": 100}, 1000),
        ({"p": 0.20, "extra_us_max": 300}, 1000),
        ({"p": 0.50, "extra_us_max": 800}, 1000),
    ),
    "blackhole": (({}, 50), ({}, 150), ({}, 400)),
    "queue_saturation": (({"capacity_bytes": 32_000}, 1000),
                         ({"capacity_bytes": 16_000}, 1000),
                         ({"capacity_bytes": 4_000}, 1000)),
    "ce_storm": (({"threshold_bytes": 0}, 200),
                 ({"threshold_bytes": 0}, 500),
                 ({"threshold_bytes": 0}, 1000)),
    "ring_overflow": (({"ring_size": 64}, 1000), ({"ring_size": 16}, 1000),
                      ({"ring_size": 4}, 1000)),
    "pause_poll": (({}, 100), ({}, 250), ({}, 600)),
    "steering_churn": (({"migrate_fraction": 0.25}, 1000),
                       ({"migrate_fraction": 0.5}, 1000),
                       ({"migrate_fraction": 1.0, "flush_table": True}, 1000)),
    "receiver_stall": (({}, 100), ({}, 300), ({}, 800)),
}

#: Window period: every fault re-opens on this cadence.
_PERIOD_US = 2_000

assert set(_PRESETS) == set(KINDS), "presets must cover the fault catalog"


@dataclass(frozen=True)
class MatrixParams:
    """Sweep configuration."""

    fault_kinds: tuple = tuple(sorted(_PRESETS))
    intensities: tuple = (1, 2, 3)
    engines: tuple = ("juggler", "standard", "presto")
    rate_gbps: float = 10.0
    reorder_delay_us: int = 250
    rpc_bytes: int = 10_000
    #: Offered load as a fraction of the line rate.
    load_fraction: float = 0.5
    concurrent_flows: int = 6
    inseq_timeout_us: int = 52
    ofo_timeout_us: int = 300
    coalesce_us: int = 125
    #: Keep the gro_table slightly oversubscribed so §4.3 eviction
    #: pressure is part of what the matrix measures.
    table_capacity: int = 4
    duration_ms: int = 30
    warmup_ms: int = 4
    sample_interval_us: int = 50
    seed: int = 55


@dataclass
class MatrixPoint:
    """One (fault, intensity, engine) cell."""

    fault_kind: str
    intensity: int
    engine: str
    goodput_gbps: float
    p99_latency_us: float
    rpcs_completed: int
    #: Fraction of occupancy samples with a non-empty loss-recovery list.
    loss_recovery_frac: float
    evictions: int
    ofo_timeout_flushes: int
    #: Fault windows opened during the run.
    faults_injected: int
    #: Packets destroyed by the fault layer (wire + link + NIC drops).
    packets_dropped: int
    #: ``reason:count`` pairs, sorted by reason name.
    flush_mix: str


@dataclass
class MatrixResult:
    """All cells."""

    points: List[MatrixPoint] = field(default_factory=list)


#: Sweep axes in loop-nesting order: (point field, params grid field).
POINT_AXES = (("fault_kind", "fault_kinds"),
              ("intensity", "intensities"),
              ("engine", "engines"))


def preset_plan(kind: str, intensity: int, *, start_us: int, stop_us: int,
                seed: int) -> FaultPlan:
    """The periodic-window plan one matrix cell runs under."""
    if kind not in _PRESETS:
        raise ValueError(f"unknown fault kind: {kind!r}")
    if intensity not in (1, 2, 3):
        raise ValueError(f"intensity must be 1, 2 or 3, got {intensity}")
    params, window_us = _PRESETS[kind][intensity - 1]
    repeats = max(1, (stop_us - start_us) // _PERIOD_US)
    return FaultPlan.from_dict({
        "name": f"matrix-{kind}-l{intensity}",
        "seed": seed,
        "faults": [{
            "name": f"{kind}-l{intensity}",
            "kind": kind,
            "at_us": start_us,
            "duration_us": window_us,
            "every_us": _PERIOD_US,
            "repeats": repeats,
            "params": params,
        }],
    })


def gro_factory(engine_name: str, config: JugglerConfig):
    """The per-queue GRO constructor for one engine variant."""
    if engine_name == "juggler":
        return lambda deliver: JugglerGRO(deliver, config)
    if engine_name == "standard":
        return lambda deliver: StandardGRO(deliver)
    if engine_name == "presto":
        return lambda deliver: PrestoGRO(deliver, config)
    raise ValueError(f"unknown GRO engine: {engine_name!r}")


def run_point(params: MatrixParams, *, fault_kind: str, intensity: int,
              engine: str) -> MatrixPoint:
    """One grid cell, independently schedulable (see repro.campaign)."""
    cell_seed = derive_seed(params.seed, "faults_matrix",
                            f"{fault_kind}:{intensity}")
    plan = preset_plan(fault_kind, intensity, seed=cell_seed,
                       start_us=params.warmup_ms * 1_000,
                       stop_us=params.duration_ms * 1_000)
    measured = run_scenario(params, plan, engine, cell_seed=cell_seed)
    return MatrixPoint(
        fault_kind=fault_kind,
        intensity=intensity,
        engine=engine,
        **measured,
    )


def run_scenario(params: MatrixParams, plan: FaultPlan, engine_name: str,
                 *, cell_seed: Optional[int] = None) -> dict:
    """Drive one fault plan against one engine variant; measure.

    Shared by the matrix cells and the ``juggler-repro faults run`` CLI
    (which supplies a user plan instead of a preset).  Returns the
    measurement fields of :class:`MatrixPoint`.
    """
    seed = cell_seed if cell_seed is not None else params.seed
    sim = Engine()
    rng = RngRegistry(seed)
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
        table_capacity=params.table_capacity,
    )
    # steering_churn rebalances the NIC's steering policy — against the
    # default single-queue RSS NIC it would be a no-op, so those cells get
    # a multi-queue Flow Director receiver (the substrate that can churn).
    churns = any(s.kind == "steering_churn" for s in plan.faults)
    steering = (FlowDirectorSteering(FlowDirectorConfig(sample_rate=4),
                                     rng=rng.stream("steer"))
                if churns else None)
    bed = build_netfpga_pair(
        sim,
        rng.stream("fabric"),
        gro_factory(engine_name, config),
        rate_gbps=params.rate_gbps,
        reorder_delay_ns=params.reorder_delay_us * US,
        nic_config=NicConfig(coalesce_ns=params.coalesce_us * US,
                             num_queues=4 if churns else 1),
        fault_plan=plan,
        receiver_steering=steering,
    )
    conns = [
        Connection(sim, bed.sender, bed.receiver, 1_000 + i, 80, TcpConfig())
        for i in range(params.concurrent_flows)
    ]
    assert bed.faults is not None
    bed.faults.bind(receivers=[c.receiver for c in conns])
    workload = RpcWorkload(
        sim, rng.stream("workload"), conns,
        rpc_bytes=params.rpc_bytes,
        load_gbps=params.load_fraction * params.rate_gbps,
    )
    workload.start()

    warmup_ns = params.warmup_ms * MS
    stop_ns = params.duration_ms * MS
    sim.run_until(warmup_ns)
    delivered_at_warmup = sum(c.delivered_bytes for c in conns)
    gros = bed.receiver.gro_engines
    sampler = Sampler(
        sim,
        lambda: sum(getattr(g, "loss_recovery_list_len", 0) for g in gros),
        params.sample_interval_us * US,
        stop_at_ns=stop_ns,
    )
    sampler.start()
    sim.run_until(stop_ns)

    delivered = sum(c.delivered_bytes for c in conns) - delivered_at_warmup
    latencies = [r.latency_ns for r in workload.records
                 if r.end_ns >= warmup_ns]
    p99 = percentiles(latencies, (99,))[0] if latencies else 0.0
    in_recovery = sum(1 for _, v in sampler.samples if v > 0)
    lr_frac = in_recovery / len(sampler.samples) if sampler.samples else 0.0

    flush_reasons: Dict[str, int] = {}
    evictions = 0
    for gro in gros:
        evictions += gro.stats.total_evictions
        for reason, n in gro.stats.flush_reasons.items():
            flush_reasons[reason.value] = flush_reasons.get(reason.value, 0) + n
    faults = bed.faults
    nic_drops = bed.receiver.nic.dropped + sum(
        q.checksum_drops for q in bed.receiver.nic.queues)
    link_drops = sum(link.stats.drops for link in faults.links)
    return {
        "goodput_gbps": round(gbps(delivered, stop_ns - warmup_ns), 4),
        "p99_latency_us": round(p99 / US, 1),
        "rpcs_completed": len(latencies),
        "loss_recovery_frac": round(lr_frac, 4),
        "evictions": evictions,
        "ofo_timeout_flushes": flush_reasons.get(
            FlushReason.OFO_TIMEOUT.value, 0),
        "faults_injected": faults.injected,
        "packets_dropped": faults.dropped + nic_drops + link_drops,
        "flush_mix": ",".join(f"{reason}:{n}" for reason, n
                              in sorted(flush_reasons.items())),
    }


def run(params: MatrixParams = MatrixParams()) -> MatrixResult:
    """Full sweep."""
    return MatrixResult(points=[
        run_point(params, **point)
        for point in grid_points(POINT_AXES, params)
    ])


def render(result: MatrixResult) -> str:
    """The matrix as one table."""
    rows = [
        (p.fault_kind, p.intensity, p.engine,
         round(p.goodput_gbps, 3), round(p.p99_latency_us, 1),
         p.rpcs_completed, round(p.loss_recovery_frac, 3), p.evictions,
         p.ofo_timeout_flushes, p.faults_injected, p.packets_dropped)
        for p in result.points
    ]
    return format_table(
        ["fault", "level", "engine", "goodput_gbps", "p99_us", "rpcs",
         "lr_frac", "evict", "ofo_flush", "windows", "dropped"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

"""``juggler-repro faults`` — drive chaos from the command line.

::

    juggler-repro faults run --plan scripts/specs/chaos_plan.json
    juggler-repro faults run --plan p.json --gro standard --duration-ms 60
    juggler-repro faults matrix                      # full resilience matrix
    juggler-repro faults matrix --kinds loss,corrupt --intensities 1,2 \\
        --gros juggler,standard --jobs 4 --store matrix.jsonl --json out.json

``run`` executes one plan against one GRO engine on the NetFPGA rig and
prints the resilience measurements plus the fault-layer counters.
``matrix`` routes the resilience-matrix sweep through the campaign
scheduler (parallel, resumable: re-running with the same ``--store``
skips completed cells).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

from repro.faults.experiments import (
    MatrixParams,
    gro_factory,
    run_scenario,
)
from repro.faults.plan import load_plan

_GROS = ("juggler", "standard", "presto")


def _csv(text: str, cast=str) -> list:
    return [cast(part.strip()) for part in text.split(",") if part.strip()]


def cmd_run(argv) -> int:
    """One plan, one engine, one report."""
    parser = argparse.ArgumentParser(
        prog="juggler-repro faults run",
        description="Run one fault plan against one GRO engine and report "
                    "goodput/latency/lifecycle impact.",
    )
    parser.add_argument("--plan", required=True, metavar="PATH",
                        help="fault plan JSON (see docs/faults.md)")
    parser.add_argument("--gro", default="juggler", choices=_GROS,
                        help="GRO engine variant (default: juggler)")
    parser.add_argument("--duration-ms", type=int, default=None,
                        help="simulated run length (default: plan-independent "
                             f"{MatrixParams.duration_ms} ms)")
    parser.add_argument("--seed", type=int, default=None,
                        help="workload/fabric seed (default: "
                             f"{MatrixParams.seed})")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSON")
    args = parser.parse_args(argv)

    try:
        plan = load_plan(args.plan)
    except (OSError, ValueError) as exc:
        print(f"bad fault plan: {exc}", file=sys.stderr)
        return 2
    overrides = {}
    if args.duration_ms is not None:
        overrides["duration_ms"] = args.duration_ms
    if args.seed is not None:
        overrides["seed"] = args.seed
    params = dataclasses.replace(MatrixParams(), **overrides)

    sanitize = os.environ.get("JUGGLER_SANITIZE", "") not in ("", "0")
    print(f"plan '{plan.name}': {len(plan.faults)} fault(s), "
          f"seed {plan.seed}; engine={args.gro}, "
          f"duration={params.duration_ms} ms, "
          f"sanitizer={'on' if sanitize else 'off'}")
    for spec in plan.faults:
        windows = spec.windows()
        print(f"  {spec.name:20s} {spec.kind:16s} layer={spec.layer:5s} "
              f"windows={len(windows)} first@{windows[0][0] // 1000}us")

    report = run_scenario(params, plan, args.gro)
    print()
    for key, value in report.items():
        print(f"  {key:22s} {value}")
    if sanitize:
        print("\nsanitizer: zero invariant violations")
    if args.json:
        payload = {"plan": plan.to_dict(), "gro": args.gro,
                   "duration_ms": params.duration_ms, "report": report}
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    return 0


def cmd_matrix(argv) -> int:
    """The resilience-matrix sweep, via the campaign scheduler."""
    import tempfile

    from repro.campaign import (
        CampaignSpec,
        ExperimentSpec,
        ResultStore,
        SchedulerConfig,
        expand,
        render_report,
        run_campaign,
    )

    defaults = MatrixParams()
    parser = argparse.ArgumentParser(
        prog="juggler-repro faults matrix",
        description="Sweep fault kind x intensity x GRO engine; parallel "
                    "and resumable via repro.campaign.",
    )
    parser.add_argument("--kinds", default=",".join(defaults.fault_kinds),
                        help="comma-separated fault kinds")
    parser.add_argument("--intensities",
                        default=",".join(map(str, defaults.intensities)),
                        help="comma-separated intensity levels (1..3)")
    parser.add_argument("--gros", default=",".join(defaults.engines),
                        help="comma-separated GRO engines")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--seed", type=int, default=None,
                        help="campaign root seed (default: the experiment's "
                             "baked-in seed)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="result JSONL; reuse to resume (default: temp)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write a JSON summary here")
    args = parser.parse_args(argv)

    grid = {
        "fault_kind": _csv(args.kinds),
        "intensity": _csv(args.intensities, int),
        "engine": _csv(args.gros),
    }
    spec = CampaignSpec(
        name="faults-matrix",
        experiments=(ExperimentSpec("faults_matrix", grid=grid),),
        seed=args.seed,
    )
    try:
        tasks = expand(spec)
    except (KeyError, ValueError) as exc:
        print(f"bad matrix selection: {exc}", file=sys.stderr)
        return 2

    store_path = args.store
    if store_path is None:
        fd, store_path = tempfile.mkstemp(prefix="juggler_faults_",
                                          suffix=".jsonl")
        os.close(fd)
    store = ResultStore(store_path)
    print(f"resilience matrix: {len(tasks)} cell(s), {args.jobs} worker(s); "
          f"results -> {store_path}")
    stats = run_campaign(tasks, store, SchedulerConfig(jobs=max(1, args.jobs)),
                         progress=print)
    print(stats.summary_line(spec.name))
    print()
    print(render_report(store.load(), spec))
    if args.json:
        payload = {
            "spec": spec.to_dict(),
            "planned": stats.planned,
            "skipped": stats.skipped,
            "failed": stats.failed,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        print(f"summary written to {args.json}")
    return 0 if stats.failed == 0 else 1


def main(argv) -> int:
    """``juggler-repro faults`` dispatcher."""
    if argv and argv[0] == "run":
        return cmd_run(argv[1:])
    if argv and argv[0] == "matrix":
        return cmd_matrix(argv[1:])
    print("usage: juggler-repro faults {run|matrix} [options]\n"
          "  run     execute one fault plan and report its impact\n"
          "  matrix  sweep fault kind x intensity x GRO engine\n"
          "see docs/faults.md", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

"""Declarative fault plans — the chaos analogue of ``campaign.spec``.

A :class:`FaultPlan` is a named, seeded list of :class:`FaultSpec` entries.
Each entry names a fault *kind* from the catalog below, an activation
window (``at_us`` + ``duration_us``), an optional repetition schedule
(``every_us`` × ``repeats``), and kind-specific parameters.  The plan is
pure data: :class:`repro.faults.controller.FaultEngine` expands it into
timeline-scheduled activations, drawing randomness only from named
``sim.rng`` streams derived from the plan seed — so a plan replays
byte-identically, survives campaign resume, and never perturbs the
experiment's own random streams.

Fault taxonomy (see docs/faults.md):

========  ================  ==============================================
layer     kind              perturbation
========  ================  ==============================================
wire      loss              i.i.d. packet loss with probability ``p``
wire      burst_loss        Gilbert–Elliott two-state bursty loss
wire      duplicate         forward a second copy with probability ``p``
wire      corrupt           flip payload bits -> NIC checksum drop
wire      jitter            extra per-packet delay (amplifies reordering)
wire      blackhole         drop everything while active (link flap)
link      queue_saturation  clamp queue capacity -> forced tail drops
link      ce_storm          zero the ECN threshold -> CE-mark storm
nic       ring_overflow     shrink the rx ring -> host drops
nic       pause_poll        stall NAPI polling (interrupt storm)
nic       steering_churn    rebalance flow steering -> cross-queue handoffs
host      receiver_stall    app stops reading -> advertised window closes
========  ================  ==============================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Mapping, Sequence, Tuple

from repro.sim.time import US

#: kind -> (layer, {param: default}).  The single source of truth for what
#: a plan entry may configure; validation rejects anything else.
KINDS: Dict[str, Tuple[str, Dict[str, object]]] = {
    "loss": ("wire", {"p": 0.01}),
    "burst_loss": ("wire", {"p_enter": 0.05, "p_exit": 0.3,
                            "p_loss_bad": 0.5, "p_loss_good": 0.0}),
    "duplicate": ("wire", {"p": 0.01}),
    "corrupt": ("wire", {"p": 0.005}),
    "jitter": ("wire", {"p": 0.1, "extra_us_max": 200}),
    "blackhole": ("wire", {}),
    "queue_saturation": ("link", {"capacity_bytes": 9_000}),
    "ce_storm": ("link", {"threshold_bytes": 0}),
    "ring_overflow": ("nic", {"ring_size": 8}),
    "pause_poll": ("nic", {}),
    "steering_churn": ("nic", {"migrate_fraction": 0.5,
                               "flush_table": False}),
    "receiver_stall": ("host", {}),
}

#: Kinds that act on the packet stream itself (injector chain members).
WIRE_KINDS = frozenset(k for k, (layer, _) in KINDS.items()
                       if layer == "wire")


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind, an activation schedule, and its parameters."""

    name: str
    kind: str
    #: First activation instant (ns, simulation time).
    at_ns: int
    #: How long each activation window stays open (ns).
    duration_ns: int
    #: Window period for repeated activations (ns; 0 with repeats == 1).
    every_ns: int = 0
    #: Number of activation windows.
    repeats: int = 1
    #: Kind-specific parameters, validated against :data:`KINDS`.
    params: Mapping = field(default_factory=dict)

    @property
    def layer(self) -> str:
        """wire / link / nic / host (see the taxonomy table)."""
        return KINDS[self.kind][0]

    def param(self, key: str):
        """A parameter value, falling back to the catalog default."""
        if key in self.params:
            return self.params[key]
        return KINDS[self.kind][1][key]

    def windows(self) -> Sequence[Tuple[int, int]]:
        """Every (open_ns, close_ns) activation window, in order."""
        return [(self.at_ns + i * self.every_ns,
                 self.at_ns + i * self.every_ns + self.duration_ns)
                for i in range(self.repeats)]


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault specs (the JSON spec format)."""

    name: str
    faults: Tuple[FaultSpec, ...]
    #: Root seed for the per-fault rng streams (``faults.<name>``).
    seed: int = 0

    @classmethod
    def from_dict(cls, data: Mapping) -> "FaultPlan":
        """Parse and validate the JSON plan format (see docs/faults.md)."""
        if "faults" not in data:
            raise ValueError("fault plan needs a 'faults' list")
        unknown = set(data) - {"name", "seed", "faults"}
        if unknown:
            raise ValueError(f"unknown plan keys: {sorted(unknown)}")
        specs = []
        for i, entry in enumerate(data["faults"]):
            specs.append(_parse_fault(i, entry))
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate fault names in plan: {names}")
        return cls(name=data.get("name", "faults"),
                   faults=tuple(specs),
                   seed=int(data.get("seed", 0)))

    @classmethod
    def from_file(cls, path) -> "FaultPlan":
        """Load a JSON plan file."""
        text = Path(path).read_text(encoding="utf-8")
        return cls.from_dict(json.loads(text))

    def to_dict(self) -> dict:
        """The JSON plan format (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "faults": [
                {
                    "name": s.name,
                    "kind": s.kind,
                    "at_us": s.at_ns // US,
                    "duration_us": s.duration_ns // US,
                    **({"every_us": s.every_ns // US} if s.every_ns else {}),
                    **({"repeats": s.repeats} if s.repeats != 1 else {}),
                    **({"params": dict(s.params)} if s.params else {}),
                }
                for s in self.faults
            ],
        }

    def wire_faults(self) -> Tuple[FaultSpec, ...]:
        """The specs that become packet-stream injectors."""
        return tuple(s for s in self.faults if s.layer == "wire")


def _parse_fault(index: int, entry: Mapping) -> FaultSpec:
    allowed = {"name", "kind", "at_us", "duration_us", "every_us",
               "repeats", "params"}
    unknown = set(entry) - allowed
    if unknown:
        raise ValueError(
            f"fault #{index}: unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}")
    kind = entry.get("kind")
    if kind not in KINDS:
        raise ValueError(
            f"fault #{index}: unknown kind {kind!r}; "
            f"known kinds: {sorted(KINDS)}")
    params = dict(entry.get("params") or {})
    legal = KINDS[kind][1]
    bad = set(params) - set(legal)
    if bad:
        raise ValueError(
            f"fault #{index} ({kind}): unknown params {sorted(bad)}; "
            f"allowed: {sorted(legal)}")
    for key in ("at_us", "duration_us"):
        if key not in entry:
            raise ValueError(f"fault #{index} ({kind}): missing '{key}'")
    at_us = int(entry["at_us"])
    duration_us = int(entry["duration_us"])
    every_us = int(entry.get("every_us", 0))
    repeats = int(entry.get("repeats", 1))
    if at_us < 0 or duration_us <= 0:
        raise ValueError(
            f"fault #{index} ({kind}): need at_us >= 0 and duration_us > 0")
    if repeats < 1:
        raise ValueError(f"fault #{index} ({kind}): repeats must be >= 1")
    if repeats > 1 and every_us < duration_us:
        raise ValueError(
            f"fault #{index} ({kind}): repeated windows need "
            f"every_us >= duration_us (got {every_us} < {duration_us})")
    return FaultSpec(
        name=str(entry.get("name", f"{kind}{index}")),
        kind=kind,
        at_ns=at_us * US,
        duration_ns=duration_us * US,
        every_ns=every_us * US,
        repeats=repeats,
        params=params,
    )


def load_plan(path) -> FaultPlan:
    """Convenience wrapper used by the CLI and the env-var runtime."""
    if not Path(path).exists():
        raise FileNotFoundError(f"fault plan not found: {path}")
    return FaultPlan.from_file(path)

"""The :class:`FaultEngine`: a fault plan expanded onto the sim timeline.

One FaultEngine owns one plan for one simulation run.  Construction builds
nothing visible; the experiment then

* :meth:`wrap`\\ s the packet path it wants perturbed (returns the head of
  an injector chain, or the sink untouched when the plan has no wire
  faults),
* :meth:`bind`\\ s the environment targets — switch/port queues, NIC rx
  queues, TCP receivers — the plan's link/nic/host faults act on, and
* :meth:`start`\\ s the timeline: every activation window becomes two
  fire-and-forget engine events (open, close).

Every window boundary emits a ``fault_injected`` / ``fault_cleared`` trace
event and bumps the ``faults.*`` metrics.  Randomness comes only from
``faults.<name>`` streams derived from the plan seed, so a plan replays
byte-identically and is independent of the experiment's own streams.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.faults.injectors import FaultInjector, build_injector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.trace import runtime as trace_runtime

#: Sentinel distinguishing "use the installed tracer" from "no tracer".
_INSTALLED = object()


class FaultEngine:
    """Drives one :class:`FaultPlan` against one simulation run."""

    def __init__(
        self,
        engine: Engine,
        plan: FaultPlan,
        *,
        rng: Optional[RngRegistry] = None,
        tracer=_INSTALLED,
    ):
        self._engine = engine
        self.plan = plan
        self._rng = rng if rng is not None else RngRegistry(plan.seed)
        self.tracer = (trace_runtime.current() if tracer is _INSTALLED
                       else tracer)
        #: Wire-injector instances per spec name (one per wrapped path).
        self._injectors: Dict[str, List[FaultInjector]] = {
            s.name: [] for s in plan.wire_faults()
        }
        #: Undo closures for the currently-open environment faults.
        self._reverts: Dict[str, List] = {}
        #: Names of the currently-open windows.
        self._open: set = set()
        # Environment targets (bound by the experiment).
        self.links: List = []
        self.rxqueues: List = []
        self.receivers: List = []
        self.nics: List = []
        #: Window-boundary counters.
        self.injected = 0
        self.cleared = 0
        self._started = False
        if self.tracer is not None:
            metrics = self.tracer.metrics
            self._injected_counter = metrics.counter("faults.injected")
            self._cleared_counter = metrics.counter("faults.cleared")
            metrics.gauge("faults.active", lambda: len(self._open))
            metrics.gauge("faults.dropped", lambda: self.dropped)
            metrics.gauge("faults.duplicated", lambda: self.duplicated)
            metrics.gauge("faults.corrupted", lambda: self.corrupted)
            metrics.gauge("faults.delayed", lambda: self.delayed)
        else:
            self._injected_counter = None
            self._cleared_counter = None

    # -- wiring ---------------------------------------------------------------

    def wrap(self, sink):
        """Put the plan's wire faults in front of ``sink``.

        Returns the head of the injector chain (plan order, first spec
        outermost), or ``sink`` itself when the plan has no wire faults —
        a disabled fault layer adds nothing to the packet path.  May be
        called once per perturbed path; each spec's activations toggle
        every chain it participates in.
        """
        wire = self.plan.wire_faults()
        if not wire:
            return sink
        head = sink
        for spec in reversed(wire):
            injector = build_injector(
                spec, head, self._rng.stream(f"faults.{spec.name}"),
                engine=self._engine)
            injector.active = False
            self._injectors[spec.name].append(injector)
            head = injector
        return head

    def bind(self, links: Iterable = (), rxqueues: Iterable = (),
             receivers: Iterable = (), nics: Iterable = ()) -> None:
        """Register environment-fault targets (extends on repeat calls)."""
        self.links.extend(links)
        self.rxqueues.extend(rxqueues)
        self.receivers.extend(receivers)
        self.nics.extend(nics)

    def start(self) -> None:
        """Schedule every activation window on the engine timeline."""
        if self._started:
            raise RuntimeError("FaultEngine.start() called twice")
        self._started = True
        for spec in self.plan.faults:
            for open_ns, close_ns in spec.windows():
                self._engine.post_at(open_ns, self._open_window, spec)
                self._engine.post_at(close_ns, self._close_window, spec)

    # -- window boundaries ----------------------------------------------------

    def _open_window(self, spec: FaultSpec) -> None:
        now = self._engine.now
        if spec.layer == "wire":
            for injector in self._injectors[spec.name]:
                injector.active = True
                injector.on_activate(now)
        else:
            self._reverts[spec.name] = self._apply(spec)
        self._open.add(spec.name)
        self.injected += 1
        if self.tracer is not None:
            self._injected_counter.inc()
            self.tracer.fault_injected(now, spec.name, spec.kind)

    def _close_window(self, spec: FaultSpec) -> None:
        now = self._engine.now
        if spec.layer == "wire":
            for injector in self._injectors[spec.name]:
                injector.active = False
                injector.on_clear(now)
        else:
            for revert in reversed(self._reverts.pop(spec.name, [])):
                revert()
        self._open.discard(spec.name)
        self.cleared += 1
        if self.tracer is not None:
            self._cleared_counter.inc()
            self.tracer.fault_cleared(now, spec.name, spec.kind)

    def _apply(self, spec: FaultSpec) -> List:
        """Perturb the bound environment; return the undo closures."""
        reverts: List = []
        if spec.kind == "queue_saturation":
            cap = int(spec.param("capacity_bytes"))
            for link in self.links:
                reverts.append(_restorer(link, "capacity_bytes",
                                         link.capacity_bytes))
                link.capacity_bytes = cap
        elif spec.kind == "ce_storm":
            threshold = int(spec.param("threshold_bytes"))
            for link in self.links:
                reverts.append(_restorer(link, "ecn_threshold_bytes",
                                         link.ecn_threshold_bytes))
                link.ecn_threshold_bytes = threshold
        elif spec.kind == "ring_overflow":
            ring = int(spec.param("ring_size"))
            for rxq in self.rxqueues:
                reverts.append(_restorer(rxq, "ring_size", rxq.ring_size))
                rxq.ring_size = ring
        elif spec.kind == "pause_poll":
            for rxq in self.rxqueues:
                rxq.stall()
                reverts.append(rxq.unstall)
        elif spec.kind == "steering_churn":
            # A one-shot control-plane event, not a held perturbation: the
            # rebalance happens at window open, nothing reverts at close —
            # the damage (stale rules, cross-queue handoffs) plays out on
            # its own as sampled installs catch up.
            fraction = float(spec.param("migrate_fraction"))
            flush = bool(spec.param("flush_table"))
            for nic in self.nics:
                nic.steering.rebalance(fraction, flush_table=flush)
        elif spec.kind == "receiver_stall":
            for receiver in self.receivers:
                reverts.append(_unstall_receiver(receiver))
        else:  # pragma: no cover - plan validation rejects unknown kinds
            raise ValueError(f"unknown environment fault: {spec.kind}")
        return reverts

    # -- reporting ------------------------------------------------------------

    def _sum(self, field: str) -> int:
        return sum(getattr(i, field)
                   for chain in self._injectors.values() for i in chain)

    @property
    def dropped(self) -> int:
        """Packets destroyed by wire injectors."""
        return self._sum("dropped")

    @property
    def duplicated(self) -> int:
        """Extra copies emitted by wire injectors."""
        return self._sum("duplicated")

    @property
    def corrupted(self) -> int:
        """Packets whose payload was damaged in flight."""
        return self._sum("corrupted")

    @property
    def delayed(self) -> int:
        """Packets held back for extra wire time."""
        return self._sum("delayed")

    def totals(self) -> Dict[str, int]:
        """Counter snapshot for reports and tests."""
        return {
            "injected": self.injected,
            "cleared": self.cleared,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "delayed": self.delayed,
        }


def _restorer(obj, attr: str, value):
    def revert() -> None:
        setattr(obj, attr, value)
    return revert


def _unstall_receiver(receiver):
    """Close the receiver's window now; reopen (and announce) on revert."""
    stolen = receiver.config.rx_buffer
    receiver.occupancy += stolen

    def revert() -> None:
        receiver.occupancy -= stolen
        # The sender saw a zero window; without an unsolicited window
        # update it would wait on a persist timer the simulation does not
        # model.  Real receivers announce the reopened window immediately.
        receiver.announce_window()
    return revert

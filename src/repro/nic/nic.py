"""A multi-queue NIC: RSS demultiplexing onto per-queue GRO instances."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.base import DeliverFn, GroEngine
from repro.net.packet import Packet
from repro.nic.rxqueue import RxQueue
from repro.sim.engine import Engine

#: Builds one GRO engine per RX queue; receives that queue's deliver fn.
GroFactory = Callable[[DeliverFn], GroEngine]


@dataclass(frozen=True)
class NicConfig:
    """Receive-side NIC parameters."""

    #: Number of RX queues ("NICs today hash one flow to one receive
    #: queue", §5.3.1 — more queues spread flows, not packets).
    num_queues: int = 1
    #: Interrupt coalescing period in ns (125 µs in the paper's testbed).
    coalesce_ns: int = 125_000
    #: Frame-count trigger: interrupt fires early once this many frames are
    #: pending (0 = time-only coalescing).  At line rate a frames trigger
    #: sets the NAPI poll cadence, hence the batching floor of Figure 12.
    coalesce_frames: int = 0
    #: Ring buffer capacity per queue, in packets.
    ring_size: int = 4096

    def __post_init__(self) -> None:
        if self.num_queues < 1:
            raise ValueError(f"need at least one RX queue, got {self.num_queues}")
        if self.coalesce_ns < 0:
            raise ValueError(f"coalesce_ns must be >= 0, got {self.coalesce_ns}")
        if self.ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {self.ring_size}")


class Nic:
    """RSS front-end over ``num_queues`` independent RX queues.

    All packets of one five-tuple land on one queue (Toeplitz-style hash),
    so per-queue GRO state never sees cross-queue interleaving — the same
    invariant Juggler relies on (§4: "different RX queues operate
    independently and have their private data structures").
    """

    def __init__(
        self,
        engine: Engine,
        deliver: DeliverFn,
        gro_factory: GroFactory,
        config: Optional[NicConfig] = None,
        name: str = "nic",
    ):
        self.config = config if config is not None else NicConfig()
        self.name = name
        self.queues: List[RxQueue] = []
        for i in range(self.config.num_queues):
            gro = gro_factory(deliver)
            self.queues.append(
                RxQueue(
                    engine,
                    gro,
                    coalesce_ns=self.config.coalesce_ns,
                    coalesce_frames=self.config.coalesce_frames,
                    ring_size=self.config.ring_size,
                    name=f"{name}.rxq{i}",
                )
            )

    def queue_for(self, packet: Packet) -> RxQueue:
        """The RX queue this packet's flow hashes to."""
        return self.queues[packet.flow.rss_hash() % len(self.queues)]

    def receive(self, packet: Packet) -> None:
        """Entry point from the wire."""
        self.queue_for(packet).enqueue(packet)

    @property
    def dropped(self) -> int:
        """Total ring-overflow drops across queues."""
        return sum(q.dropped for q in self.queues)

    def drain(self) -> None:
        """Teardown: force-process all rings and flush all GRO state."""
        for queue in self.queues:
            queue.drain()

"""A multi-queue NIC: pluggable steering onto per-core GRO contexts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.analysis import runtime as sanitize_runtime
from repro.core.base import DeliverFn, GroEngine
from repro.net.batch import PacketBatch
from repro.net.packet import Packet
from repro.nic.rxqueue import RxQueue
from repro.sim.engine import Engine
from repro.steer.coreset import CoreSet
from repro.steer.policy import RssSteering, SteeringPolicy
from repro.trace import runtime as trace_runtime

#: Builds one GRO engine per RX queue; receives that queue's deliver fn.
GroFactory = Callable[[DeliverFn], GroEngine]


@dataclass(frozen=True)
class NicConfig:
    """Receive-side NIC parameters."""

    #: Number of RX queues ("NICs today hash one flow to one receive
    #: queue", §5.3.1 — more queues spread flows, not packets).
    num_queues: int = 1
    #: Interrupt coalescing period in ns (125 µs in the paper's testbed).
    coalesce_ns: int = 125_000
    #: Frame-count trigger: interrupt fires early once this many frames are
    #: pending (0 = time-only coalescing).  At line rate a frames trigger
    #: sets the NAPI poll cadence, hence the batching floor of Figure 12.
    coalesce_frames: int = 0
    #: Ring buffer capacity per queue, in packets.
    ring_size: int = 4096
    #: Struct-of-arrays rings: queues stage arrivals as a columnar
    #: :class:`~repro.net.batch.PacketBatch` and hand it to the engine's
    #: ``receive_batch`` whole — no per-packet objects on the fast path
    #: (ROADMAP item 2).  Off by default; the figure experiments pin the
    #: object path.
    columnar: bool = False

    def __post_init__(self) -> None:
        if self.num_queues < 1:
            raise ValueError(f"need at least one RX queue, got {self.num_queues}")
        if self.coalesce_ns < 0:
            raise ValueError(f"coalesce_ns must be >= 0, got {self.coalesce_ns}")
        if self.ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {self.ring_size}")


class Nic:
    """Steering front-end over ``num_queues`` independent receive cores.

    The demux decision is delegated to a :class:`SteeringPolicy` — plain
    RSS by default, which preserves the historical behaviour bit-for-bit:
    all packets of one five-tuple land on one queue, so per-queue GRO state
    never sees cross-queue interleaving (§4: "different RX queues operate
    independently and have their private data structures").  Stateful
    policies (Flow Director) may *break* that invariant mid-flow, which is
    precisely the pathology ``experiments/fdir_reordering`` measures.
    """

    def __init__(
        self,
        engine: Engine,
        deliver: DeliverFn,
        gro_factory: GroFactory,
        config: Optional[NicConfig] = None,
        name: str = "nic",
        *,
        steering: Optional[SteeringPolicy] = None,
    ):
        self.config = config if config is not None else NicConfig()
        self.name = name
        self._engine = engine
        self.tracer = trace_runtime.current()
        self._osan = sanitize_runtime.current_osan()
        prefix = None
        if self.tracer is not None:
            prefix = f"steer{self.tracer.component_index('steer')}"
        self.cores = CoreSet(
            engine,
            deliver,
            gro_factory,
            num_cores=self.config.num_queues,
            coalesce_ns=self.config.coalesce_ns,
            coalesce_frames=self.config.coalesce_frames,
            ring_size=self.config.ring_size,
            columnar=self.config.columnar,
            name=name,
            tracer=self.tracer,
            metrics_prefix=prefix,
        )
        self.queues: List[RxQueue] = self.cores.queues
        self.steering = steering if steering is not None else RssSteering()
        self.steering.bind(self.config.num_queues, engine=engine,
                           tracer=self.tracer, metrics_prefix=prefix)
        # Per-wire-packet path, pinned as an instance attribute: queue list
        # and policy lookup are captured once here so receive() pays no
        # ``self`` attribute hops (benchmarks/test_steer_overhead.py holds
        # this at parity with the pre-policy inline demux).
        queues = self.queues
        steer = self.steering.queue_index

        def receive(packet: Packet) -> None:
            queues[steer(packet.flow)].enqueue(packet)

        self.receive = receive  # type: ignore[method-assign]

    def receive_batch(self, batch: PacketBatch) -> None:
        """Entry point for a whole columnar wire batch: steer and DMA.

        The demux runs on the columns — the per-row queue index is derived
        from the flow-slot column, so a stateless policy (RSS, static pins)
        is consulted once per *flow slot* rather than once per packet;
        stateful policies (Flow Director ticks samplers and installs rules
        per packet) are driven per row in arrival order so their internal
        state matches the object path exactly.  Rows are gathered into one
        sub-batch per queue, preserving per-queue arrival order.
        """
        if batch.packets is not None:
            for packet in batch.packets:
                self.receive(packet)
            return
        batch.seal()
        queues = self.queues
        if len(queues) == 1:
            queues[0].enqueue_batch(batch)
            return
        steer = self.steering.queue_index
        slots = batch.slot
        n = batch.length
        if self.steering.stateless:
            qmap = [steer(flow) for flow in batch.flows]
            rows_of: dict = {}
            for i in range(n):
                q = qmap[slots[i]]
                rows = rows_of.get(q)
                if rows is None:
                    rows = rows_of[q] = []
                rows.append(i)
        else:
            flows = batch.flows
            rows_of = {}
            for i in range(n):
                q = steer(flows[slots[i]])
                rows = rows_of.get(q)
                if rows is None:
                    rows = rows_of[q] = []
                rows.append(i)
        for q, rows in rows_of.items():
            queues[q].enqueue_batch(batch.gather(rows))

    def queue_for(self, packet: Packet) -> RxQueue:
        """The RX queue this packet's flow is steered to (pure probe)."""
        return self.queues[self.steering.current_queue(packet.flow)]

    def receive(self, packet: Packet) -> None:
        """Entry point from the wire (data path: may tick the policy)."""
        self.queues[self.steering.queue_index(packet.flow)].enqueue(packet)

    @property
    def dropped(self) -> int:
        """Total ring-overflow drops across queues."""
        return sum(q.dropped for q in self.queues)

    def drain(self) -> None:
        """Teardown: force-process all rings and flush all GRO state.

        When tracing is on, also reconciles final per-queue poll/drop
        counters into the metrics registry — multi-queue runs previously
        reported only the NIC-level ``dropped`` aggregate, losing which
        queue overflowed.

        This is the ``nic.drain`` rendezvous point of the shard isolation
        contract (docs/shardcheck.md): per-core state is handed back to
        the ambient (unowned) domain so post-run reporting may read it
        freely.
        """
        for queue in self.queues:
            queue.drain()
        if self.tracer is not None:
            self.cores.reconcile(self.tracer.metrics)
        if self._osan is not None:
            now = self._engine.now
            for queue in self.queues:
                if queue.owner_domain is None:
                    continue
                table = getattr(queue.gro, "table", None)
                if table is not None:
                    self._osan.transfer(table, None, point="nic.drain",
                                        now=now)
                self._osan.transfer(queue, None, point="nic.drain",
                                    now=now)

"""One NIC receive queue: ring buffer + interrupt coalescing + NAPI poll.

The queue drives exactly one GRO engine.  Arrivals land in the ring; the
first arrival into an idle ring arms an interrupt that fires after the
coalescing period; the poll handler then drains the ring in arrival order
through ``gro.receive`` and calls ``gro.poll_complete``.  Between polls, a
high-resolution timer armed from ``gro.next_deadline()`` runs Juggler's
timeout checks (§4.2.2: timeouts are checked "at the end of the polling
interval and in one high resolution timer callback per gro_table").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.analysis import runtime as sanitize_runtime
from repro.core.base import GroEngine
from repro.net.addr import FiveTuple
from repro.net.batch import PacketBatch
from repro.net.flags import TcpFlags
from repro.net.packet import Packet
from repro.net.pool import release_terminal
from repro.sim.engine import Engine
from repro.sim.timer import Timer
from repro.trace import runtime as trace_runtime


class RxQueue:
    """Ring buffer + NAPI logic for one receive queue."""

    def __init__(
        self,
        engine: Engine,
        gro: GroEngine,
        *,
        coalesce_ns: int = 125_000,
        coalesce_frames: int = 0,
        ring_size: int = 4096,
        name: str = "rxq",
        columnar: bool = False,
    ):
        self._engine = engine
        self.gro = gro
        #: Struct-of-arrays ring mode: arrivals land in an open
        #: :class:`PacketBatch` (filled column-wise via
        #: :meth:`enqueue_wire`, or absorbed from objects by
        #: :meth:`enqueue`) and the poll hands the sealed batch to
        #: ``gro.receive_batch`` — no per-packet objects on the fast path.
        self.columnar = columnar
        self.coalesce_ns = coalesce_ns
        #: Fire the interrupt early once this many frames are pending
        #: (0 disables the frame trigger; real NICs coalesce on
        #: frames-or-time, whichever comes first).
        self.coalesce_frames = coalesce_frames
        self.ring_size = ring_size
        self.name = name
        self._ring: Deque[Packet] = deque()
        #: The open staging batch of columnar mode (None while empty or in
        #: object mode) — the "ring" the NIC fills column-wise.
        self._wire: Optional[PacketBatch] = None
        self.tracer = trace_runtime.current()
        #: Optional OSAN (see repro.analysis.ownership); None keeps every
        #: hook below at one attribute load + one identity test.  The
        #: queue is unowned until a per-core context claims it.
        self._osan = sanitize_runtime.current_osan()
        self.owner_domain = None
        self._irq = Timer(engine, self._interrupt)
        self._hrtimer = Timer(engine, self._hrtimer_fire)
        #: Ring overflows (packet drops at the host).
        self.dropped = 0
        #: Frames destroyed by checksum verification (corrupted in flight).
        self.checksum_drops = 0
        #: Completed NAPI polls.
        self.polls = 0
        #: Packets handed to GRO.
        self.delivered = 0
        #: Polling suspended (an interrupt storm is stealing the core);
        #: arrivals still land in the ring but nothing services it.  See
        #: :meth:`stall` / :meth:`unstall` (repro.faults ``pause_poll``).
        self.stalled = False

    @property
    def backlog(self) -> int:
        """Packets waiting in the ring (object deque or staged columns)."""
        wire = self._wire
        return len(self._ring) + (wire.length if wire is not None else 0)

    def claim(self, domain) -> None:
        """Bind this queue (and its engine's table) to a shard domain.

        Called by :class:`~repro.steer.coreset.CoreSet` when OSAN is
        active: every poll and timer callback below then runs *as* the
        domain, and any reach into another core's state raises.
        """
        self.owner_domain = domain
        table = getattr(self.gro, "table", None)
        if table is not None:
            table.owner_domain = domain
        if self._wire is not None:
            # Columns already staged inherit the shard too.
            self._wire.owner_domain = domain

    def _staging(self) -> PacketBatch:
        """The open columnar batch, created on first arrival of a poll."""
        wire = self._wire
        if wire is None:
            wire = self._wire = PacketBatch()
            wire.owner_domain = self.owner_domain
        return wire

    def _kick(self, backlog: int) -> None:
        """Arm (or fast-forward) the coalescing interrupt after an arrival."""
        if self.stalled:
            return
        if not self._irq.armed:
            self._irq.arm_after(self.coalesce_ns)
        if self.coalesce_frames and backlog >= self.coalesce_frames:
            # Frame threshold reached: fire now instead of waiting out the
            # time-based coalescing window.
            self._irq.arm_after(0)

    def enqueue(self, packet: Packet) -> None:
        """DMA one packet into the ring (called by the wire at arrival time).

        Deliberately *not* ownership-checked: the ring is the documented
        wire->core handoff — the producer side of the shard boundary
        (see docs/shardcheck.md).  In columnar mode the packet is absorbed
        into the staged columns (by value when representable, releasing the
        object to its pool; object-carried otherwise — see
        :meth:`PacketBatch.append_packet`).
        """
        if self.backlog >= self.ring_size:
            self.dropped += 1
            release_terminal(packet)
            return
        if packet.corrupt:
            # Checksum verification fails: the frame dies at the NIC, and
            # the stack above never learns it existed.
            self.checksum_drops += 1
            release_terminal(packet)
            return
        now = self._engine.now
        packet.received_at = now
        if self.columnar:
            wire = self._staging()
            wire.append_packet(packet, received_at=now)
            self._kick(wire.length)
            return
        self._ring.append(packet)
        self._kick(len(self._ring))

    def enqueue_wire(self, flow: FiveTuple, seq: int, payload_len: int, *,
                     flags: int = int(TcpFlags.ACK), ce: bool = False,
                     sent_at: int = 0, tso: int = -1, options: tuple = (),
                     corrupt: bool = False) -> None:
        """DMA one wire frame straight into the columns — no ``Packet``.

        The columnar ring fill of ROADMAP item 2: header fields land in the
        staged batch's parallel arrays, and checksum (``corrupt``) and
        ring-overflow drops are decided *before* anything is allocated, so
        a dropped frame costs a counter increment and nothing else.
        Columnar mode only.
        """
        if not self.columnar:
            raise ValueError(
                f"{self.name}: enqueue_wire() needs columnar mode "
                "(RxQueue(..., columnar=True))")
        if self.backlog >= self.ring_size:
            self.dropped += 1
            return
        if corrupt:
            self.checksum_drops += 1
            return
        wire = self._staging()
        wire.append_wire(flow, seq, payload_len, flags=flags, ce=ce,
                         sent_at=sent_at, received_at=self._engine.now,
                         tso=tso, options=options)
        self._kick(wire.length)

    def enqueue_batch(self, batch: PacketBatch) -> None:
        """DMA a demuxed sub-batch into the ring (NIC columnar steering).

        ``batch`` is a sealed native batch (one queue's rows of a wire
        batch, from :meth:`Nic.receive_batch`); its rows are copied into
        this queue's staged columns row-by-row so per-row ring-overflow
        accounting matches the object path.  Frames in a wire batch have
        already passed checksum verification (see ``append_wire``).
        """
        if not self.columnar:
            for packet in batch.to_packets():
                self.enqueue(packet)
            return
        now = self._engine.now
        wire = self._staging()
        flows = batch.flows
        slots = batch.slot
        seqs = batch.seq
        lens = batch.payload_len
        fcol = batch.flags
        scol = batch.sig
        tcol = batch.sent_at
        tso = batch.tso
        extras = batch._extras
        for i in range(batch.length):
            if self.backlog >= self.ring_size:
                self.dropped += 1
                continue
            j = wire.append_wire(flows[slots[i]], seqs[i], lens[i],
                                 flags=fcol[i], sent_at=tcol[i],
                                 received_at=now, tso=tso[i])
            # Signature copied verbatim (same reason as gather(): rebuilds
            # would shed the options/CE/object-carried odd bits).
            wire._sig[j] = int(scol[i])
            if extras is not None and i in extras:
                extra = extras[i]
                carried = extra.get("packet")
                if carried is not None:
                    carried.received_at = now
                if wire._extras is None:
                    wire._extras = {}
                wire._extras[j] = extra
        self._kick(wire.length)

    def _interrupt(self) -> None:
        """Coalesced interrupt: enter polling mode and drain the ring."""
        now = self._engine.now
        if self.tracer is not None:
            self.tracer.timer(now, f"{self.name}.irq")
        osan = self._osan
        if osan is not None:
            # Catches one core's poll handler synchronously driving
            # another core's queue, then runs the poll *as* our domain.
            osan.check(self, "poll")
            osan.enter(self.owner_domain)
        try:
            if self._ring:
                # Hand the whole poll batch down at once (kernel: the driver
                # poll loop runs napi_gro_receive per descriptor in one
                # softirq).
                batch = list(self._ring)
                self._ring.clear()
                self.delivered += len(batch)
                self.gro.receive_batch(batch, now)
            wire = self._wire
            if wire is not None and wire.length:
                self._wire = None
                if osan is not None:
                    # The staged columns must belong to this shard.
                    osan.check(wire, "poll")
                self.delivered += wire.length
                self.gro.receive_batch(wire.seal(), now)
            self.gro.poll_complete(now)
        finally:
            if osan is not None:
                osan.exit()
        self.polls += 1
        self._rearm_hrtimer()

    def _hrtimer_fire(self) -> None:
        """Per-table high-resolution timer: timeout checks between polls."""
        if self.tracer is not None:
            self.tracer.timer(self._engine.now, f"{self.name}.hrtimer")
        osan = self._osan
        if osan is not None:
            osan.check(self, "hrtimer")
            osan.enter(self.owner_domain)
        try:
            self.gro.check_timeouts(self._engine.now)
        finally:
            if osan is not None:
                osan.exit()
        self._rearm_hrtimer()

    def _rearm_hrtimer(self) -> None:
        deadline = self.gro.next_deadline()
        if deadline is None:
            self._hrtimer.cancel()
            return
        self._hrtimer.arm_at(max(deadline, self._engine.now + 1))

    def stall(self) -> None:
        """Suspend NAPI servicing (an interrupt storm owns the core).

        Arrivals keep landing in the ring (and overflow it if the storm
        lasts), but no poll runs and the per-table hrtimer stops — so GRO
        timeouts fire late, exactly the pathology §4.2.2's design has to
        survive.
        """
        self.stalled = True
        self._irq.cancel()
        self._hrtimer.cancel()

    def unstall(self) -> None:
        """Resume servicing; any backlog is polled immediately."""
        self.stalled = False
        if self.backlog:
            self._irq.arm_after(0)
        self._rearm_hrtimer()

    def drain(self) -> None:
        """Force-process everything (experiment teardown).

        Runs *ambient* (no domain entered): drain is the reconciliation
        side of the ``nic.drain`` rendezvous, where per-core state is
        collapsed back into shared totals — but draining one core's queue
        from inside *another* core's domain is still a race.
        """
        if self._osan is not None:
            self._osan.check(self, "drain")
        now = self._engine.now
        if self._ring:
            batch = list(self._ring)
            self._ring.clear()
            self.delivered += len(batch)
            self.gro.receive_batch(batch, now)
        wire = self._wire
        if wire is not None and wire.length:
            self._wire = None
            wire.owner_domain = None  # handed back at the drain rendezvous
            self.delivered += wire.length
            self.gro.receive_batch(wire.seal(), now)
        self.gro.flush_all(now)
        self._hrtimer.cancel()

"""NIC receive-path model: RSS, ring buffers, interrupt coalescing, NAPI.

The paper's receive pipeline (Figure 2): the NIC steers each packet's
five-tuple to a receive queue (RSS hashing by default — see
:mod:`repro.steer` for the pluggable policies, including Flow Director); the driver raises an interrupt (subject to
coalescing, ~125 µs in their testbed — §5.2.1 notes it "acts as an
additional reordering buffer layer before Juggler"); the kernel then polls
the queue empty, feeding every packet to the GRO engine, and signals polling
completion.  Each RX queue owns its private GRO engine instance, exactly as
Juggler instantiates its data structures per queue.
"""

from repro.nic.rxqueue import RxQueue
from repro.nic.nic import Nic, NicConfig

__all__ = ["RxQueue", "Nic", "NicConfig"]

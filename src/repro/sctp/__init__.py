"""A minimal SCTP-flavoured message transport.

§4 of the paper notes that Juggler's "design principles hold for other
transports such as SCTP that impose packet order as well."  This package
backs that claim with code: a second, message-oriented transport (IP
protocol 132) that rides the same GRO path.  Configure Juggler with
``JugglerConfig(protocols=(6, 132))`` and SCTP associations enjoy the same
reordering resilience TCP does.

Simplifications vs RFC 4960 (documented, deliberate): chunk sequencing uses
byte offsets (so GRO's contiguity logic applies unchanged), one stream per
association, cumulative-ack + gap-report loss detection with a fixed
retransmission timeout, and a static window instead of full congestion
control — enough to exercise ordered *message* delivery over a reordering
fabric, which is what the generality claim is about.
"""

from repro.sctp.association import SctpReceiver, SctpSender

#: The IP protocol number SCTP traffic uses.
SCTP_PROTO = 132

__all__ = ["SctpSender", "SctpReceiver", "SCTP_PROTO"]

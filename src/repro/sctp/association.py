"""One SCTP-style association: message framing over sequenced chunks."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.fabric.host import Host
from repro.net.addr import FiveTuple
from repro.net.constants import MSS, PRIORITY_HIGH
from repro.net.flags import TcpFlags
from repro.net.packet import Packet
from repro.net.segment import Segment
from repro.sim.engine import Engine
from repro.sim.timer import Timer
from repro.sim.time import MS

#: Called with (message_index, completion_time) on each delivered message.
MessageCallback = Callable[[int, int], None]


class SctpSender:
    """Sends framed messages as MSS-sized sequenced chunks."""

    def __init__(
        self,
        engine: Engine,
        host: Host,
        flow: FiveTuple,
        *,
        window_bytes: int = 1 << 20,
        rto_ns: int = 2 * MS,
    ):
        if flow.proto != 132:
            raise ValueError(f"SCTP association needs proto 132, got {flow.proto}")
        self._engine = engine
        self._host = host
        self.flow = flow
        self.window_bytes = window_bytes
        self.rto_ns = rto_ns
        host.register_handler(flow.reversed(), self._on_sack_segment)

        self.snd_una = 0
        self.snd_nxt = 0
        self.data_target = 0
        #: Cumulative byte offsets where queued messages end.
        self.message_ends: List[int] = []
        self._rto_timer = Timer(engine, self._on_rto)
        self._gap_reports: Dict[Tuple[int, int], int] = {}
        self.messages_sent = 0
        self.retransmitted_chunks = 0
        self.rtos = 0

    def send_message(self, nbytes: int) -> int:
        """Queue one application message; returns its index."""
        if nbytes <= 0:
            raise ValueError(f"message must carry bytes, got {nbytes}")
        self.data_target += nbytes
        self.message_ends.append(self.data_target)
        index = self.messages_sent
        self.messages_sent += 1
        self._try_send()
        return index

    @property
    def flight_bytes(self) -> int:
        """Unacknowledged bytes."""
        return self.snd_nxt - self.snd_una

    def _try_send(self) -> None:
        while (self.snd_nxt < self.data_target
               and self.flight_bytes < self.window_bytes):
            chunk = min(MSS, self.data_target - self.snd_nxt)
            self._emit(self.snd_nxt, chunk)
            self.snd_nxt += chunk
        if self.flight_bytes > 0 and not self._rto_timer.armed:
            self._rto_timer.arm_after(self.rto_ns)

    def _emit(self, seq: int, nbytes: int, retransmission: bool = False) -> None:
        ends_message = seq + nbytes in self.message_ends or \
            seq + nbytes == self.data_target
        packet = Packet(
            self.flow,
            seq,
            nbytes,
            flags=(TcpFlags.ACK | TcpFlags.PSH) if ends_message
            else TcpFlags.ACK,
            sent_at=self._engine.now,
            is_retransmission=retransmission,
        )
        if retransmission:
            self.retransmitted_chunks += 1
        self._host.transmit(packet)

    def _on_sack_segment(self, segment: Segment) -> None:
        for packet in segment.packets:
            self._on_sack(packet)

    def _on_sack(self, packet: Packet) -> None:
        if packet.ack > self.snd_una:
            self.snd_una = packet.ack
            self._gap_reports.clear()
            self._rto_timer.cancel()
        # Gap reports: retransmit a hole after three sightings (like TCP's
        # dupACK threshold, per RFC 4960's fast retransmit on 3 SACKs).
        if packet.sack:
            hole_start = self.snd_una
            hole_end = packet.sack[0][0]
            if hole_end > hole_start:
                key = (hole_start, hole_end)
                self._gap_reports[key] = self._gap_reports.get(key, 0) + 1
                if self._gap_reports[key] == 3:
                    seq = hole_start
                    while seq < hole_end:
                        chunk = min(MSS, hole_end - seq)
                        self._emit(seq, chunk, retransmission=True)
                        seq += chunk
        self._try_send()

    def _on_rto(self) -> None:
        if self.flight_bytes <= 0:
            return
        self.rtos += 1
        self._emit(self.snd_una, min(MSS, self.data_target - self.snd_una),
                   retransmission=True)
        self._rto_timer.arm_after(self.rto_ns)

    def close(self) -> None:
        """Teardown."""
        self._rto_timer.cancel()
        self._host.unregister_handler(self.flow.reversed())


class SctpReceiver:
    """Reassembles chunks and delivers whole messages, in order."""

    def __init__(
        self,
        engine: Engine,
        host: Host,
        flow: FiveTuple,
        message_sizes: Optional[List[int]] = None,
        on_message: Optional[MessageCallback] = None,
    ):
        if flow.proto != 132:
            raise ValueError(f"SCTP association needs proto 132, got {flow.proto}")
        self._engine = engine
        self._host = host
        self.flow = flow
        self.on_message = on_message
        host.register_handler(flow, self._on_segment)

        self.rcv_nxt = 0
        self._ooo: List[Tuple[int, int]] = []
        #: Cumulative end offsets of expected messages, appended as the
        #: application announces them (mirrors the sender's framing).
        self.message_ends: List[int] = list(message_sizes or [])
        self._next_message = 0
        self.messages_delivered = 0
        self.sacks_sent = 0

    def expect_message(self, nbytes: int) -> None:
        """Announce one more message boundary (receiver-side framing)."""
        last = self.message_ends[-1] if self.message_ends else 0
        self.message_ends.append(last + nbytes)

    def _on_segment(self, segment: Segment) -> None:
        if segment.payload_len == 0:
            return
        for packet in segment.packets:
            self._absorb(packet.seq, packet.end_seq)
        self._deliver_messages()
        self._send_sack()

    def _absorb(self, start: int, end: int) -> None:
        if end <= self.rcv_nxt:
            return
        if start > self.rcv_nxt:
            merged = []
            placed = False
            for s, e in self._ooo:
                if e < start or s > end:
                    if not placed and s > end:
                        merged.append((start, end))
                        placed = True
                    merged.append((s, e))
                else:
                    start, end = min(start, s), max(end, e)
            if not placed:
                merged.append((start, end))
            self._ooo = merged
            return
        self.rcv_nxt = end
        while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
            s, e = self._ooo.pop(0)
            if e > self.rcv_nxt:
                self.rcv_nxt = e

    def _deliver_messages(self) -> None:
        while (self._next_message < len(self.message_ends)
               and self.message_ends[self._next_message] <= self.rcv_nxt):
            if self.on_message is not None:
                self.on_message(self._next_message, self._engine.now)
            self._next_message += 1
            self.messages_delivered += 1

    def _send_sack(self) -> None:
        sack = Packet(
            self.flow.reversed(),
            0,
            0,
            flags=TcpFlags.ACK,
            ack=self.rcv_nxt,
            sack=tuple(self._ooo[:3]),
            priority=PRIORITY_HIGH,
            sent_at=self._engine.now,
        )
        self.sacks_sent += 1
        self._host.transmit(sack)

    def close(self) -> None:
        """Teardown."""
        self._host.unregister_handler(self.flow)

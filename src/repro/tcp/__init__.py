"""A Reno-flavoured TCP model — the transport the reordering hurts.

The paper's vanilla-kernel pathology has two independent halves (§3.1):

1. *Protocol*: "the TCP stack treats mis-sequenced packets as a signal of
   packet loss due to an increased number of duplicate acknowledgements" —
   spurious fast retransmits collapse the congestion window.
2. *CPU*: the GRO batching collapse multiplies per-segment work ~15×,
   saturating the application core; the socket buffer then fills and the
   advertised window closes.

Both live here: the sender implements slow start / congestion avoidance /
3-dupACK fast retransmit / RTO, and the receiver generates one ACK per
delivered GRO segment (the paper's "15 times more ACKs"), buffers
out-of-order data, and advertises a window coupled to the application-core
drain rate.
"""

from repro.tcp.config import TcpConfig
from repro.tcp.receiver import TcpReceiver
from repro.tcp.sender import TcpSender
from repro.tcp.connection import Connection

__all__ = ["TcpConfig", "TcpReceiver", "TcpSender", "Connection"]

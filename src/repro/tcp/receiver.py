"""The TCP receive side: reassembly, ACK generation, flow control.

Receives *segments* from GRO (not packets — that is the whole point of the
paper: how well GRO batched determines how much work lands here).  Each
delivered segment costs application-core time priced from the cost table;
when the host has an :class:`~repro.cpu.core.CpuCore` attached, processing
is serialised through it, so an overloaded core delays ACKs and closes the
advertised window — the vanilla-kernel throughput collapse of Figure 9.

Every delivered segment generates exactly one ACK, reproducing the paper's
observation that the vanilla stack under reordering "sends 15 times more
ACKs" (§5.1.1).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.cpu.costs import CostTable, DEFAULT_COSTS
from repro.fabric.host import Host
from repro.net.addr import FiveTuple
from repro.net.constants import PRIORITY_HIGH
from repro.net.flags import TcpFlags
from repro.net.packet import Packet
from repro.net.segment import BatchingMode, Segment
from repro.sim.engine import Engine
from repro.tcp.config import TcpConfig
from repro.trace import runtime as trace_runtime

#: Called with (new in-order watermark, now) whenever rcv_nxt advances.
BytesCallback = Callable[[int, int], None]


class TcpReceiver:
    """Reassembles one flow's byte stream and ACKs every GRO segment."""

    def __init__(
        self,
        engine: Engine,
        host: Host,
        flow: FiveTuple,
        config: Optional[TcpConfig] = None,
        costs: CostTable = DEFAULT_COSTS,
        on_bytes: Optional[BytesCallback] = None,
    ):
        self._engine = engine
        self._host = host
        self.flow = flow
        self.config = config if config is not None else TcpConfig()
        self.costs = costs
        self.on_bytes = on_bytes
        self.tracer = trace_runtime.current()
        host.register_handler(flow, self.on_segment)

        #: Next expected in-order byte.
        self.rcv_nxt = 0
        #: Out-of-order byte ranges beyond rcv_nxt, sorted and disjoint.
        self._ooo: List[Tuple[int, int]] = []
        #: Socket-buffer occupancy: bytes received but not yet consumed by
        #: the application (i.e. whose app-core job has not completed).
        self.occupancy = 0

        #: CE-marked payload bytes not yet echoed to the sender.
        self._pending_ce_bytes = 0

        # Counters.
        self.segments_received = 0
        self.ooo_segments = 0
        self.duplicate_segments = 0
        self.acks_sent = 0
        self.dupacks_sent = 0

    @property
    def advertised_window(self) -> int:
        """Receive window: buffer space not yet occupied."""
        return max(0, self.config.rx_buffer - self.occupancy)

    @property
    def ooo_buffered_bytes(self) -> int:
        """Bytes parked in the TCP out-of-order queue."""
        return sum(e - s for s, e in self._ooo)

    # -- segment arrival (from GRO) -------------------------------------------

    def on_segment(self, segment: Segment) -> None:
        """GRO delivered a segment: charge the app core, then process."""
        if segment.payload_len == 0:
            return  # stray zero-payload packet; nothing to do
        self.occupancy += segment.payload_len
        cost = (
            self.costs.app_per_segment
            + self.costs.app_per_byte * segment.payload_len
            + self.costs.app_per_ack
        )
        if segment.mode is BatchingMode.LINKED_LIST:
            cost += self.costs.app_per_chain_element * segment.mtus
        if segment.seq != self.rcv_nxt:
            cost += self.costs.app_per_ooo_segment
        core = self._host.app_core
        if core is not None:
            core.submit(cost, self._process, segment)
        else:
            self._process(segment)

    def _process(self, segment: Segment) -> None:
        """TCP-layer handling, after the app core got to the segment."""
        self.occupancy -= segment.payload_len
        self.segments_received += 1
        # One column reduction (O(1) for SoaSegment) instead of touching
        # every packet object — value-merged segments never materialize
        # their packet list just to learn they are CE-free.
        self._pending_ce_bytes += segment.ce_payload_bytes
        advanced = False
        dsack = None
        if segment.contiguous:
            if segment.end_seq <= self.rcv_nxt:
                # Entirely old data: report it as a DSACK block so the
                # sender does not count this ACK toward fast retransmit.
                dsack = (segment.seq, segment.end_seq)
            advanced = self._absorb_range(segment.seq, segment.end_seq)
        else:
            # Linked-list chains may hold disjoint packets; absorb each.
            for packet in segment.packets:
                if self._absorb_range(packet.seq, packet.end_seq):
                    advanced = True
        if advanced:
            if self.tracer is not None:
                self.tracer.tcp_delivery(self._engine.now, self.flow,
                                         self.rcv_nxt, segment.payload_len)
            if self.on_bytes is not None:
                self.on_bytes(self.rcv_nxt, self._engine.now)
        else:
            self.dupacks_sent += 1
        self._send_ack(dsack)

    def _absorb_range(self, start: int, end: int) -> bool:
        """Account bytes [start, end); returns True if rcv_nxt advanced."""
        if end <= self.rcv_nxt:
            self.duplicate_segments += 1
            return False
        if start > self.rcv_nxt:
            self.ooo_segments += 1
            self._add_ooo(start, end)
            return False
        # In order (possibly partially duplicate at the front).
        self.rcv_nxt = end
        # Pull any now-contiguous OOO ranges through.
        while self._ooo and self._ooo[0][0] <= self.rcv_nxt:
            s, e = self._ooo.pop(0)
            if e > self.rcv_nxt:
                self.rcv_nxt = e
        return True

    def _add_ooo(self, start: int, end: int) -> None:
        """Insert [start, end) into the sorted disjoint OOO range list."""
        merged: List[Tuple[int, int]] = []
        placed = False
        for s, e in self._ooo:
            if e < start or s > end:
                if not placed and s > end:
                    merged.append((start, end))
                    placed = True
                merged.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        if not placed:
            merged.append((start, end))
        self._ooo = merged

    def _send_ack(self, dsack=None) -> None:
        """One cumulative ACK per delivered segment, with SACK blocks.

        A DSACK block (duplicate data report, RFC 2883) rides first when the
        triggering segment carried only already-received bytes.
        """
        blocks = tuple(self._ooo[:3])
        if dsack is not None:
            blocks = (dsack,) + blocks[:2]
        ack = Packet(
            self.flow.reversed(),
            seq=0,
            payload_len=0,
            flags=TcpFlags.ACK,
            ack=self.rcv_nxt,
            rwnd=self.advertised_window,
            sack=blocks,
            priority=PRIORITY_HIGH,
            sent_at=self._engine.now,
        )
        ack.ce_bytes = self._pending_ce_bytes
        self._pending_ce_bytes = 0
        self.acks_sent += 1
        self._host.transmit(ack)

    def announce_window(self) -> None:
        """Send an unsolicited ACK advertising the current window.

        Real receivers do this when the application drains a socket buffer
        that had closed the window; without it a sender that saw rwnd == 0
        would sit on a persist timer the simulation does not model.  Used
        by the fault layer when a ``receiver_stall`` window clears.
        """
        self._send_ack()

    def close(self) -> None:
        """Unregister from the host (experiment teardown)."""
        self._host.unregister_handler(self.flow)

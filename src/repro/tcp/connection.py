"""Convenience wiring of one TCP connection across the fabric."""

from __future__ import annotations

from typing import Optional

from repro.cpu.costs import CostTable, DEFAULT_COSTS
from repro.fabric.host import Host
from repro.net.addr import FiveTuple
from repro.sim.engine import Engine
from repro.tcp.config import TcpConfig
from repro.tcp.receiver import BytesCallback, TcpReceiver
from repro.tcp.sender import PriorityFn, TcpSender


class Connection:
    """A sender on one host, a receiver on another, one five-tuple."""

    def __init__(
        self,
        engine: Engine,
        src_host: Host,
        dst_host: Host,
        sport: int,
        dport: int,
        config: Optional[TcpConfig] = None,
        *,
        costs: CostTable = DEFAULT_COSTS,
        priority_fn: Optional[PriorityFn] = None,
        pacing_gbps: Optional[float] = None,
        on_bytes: Optional[BytesCallback] = None,
    ):
        self.flow = FiveTuple(src_host.host_id, dst_host.host_id, sport, dport)
        self.config = config if config is not None else TcpConfig()
        self.receiver = TcpReceiver(
            engine, dst_host, self.flow, self.config, costs=costs,
            on_bytes=on_bytes,
        )
        self.sender = TcpSender(
            engine, src_host, self.flow, self.config,
            priority_fn=priority_fn, pacing_gbps=pacing_gbps,
        )

    def send(self, nbytes: int) -> None:
        """Enqueue application data on the sender."""
        self.sender.send(nbytes)

    @property
    def delivered_bytes(self) -> int:
        """In-order bytes the receiver has accepted."""
        return self.receiver.rcv_nxt

    @property
    def done(self) -> bool:
        """All enqueued data delivered in order to the receiver."""
        return self.receiver.rcv_nxt >= self.sender.data_target

    def close(self) -> None:
        """Tear down both endpoints."""
        self.sender.close()
        self.receiver.close()

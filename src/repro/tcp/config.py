"""TCP endpoint tunables."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.constants import MSS
from repro.sim.time import MS, US


@dataclass(frozen=True)
class TcpConfig:
    """Parameters shared by the sender and receiver models."""

    #: Initial congestion window in bytes (Linux default: 10 MSS).
    init_cwnd: int = 10 * MSS
    #: Lower bound on the retransmission timeout.  Datacenter deployments
    #: tune this far below the WAN default; the paper's latency results
    #: imply sub-millisecond-scale recovery.
    min_rto: int = 1 * MS
    #: Upper bound on the RTO (backoff cap).
    max_rto: int = 100 * MS
    #: Receive socket buffer size in bytes (advertised-window ceiling).
    rx_buffer: int = 4 * 1024 * 1024
    #: Duplicate-ACK threshold for fast retransmit.
    dupack_threshold: int = 3
    #: RFC 5827 Early Retransmit (on by default in Linux 4.1, the paper's
    #: kernel): with fewer than four segments outstanding, lower the
    #: duplicate-ACK threshold so short flows recover without an RTO.
    early_retransmit: bool = True
    #: Linux's tcp_reordering adaptation: every DSACK (evidence that a
    #: retransmission was spurious) raises the effective duplicate-ACK
    #: threshold, up to this cap (Linux caps at 300; reordering beyond the
    #: cap keeps triggering spurious recoveries — the residual protocol
    #: damage the vanilla kernel suffers).
    max_reordering: int = 16
    #: Largest burst handed to TSO in one shot, bytes.
    max_burst: int = 44 * MSS
    #: DCTCP-style ECN reaction (the datacenter transport the paper's
    #: context assumes, §3.2).  Only has an effect on fabrics that mark.
    ecn: bool = True
    #: DCTCP's EWMA gain for the congestion-extent estimate.
    dctcp_g: float = 1.0 / 16.0
    #: Initial RTT estimate before any sample (seeds the RTO).
    initial_rtt: int = 200 * US
    #: Congestion-control policy (see repro.cc): "reno" (the default,
    #: byte-identical to the historical monolithic sender), "cubic",
    #: "dctcp" or "bbr".
    cc: str = "reno"

    def __post_init__(self) -> None:
        if self.init_cwnd < MSS:
            raise ValueError(f"init_cwnd must be >= one MSS, got {self.init_cwnd}")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError(
                f"need 0 < min_rto <= max_rto, got {self.min_rto}, {self.max_rto}"
            )
        if self.dupack_threshold < 1:
            raise ValueError(
                f"dupack_threshold must be >= 1, got {self.dupack_threshold}"
            )
        if self.max_burst < MSS:
            raise ValueError(f"max_burst must be >= one MSS, got {self.max_burst}")
        # Mirrors repro.cc.CC_ALGORITHMS (kept literal: repro.tcp must not
        # import repro.cc at config time).
        if self.cc not in ("reno", "cubic", "dctcp", "bbr"):
            raise ValueError(
                f"unknown congestion control {self.cc!r}; "
                "choose from ['bbr', 'cubic', 'dctcp', 'reno']"
            )

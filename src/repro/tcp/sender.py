"""The TCP send side: the loss-recovery *mechanism* under a pluggable policy.

The sender transmits data in TSO bursts (up to 64 KB handed to the NIC at
once), which is both how real stacks amortise per-packet cost and the origin
of the traffic burstiness Juggler's eviction policy exploits (§4.3).  It
owns everything congestion control does *not* decide — sequence state, the
SACK scoreboard with NewReno partial-ACK handling, reordering adaptation,
the RTO timer with exponential backoff, burst emission and pacing
enforcement — and delegates every window/rate decision to a
:class:`~repro.cc.base.CongestionControl` policy selected by
``TcpConfig.cc`` (the split mirrors the kernel's ``tcp_congestion_ops``).
With the default ``cc="reno"`` the composition reproduces the historical
monolithic sender byte-for-byte: reordering-induced duplicate ACKs do
exactly the damage the paper describes for the vanilla kernel.

An optional ``priority_fn`` assigns each outgoing packet a network priority;
the bandwidth-guarantee controller (§2.1) plugs in there.  An optional
pacing rate reproduces the experiments that "rate limit the total
throughput" (§5.1.1); rate-based policies (BBR) feed the same pacing loop,
enforced by timer-wheel wakeups between bursts.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cc import make_cc
from repro.cc.rtt import RttEstimator
from repro.fabric.host import Host
from repro.net.addr import FiveTuple
from repro.net.constants import MSS, PRIORITY_LOW
from repro.net.packet import Packet
from repro.net.segment import Segment
from repro.net.tso import segment_tso_burst
from repro.sim.engine import Engine
from repro.sim.timer import Timer
from repro.tcp.config import TcpConfig
from repro.trace import runtime as trace_runtime

#: Returns the priority for one outgoing packet.
PriorityFn = Callable[[Packet], int]


class TcpSender:
    """One flow's transmit side (mechanism; policy in ``self.cc``)."""

    def __init__(
        self,
        engine: Engine,
        host: Host,
        flow: FiveTuple,
        config: Optional[TcpConfig] = None,
        *,
        priority_fn: Optional[PriorityFn] = None,
        pacing_gbps: Optional[float] = None,
        options: tuple = (),
    ):
        self._engine = engine
        self._host = host
        self.flow = flow
        self.config = config if config is not None else TcpConfig()
        self.priority_fn = priority_fn
        self.pacing_gbps = pacing_gbps
        self.options = options
        host.register_handler(flow.reversed(), self.on_ack_segment)

        # Sequence state (byte granularity).
        self.snd_una = 0
        self.snd_nxt = 0
        #: Highest byte ever put on the wire (snd_nxt can rewind on RTO).
        self.high_sent = 0
        #: Application bytes enqueued for transmission so far.
        self.data_target = 0

        # Loss-detection state (mechanism side of congestion control).
        self.dup_acks = 0
        self.in_recovery = False
        self.recover = 0
        self.peer_rwnd = self.config.rx_buffer

        # SACK scoreboard: disjoint sorted ranges the peer holds beyond
        # snd_una, and the retransmission high-water mark within recovery.
        self.sacked: list = []
        self.high_rexmit = 0

        # Reordering adaptation (Linux tcp_reordering): DSACKs push the
        # effective dupACK threshold up so persistent reordering stops
        # triggering spurious recoveries.
        self.reordering_threshold = self.config.dupack_threshold
        self.dsacks_received = 0

        # RTT estimation / RTO (the estimator is shared with the policy).
        self.rtt = RttEstimator()
        self._rto_backoff = 1
        self._rto_timer = Timer(engine, self._on_rto)
        self._send_times: Dict[int, int] = {}

        # The congestion-control policy (window/rate decisions).
        self.tracer = trace_runtime.current()
        self.cc = make_cc(self.config.cc, self.config, self.rtt,
                          tracer=self.tracer, flow=flow)

        # Pacing.
        self._next_send_at = 0
        self._send_wakeup: Optional[object] = None

        # Counters.
        self.bursts_sent = 0
        self.packets_sent = 0
        self.retransmitted_packets = 0
        self.fast_retransmits = 0
        self.rtos = 0
        self.acks_received = 0
        self.dupacks_received = 0

        if self.tracer is not None:
            metrics = self.tracer.metrics
            self._m_retransmits = metrics.counter("tcp.retransmits")
            self._m_recoveries = metrics.counter("tcp.recoveries")
            self._m_spurious = metrics.counter("tcp.spurious_rexmits")
            prefix = f"cc.flow{self.tracer.component_index('cc')}"
            cc = self.cc
            metrics.gauge(f"{prefix}.cwnd", lambda: cc.cwnd)
            metrics.gauge(f"{prefix}.ssthresh", lambda: cc.ssthresh)
            metrics.gauge(f"{prefix}.pacing_gbps",
                          lambda: cc.pacing_rate_gbps() or 0.0)
            metrics.gauge(f"{prefix}.delivery_gbps",
                          lambda: cc.delivery_rate_gbps() or 0.0)
            metrics.gauge(f"{prefix}.recoveries", lambda: cc.recoveries)
        else:
            self._m_retransmits = None
            self._m_recoveries = None
            self._m_spurious = None

    # -- policy delegation ------------------------------------------------------

    @property
    def cwnd(self) -> int:
        """The policy's congestion window, bytes."""
        return self.cc.cwnd

    @cwnd.setter
    def cwnd(self, value: int) -> None:
        self.cc.cwnd = value

    @property
    def ssthresh(self) -> int:
        """The policy's slow-start threshold, bytes."""
        return self.cc.ssthresh

    @ssthresh.setter
    def ssthresh(self, value: int) -> None:
        self.cc.ssthresh = value

    @property
    def dctcp_alpha(self) -> float:
        """The policy's DCTCP congestion-extent estimate (0.0 if N/A)."""
        return getattr(self.cc, "dctcp_alpha", 0.0)

    @dctcp_alpha.setter
    def dctcp_alpha(self, value: float) -> None:
        self.cc.dctcp_alpha = value

    @property
    def srtt(self) -> Optional[int]:
        """Smoothed RTT from the shared estimator (ns; None pre-sample)."""
        return self.rtt.srtt

    @property
    def rttvar(self) -> int:
        """RTT variance from the shared estimator (ns)."""
        return self.rtt.rttvar

    @property
    def spurious_rexmits(self) -> int:
        """Retransmissions proven unnecessary (one per DSACK received)."""
        return self.dsacks_received

    # -- application interface --------------------------------------------------

    def send(self, nbytes: int) -> None:
        """Enqueue ``nbytes`` of application data and try to transmit."""
        if nbytes <= 0:
            raise ValueError(f"must send a positive byte count, got {nbytes}")
        self.data_target += nbytes
        self._try_send()

    @property
    def bytes_acked(self) -> int:
        """Cumulative bytes acknowledged by the peer."""
        return self.snd_una

    @property
    def flight_size(self) -> int:
        """Bytes in flight."""
        return self.snd_nxt - self.snd_una

    @property
    def done(self) -> bool:
        """All enqueued data acknowledged."""
        return self.snd_una >= self.data_target

    # -- ACK path -----------------------------------------------------------------

    def on_ack_segment(self, segment: Segment) -> None:
        """GRO delivered ACKs of our flow (usually passthrough singles)."""
        for packet in segment.packets:
            self._on_ack(packet)

    def _on_ack(self, packet: Packet) -> None:
        self.acks_received += 1
        if packet.rwnd is not None:
            self.peer_rwnd = packet.rwnd
        before = self._sacked_bytes()
        for block in packet.sack:
            self._merge_sack(block[0], block[1])
        sacked_now = self._sacked_bytes()
        new_sack_info = sacked_now > before
        if packet.sack and packet.sack[0][1] <= self.snd_una:
            # Leading block below snd_una is a DSACK: our retransmission was
            # unnecessary — the "loss" was reordering.  Widen tolerance.
            self.dsacks_received += 1
            self.reordering_threshold = min(
                self.reordering_threshold + 1, self.config.max_reordering)
            if self._m_spurious is not None:
                self._m_spurious.inc()
        if packet.ce_bytes:
            self.cc.on_ce(packet.ce_bytes)
        if new_sack_info:
            self.cc.on_sack(sacked_now, self._engine.now)
        ack = packet.ack
        if ack > self.high_sent:
            # Acknowledges data we never sent: malformed or stale — ignore
            # (RFC 793's "unacceptable ACK" handling).
            return
        if ack > self.snd_una:
            self._on_new_ack(ack)
        elif ack == self.snd_una and self.flight_size > 0:
            # A DSACK-only ACK (duplicate-data report with no new SACK
            # information) must not feed the fast-retransmit counter — that
            # is what stops spurious retransmissions from snowballing.
            if new_sack_info or not packet.sack:
                self._on_dup_ack()
        self._try_send()

    def _on_new_ack(self, ack: int) -> None:
        acked = ack - self.snd_una
        self.snd_una = ack
        if ack > self.snd_nxt:
            # A rewound send pointer (RTO go-back-N) can be overtaken by a
            # cumulative ACK covering pre-rewind data: jump forward.
            self.snd_nxt = ack
        self.dup_acks = 0
        self._rto_backoff = 1
        self._sample_rtt(ack)
        self.sacked = [(s, e) for s, e in self.sacked if e > ack]
        if self.high_rexmit < ack:
            self.high_rexmit = ack
        recovery_exit = False
        if self.in_recovery:
            if ack >= self.recover:
                self.in_recovery = False
                recovery_exit = True
            else:
                # Partial ACK: keep filling the scoreboard's holes.
                self._sack_retransmit()
        self.cc.on_ack(acked, self._engine.now, ack=ack,
                       snd_nxt=self.snd_nxt, flight=self.flight_size,
                       in_recovery=self.in_recovery,
                       recovery_exit=recovery_exit)
        if self.flight_size > 0:
            self._arm_rto()
        else:
            self._rto_timer.cancel()

    def _dupack_threshold(self) -> int:
        """The fast-retransmit trigger: tcp_reordering-adapted, with RFC
        5827 Early Retransmit for short flights."""
        threshold = self.reordering_threshold
        if self.config.early_retransmit and threshold == self.config.dupack_threshold:
            # ER only applies while no reordering has been observed
            # (Linux disables it once the reordering metric grows).
            outstanding = -(-self.flight_size // MSS)  # ceil division
            if outstanding < 4:
                threshold = min(threshold, max(1, outstanding - 1))
        return threshold

    def _on_dup_ack(self) -> None:
        self.dup_acks += 1
        self.dupacks_received += 1
        # Linux-style trigger: either enough duplicate ACKs, or enough bytes
        # SACKed above the hole (sacked_out) — a single dupACK whose SACK
        # block covers a whole GRO-merged segment can start recovery alone.
        threshold = self._dupack_threshold()
        triggered = (self.dup_acks >= threshold
                     or self._sacked_bytes() >= threshold * MSS)
        if triggered and not self.in_recovery:
            # Fast retransmit: this is TCP "treating mis-sequenced packets
            # as a signal of packet loss" — spurious under reordering.
            self.in_recovery = True
            self.recover = self.snd_nxt
            self.high_rexmit = self.snd_una
            self.fast_retransmits += 1
            self.cc.on_recovery_start(self.flight_size, self._engine.now)
            if self._m_recoveries is not None:
                self._m_recoveries.inc()
            if self.tracer is not None:
                self.tracer.cc_recovery(self._engine.now, self.flow,
                                        self.cc.name, "fast_retransmit",
                                        self.cc.cwnd, self.cc.ssthresh)
            if self.sacked:
                self._sack_retransmit()
            else:
                # Classic (SACK-less) fast retransmit of the first segment.
                self._retransmit(self.snd_una, MSS)
        elif self.in_recovery:
            self.cc.on_dupack(self.dup_acks, in_recovery=True)
            self._sack_retransmit()
        else:
            self.cc.on_dupack(self.dup_acks, in_recovery=False)

    def _merge_sack(self, start: int, end: int) -> None:
        """Fold one SACK block into the scoreboard (disjoint, sorted)."""
        if end <= self.snd_una or end <= start:
            return
        start = max(start, self.snd_una)
        merged = []
        placed = False
        for s, e in self.sacked:
            if e < start or s > end:
                if not placed and s > end:
                    merged.append((start, end))
                    placed = True
                merged.append((s, e))
            else:
                start = min(start, s)
                end = max(end, e)
        if not placed:
            merged.append((start, end))
        self.sacked = merged

    def _sacked_bytes(self) -> int:
        return sum(e - s for s, e in self.sacked)

    def _sack_retransmit(self) -> None:
        """Retransmit scoreboard holes, pipe-limited (simplified RFC 6675).

        Only data below the highest SACKed byte can be inferred lost
        (IsLost); with an empty scoreboard nothing is known lost and nothing
        is retransmitted — that restraint is what keeps a *spurious*
        recovery (reordering mistaken for loss) from snowballing into a
        retransmission storm.
        """
        if not self.sacked:
            return
        pipe = self.flight_size - self._sacked_bytes()
        # The conservative pipe estimate cannot distinguish lost bytes from
        # in-flight ones, so guarantee NewReno-grade progress: at least one
        # MSS of retransmission per ACK processed during recovery.
        budget = max(self.cc.cwnd - pipe, MSS)
        pos = max(self.high_rexmit, self.snd_una)
        limit = min(self.recover, self.snd_nxt, self.sacked[-1][1])
        blocks = iter(self.sacked)
        block = next(blocks, None)
        while budget > 0 and pos < limit:
            # Skip past any SACKed range covering pos.
            while block is not None and block[1] <= pos:
                block = next(blocks, None)
            if block is not None and block[0] <= pos:
                pos = block[1]
                continue
            hole_end = min(block[0] if block is not None else limit, limit)
            chunk = min(hole_end - pos, self.config.max_burst, budget)
            if chunk <= 0:
                break
            self._emit_burst(pos, chunk,
                             push=(pos + chunk >= self.data_target),
                             retransmission=True)
            pos += chunk
            budget -= chunk
        if pos > self.high_rexmit:
            self.high_rexmit = pos

    def _sample_rtt(self, ack: int) -> None:
        sent_at = self._send_times.pop(ack, None)
        # Garbage-collect samples the cumulative ACK has passed.
        for end in [e for e in self._send_times if e <= ack]:
            del self._send_times[end]
        if sent_at is None:
            return
        now = self._engine.now
        self.rtt.sample(now - sent_at, now)

    # -- transmission --------------------------------------------------------------

    def _usable_window(self) -> int:
        window = min(self.cc.cwnd, self.peer_rwnd)
        return self.snd_una + window - self.snd_nxt

    def _pacing_rate(self) -> Optional[float]:
        """Static rate limit if configured, else the policy's pacing rate."""
        rate = self.pacing_gbps
        if rate is not None:
            return rate
        return self.cc.pacing_rate_gbps()

    def _try_send(self) -> None:
        now = self._engine.now
        while self.snd_nxt < self.data_target:
            rate = self._pacing_rate()
            if rate is not None and now < self._next_send_at:
                self._schedule_wakeup(self._next_send_at)
                return
            avail = self._usable_window()
            remaining = self.data_target - self.snd_nxt
            burst = min(avail, self.config.max_burst, remaining)
            if burst < min(MSS, remaining):
                break  # window closed (ACKs will reopen it) or runt mid-stream
            self._emit_burst(self.snd_nxt, burst, push=(burst == remaining))
            self.snd_nxt += burst
            self._send_times[self.snd_nxt] = now
            self.cc.on_send(self.snd_nxt, burst, now,
                            app_limited=self.snd_nxt >= self.data_target)
            if rate is not None:
                tx_ns = round(burst * 8 / rate)
                self._next_send_at = max(now, self._next_send_at) + tx_ns

    def _schedule_wakeup(self, at: int) -> None:
        if self._send_wakeup is not None and getattr(self._send_wakeup, "active", False):
            return
        self._send_wakeup = self._engine.schedule_at(at, self._wakeup_fire)

    def _wakeup_fire(self) -> None:
        self._send_wakeup = None
        self._try_send()

    def _emit_burst(self, seq: int, nbytes: int, *, push: bool,
                    retransmission: bool = False) -> None:
        now = self._engine.now
        packets = segment_tso_burst(
            self.flow,
            seq,
            nbytes,
            sent_at=now,
            options=self.options,
            push_last=push,
            is_retransmission=retransmission,
        )
        for packet in packets:
            packet.priority = (
                self.priority_fn(packet) if self.priority_fn is not None
                else PRIORITY_LOW
            )
            self._host.transmit(packet)
        self.bursts_sent += 1
        self.packets_sent += len(packets)
        if seq + nbytes > self.high_sent:
            self.high_sent = seq + nbytes
        if retransmission:
            self.retransmitted_packets += len(packets)
            if self._m_retransmits is not None:
                self._m_retransmits.inc(len(packets))
        self._arm_rto(only_if_unarmed=True)

    def _retransmit(self, seq: int, nbytes: int) -> None:
        nbytes = min(nbytes, self.snd_nxt - seq)
        if nbytes <= 0:
            return
        self._emit_burst(seq, nbytes,
                         push=(seq + nbytes >= self.data_target),
                         retransmission=True)

    # -- RTO --------------------------------------------------------------------

    def _rto_value(self) -> int:
        return self.rtt.rto(min_rto=self.config.min_rto,
                            max_rto=self.config.max_rto,
                            initial_rtt=self.config.initial_rtt,
                            backoff=self._rto_backoff)

    def _arm_rto(self, only_if_unarmed: bool = False) -> None:
        if only_if_unarmed and self._rto_timer.armed:
            return
        self._rto_timer.arm_after(self._rto_value())

    def _on_rto(self) -> None:
        if self.flight_size <= 0:
            return
        self.rtos += 1
        self.cc.on_rto(self.flight_size, self._engine.now)
        if self.tracer is not None:
            self.tracer.cc_recovery(self._engine.now, self.flow,
                                    self.cc.name, "rto",
                                    self.cc.cwnd, self.cc.ssthresh)
        self.in_recovery = False
        self.dup_acks = 0
        self._rto_backoff = min(self._rto_backoff * 2, 64)
        # Go-back-N: pull the send pointer back so everything unacked is
        # retransmitted as the window reopens (slow start from one MSS).
        self._send_times.clear()
        self.high_rexmit = self.snd_una
        chunk = min(MSS, self.data_target - self.snd_una)
        if chunk > 0:
            self.snd_nxt = self.snd_una + chunk
            self._emit_burst(self.snd_una, chunk,
                             push=(self.snd_una + chunk >= self.data_target),
                             retransmission=True)
        else:
            self.snd_nxt = self.snd_una
        self._arm_rto()

    def close(self) -> None:
        """Unregister and stop timers (experiment teardown)."""
        self._rto_timer.cancel()
        self._host.unregister_handler(self.flow.reversed())

"""Figure 16: active-list length statistics under the realistic Clos
workload, plus the loss-recovery list.

Setup (§5.2.2): the Figure 10 scenario — 256 flows at 20 Gb/s aggregate into
one RX queue on the two-stage Clos with 50%-loaded uplinks and per-packet
load balancing; the active-list length is sampled periodically.  Run twice:
with a 40 Gb/s receiver port and a 10 Gb/s one.

Paper results: at 40 Gb/s the average length is below 1 and the 99th
percentile below 5; at 10 Gb/s TSO segments spend 3× longer on the wire so
the list is somewhat longer, but p99 stays below 6.  The loss-recovery list
is almost always empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import JugglerConfig
from repro.experiments.common import HostCpu
from repro.fabric.link import QueuedLink
from repro.fabric.routing import PerPacketRouting
from repro.fabric.topology import build_clos
from repro.harness.experiment import GroKind, make_gro_factory
from repro.harness.metrics import Histogram, Sampler, percentile
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection
from repro.net.pool import PacketPool
from repro.workloads.background import DiscardSink, PoissonPacketSource


@dataclass(frozen=True)
class Fig16Params:
    """Experiment configuration."""

    num_flows: int = 256
    target_gbps: float = 20.0
    fabric_gbps: float = 40.0
    background_gbps: float = 20.0
    inseq_timeout_us: int = 13
    ofo_timeout_us: int = 100
    sample_interval_us: int = 100
    warmup_ms: int = 8
    measure_ms: int = 20
    seed: int = 16


@dataclass
class Fig16Point:
    """One panel (one receiver port speed)."""

    receiver_port_gbps: float
    mean_active: float
    p99_active: float
    max_active: int
    fraction_at_most_5: float
    mean_loss_recovery: float
    max_loss_recovery: int


def run_panel(params: Fig16Params, receiver_port_gbps: float) -> Fig16Point:
    """One receiver-port-speed measurement."""
    engine = Engine()
    rngs = RngRegistry(params.seed)
    cpu = HostCpu(engine)
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
    )
    gro_factory = make_gro_factory(GroKind.JUGGLER, config, cpu.accountant)
    net = build_clos(
        engine,
        gro_factory,
        lambda: PerPacketRouting(rngs.stream("spray")),
        n_tors=2,
        hosts_per_tor=8,
        n_spines=2,
        host_rate_gbps=params.fabric_gbps,
        uplink_rate_gbps=params.fabric_gbps,
        nic_config=NicConfig(num_queues=1, coalesce_frames=32),
    )
    senders = net.hosts[:8]
    receiver = net.hosts[8]
    sink_host = net.hosts[9]
    cpu.attach(receiver)
    # Narrow the receiver's access port when reproducing the 10G panel;
    # target throughput is capped to fit through it.
    target = min(params.target_gbps, receiver_port_gbps * 0.8)
    net.tors[1].add_route(
        receiver.host_id,
        QueuedLink(engine, receiver_port_gbps, receiver, name="rx-port"),
    )

    per_flow = target / params.num_flows
    burst_period_ns = max(1, round(64 * 1024 * 8 / per_flow))
    start_rng = rngs.stream("flow-start")
    tcp = TcpConfig(init_cwnd=1 << 18)
    for i in range(params.num_flows):
        conn = Connection(engine, senders[i % 8], receiver,
                          7000 + i, 80, tcp, pacing_gbps=per_flow)
        engine.schedule(start_rng.randrange(burst_period_ns),
                        conn.send, 1 << 40)

    bg_pool = PacketPool()
    discard = DiscardSink(bg_pool)
    bg_dst = sink_host.host_id + 1_000_000
    net.tors[1].add_route(
        bg_dst, QueuedLink(engine, params.fabric_gbps, discard, name="bg"))
    for s, spine in enumerate(net.spines):
        spine.add_route(bg_dst, net.downlinks[s][1])
    background = PoissonPacketSource(
        engine, rngs.stream("background"), net.tors[0],
        load_gbps=params.background_gbps, src=99, dst=bg_dst, pool=bg_pool)
    background.start()

    gro = receiver.gro_engines[0]
    active_hist = Histogram()
    loss_samples: List[float] = []

    def probe() -> float:
        active_hist.add(gro.active_list_len)
        loss_samples.append(gro.loss_recovery_list_len)
        return gro.active_list_len

    sampler = Sampler(engine, probe, params.sample_interval_us * US)
    engine.schedule(params.warmup_ms * MS, sampler.start)
    engine.run_until((params.warmup_ms + params.measure_ms) * MS)

    values = sampler.values()
    return Fig16Point(
        receiver_port_gbps=receiver_port_gbps,
        mean_active=sum(values) / len(values) if values else 0.0,
        p99_active=percentile(values, 99),
        max_active=int(max(values)) if values else 0,
        fraction_at_most_5=active_hist.fraction_at_most(5),
        mean_loss_recovery=(sum(loss_samples) / len(loss_samples)
                            if loss_samples else 0.0),
        max_loss_recovery=int(max(loss_samples)) if loss_samples else 0,
    )


def run(params: Fig16Params = Fig16Params()) -> List[Fig16Point]:
    """Both panels: 40 Gb/s and 10 Gb/s receiver ports."""
    return [run_panel(params, 40.0), run_panel(params, 10.0)]


def render(points: List[Fig16Point]) -> str:
    """Both panels as one table."""
    rows = [
        (f"{p.receiver_port_gbps:g}G", round(p.mean_active, 2),
         round(p.p99_active, 1), p.max_active,
         round(p.fraction_at_most_5, 4),
         round(p.mean_loss_recovery, 3), p.max_loss_recovery)
        for p in points
    ]
    return format_table(
        ["rx_port", "mean_active", "p99_active", "max_active",
         "frac_active<=5", "mean_loss_list", "max_loss_list"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

"""Figure 14: 99th-percentile RPC completion time vs ``ofo_timeout`` under
packet loss.

Setup (§5.2.1): 10 KB RPC messages stream through the NetFPGA switch
(reordering τ ∈ {250, 500, 750} µs); the client drops 0.1% of packets
uniformly at random *before* they enter Juggler.  Sweep ``ofo_timeout`` and
measure the 99th-percentile completion time.

Paper result: the tail is flat while ``ofo_timeout`` stays below ≈ τ − τ₀
and "starts to grow rapidly" beyond — a larger timeout only delays the
moment TCP learns about a genuine loss, because the packets behind the hole
sit in Juggler's OOO queue instead of triggering duplicate ACKs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.config import JugglerConfig
from repro.core.juggler import JugglerGRO
from repro.experiments.common import grid_points
from repro.fabric.topology import build_netfpga_pair
from repro.harness.metrics import percentiles
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection
from repro.workloads.rpc import PingPongRpc


@dataclass(frozen=True)
class Fig14Params:
    """Sweep configuration."""

    ofo_timeouts_us: tuple = (50, 100, 200, 400, 600, 800, 1000)
    reorder_delays_us: tuple = (250, 500, 750)
    rate_gbps: float = 10.0
    rpc_bytes: int = 10_000
    drop_p: float = 0.001
    inseq_timeout_us: int = 52
    coalesce_us: int = 125
    #: Streamed RPC channel depth: a stalled message head-of-line blocks the
    #: ones queued behind it, as in the paper's continuous RPC stream.
    pipeline: int = 4
    duration_ms: int = 150
    seed: int = 14


@dataclass
class Fig14Point:
    """One sweep cell."""

    reorder_delay_us: int
    ofo_timeout_us: int
    p99_latency_us: float
    median_latency_us: float
    rpcs_completed: int


@dataclass
class Fig14Result:
    """All cells."""

    points: List[Fig14Point] = field(default_factory=list)

    def series(self, reorder_delay_us: int) -> List[Fig14Point]:
        """One panel of the figure."""
        return [p for p in self.points
                if p.reorder_delay_us == reorder_delay_us]


#: Sweep axes in loop-nesting order: (point field, params grid field).
POINT_AXES = (("reorder_delay_us", "reorder_delays_us"),
              ("ofo_timeout_us", "ofo_timeouts_us"))


def run_point(params: Fig14Params, *, reorder_delay_us: int,
              ofo_timeout_us: int) -> Fig14Point:
    """One grid point, independently schedulable (see repro.campaign)."""
    return run_cell(params, reorder_delay_us, ofo_timeout_us)


def run_cell(params: Fig14Params, reorder_us: int, ofo_us: int) -> Fig14Point:
    """One (τ, ofo_timeout) measurement."""
    engine = Engine()
    rng = RngRegistry(params.seed).stream("fabric")
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=ofo_us * US,
    )
    bed = build_netfpga_pair(
        engine,
        rng,
        lambda deliver: JugglerGRO(deliver, config),
        rate_gbps=params.rate_gbps,
        reorder_delay_ns=reorder_us * US,
        drop_p=params.drop_p,
        nic_config=NicConfig(coalesce_ns=params.coalesce_us * US),
    )
    conn = Connection(engine, bed.sender, bed.receiver, 1000, 80, TcpConfig())
    workload = PingPongRpc(engine, conn, rpc_bytes=params.rpc_bytes,
                           pipeline=params.pipeline)
    workload.start()
    engine.run_until(params.duration_ms * MS)

    latencies = workload.latencies_ns()
    p99, p50 = percentiles(latencies, (99, 50))
    return Fig14Point(
        reorder_delay_us=reorder_us,
        ofo_timeout_us=ofo_us,
        p99_latency_us=p99 / US,
        median_latency_us=p50 / US,
        rpcs_completed=len(latencies),
    )


def run(params: Fig14Params = Fig14Params()) -> Fig14Result:
    """Full sweep."""
    return Fig14Result(points=[
        run_point(params, **point)
        for point in grid_points(POINT_AXES, params)
    ])


def render(result: Fig14Result) -> str:
    """The figure's three panels as one table."""
    rows = [
        (p.reorder_delay_us, p.ofo_timeout_us,
         round(p.p99_latency_us, 1), round(p.median_latency_us, 1),
         p.rpcs_completed)
        for p in result.points
    ]
    return format_table(
        ["reorder_us", "ofo_timeout_us", "p99_latency_us",
         "median_latency_us", "rpcs"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

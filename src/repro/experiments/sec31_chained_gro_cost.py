"""§3.1's rejected-design measurement: linked-list batching costs ~50% more
CPU than frags[] merging on plain in-order traffic.

"We implemented this approach and found that it causes 50% more CPU usage
due to more cache misses in a simple experiment with in-order traffic."

One flow at line rate over an uncontended path (the NetFPGA rig with zero
added delay, so there is no reordering); compare total receiver CPU across
the three GRO engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import JugglerConfig
from repro.experiments.common import HostCpu, merged_stats
from repro.fabric.topology import build_netfpga_pair
from repro.harness.experiment import GroKind, make_gro_factory
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection


@dataclass(frozen=True)
class Sec31Params:
    """Experiment configuration."""

    rate_gbps: float = 10.0
    inseq_timeout_us: int = 52
    warmup_ms: int = 6
    measure_ms: int = 15
    seed: int = 31


@dataclass
class Sec31Point:
    """One engine's cost on in-order traffic."""

    kind: GroKind
    rx_core_pct: float
    app_core_pct: float
    total_pct: float
    batching_extent: float
    throughput_gbps: float


def run_engine(params: Sec31Params, kind: GroKind) -> Sec31Point:
    """Measure one GRO engine."""
    engine = Engine()
    rngs = RngRegistry(params.seed)
    cpu = HostCpu(engine)
    config = JugglerConfig(inseq_timeout=params.inseq_timeout_us * US,
                           ofo_timeout=400 * US)
    bed = build_netfpga_pair(
        engine,
        rngs.stream("unused"),
        make_gro_factory(kind, config, cpu.accountant),
        rate_gbps=params.rate_gbps,
        reorder_delay_ns=0,  # both NetFPGA queues equal: in-order delivery
        nic_config=NicConfig(coalesce_frames=25),
    )
    cpu.attach(bed.receiver)
    tcp = TcpConfig(init_cwnd=1 << 20, rx_buffer=8 << 20)
    conn = Connection(engine, bed.sender, bed.receiver, 1000, 80, tcp)
    conn.send(1 << 40)

    engine.run_until(params.warmup_ms * MS)
    before = merged_stats(bed.receiver.gro_engines)
    bytes_before = conn.delivered_bytes
    cpu.mark(engine.now)
    engine.run_until((params.warmup_ms + params.measure_ms) * MS)
    after = merged_stats(bed.receiver.gro_engines)

    segments = after.segments - before.segments
    mtus = after.batched_mtus - before.batched_mtus
    rx = 100.0 * cpu.rx_utilization(engine.now)
    app = 100.0 * cpu.app_utilization(engine.now)
    return Sec31Point(
        kind=kind,
        rx_core_pct=rx,
        app_core_pct=app,
        total_pct=rx + app,
        batching_extent=(mtus / segments) if segments else 0.0,
        throughput_gbps=(conn.delivered_bytes - bytes_before) * 8
        / (params.measure_ms * MS),
    )


def run(params: Sec31Params = Sec31Params()) -> List[Sec31Point]:
    """Vanilla frags[] GRO vs linked-list chaining vs Juggler."""
    return [run_engine(params, kind)
            for kind in (GroKind.VANILLA, GroKind.CHAINED, GroKind.JUGGLER)]


def chained_overhead_pct(points: List[Sec31Point]) -> float:
    """Extra total CPU of linked-list batching over vanilla, in percent."""
    by_kind = {p.kind: p for p in points}
    vanilla = by_kind[GroKind.VANILLA].total_pct
    chained = by_kind[GroKind.CHAINED].total_pct
    if vanilla <= 0:
        return 0.0
    return 100.0 * (chained - vanilla) / vanilla


def render(points: List[Sec31Point]) -> str:
    """The comparison as a table plus the headline ratio."""
    rows = [
        (p.kind.value, round(p.rx_core_pct, 1), round(p.app_core_pct, 1),
         round(p.total_pct, 1), round(p.batching_extent, 1),
         round(p.throughput_gbps, 2))
        for p in points
    ]
    table = format_table(
        ["engine", "rx_core_pct", "app_core_pct", "total_pct",
         "batching", "throughput_gbps"],
        rows,
    )
    return (f"{table}\n\nlinked-list chaining overhead vs vanilla: "
            f"{chained_overhead_pct(points):.1f}% (paper: ~50%)")


if __name__ == "__main__":
    print(render(run()))

"""§5.1.2: Juggler adds no latency to short RPCs without reordering.

"one client sends 150 Byte RPC messages to a server, with no competing
traffic in the network ... the median end-to-end latency is the same, with
and without Juggler."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import JugglerConfig
from repro.fabric.topology import build_netfpga_pair
from repro.harness.experiment import GroKind, make_gro_factory
from repro.harness.metrics import percentiles
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.connection import Connection
from repro.workloads.rpc import PingPongRpc


@dataclass(frozen=True)
class Sec512Params:
    """Experiment configuration."""

    rpc_bytes: int = 150
    rate_gbps: float = 40.0
    duration_ms: int = 40
    seed: int = 512


@dataclass
class Sec512Point:
    """One kernel's RPC latency distribution."""

    kind: GroKind
    median_us: float
    p99_us: float
    rpcs: int


def run_kernel(params: Sec512Params, kind: GroKind) -> Sec512Point:
    """Closed-loop small RPCs over an idle network."""
    engine = Engine()
    rngs = RngRegistry(params.seed)
    config = JugglerConfig(inseq_timeout=13 * US, ofo_timeout=100 * US)
    bed = build_netfpga_pair(
        engine,
        rngs.stream("unused"),
        make_gro_factory(kind, config),
        rate_gbps=params.rate_gbps,
        reorder_delay_ns=0,
        nic_config=NicConfig(coalesce_ns=10_000, coalesce_frames=4),
    )
    conn = Connection(engine, bed.sender, bed.receiver, 1000, 80)
    workload = PingPongRpc(engine, conn, rpc_bytes=params.rpc_bytes)
    workload.start()
    engine.run_until(params.duration_ms * MS)

    latencies = workload.latencies_ns()
    p50, p99 = percentiles(latencies, (50, 99))
    return Sec512Point(
        kind=kind,
        median_us=p50 / US,
        p99_us=p99 / US,
        rpcs=len(latencies),
    )


def run(params: Sec512Params = Sec512Params()) -> List[Sec512Point]:
    """Both kernels."""
    return [run_kernel(params, GroKind.JUGGLER),
            run_kernel(params, GroKind.VANILLA)]


def render(points: List[Sec512Point]) -> str:
    """Medians side by side."""
    rows = [(p.kind.value, round(p.median_us, 2), round(p.p99_us, 2), p.rpcs)
            for p in points]
    return format_table(["kernel", "median_us", "p99_us", "rpcs"], rows)


if __name__ == "__main__":
    print(render(run()))

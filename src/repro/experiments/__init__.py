"""Per-figure experiment implementations.

Each module reproduces one table or figure from the paper's evaluation:
``run(params)`` executes the (scaled-down) experiment and returns a result
object; ``render(result)`` produces the text table the corresponding bench
prints; running a module as a script does both.  The benchmark suite in
``benchmarks/`` wraps these entry points with pytest-benchmark.
"""

from repro.experiments import common

__all__ = ["common"]

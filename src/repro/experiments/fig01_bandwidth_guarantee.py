"""Figure 1: bandwidth guarantee via dynamic packet scheduling — time series.

Setup (§2.1 / Figure 17): 8 flows share a 40 Gb/s strict-priority
bottleneck.  Before t=0 everything runs at low priority and each flow gets
~5 Gb/s.  At t=0 the marking controller starts on one flow with a 20 Gb/s
guarantee, adapting p ← p + α(Rt − Rm).

Paper result: with Juggler, the target flow "quickly achieves the desired
throughput"; the vanilla kernel "has widely variable throughput because of
its inability to handle packet reordering" (mixing priorities reorders the
flow's own packets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.config import JugglerConfig
from repro.fabric.topology import build_priority_dumbbell
from repro.harness.experiment import GroKind, make_gro_factory
from repro.harness.metrics import Sampler, ThroughputProbe, mean
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.qos.bandwidth_guarantee import BandwidthGuaranteeController
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection


@dataclass(frozen=True)
class Fig01Params:
    """Experiment configuration (durations scaled from the paper's ±2 s)."""

    line_rate_gbps: float = 40.0
    guarantee_gbps: float = 20.0
    num_flows: int = 8
    alpha: float = 0.1
    inseq_timeout_us: int = 13
    ofo_timeout_us: int = 100
    before_ms: int = 20
    after_ms: int = 50
    sample_ms: int = 2
    seed: int = 1


@dataclass
class Fig01Result:
    """The target flow's throughput time series for one kernel."""

    kind: GroKind
    #: (time_ns, Gb/s) samples; the controller starts at t = before_ms.
    series: List[Tuple[int, float]] = field(default_factory=list)
    start_ns: int = 0

    def before_mean(self) -> float:
        """Average throughput before the controller starts."""
        return mean([v for t, v in self.series if t <= self.start_ns])

    def after_mean(self) -> float:
        """Average throughput once the controller has had time to converge
        (second half of the after-period)."""
        settle = self.start_ns + (self.series[-1][0] - self.start_ns) // 2
        return mean([v for t, v in self.series if t >= settle])

    def after_stdev(self) -> float:
        """Throughput variability after convergence."""
        settle = self.start_ns + (self.series[-1][0] - self.start_ns) // 2
        values = [v for t, v in self.series if t >= settle]
        if len(values) < 2:
            return 0.0
        mu = mean(values)
        return (sum((v - mu) ** 2 for v in values) / (len(values) - 1)) ** 0.5


def run_kernel(params: Fig01Params, kind: GroKind) -> Fig01Result:
    """The time series for one kernel."""
    engine = Engine()
    rngs = RngRegistry(params.seed)
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
    )
    bed = build_priority_dumbbell(
        engine,
        make_gro_factory(kind, config),
        n_senders=2,
        n_receivers=2,
        host_rate_gbps=params.line_rate_gbps,
        bottleneck_gbps=params.line_rate_gbps,
        # Adaptive-style coalescing: short time window so ACK-side latency
        # does not dominate the (tiny) fabric RTT.
        nic_config=NicConfig(num_queues=1, coalesce_ns=30_000,
                             coalesce_frames=32),
    )
    # Default (10-MSS) initial window: the flows must find their fair share
    # through ordinary congestion control at the finite bottleneck buffer.
    tcp = TcpConfig(rx_buffer=8 << 20)

    target = Connection(engine, bed.senders[0], bed.receivers[0], 4000, 80, tcp)
    controller = BandwidthGuaranteeController(
        engine,
        target.sender,
        rngs.stream("marking"),
        target_gbps=params.guarantee_gbps,
        line_rate_gbps=params.line_rate_gbps,
        alpha=params.alpha,
    )
    target.sender.priority_fn = controller.priority_fn
    target.send(1 << 42)

    antagonists = []
    for i in range(params.num_flows - 1):
        conn = Connection(engine, bed.senders[1], bed.receivers[1],
                          4100 + i, 80, tcp)
        conn.send(1 << 42)
        antagonists.append(conn)

    start_ns = params.before_ms * MS
    probe = Sampler(
        engine,
        ThroughputProbe(lambda: target.delivered_bytes, params.sample_ms * MS),
        params.sample_ms * MS,
    )
    probe.start()
    engine.schedule(start_ns, controller.start)
    engine.run_until((params.before_ms + params.after_ms) * MS)

    return Fig01Result(kind=kind, series=probe.samples, start_ns=start_ns)


def run(params: Fig01Params = Fig01Params()) -> List[Fig01Result]:
    """Both kernels' time series."""
    return [run_kernel(params, GroKind.JUGGLER),
            run_kernel(params, GroKind.VANILLA)]


def render(results: List[Fig01Result]) -> str:
    """Summary statistics of the two panels."""
    rows = [
        (r.kind.value, round(r.before_mean(), 2), round(r.after_mean(), 2),
         round(r.after_stdev(), 2))
        for r in results
    ]
    return format_table(
        ["kernel", "before_gbps(≈fair 5)", "after_gbps(target 20)",
         "after_stdev"],
        rows,
    )


if __name__ == "__main__":
    for result in run():
        print(f"--- {result.kind.value} ---")
        for t, v in result.series:
            print(f"{(t - result.start_ns) / MS:8.1f} ms  {v:6.2f} Gb/s")
    print(render(run()))

"""Helpers shared by the per-figure experiment modules."""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.base import GroEngine
from repro.core.stats import GroStats
from repro.cpu.accounting import GroCpuAccountant
from repro.cpu.core import CpuCore
from repro.cpu.costs import CostTable, DEFAULT_COSTS
from repro.cpu.meter import CoreMeter
from repro.fabric.host import Host
from repro.sim.engine import Engine


@dataclass
class StatsSnapshot:
    """A point-in-time copy of the counters a measurement window diffs."""

    packets: int
    segments: int
    batched_mtus: int
    ooo_segments: int

    @classmethod
    def of(cls, stats: GroStats) -> "StatsSnapshot":
        """Capture the relevant counters."""
        return cls(stats.packets, stats.segments, stats.batched_mtus,
                   stats.ooo_segments)

    def batching_since(self, stats: GroStats) -> float:
        """Batching extent (MTUs/segment) accumulated since this snapshot."""
        segments = stats.segments - self.segments
        if segments <= 0:
            return 0.0
        return (stats.batched_mtus - self.batched_mtus) / segments

    def segments_since(self, stats: GroStats) -> int:
        """Segments delivered since this snapshot."""
        return stats.segments - self.segments

    def packets_since(self, stats: GroStats) -> int:
        """Packets processed since this snapshot."""
        return stats.packets - self.packets

    def ooo_since(self, stats: GroStats) -> int:
        """Out-of-order segments delivered since this snapshot."""
        return stats.ooo_segments - self.ooo_segments


def merged_stats(engines: List[GroEngine]) -> StatsSnapshot:
    """Sum the counters of several per-queue engines."""
    return StatsSnapshot(
        sum(e.stats.packets for e in engines),
        sum(e.stats.segments for e in engines),
        sum(e.stats.batched_mtus for e in engines),
        sum(e.stats.ooo_segments for e in engines),
    )


class HostCpu:
    """RX-core accountant + application core for one measured host."""

    def __init__(self, engine: Engine, costs: CostTable = DEFAULT_COSTS,
                 name: str = "host"):
        self.rx_meter = CoreMeter(f"{name}.rx")
        self.accountant = GroCpuAccountant(self.rx_meter, costs)
        self.app_core = CpuCore(engine, f"{name}.app")

    def attach(self, host: Host) -> None:
        """Couple the app core to the host's TCP endpoints."""
        host.app_core = self.app_core

    def mark(self, now: int) -> None:
        """Open a measurement window on both cores."""
        self.rx_meter.mark(now)
        self.app_core.meter.mark(now)

    def rx_utilization(self, now: int) -> float:
        """RX-core busy fraction since :meth:`mark`."""
        return self.rx_meter.utilization_since(now)

    def app_utilization(self, now: int) -> float:
        """App-core busy fraction since :meth:`mark` (may exceed 1.0)."""
        return self.app_core.meter.utilization_since(now)


def grid_points(axes: Sequence[Tuple[str, str]],
                params) -> Iterator[Dict[str, object]]:
    """Iterate a sweep grid in row-major (outer-axis-first) order.

    ``axes`` is the module's ordered ``(axis_name, params_field)`` pairs;
    each yielded dict maps axis names to one grid point's values.  The
    sweep modules' ``run()`` loops and the campaign runner's task
    expansion both iterate through here, so a campaign report lists rows
    in exactly the order the serial sweep would.
    """
    values = [getattr(params, field) for _, field in axes]
    names = [axis for axis, _ in axes]
    for combo in itertools.product(*values):
        yield dict(zip(names, combo))


def gbps(nbytes: int, window_ns: int) -> float:
    """Convert a byte count over a window into Gb/s."""
    if window_ns <= 0:
        return 0.0
    return nbytes * 8 / window_ns

"""Self-inflicted reordering: steering policy × flow count × churn × engine.

"Why Does Flow Director Cause Packet Reordering?" (PAPERS.md) showed that a
NIC can reorder a flow all by itself: Flow Director migrates a flow's rule
between RX queues while packets are in flight, and the two queues' private
GRO/NAPI pipelines race the segments up the stack.  The fabric delivers
every packet in order; the *receiver* manufactures the reordering.  This
family measures that pathology with the fabric held innocent (the default
``reorder_delay_us`` is 0) and only the steering layer varying:

* **policy** — ``rss`` (stateless, cannot migrate), ``flow_director``
  (sampled-install affinity rules + churn), ``static`` (explicit pins, the
  control arm).
* **flow_count** — concurrent flows sharing the receiver's queue set.
* **churn** — steering-rebalance intensity, driven through the fault
  catalog's ``steering_churn`` kind so the same knob works in chaos plans
  (0 = never, escalating cadence/fraction up to periodic table flushes).
* **engine** — which GRO variant absorbs the cross-queue interleave
  (Juggler's ofo machinery vs standard GRO's give-up-and-flush).

Determinism mirrors ``repro.faults.experiments``: each cell derives one
seed from ``(params.seed, flow_count, churn)`` — deliberately *not* the
policy or engine, so every arm faces byte-identical workload and fabric
randomness — and all randomness flows through named ``sim.rng`` streams.
Same seed ⇒ byte-identical rows, whatever the worker count or result
store (the campaign fingerprint relies on this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.spec import derive_seed
from repro.core.config import JugglerConfig
from repro.core.flush import FlushReason
from repro.experiments.common import gbps, grid_points
from repro.fabric.topology import build_netfpga_pair
from repro.faults.experiments import gro_factory
from repro.faults.plan import FaultPlan
from repro.harness.metrics import percentiles
from repro.harness.reporting import format_table
from repro.net.addr import FiveTuple
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.steer import (
    FlowDirectorConfig,
    FlowDirectorSteering,
    RssSteering,
    StaticAffinitySteering,
    SteeringPolicy,
)
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection
from repro.workloads.rpc import RpcWorkload

#: Churn level -> (steering_churn params, window period in us).  Level 0 is
#: "no churn" (no fault plan at all); the top level periodically flushes
#: the whole rule table — the driver-reset mass migration.
CHURN_LEVELS: Dict[int, Optional[tuple]] = {
    0: None,
    1: ({"migrate_fraction": 0.25, "flush_table": False}, 5_000),
    2: ({"migrate_fraction": 0.5, "flush_table": False}, 2_000),
    3: ({"migrate_fraction": 1.0, "flush_table": True}, 2_000),
}


@dataclass(frozen=True)
class FdirParams:
    """Sweep configuration."""

    policies: tuple = ("rss", "flow_director", "static")
    flow_counts: tuple = (8, 32)
    churn_levels: tuple = (0, 2)
    engines: tuple = ("juggler", "standard")
    rate_gbps: float = 10.0
    #: The fabric stays in-order by default: reordering in the results is
    #: the steering layer's own doing.
    reorder_delay_us: int = 0
    num_queues: int = 4
    rpc_bytes: int = 10_000
    load_fraction: float = 0.5
    inseq_timeout_us: int = 52
    ofo_timeout_us: int = 300
    coalesce_us: int = 125
    table_capacity: int = 8
    #: Flow Director knobs: a small table and a fast sampler keep install /
    #: eviction dynamics visible at simulation-sized flow counts.
    fdir_table_size: int = 256
    fdir_sample_rate: int = 4
    fdir_groups: int = 64
    duration_ms: int = 30
    warmup_ms: int = 4
    seed: int = 77


@dataclass
class FdirPoint:
    """One (policy, flow_count, churn, engine) cell."""

    policy: str
    flow_count: int
    churn: int
    engine: str
    goodput_gbps: float
    p99_latency_us: float
    rpcs_completed: int
    #: Steering rules that moved a live flow between queues.
    migrations: int
    #: Packets that landed on a different queue than the flow's previous
    #: packet (the reordering-capable handoffs).
    cross_queue_events: int
    rule_evictions: int
    #: Out-of-order segments seen by the TCP receivers — the end-to-end
    #: proof the reordering reached the transport.
    tcp_ooo_segments: int
    ofo_timeout_flushes: int
    gro_evictions: int
    #: Max/mean delivered-packets ratio across RX queues (1.0 = balanced).
    queue_imbalance: float
    packets_dropped: int


@dataclass
class FdirResult:
    """All cells."""

    points: List[FdirPoint] = field(default_factory=list)


#: Sweep axes in loop-nesting order: (point field, params grid field).
POINT_AXES = (("policy", "policies"),
              ("flow_count", "flow_counts"),
              ("churn", "churn_levels"),
              ("engine", "engines"))


def churn_plan(churn: int, *, start_us: int, stop_us: int,
               seed: int) -> Optional[FaultPlan]:
    """The periodic ``steering_churn`` plan for one churn level."""
    if churn not in CHURN_LEVELS:
        raise ValueError(
            f"unknown churn level {churn!r}; known: {sorted(CHURN_LEVELS)}")
    preset = CHURN_LEVELS[churn]
    if preset is None:
        return None
    params, period_us = preset
    repeats = max(1, (stop_us - start_us) // period_us)
    return FaultPlan.from_dict({
        "name": f"fdir-churn-l{churn}",
        "seed": seed,
        "faults": [{
            "name": f"steering-churn-l{churn}",
            "kind": "steering_churn",
            "at_us": start_us,
            "duration_us": min(100, period_us),
            "every_us": period_us,
            "repeats": repeats,
            "params": params,
        }],
    })


def build_policy(policy: str, params: FdirParams, rng,
                 flows: List[FiveTuple]) -> SteeringPolicy:
    """One cell's steering policy instance (per-NIC, freshly built)."""
    if policy == "rss":
        return RssSteering()
    if policy == "flow_director":
        return FlowDirectorSteering(
            FlowDirectorConfig(table_size=params.fdir_table_size,
                               sample_rate=params.fdir_sample_rate,
                               groups=params.fdir_groups),
            rng=rng,
        )
    if policy == "static":
        pins = {flow: i % params.num_queues
                for i, flow in enumerate(flows)}
        return StaticAffinitySteering(pins)
    raise ValueError(f"unknown steering policy: {policy!r}")


def run_point(params: FdirParams, *, policy: str, flow_count: int,
              churn: int, engine: str) -> FdirPoint:
    """One grid cell, independently schedulable (see repro.campaign)."""
    cell_seed = derive_seed(params.seed, "fdir_reordering",
                            f"{flow_count}:{churn}")
    sim = Engine()
    rng = RngRegistry(cell_seed)
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
        table_capacity=params.table_capacity,
    )
    flows = [FiveTuple(0, 1, 1_000 + i, 80) for i in range(flow_count)]
    steering = build_policy(policy, params, rng.stream("steer"), flows)
    plan = churn_plan(churn, seed=cell_seed,
                      start_us=params.warmup_ms * 1_000,
                      stop_us=params.duration_ms * 1_000)
    bed = build_netfpga_pair(
        sim,
        rng.stream("fabric"),
        gro_factory(engine, config),
        rate_gbps=params.rate_gbps,
        reorder_delay_ns=params.reorder_delay_us * US,
        nic_config=NicConfig(coalesce_ns=params.coalesce_us * US,
                             num_queues=params.num_queues),
        fault_plan=plan,
        receiver_steering=steering,
    )
    conns = [
        Connection(sim, bed.sender, bed.receiver, 1_000 + i, 80, TcpConfig())
        for i in range(flow_count)
    ]
    workload = RpcWorkload(
        sim, rng.stream("workload"), conns,
        rpc_bytes=params.rpc_bytes,
        load_gbps=params.load_fraction * params.rate_gbps,
    )
    workload.start()

    warmup_ns = params.warmup_ms * MS
    stop_ns = params.duration_ms * MS
    sim.run_until(warmup_ns)
    delivered_at_warmup = sum(c.delivered_bytes for c in conns)
    sim.run_until(stop_ns)

    delivered = sum(c.delivered_bytes for c in conns) - delivered_at_warmup
    latencies = [r.latency_ns for r in workload.records
                 if r.end_ns >= warmup_ns]
    p99 = percentiles(latencies, (99,))[0] if latencies else 0.0

    flush_reasons: Dict[str, int] = {}
    gro_evictions = 0
    for gro in bed.receiver.gro_engines:
        gro_evictions += gro.stats.total_evictions
        for reason, n in gro.stats.flush_reasons.items():
            flush_reasons[reason.value] = (
                flush_reasons.get(reason.value, 0) + n)
    counters = steering.counters()
    nic = bed.receiver.nic
    return FdirPoint(
        policy=policy,
        flow_count=flow_count,
        churn=churn,
        engine=engine,
        goodput_gbps=round(gbps(delivered, stop_ns - warmup_ns), 4),
        p99_latency_us=round(p99 / US, 1),
        rpcs_completed=len(latencies),
        migrations=counters.get("migrations", 0),
        cross_queue_events=counters.get("cross_queue_events", 0),
        rule_evictions=counters.get("rule_evictions", 0),
        tcp_ooo_segments=sum(c.receiver.ooo_segments for c in conns),
        ofo_timeout_flushes=flush_reasons.get(
            FlushReason.OFO_TIMEOUT.value, 0),
        gro_evictions=gro_evictions,
        queue_imbalance=round(nic.cores.imbalance(), 3),
        packets_dropped=nic.dropped + (bed.faults.dropped
                                       if bed.faults is not None else 0),
    )


def run(params: FdirParams = FdirParams()) -> FdirResult:
    """Full sweep."""
    return FdirResult(points=[
        run_point(params, **point)
        for point in grid_points(POINT_AXES, params)
    ])


def render(result: FdirResult) -> str:
    """The family as one table."""
    rows = [
        (p.policy, p.flow_count, p.churn, p.engine,
         round(p.goodput_gbps, 3), round(p.p99_latency_us, 1),
         p.rpcs_completed, p.migrations, p.cross_queue_events,
         p.tcp_ooo_segments, p.ofo_timeout_flushes,
         round(p.queue_imbalance, 2), p.packets_dropped)
        for p in result.points
    ]
    return format_table(
        ["policy", "flows", "churn", "engine", "goodput_gbps", "p99_us",
         "rpcs", "migr", "xqueue", "tcp_ooo", "ofo_flush", "imbal",
         "dropped"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

"""Where should reordering resilience live: host, fabric, or both?

Juggler is the *host-side* answer to datacenter reordering — absorb it
below the transport.  Flowcut switching is the *fabric-side* answer —
never create it in the first place, by pinning each flowcut to one path
until it provably drains (see :mod:`repro.fabric.flowcut`).  This family
runs the two against and with each other on the two-stage Clos
(ROADMAP item 4):

* **engine** — ``juggler`` (resilient host stack) or ``standard``
  (give-up-and-flush GRO): whether the *host* absorbs reordering.
* **routing** — ``ecmp`` (never reorders, never balances),
  ``per_packet`` (ideal balance, reorders freely), ``flowlet``
  (gap-heuristic pinning — balances well, reorders under congestion),
  ``flowcut`` (exact-drain pinning — balances adaptively, cannot
  reorder): whether the *fabric* avoids reordering.
* **load** — offered load as a fraction of uplink capacity; path skew
  (and with it flowlet's failure mode) grows with load.
* **fault** — periodic ``queue_saturation`` windows on one uplink,
  forcing congestion-aware policies to route around a sick path.

The interesting diagonal: (standard × flowcut) is "resilience in the
fabric", (juggler × per_packet) is "resilience in the host", and the
corners show what each buys alone.  Every ToR also runs the sketch-based
reordering detector (:mod:`repro.fabric.detector`), so each row reports
what an in-network observer *measured* — the telemetry half of item 4.

Determinism mirrors ``cc_reordering``: each cell derives one seed from
``(params.seed, load, fault)`` — deliberately *not* the engine or the
routing policy, so all eight (engine × routing) arms of a (load, fault)
cell face byte-identical workload and fabric randomness — and all
randomness flows through named ``sim.rng`` streams.  Same seed ⇒
byte-identical rows, whatever the worker count or result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.campaign.spec import derive_seed
from repro.core.config import JugglerConfig
from repro.core.flush import FlushReason
from repro.experiments.common import gbps, grid_points
from repro.fabric.detector import DetectorConfig, ReorderDetector
from repro.fabric.flowcut import FlowcutRouting
from repro.fabric.routing import (
    EcmpRouting,
    FlowletRouting,
    PerPacketRouting,
)
from repro.fabric.topology import build_clos
from repro.faults.controller import FaultEngine
from repro.faults.experiments import gro_factory
from repro.faults.plan import FaultPlan
from repro.harness.metrics import percentiles
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection
from repro.workloads.rpc import RpcWorkload

#: Load level -> offered load as % of aggregate uplink capacity.
LOAD_LEVELS: Dict[int, int] = {1: 40, 2: 65, 3: 85}

#: Fault level -> (queue_saturation params, window_us); level 0 is clean.
#: The fault clamps the tor0→spine0 uplink's buffer, making one path sick
#: — adaptive policies should shift flowcuts away from it, ECMP cannot.
FAULT_LEVELS: Dict[int, Optional[tuple]] = {
    0: None,
    1: ({"capacity_bytes": 16_000}, 1000),
    2: ({"capacity_bytes": 6_000}, 1000),
}

#: Fault-window cadence (µs), matching the resilience matrix.
_PERIOD_US = 2_000

ROUTINGS = ("ecmp", "per_packet", "flowlet", "flowcut")


@dataclass(frozen=True)
class HostFabricParams:
    """Sweep configuration."""

    engines: tuple = ("juggler", "standard")
    routings: tuple = ROUTINGS
    loads: tuple = (1, 3)
    faults: tuple = (0, 1)
    n_tors: int = 2
    hosts_per_tor: int = 4
    n_spines: int = 2
    fabric_gbps: float = 40.0
    large_rpc_bytes: int = 512_000
    small_rpc_bytes: int = 150
    large_pairs: int = 2
    small_pairs: int = 2
    sessions_per_pair: int = 2
    small_load_gbps: float = 0.4
    queue_capacity_kb: int = 512
    inseq_timeout_us: int = 13
    ofo_timeout_us: int = 150
    detector_budget_bytes: int = 8192
    detector_heavy_kb: int = 10
    warmup_ms: int = 4
    measure_ms: int = 20
    seed: int = 77


@dataclass
class HostFabricPoint:
    """One (engine, routing, load, fault) cell."""

    engine: str
    routing: str
    load: int
    fault: int
    goodput_gbps: float
    small_p99_us: float
    small_p50_us: float
    large_p99_ms: float
    #: Out-of-order segments the TCP receivers saw — what got *through*
    #: both the fabric's and the host's defenses.
    tcp_ooo_segments: int
    ofo_timeout_flushes: int
    #: GRO batching extent (MTUs per delivered segment).
    batching: float
    #: Max/mean bytes across ToR→spine uplinks (1.0 = perfect balance).
    uplink_imbalance: float
    #: Path pinnings created by flowlet/flowcut policies (0 otherwise).
    pins: int
    #: Drained re-pins that changed path.
    moves: int
    drops: int
    retx_packets: int
    #: Reordered data packets the in-network detectors counted.
    det_reordered: int
    #: Flows the detectors reported as heavy reorderers.
    det_heavy: int


@dataclass
class HostFabricResult:
    """All cells."""

    points: List[HostFabricPoint] = field(default_factory=list)


#: Sweep axes in loop-nesting order: (point field, params grid field).
POINT_AXES = (("engine", "engines"),
              ("routing", "routings"),
              ("load", "loads"),
              ("fault", "faults"))


def _policy_factory(routing: str, rngs: RngRegistry, engine: Engine):
    if routing == "ecmp":
        return lambda: EcmpRouting()
    if routing == "per_packet":
        return lambda: PerPacketRouting(rngs.stream("spray"))
    if routing == "flowlet":
        return lambda: FlowletRouting(rngs.stream("flowlet"),
                                      flowlet_gap_ns=100_000, engine=engine)
    if routing == "flowcut":
        return lambda: FlowcutRouting(rngs.stream("flowcut"))
    raise ValueError(f"unknown routing {routing!r}; known: {ROUTINGS}")


def _fault_plan(level: int, *, start_us: int, stop_us: int,
                seed: int) -> Optional[FaultPlan]:
    preset = FAULT_LEVELS[level]
    if preset is None:
        return None
    fault_params, window_us = preset
    repeats = max(1, (stop_us - start_us) // _PERIOD_US)
    return FaultPlan.from_dict({
        "name": f"host-vs-fabric-l{level}",
        "seed": seed,
        "faults": [{
            "name": f"uplink-saturation-l{level}",
            "kind": "queue_saturation",
            "at_us": start_us,
            "duration_us": window_us,
            "every_us": _PERIOD_US,
            "repeats": repeats,
            "params": fault_params,
        }],
    })


def run_point(params: HostFabricParams, *, engine: str, routing: str,
              load: int, fault: int) -> HostFabricPoint:
    """One grid cell, independently schedulable (see repro.campaign)."""
    if load not in LOAD_LEVELS:
        raise ValueError(f"unknown load level {load!r}; "
                         f"known: {sorted(LOAD_LEVELS)}")
    if fault not in FAULT_LEVELS:
        raise ValueError(f"unknown fault level {fault!r}; "
                         f"known: {sorted(FAULT_LEVELS)}")
    # The seed excludes engine and routing: paired arms, identical
    # randomness (see the module docstring).
    cell_seed = derive_seed(params.seed, "host_vs_fabric", f"{load}:{fault}")
    sim = Engine()
    rngs = RngRegistry(cell_seed)
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
    )
    detector_cfg = DetectorConfig(
        memory_budget_bytes=params.detector_budget_bytes,
        heavy_threshold_bytes=params.detector_heavy_kb * 1024,
    )
    net = build_clos(
        sim,
        gro_factory(engine, config),
        _policy_factory(routing, rngs, sim),
        n_tors=params.n_tors,
        hosts_per_tor=params.hosts_per_tor,
        n_spines=params.n_spines,
        host_rate_gbps=params.fabric_gbps,
        uplink_rate_gbps=params.fabric_gbps,
        nic_config=NicConfig(num_queues=1, coalesce_ns=30_000,
                             coalesce_frames=32),
        queue_capacity_bytes=params.queue_capacity_kb * 1024,
        detector_factory=lambda: ReorderDetector(detector_cfg),
    )

    stop_us = (params.warmup_ms + params.measure_ms) * 1_000
    plan = _fault_plan(fault, start_us=params.warmup_ms * 1_000,
                       stop_us=stop_us, seed=cell_seed)
    fault_engine = None
    if plan is not None:
        fault_engine = FaultEngine(sim, plan)
        # The sick path: one specific uplink, same one in every arm.
        fault_engine.bind(links=[net.uplinks[0][0]])
        fault_engine.start()

    servers = net.hosts[:params.hosts_per_tor]
    clients = net.hosts[params.hosts_per_tor:2 * params.hosts_per_tor]
    uplink_capacity = params.n_spines * params.fabric_gbps
    total_load = uplink_capacity * LOAD_LEVELS[load] / 100.0
    large_load = max(total_load - params.small_load_gbps, 0.1)
    tcp = TcpConfig(rx_buffer=4 << 20)

    def all_to_all(kind_servers, kind_clients, base_port):
        conns = []
        for si, server in enumerate(kind_servers):
            for ci, client in enumerate(kind_clients):
                for s in range(params.sessions_per_pair):
                    conns.append(Connection(
                        sim, server, client,
                        base_port + (si * 16 + ci) * 8 + s, 80, tcp))
        return conns

    large_conns = all_to_all(servers[:params.large_pairs],
                             clients[:params.large_pairs], 30_000)
    small_conns = all_to_all(
        servers[params.large_pairs:params.large_pairs + params.small_pairs],
        clients[params.large_pairs:params.large_pairs + params.small_pairs],
        40_000)

    large = RpcWorkload(sim, rngs.stream("large"), large_conns,
                        rpc_bytes=params.large_rpc_bytes,
                        load_gbps=large_load)
    small = RpcWorkload(sim, rngs.stream("small"), small_conns,
                        rpc_bytes=params.small_rpc_bytes,
                        load_gbps=params.small_load_gbps)
    large.start()
    small.start()

    conns = large_conns + small_conns
    sim.run_until(params.warmup_ms * MS)
    warmup_cut = sim.now
    delivered_at_warmup = sum(c.delivered_bytes for c in conns)
    sim.run_until(stop_us * US)

    delivered = sum(c.delivered_bytes for c in conns) - delivered_at_warmup
    window_ns = sim.now - warmup_cut
    large_lat = [r.latency_ns for r in large.records
                 if r.start_ns >= warmup_cut]
    small_lat = [r.latency_ns for r in small.records
                 if r.start_ns >= warmup_cut]
    (large_p99,) = percentiles(large_lat, (99,))
    small_p99, small_p50 = percentiles(small_lat, (99, 50))

    ofo_flushes = segments = batched = 0
    for host in net.hosts:
        for gro in host.gro_engines:
            ofo_flushes += gro.stats.flush_reasons.get(
                FlushReason.OFO_TIMEOUT, 0)
            segments += gro.stats.segments
            batched += gro.stats.batched_mtus

    uplink_bytes = [l.stats.bytes for row in net.uplinks for l in row]
    mean_bytes = sum(uplink_bytes) / len(uplink_bytes)
    imbalance = (max(uplink_bytes) / mean_bytes) if mean_bytes > 0 else 0.0

    pins = moves = 0
    for tor in net.tors:
        policy = tor.policy
        if isinstance(policy, FlowcutRouting):
            pins += policy.stats.pins
            moves += policy.stats.moves
        elif isinstance(policy, FlowletRouting):
            pins += policy.flowlets_started
            moves += policy.flowlets_moved

    # Count every lossy queue: fabric links *and* the ToRs' host-facing
    # downlinks (finite buffers there drop under incast regardless of
    # routing policy — without them a cell can show OOO with "0 drops").
    drops = sum(l.stats.drops
                for row in net.uplinks + net.downlinks for l in row)
    drops += sum(l.stats.drops for tor in net.tors
                 for l in tor.direct_links())
    det_reordered = sum(d.stats.reordered_packets for d in net.detectors)
    det_heavy = sum(len(d.heavy_reorderers()) for d in net.detectors)

    return HostFabricPoint(
        engine=engine,
        routing=routing,
        load=load,
        fault=fault,
        goodput_gbps=round(gbps(delivered, window_ns), 4),
        small_p99_us=round(small_p99 / US, 1),
        small_p50_us=round(small_p50 / US, 1),
        large_p99_ms=round(large_p99 / MS, 3),
        tcp_ooo_segments=sum(c.receiver.ooo_segments for c in conns),
        ofo_timeout_flushes=ofo_flushes,
        batching=round(batched / segments, 3) if segments else 0.0,
        uplink_imbalance=round(imbalance, 4),
        pins=pins,
        moves=moves,
        drops=drops,
        retx_packets=sum(c.sender.retransmitted_packets for c in conns),
        det_reordered=det_reordered,
        det_heavy=det_heavy,
    )


def run(params: HostFabricParams = HostFabricParams()) -> HostFabricResult:
    """Full sweep."""
    return HostFabricResult(points=[
        run_point(params, **point)
        for point in grid_points(POINT_AXES, params)
    ])


def render(result: HostFabricResult) -> str:
    """The family as one table."""
    rows = [
        (p.engine, p.routing, p.load, p.fault, p.goodput_gbps,
         p.small_p99_us, p.small_p50_us, p.large_p99_ms,
         p.tcp_ooo_segments, p.ofo_timeout_flushes, p.batching,
         p.uplink_imbalance, p.pins, p.moves, p.drops, p.retx_packets,
         p.det_reordered, p.det_heavy)
        for p in result.points
    ]
    return format_table(
        ["engine", "routing", "load", "fault", "goodput_gbps",
         "small_p99_us", "small_p50_us", "large_p99_ms", "tcp_ooo",
         "ofo_flush", "batching", "imbalance", "pins", "moves", "drops",
         "retx", "det_reord", "det_heavy"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

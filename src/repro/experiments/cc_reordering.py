"""Congestion control × reordering intensity × GRO engine.

The paper's protocol-side damage (§3.1) is *policy-dependent*: reordering
manufactures duplicate ACKs, and what happens next is entirely up to the
congestion controller.  Loss-based policies (Reno, CUBIC, DCTCP) treat the
dupACK burst as loss and collapse the window; a model-based policy (BBR)
keeps pacing at its measured bottleneck bandwidth and barely notices.
This family puts the :mod:`repro.cc` policies head to head:

* **cc** — ``reno``, ``cubic``, ``dctcp``, ``bbr`` (``TcpConfig.cc``).
* **intensity** — how much the fabric reorders: the NetFPGA switch's slow
  path delay, from 0 (in-order) to 250 µs (well past the 125 µs
  interrupt-coalescing window, so the reordering reaches the stack).
* **engine** — which GRO variant absorbs it: Juggler's ofo machinery,
  standard GRO's give-up-and-flush, or Presto's in-GRO resequencer.

The interesting comparisons are *within* a (cc, intensity) pair across
engines — how much of the policy's damage Juggler undoes — and *within*
an (intensity, engine) pair across policies — how much of the damage was
the policy's own fault.  The headline row: at intensity 3 under standard
GRO, BBR out-delivers Reno; switching Reno to the Juggler engine closes
the gap, which is the paper's whole argument (fix reordering below the
transport instead of redesigning the transport).

Determinism mirrors ``repro.faults.experiments``: each cell derives one
seed from ``(params.seed, intensity)`` — deliberately *not* the cc or the
engine, so every arm faces byte-identical fabric randomness — and all
randomness flows through named ``sim.rng`` streams.  Same seed ⇒
byte-identical rows, whatever the worker count or result store.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.campaign.spec import derive_seed
from repro.core.config import JugglerConfig
from repro.core.flush import FlushReason
from repro.experiments.common import gbps, grid_points
from repro.fabric.topology import build_netfpga_pair
from repro.faults.experiments import gro_factory
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection

#: Intensity level -> slow-path reordering delay in µs.  Level 1 hides
#: inside the 125 µs coalescing window (reordered "for free" in the ring);
#: level 3 is the paper's 250 µs NetFPGA delay, which no coalescing hides.
INTENSITY_LEVELS: Dict[int, int] = {0: 0, 1: 20, 2: 60, 3: 250}


@dataclass(frozen=True)
class CcParams:
    """Sweep configuration."""

    ccs: tuple = ("reno", "cubic", "dctcp", "bbr")
    intensities: tuple = (0, 3)
    engines: tuple = ("juggler", "standard")
    rate_gbps: float = 10.0
    #: Concurrent bulk flows (each streams until the cell ends).
    flow_count: int = 4
    rx_buffer: int = 8 << 20
    inseq_timeout_us: int = 52
    ofo_timeout_us: int = 300
    coalesce_us: int = 125
    duration_ms: int = 30
    warmup_ms: int = 6
    seed: int = 101


@dataclass
class CcPoint:
    """One (cc, intensity, engine) cell."""

    cc: str
    intensity: int
    engine: str
    goodput_gbps: float
    #: Wire packets carrying retransmitted data.
    retx_packets: int
    #: Fast-recovery episodes entered (spurious under pure reordering).
    recoveries: int
    #: Retransmissions proven unnecessary by DSACKs.
    spurious_rexmits: int
    rtos: int
    #: dupACKs the receivers generated back at the senders.
    dupacks: int
    #: Out-of-order segments seen by the TCP receivers.
    tcp_ooo_segments: int
    ofo_timeout_flushes: int
    #: Final smoothed RTT across flows, µs (max; queue-buildup indicator).
    srtt_us: float


@dataclass
class CcResult:
    """All cells."""

    points: List[CcPoint] = field(default_factory=list)


#: Sweep axes in loop-nesting order: (point field, params grid field).
POINT_AXES = (("cc", "ccs"),
              ("intensity", "intensities"),
              ("engine", "engines"))


def run_point(params: CcParams, *, cc: str, intensity: int,
              engine: str) -> CcPoint:
    """One grid cell, independently schedulable (see repro.campaign)."""
    if intensity not in INTENSITY_LEVELS:
        raise ValueError(f"unknown intensity {intensity!r}; "
                         f"known: {sorted(INTENSITY_LEVELS)}")
    # The seed excludes cc and engine: paired arms, identical randomness.
    cell_seed = derive_seed(params.seed, "cc_reordering", f"{intensity}")
    sim = Engine()
    rng = RngRegistry(cell_seed)
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
    )
    bed = build_netfpga_pair(
        sim,
        rng.stream("fabric"),
        gro_factory(engine, config),
        rate_gbps=params.rate_gbps,
        reorder_delay_ns=INTENSITY_LEVELS[intensity] * US,
        nic_config=NicConfig(coalesce_ns=params.coalesce_us * US),
    )
    tcp = TcpConfig(cc=cc, rx_buffer=params.rx_buffer)
    conns = [
        Connection(sim, bed.sender, bed.receiver, 1_000 + i, 80, tcp)
        for i in range(params.flow_count)
    ]
    stagger = rng.stream("workload")
    for conn in conns:
        # Staggered starts desynchronise slow starts; the draw order is
        # fixed, so every arm staggers identically.
        sim.schedule(stagger.randrange(200_000), conn.send, 1 << 38)

    warmup_ns = params.warmup_ms * MS
    stop_ns = params.duration_ms * MS
    sim.run_until(warmup_ns)
    delivered_at_warmup = sum(c.delivered_bytes for c in conns)
    retx_at_warmup = sum(c.sender.retransmitted_packets for c in conns)
    recov_at_warmup = sum(c.sender.fast_retransmits for c in conns)
    sim.run_until(stop_ns)

    delivered = sum(c.delivered_bytes for c in conns) - delivered_at_warmup
    ofo_flushes = 0
    for gro in bed.receiver.gro_engines:
        ofo_flushes += gro.stats.flush_reasons.get(FlushReason.OFO_TIMEOUT, 0)
    srtts = [c.sender.srtt for c in conns if c.sender.srtt is not None]
    return CcPoint(
        cc=cc,
        intensity=intensity,
        engine=engine,
        goodput_gbps=round(gbps(delivered, stop_ns - warmup_ns), 4),
        retx_packets=(sum(c.sender.retransmitted_packets for c in conns)
                      - retx_at_warmup),
        recoveries=(sum(c.sender.fast_retransmits for c in conns)
                    - recov_at_warmup),
        spurious_rexmits=sum(c.sender.spurious_rexmits for c in conns),
        rtos=sum(c.sender.rtos for c in conns),
        dupacks=sum(c.sender.dupacks_received for c in conns),
        tcp_ooo_segments=sum(c.receiver.ooo_segments for c in conns),
        ofo_timeout_flushes=ofo_flushes,
        srtt_us=round(max(srtts) / US, 1) if srtts else 0.0,
    )


def run(params: CcParams = CcParams()) -> CcResult:
    """Full sweep."""
    return CcResult(points=[
        run_point(params, **point)
        for point in grid_points(POINT_AXES, params)
    ])


def render(result: CcResult) -> str:
    """The family as one table."""
    rows = [
        (p.cc, p.intensity, p.engine, round(p.goodput_gbps, 3),
         p.retx_packets, p.recoveries, p.spurious_rexmits, p.rtos,
         p.dupacks, p.tcp_ooo_segments, p.ofo_timeout_flushes, p.srtt_us)
        for p in result.points
    ]
    return format_table(
        ["cc", "intensity", "engine", "goodput_gbps", "retx", "recov",
         "spurious", "rtos", "dupacks", "tcp_ooo", "ofo_flush", "srtt_us"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

"""Figure 20: RPC tail latency under three load-balancing granularities.

Setup (§5.3.2 / Figure 19): 8 servers under ToR A send to 8 clients under
ToR B over a 40 Gb/s two-stage Clos with two spine uplinks.  Four pairs run
all-to-all 1 MB RPCs, four pairs all-to-all 150 B RPCs; open-loop Poisson
arrivals; load swept as a fraction of the 80 Gb/s uplink capacity; RPCs are
multiplexed over long-lived sessions per pair.  Receivers run Juggler.

Paper results: past 50% load, per-packet spraying beats per-flow ECMP on
small-RPC 99th-percentile completion time by ≥2×, and beats per-TSO
(Presto-style) spraying by a growing margin (30 µs at 75%, 250 µs at 90%);
large-RPC tails order the same way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List

from repro.core.config import JugglerConfig
from repro.fabric.routing import EcmpRouting, PerPacketRouting, PerTsoRouting
from repro.fabric.topology import build_clos
from repro.harness.experiment import GroKind, make_gro_factory
from repro.harness.metrics import percentiles
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection
from repro.workloads.rpc import RpcWorkload


class LbPolicy(enum.Enum):
    """The load-balancing granularities compared in Figure 20, plus
    CONGA-style flowlet switching (§2.2's related-work alternative, not in
    the paper's figure — included as an extension point of comparison)."""

    ECMP = "per-flow-ecmp"
    PER_TSO = "per-tso"
    PER_PACKET = "per-packet"
    FLOWLET = "flowlet"


@dataclass(frozen=True)
class Fig20Params:
    """Sweep configuration (scaled down: fewer sessions per pair, shorter
    runs; load fractions and RPC sizes match the paper)."""

    loads_pct: tuple = (25, 50, 75, 90)
    policies: tuple = (LbPolicy.ECMP, LbPolicy.PER_TSO, LbPolicy.PER_PACKET)
    large_rpc_bytes: int = 1_000_000
    small_rpc_bytes: int = 150
    large_pairs: int = 4
    small_pairs: int = 4
    sessions_per_pair: int = 2
    #: Aggregate small-RPC load (the paper: 100 Mb/s per server).
    small_load_gbps: float = 0.4
    fabric_gbps: float = 40.0
    n_spines: int = 2
    inseq_timeout_us: int = 13
    ofo_timeout_us: int = 150
    #: DCTCP marking threshold (None = tail-drop only, the paper's testbed
    #: transport regime; deep queues amplify the policy differences).
    ecn_threshold_kb: int | None = None
    queue_capacity_kb: int = 2048
    warmup_ms: int = 6
    measure_ms: int = 25
    seed: int = 20


@dataclass
class Fig20Point:
    """One (policy, load) cell."""

    policy: LbPolicy
    load_pct: int
    large_p99_ms: float
    large_p50_ms: float
    small_p99_us: float
    small_p50_us: float
    large_rpcs: int
    small_rpcs: int


@dataclass
class Fig20Result:
    """All cells."""

    points: List[Fig20Point] = field(default_factory=list)

    def series(self, policy: LbPolicy) -> List[Fig20Point]:
        """One curve of each panel."""
        return [p for p in self.points if p.policy is policy]


def _policy_factory(policy: LbPolicy, rngs: RngRegistry):
    if policy is LbPolicy.ECMP:
        return lambda: EcmpRouting()
    if policy is LbPolicy.PER_TSO:
        return lambda: PerTsoRouting()
    if policy is LbPolicy.FLOWLET:
        from repro.fabric.routing import FlowletRouting

        return lambda: FlowletRouting(rngs.stream("flowlet"),
                                      flowlet_gap_ns=100_000)
    return lambda: PerPacketRouting(rngs.stream("spray"))


def run_cell(params: Fig20Params, policy: LbPolicy, load_pct: int) -> Fig20Point:
    """One (policy, load) measurement."""
    engine = Engine()
    rngs = RngRegistry(params.seed)
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
    )
    net = build_clos(
        engine,
        make_gro_factory(GroKind.JUGGLER, config),
        _policy_factory(policy, rngs),
        n_tors=2,
        hosts_per_tor=8,
        n_spines=params.n_spines,
        host_rate_gbps=params.fabric_gbps,
        uplink_rate_gbps=params.fabric_gbps,
        nic_config=NicConfig(num_queues=1, coalesce_ns=30_000,
                             coalesce_frames=32),
        queue_capacity_bytes=params.queue_capacity_kb * 1024,
        ecn_threshold_bytes=(params.ecn_threshold_kb * 1024
                             if params.ecn_threshold_kb is not None else None),
    )
    servers = net.hosts[:8]
    clients = net.hosts[8:]

    uplink_capacity = params.n_spines * params.fabric_gbps
    total_load = uplink_capacity * load_pct / 100.0
    large_load = max(total_load - params.small_load_gbps, 0.1)
    tcp = TcpConfig(rx_buffer=4 << 20)

    def all_to_all(kind_servers, kind_clients, base_port):
        conns = []
        for si, server in enumerate(kind_servers):
            for ci, client in enumerate(kind_clients):
                for s in range(params.sessions_per_pair):
                    conns.append(Connection(
                        engine, server, client,
                        base_port + (si * 16 + ci) * 8 + s, 80, tcp))
        return conns

    large_conns = all_to_all(servers[:params.large_pairs],
                             clients[:params.large_pairs], 30_000)
    small_conns = all_to_all(servers[params.large_pairs:
                                     params.large_pairs + params.small_pairs],
                             clients[params.large_pairs:
                                     params.large_pairs + params.small_pairs],
                             40_000)

    large = RpcWorkload(engine, rngs.stream("large"), large_conns,
                        rpc_bytes=params.large_rpc_bytes,
                        load_gbps=large_load)
    small = RpcWorkload(engine, rngs.stream("small"), small_conns,
                        rpc_bytes=params.small_rpc_bytes,
                        load_gbps=params.small_load_gbps)
    large.start()
    small.start()

    engine.run_until(params.warmup_ms * MS)
    warmup_cut = engine.now
    engine.run_until((params.warmup_ms + params.measure_ms) * MS)

    large_lat = [r.latency_ns for r in large.records if r.start_ns >= warmup_cut]
    small_lat = [r.latency_ns for r in small.records if r.start_ns >= warmup_cut]
    large_p99, large_p50 = percentiles(large_lat, (99, 50))
    small_p99, small_p50 = percentiles(small_lat, (99, 50))
    return Fig20Point(
        policy=policy,
        load_pct=load_pct,
        large_p99_ms=large_p99 / MS,
        large_p50_ms=large_p50 / MS,
        small_p99_us=small_p99 / US,
        small_p50_us=small_p50 / US,
        large_rpcs=len(large_lat),
        small_rpcs=len(small_lat),
    )


def run(params: Fig20Params = Fig20Params()) -> Fig20Result:
    """Full sweep."""
    result = Fig20Result()
    for policy in params.policies:
        for load in params.loads_pct:
            result.points.append(run_cell(params, policy, load))
    return result


def render(result: Fig20Result) -> str:
    """Both panels of the figure as one table."""
    rows = [
        (p.policy.value, p.load_pct, round(p.large_p99_ms, 2),
         round(p.large_p50_ms, 2), round(p.small_p99_us, 1),
         round(p.small_p50_us, 1), p.large_rpcs, p.small_rpcs)
        for p in result.points
    ]
    return format_table(
        ["policy", "load_pct", "large_p99_ms", "large_p50_ms",
         "small_p99_us", "small_p50_us", "n_large", "n_small"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

"""Figure 18: achieved vs guaranteed bandwidth, sweeping the guarantee.

Setup (§5.3.1 / Figure 17): one target flow with guarantee B against 7
unconstrained antagonist flows across a 40 Gb/s two-priority bottleneck;
α = 0.1; B swept from 5 to 30 Gb/s; 30-run averages in the paper.

Paper results:

* with Juggler the achieved bandwidth tracks B closely until the receiver
  hits the CPU limit of a single core (~25 Gb/s in their testbed);
* the vanilla kernel lands far below the guarantee, with high variance;
* the target flow never drops below its ~5 Gb/s fair share even when B is
  smaller, because at p = 0 it is just another TCP flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.config import JugglerConfig
from repro.experiments.common import HostCpu
from repro.fabric.topology import build_priority_dumbbell
from repro.harness.experiment import GroKind, make_gro_factory
from repro.harness.metrics import Sampler, ThroughputProbe, mean
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.qos.bandwidth_guarantee import BandwidthGuaranteeController
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection


@dataclass(frozen=True)
class Fig18Params:
    """Sweep configuration."""

    guarantees_gbps: tuple = (5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
    line_rate_gbps: float = 40.0
    alpha: float = 0.1
    inseq_timeout_us: int = 13
    ofo_timeout_us: int = 200
    ramp_ms: int = 30
    measure_ms: int = 40
    sample_ms: int = 5
    #: Model the receiver's per-core CPU limit (the paper's ~25 Gb/s knee).
    model_cpu_limit: bool = True
    seed: int = 18


@dataclass
class Fig18Point:
    """One (kernel, guarantee) cell."""

    kind: GroKind
    guarantee_gbps: float
    achieved_gbps: float
    stdev_gbps: float
    app_core_pct: float


@dataclass
class Fig18Result:
    """All cells."""

    points: List[Fig18Point] = field(default_factory=list)

    def series(self, kind: GroKind) -> List[Fig18Point]:
        """One curve of the figure."""
        return [p for p in self.points if p.kind is kind]


def run_cell(params: Fig18Params, kind: GroKind,
             guarantee_gbps: float) -> Fig18Point:
    """One kernel × guarantee measurement."""
    engine = Engine()
    rngs = RngRegistry(params.seed)
    cpu = HostCpu(engine)
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
    )
    bed = build_priority_dumbbell(
        engine,
        make_gro_factory(kind, config, cpu.accountant),
        n_senders=2,
        n_receivers=2,
        host_rate_gbps=params.line_rate_gbps,
        bottleneck_gbps=params.line_rate_gbps,
        nic_config=NicConfig(num_queues=1, coalesce_ns=30_000,
                             coalesce_frames=32),
    )
    if params.model_cpu_limit:
        cpu.attach(bed.receivers[0])

    tcp = TcpConfig(rx_buffer=8 << 20)
    target = Connection(engine, bed.senders[0], bed.receivers[0], 4000, 80, tcp)
    controller = BandwidthGuaranteeController(
        engine,
        target.sender,
        rngs.stream("marking"),
        target_gbps=guarantee_gbps,
        line_rate_gbps=params.line_rate_gbps,
        alpha=params.alpha,
    )
    target.sender.priority_fn = controller.priority_fn
    target.send(1 << 42)
    for i in range(7):
        conn = Connection(engine, bed.senders[1], bed.receivers[1],
                          4100 + i, 80, tcp)
        conn.send(1 << 42)

    controller.start()
    engine.run_until(params.ramp_ms * MS)
    probe = Sampler(
        engine,
        ThroughputProbe(lambda: target.delivered_bytes, params.sample_ms * MS),
        params.sample_ms * MS,
    )
    probe.start()
    cpu.mark(engine.now)
    engine.run_until((params.ramp_ms + params.measure_ms) * MS)

    values = probe.values()
    mu = mean(values)
    stdev = (
        (sum((v - mu) ** 2 for v in values) / (len(values) - 1)) ** 0.5
        if len(values) > 1 else 0.0
    )
    return Fig18Point(
        kind=kind,
        guarantee_gbps=guarantee_gbps,
        achieved_gbps=mu,
        stdev_gbps=stdev,
        app_core_pct=100.0 * cpu.app_utilization(engine.now),
    )


def run(params: Fig18Params = Fig18Params()) -> Fig18Result:
    """Both kernels across the guarantee sweep."""
    result = Fig18Result()
    for kind in (GroKind.JUGGLER, GroKind.VANILLA):
        for guarantee in params.guarantees_gbps:
            result.points.append(run_cell(params, kind, guarantee))
    return result


def render(result: Fig18Result) -> str:
    """The figure's two curves as one table."""
    rows = [
        (p.kind.value, p.guarantee_gbps, round(p.achieved_gbps, 2),
         round(p.stdev_gbps, 2), round(min(p.app_core_pct, 100.0), 1))
        for p in result.points
    ]
    return format_table(
        ["kernel", "guarantee_gbps", "achieved_gbps", "stdev",
         "app_core_pct"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

"""Figure 15: how many flows Juggler actually needs to track.

Setup (§5.2.2, NetFPGA testbed): N concurrent flows totalling 10 Gb/s into
4 RX queues, reordering fixed at 250 µs – 1 ms; sample the number of active
flows (build-up + active-merging lists) and report the 99th percentile.

Paper result: the active count grows slowly with concurrency and reordering,
peaks below ~35, and *drops* past 256 concurrent flows because low-rate
flows send single-MTU TSO bursts that reordering cannot split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.config import JugglerConfig
from repro.core.juggler import JugglerGRO
from repro.experiments.common import grid_points
from repro.fabric.topology import build_netfpga_pair
from repro.harness.metrics import Sampler, percentile
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection


@dataclass(frozen=True)
class Fig15Params:
    """Sweep configuration."""

    concurrent_flows: tuple = (64, 128, 256, 512, 1024)
    reorder_delays_us: tuple = (250, 500, 750, 1000)
    total_gbps: float = 10.0
    num_rx_queues: int = 4
    inseq_timeout_us: int = 52
    #: Large table so the *demand* is observable without eviction clipping.
    table_capacity: int = 4096
    sample_interval_us: int = 50
    warmup_ms: int = 5
    measure_ms: int = 25
    seed: int = 15


@dataclass
class Fig15Point:
    """One sweep cell."""

    concurrent_flows: int
    reorder_delay_us: int
    p99_active_flows: float
    mean_active_flows: float
    max_active_flows: int


@dataclass
class Fig15Result:
    """All cells."""

    points: List[Fig15Point] = field(default_factory=list)

    def series(self, reorder_delay_us: int) -> List[Fig15Point]:
        """One curve of the figure."""
        return [p for p in self.points
                if p.reorder_delay_us == reorder_delay_us]


#: Sweep axes in loop-nesting order: (point field, params grid field).
POINT_AXES = (("reorder_delay_us", "reorder_delays_us"),
              ("concurrent_flows", "concurrent_flows"))


def run_point(params: Fig15Params, *, reorder_delay_us: int,
              concurrent_flows: int) -> Fig15Point:
    """One grid point, independently schedulable (see repro.campaign)."""
    return run_cell(params, concurrent_flows, reorder_delay_us)


def run_cell(params: Fig15Params, nflows: int, reorder_us: int) -> Fig15Point:
    """One (N, τ) measurement."""
    engine = Engine()
    rng = RngRegistry(params.seed).stream("fabric")
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=max(2 * reorder_us, 100) * US,
        table_capacity=params.table_capacity,
    )
    bed = build_netfpga_pair(
        engine,
        rng,
        lambda deliver: JugglerGRO(deliver, config),
        rate_gbps=params.total_gbps,
        reorder_delay_ns=reorder_us * US,
        nic_config=NicConfig(num_queues=params.num_rx_queues,
                             coalesce_frames=25),
    )
    per_flow = params.total_gbps / nflows
    burst_period_ns = max(1, round(64 * 1024 * 8 / per_flow))
    tcp = TcpConfig(init_cwnd=1 << 18)
    for i in range(nflows):
        conn = Connection(engine, bed.sender, bed.receiver,
                          5000 + i, 80, tcp, pacing_gbps=per_flow)
        engine.schedule(rng.randrange(burst_period_ns), conn.send, 1 << 40)

    def probe() -> float:
        return sum(
            q.gro.active_list_len for q in bed.receiver.nic.queues
        )

    sampler = Sampler(engine, probe, params.sample_interval_us * US)
    engine.schedule(params.warmup_ms * MS, sampler.start)
    engine.run_until((params.warmup_ms + params.measure_ms) * MS)

    values = sampler.values()
    return Fig15Point(
        concurrent_flows=nflows,
        reorder_delay_us=reorder_us,
        p99_active_flows=percentile(values, 99),
        mean_active_flows=sum(values) / len(values) if values else 0.0,
        max_active_flows=int(max(values)) if values else 0,
    )


def run(params: Fig15Params = Fig15Params()) -> Fig15Result:
    """Full sweep."""
    return Fig15Result(points=[
        run_point(params, **point)
        for point in grid_points(POINT_AXES, params)
    ])


def render(result: Fig15Result) -> str:
    """The figure's curves as one table."""
    rows = [
        (p.reorder_delay_us, p.concurrent_flows,
         round(p.p99_active_flows, 1), round(p.mean_active_flows, 2),
         p.max_active_flows)
        for p in result.points
    ]
    return format_table(
        ["reorder_us", "concurrent_flows", "p99_active", "mean_active",
         "max_active"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

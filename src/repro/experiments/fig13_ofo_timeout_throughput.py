"""Figure 13: single-flow throughput vs ``ofo_timeout``.

Setup (§5.2.1): one TCP flow at 10 Gb/s through the NetFPGA switch with
reordering delay τ ∈ {250, 500, 750} µs; sweep ``ofo_timeout``.

Paper result: the flow loses throughput whenever ``ofo_timeout`` is not at
least comparable to the reordering the network adds — a too-small timeout
flushes genuine out-of-order packets up to TCP, which answers with duplicate
ACKs and spurious fast retransmits.  The knee sits near τ − τ₀, where τ₀ is
the interrupt-coalescing period (125 µs): packets delayed less than the
coalescing window get re-ordered "for free" inside the ring buffer, because
the hole and its filler are processed in the same poll.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.config import JugglerConfig
from repro.core.juggler import JugglerGRO
from repro.experiments.common import grid_points
from repro.fabric.topology import build_netfpga_pair
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection


@dataclass(frozen=True)
class Fig13Params:
    """Sweep configuration."""

    ofo_timeouts_us: tuple = (50, 100, 200, 300, 400, 500, 600, 700, 800, 1000)
    reorder_delays_us: tuple = (250, 500, 750)
    rate_gbps: float = 10.0
    inseq_timeout_us: int = 52
    #: Time-only interrupt coalescing, the paper's τ₀ = 125 µs.
    coalesce_us: int = 125
    warmup_ms: int = 8
    measure_ms: int = 15
    seed: int = 13


@dataclass
class Fig13Point:
    """One sweep cell."""

    reorder_delay_us: int
    ofo_timeout_us: int
    throughput_gbps: float
    fast_retransmits: int
    ofo_flushes: int


@dataclass
class Fig13Result:
    """All cells."""

    points: List[Fig13Point] = field(default_factory=list)

    def series(self, reorder_delay_us: int) -> List[Fig13Point]:
        """One panel of the figure."""
        return [p for p in self.points
                if p.reorder_delay_us == reorder_delay_us]


#: Sweep axes in loop-nesting order: (point field, params grid field).
POINT_AXES = (("reorder_delay_us", "reorder_delays_us"),
              ("ofo_timeout_us", "ofo_timeouts_us"))


def run_point(params: Fig13Params, *, reorder_delay_us: int,
              ofo_timeout_us: int) -> Fig13Point:
    """One grid point, independently schedulable (see repro.campaign)."""
    return run_cell(params, reorder_delay_us, ofo_timeout_us)


def run_cell(params: Fig13Params, reorder_us: int, ofo_us: int) -> Fig13Point:
    """One (τ, ofo_timeout) measurement."""
    engine = Engine()
    rng = RngRegistry(params.seed).stream("fabric")
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=ofo_us * US,
    )
    bed = build_netfpga_pair(
        engine,
        rng,
        lambda deliver: JugglerGRO(deliver, config),
        rate_gbps=params.rate_gbps,
        reorder_delay_ns=reorder_us * US,
        nic_config=NicConfig(coalesce_ns=params.coalesce_us * US),
    )
    tcp = TcpConfig(init_cwnd=1 << 20, rx_buffer=8 << 20)
    conn = Connection(engine, bed.sender, bed.receiver, 1000, 80, tcp)
    conn.send(1 << 40)

    engine.run_until(params.warmup_ms * MS)
    bytes_before = conn.delivered_bytes
    retx_before = conn.sender.fast_retransmits
    end = (params.warmup_ms + params.measure_ms) * MS
    engine.run_until(end)

    gro_stats = bed.receiver.gro_engines[0].stats
    from repro.core.flush import FlushReason

    return Fig13Point(
        reorder_delay_us=reorder_us,
        ofo_timeout_us=ofo_us,
        throughput_gbps=(conn.delivered_bytes - bytes_before) * 8
        / (params.measure_ms * MS),
        fast_retransmits=conn.sender.fast_retransmits - retx_before,
        ofo_flushes=gro_stats.flush_reasons.get(FlushReason.OFO_TIMEOUT, 0),
    )


def run(params: Fig13Params = Fig13Params()) -> Fig13Result:
    """Full sweep."""
    return Fig13Result(points=[
        run_point(params, **point)
        for point in grid_points(POINT_AXES, params)
    ])


def render(result: Fig13Result) -> str:
    """The figure's three panels as one table."""
    rows = [
        (p.reorder_delay_us, p.ofo_timeout_us,
         round(p.throughput_gbps, 2), p.fast_retransmits, p.ofo_flushes)
        for p in result.points
    ]
    return format_table(
        ["reorder_us", "ofo_timeout_us", "throughput_gbps",
         "fast_retransmits", "ofo_flushes"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

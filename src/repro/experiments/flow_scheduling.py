"""Extension experiment: end-host flow scheduling (the §2.1 pFabric use
case the paper motivates but does not evaluate).

A heavy-tailed mix of short (mice) and long (elephant) flows shares a
two-priority bottleneck.  End hosts mark packets PIAS-style — a flow's
first ``threshold`` bytes ride high priority, the rest low — so mice finish
ahead of the elephants they'd otherwise queue behind.  Because a flow's
priority changes mid-stream, its packets straddle both switch queues and
reorder; the experiment compares the scheduling benefit with a Juggler
receiver against a vanilla one, and against no prioritisation at all.

Expected shape: prioritisation slashes mice flow-completion times (FCT)
when the receiver is reordering-resilient; with the vanilla receiver the
reordering tax eats into the benefit (and hurts the elephants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import JugglerConfig
from repro.fabric.topology import build_priority_dumbbell
from repro.harness.experiment import GroKind, make_gro_factory
from repro.harness.metrics import percentile, percentiles
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.qos.flow_scheduling import PiasMarker
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection


@dataclass(frozen=True)
class SchedulingParams:
    """Workload and fabric configuration."""

    mice_bytes: int = 50_000
    elephant_bytes: int = 2_000_000
    mice_fraction: float = 0.8
    #: Offered load as a fraction of the 40 Gb/s bottleneck.
    load: float = 0.7
    line_rate_gbps: float = 40.0
    #: PIAS demotion threshold: mice never leave the high-priority queue.
    threshold_bytes: int = 100_000
    inseq_timeout_us: int = 13
    ofo_timeout_us: int = 200
    warmup_ms: int = 8
    measure_ms: int = 30
    seed: int = 2026


@dataclass
class SchedulingPoint:
    """One (marking, kernel) configuration's FCT statistics."""

    label: str
    mice_p50_us: float
    mice_p99_us: float
    elephant_p99_ms: float
    mice_done: int
    elephants_done: int


@dataclass
class _FlowRecord:
    size: int
    started: int
    finished: Optional[int] = None


def run_config(params: SchedulingParams, *, kind: GroKind,
               prioritize: bool) -> SchedulingPoint:
    """One configuration of the mice/elephants experiment."""
    engine = Engine()
    rngs = RngRegistry(params.seed)
    arrival_rng = rngs.stream("arrivals")
    config = JugglerConfig(inseq_timeout=params.inseq_timeout_us * US,
                           ofo_timeout=params.ofo_timeout_us * US)
    bed = build_priority_dumbbell(
        engine,
        make_gro_factory(kind, config),
        n_senders=2,
        n_receivers=2,
        host_rate_gbps=params.line_rate_gbps,
        bottleneck_gbps=params.line_rate_gbps,
        nic_config=NicConfig(num_queues=1, coalesce_ns=30_000,
                             coalesce_frames=32),
    )
    tcp = TcpConfig(rx_buffer=8 << 20)
    records: List[_FlowRecord] = []
    mean_size = (params.mice_fraction * params.mice_bytes
                 + (1 - params.mice_fraction) * params.elephant_bytes)
    mean_gap_ns = mean_size * 8 / (params.line_rate_gbps * params.load)
    next_port = [10_000]

    def launch_flow() -> None:
        mouse = arrival_rng.random() < params.mice_fraction
        size = params.mice_bytes if mouse else params.elephant_bytes
        sender_host = bed.senders[next_port[0] % 2]
        receiver_host = bed.receivers[next_port[0] % 2]
        record = _FlowRecord(size, engine.now)
        records.append(record)

        def on_bytes(watermark, now, record=record, size=size):
            if record.finished is None and watermark >= size:
                record.finished = now

        conn = Connection(engine, sender_host, receiver_host,
                          next_port[0], 80, tcp, on_bytes=on_bytes)
        next_port[0] += 1
        if prioritize:
            conn.sender.priority_fn = PiasMarker(
                params.threshold_bytes).priority_fn
        conn.send(size)
        engine.schedule(
            max(1, round(arrival_rng.expovariate(1.0 / mean_gap_ns))),
            launch_flow)

    launch_flow()
    engine.run_until((params.warmup_ms + params.measure_ms) * MS)

    done = [r for r in records
            if r.finished is not None and r.started >= params.warmup_ms * MS]
    mice = [r.finished - r.started for r in done if r.size == params.mice_bytes]
    elephants = [r.finished - r.started for r in done
                 if r.size == params.elephant_bytes]
    label = f"{'pias' if prioritize else 'none'}/{kind.value}"
    mice_p50, mice_p99 = percentiles(mice, (50, 99))
    return SchedulingPoint(
        label=label,
        mice_p50_us=mice_p50 / US,
        mice_p99_us=mice_p99 / US,
        elephant_p99_ms=percentile(elephants, 99) / MS,
        mice_done=len(mice),
        elephants_done=len(elephants),
    )


def run(params: SchedulingParams = SchedulingParams()) -> List[SchedulingPoint]:
    """Baseline, PIAS+Juggler, PIAS+vanilla."""
    return [
        run_config(params, kind=GroKind.JUGGLER, prioritize=False),
        run_config(params, kind=GroKind.JUGGLER, prioritize=True),
        run_config(params, kind=GroKind.VANILLA, prioritize=True),
    ]


def render(points: List[SchedulingPoint]) -> str:
    """FCT comparison table."""
    rows = [
        (p.label, round(p.mice_p50_us, 1), round(p.mice_p99_us, 1),
         round(p.elephant_p99_ms, 2), p.mice_done, p.elephants_done)
        for p in points
    ]
    return format_table(
        ["config", "mice_p50_us", "mice_p99_us", "elephant_p99_ms",
         "n_mice", "n_eleph"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

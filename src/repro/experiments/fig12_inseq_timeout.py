"""Figure 12: batching efficiency and CPU vs ``inseq_timeout``.

Setup (§5.2.1, Figure 11 testbed): one TCP flow at 10 Gb/s line rate through
the NetFPGA switch, reordering delay τ ∈ {250, 500, 750} µs.  Sweep
``inseq_timeout`` and measure the batching extent (average MTUs per
delivered segment) and RX-core usage.

Paper result: batching improves with ``inseq_timeout`` up to ≈52 µs — the
time to receive one maximum-size 64 KB segment at 10 Gb/s — and flattens
beyond, regardless of how much reordering the network adds.  CPU usage falls
as batching rises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core.config import JugglerConfig
from repro.core.juggler import JugglerGRO
from repro.experiments.common import (
    HostCpu,
    StatsSnapshot,
    grid_points,
    merged_stats,
)
from repro.fabric.topology import build_netfpga_pair
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection


@dataclass(frozen=True)
class Fig12Params:
    """Sweep configuration (defaults scaled for CI; dimensionless knobs —
    timeout/τ ratios, line rate — match the paper)."""

    inseq_timeouts_us: tuple = (0, 10, 20, 30, 40, 52, 65, 80, 100)
    reorder_delays_us: tuple = (250, 500, 750)
    rate_gbps: float = 10.0
    ofo_timeout_us: int = 1000  # large, to isolate the inseq knob
    #: Frames-or-time interrupt coalescing: 25 frames sets the NAPI poll
    #: cadence at line rate, giving the paper's ~25-MTU batching floor at
    #: inseq_timeout = 0.
    coalesce_frames: int = 25
    warmup_ms: int = 8
    measure_ms: int = 15
    seed: int = 12


@dataclass
class Fig12Point:
    """One sweep cell."""

    reorder_delay_us: int
    inseq_timeout_us: int
    batching_extent: float
    rx_core_pct: float
    app_core_pct: float
    throughput_gbps: float


@dataclass
class Fig12Result:
    """All cells, ordered by (τ, inseq_timeout)."""

    points: List[Fig12Point] = field(default_factory=list)

    def series(self, reorder_delay_us: int) -> List[Fig12Point]:
        """One curve of the figure."""
        return [p for p in self.points
                if p.reorder_delay_us == reorder_delay_us]


#: Sweep axes in loop-nesting order: (point field, params grid field).
POINT_AXES = (("reorder_delay_us", "reorder_delays_us"),
              ("inseq_timeout_us", "inseq_timeouts_us"))


def run_point(params: Fig12Params, *, reorder_delay_us: int,
              inseq_timeout_us: int) -> Fig12Point:
    """One grid point, independently schedulable (see repro.campaign)."""
    return run_cell(params, reorder_delay_us, inseq_timeout_us)


def run_cell(params: Fig12Params, reorder_us: int, inseq_us: int) -> Fig12Point:
    """One (τ, inseq_timeout) measurement."""
    engine = Engine()
    rng = RngRegistry(params.seed).stream("fabric")
    cpu = HostCpu(engine)
    config = JugglerConfig(
        inseq_timeout=inseq_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
    )
    bed = build_netfpga_pair(
        engine,
        rng,
        lambda deliver: JugglerGRO(deliver, config, cpu.accountant),
        rate_gbps=params.rate_gbps,
        reorder_delay_ns=reorder_us * US,
        nic_config=NicConfig(coalesce_frames=params.coalesce_frames),
    )
    cpu.attach(bed.receiver)
    # Large initial window and receive buffer: the paper measures long
    # steady-state flows, so we skip most of slow start.
    tcp = TcpConfig(init_cwnd=1 << 20, rx_buffer=8 << 20)
    conn = Connection(engine, bed.sender, bed.receiver, 1000, 80, tcp)
    conn.send(1 << 40)

    engine.run_until(params.warmup_ms * MS)
    engines = bed.receiver.gro_engines
    before = merged_stats(engines)
    bytes_before = conn.delivered_bytes
    cpu.mark(engine.now)

    end = (params.warmup_ms + params.measure_ms) * MS
    engine.run_until(end)
    after = merged_stats(engines)
    window = params.measure_ms * MS
    return Fig12Point(
        reorder_delay_us=reorder_us,
        inseq_timeout_us=inseq_us,
        batching_extent=_batching(before, after),
        rx_core_pct=100.0 * cpu.rx_utilization(engine.now),
        app_core_pct=100.0 * cpu.app_utilization(engine.now),
        throughput_gbps=(conn.delivered_bytes - bytes_before) * 8 / window,
    )


def _batching(before: StatsSnapshot, after: StatsSnapshot) -> float:
    segments = after.segments - before.segments
    if segments <= 0:
        return 0.0
    return (after.batched_mtus - before.batched_mtus) / segments


def run(params: Fig12Params = Fig12Params()) -> Fig12Result:
    """Full sweep."""
    return Fig12Result(points=[
        run_point(params, **point)
        for point in grid_points(POINT_AXES, params)
    ])


def render(result: Fig12Result) -> str:
    """The figure's two panels as one table."""
    rows = [
        (p.reorder_delay_us, p.inseq_timeout_us,
         round(p.batching_extent, 2), round(p.rx_core_pct, 1),
         round(p.app_core_pct, 1), round(p.throughput_gbps, 2))
        for p in result.points
    ]
    return format_table(
        ["reorder_us", "inseq_timeout_us", "batching_extent_mtus",
         "rx_core_pct", "app_core_pct", "throughput_gbps"],
        rows,
    )


if __name__ == "__main__":
    print(render(run()))

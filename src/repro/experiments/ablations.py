"""Ablations of Juggler's design choices (DESIGN.md §5).

1. **Build-up phase** (Remark 1): letting ``seq_next`` move backwards while
   a (re-entering) flow's first polling interval completes.  The paper
   measured ~6% fewer segments up the stack with the optimisation.
2. **Eviction policy** (§4.3): inactive-first vs naive FIFO vs the
   adversarial active-first inversion.  Evicting flows whose queues have
   holes strands their peers waiting for timeouts (Figure 8).
3. **gro_table size** (§5.2.2): how small can the table get before
   forced evictions start hurting batching and reordering protection.

All three run the same stress scenario: many concurrent flows through the
NetFPGA reordering switch with a deliberately small table, so flows
constantly leave and re-enter Juggler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.config import JugglerConfig
from repro.core.flush import FlushReason
from repro.core.juggler import JugglerGRO
from repro.fabric.topology import build_netfpga_pair
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection


@dataclass(frozen=True)
class AblationParams:
    """Shared stress-scenario configuration."""

    num_flows: int = 64
    total_gbps: float = 10.0
    reorder_delay_us: int = 250
    inseq_timeout_us: int = 52
    ofo_timeout_us: int = 400
    table_capacity: int = 8
    duration_ms: int = 30
    seed: int = 77


@dataclass
class AblationPoint:
    """One configuration's outcome."""

    label: str
    segments_per_packet: float
    ooo_fraction: float
    ofo_timeout_flushes: int
    evictions: int
    throughput_gbps: float


def _run_stress(params: AblationParams, config: JugglerConfig) -> AblationPoint:
    engine = Engine()
    rng = RngRegistry(params.seed).stream("workload")
    bed = build_netfpga_pair(
        engine,
        rng,
        lambda deliver: JugglerGRO(deliver, config),
        rate_gbps=params.total_gbps,
        reorder_delay_ns=params.reorder_delay_us * US,
        nic_config=NicConfig(num_queues=1, coalesce_frames=25),
    )
    per_flow = params.total_gbps / params.num_flows
    burst_period_ns = max(1, round(64 * 1024 * 8 / per_flow))
    tcp = TcpConfig(init_cwnd=1 << 17)
    conns: List[Connection] = []
    for i in range(params.num_flows):
        conn = Connection(engine, bed.sender, bed.receiver, 5000 + i, 80,
                          tcp, pacing_gbps=per_flow)
        engine.schedule(rng.randrange(burst_period_ns), conn.send, 1 << 38)
        conns.append(conn)
    engine.run_until(params.duration_ms * MS)

    stats = bed.receiver.gro_engines[0].stats
    delivered = sum(c.delivered_bytes for c in conns)
    return AblationPoint(
        label="",
        segments_per_packet=(stats.segments / stats.packets
                             if stats.packets else 0.0),
        ooo_fraction=stats.ooo_fraction,
        ofo_timeout_flushes=stats.flush_reasons.get(FlushReason.OFO_TIMEOUT, 0),
        evictions=stats.total_evictions,
        throughput_gbps=delivered * 8 / (params.duration_ms * MS),
    )


def _config(params: AblationParams, *, enable_buildup: bool = True,
            eviction_policy: str = "inactive_first",
            capacity: Optional[int] = None) -> JugglerConfig:
    return JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
        table_capacity=capacity if capacity is not None
        else params.table_capacity,
        enable_buildup=enable_buildup,
        eviction_policy=eviction_policy,
    )


def run_buildup_ablation(
        params: AblationParams = AblationParams(reorder_delay_us=60),
) -> List[AblationPoint]:
    """With vs without the build-up phase.

    Defaults to 60 µs reordering: the optimisation only pays off for
    stragglers that arrive while the re-entering flow is still inside its
    first polling interval, so delays much longer than a poll mask it.
    """
    points = []
    for enabled in (True, False):
        point = _run_stress(params, _config(params, enable_buildup=enabled))
        point.label = "buildup=on" if enabled else "buildup=off"
        points.append(point)
    return points


def run_eviction_ablation(
        params: AblationParams = AblationParams()) -> List[AblationPoint]:
    """The paper's eviction order vs naive FIFO vs adversarial inversion."""
    points = []
    for policy in ("inactive_first", "fifo", "active_first"):
        point = _run_stress(params, _config(params, eviction_policy=policy))
        point.label = f"evict={policy}"
        points.append(point)
    return points


def run_table_size_ablation(
        params: AblationParams = AblationParams(),
        capacities: tuple = (2, 4, 8, 16, 64)) -> List[AblationPoint]:
    """Sweeping gro_table capacity."""
    points = []
    for capacity in capacities:
        point = _run_stress(params, _config(params, capacity=capacity))
        point.label = f"capacity={capacity}"
        points.append(point)
    return points


def render(points: List[AblationPoint]) -> str:
    """Any ablation's rows."""
    rows = [
        (p.label, round(p.segments_per_packet, 4), round(p.ooo_fraction, 4),
         p.ofo_timeout_flushes, p.evictions, round(p.throughput_gbps, 2))
        for p in points
    ]
    return format_table(
        ["config", "segs_per_pkt", "ooo_frac", "ofo_flushes", "evictions",
         "throughput_gbps"],
        rows,
    )


if __name__ == "__main__":
    print("Build-up phase ablation:")
    print(render(run_buildup_ablation()))
    print("\nEviction policy ablation:")
    print(render(run_eviction_ablation()))
    print("\nTable size ablation:")
    print(render(run_table_size_ablation()))

"""Figures 9 and 10: CPU overhead of Juggler vs the vanilla kernel.

Setup (§5.1.1): a two-stage Clos; senders rate-limited to 20 Gb/s aggregate
into a single RX queue at the receiver; background traffic loads the sending
ToR's uplinks to ~50%; ECMP gives the no-reordering baseline, per-packet
spraying creates reordering.  Four scenarios — {1 flow, 256 flows} ×
{ECMP, per-packet} — each run under both kernels.

Paper results this experiment reproduces:

* without reordering, Juggler adds no CPU over vanilla;
* with reordering, the vanilla receiver's application core saturates
  (~100%) and it "falls short of reaching 20Gb/s", while Juggler sustains
  the target using < 10% additional CPU;
* vanilla under reordering sees ~15× more segments (≈40% out of order) and
  ~15× more ACKs (§5.1.1's prose numbers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.config import JugglerConfig
from repro.experiments.common import HostCpu, merged_stats
from repro.fabric.routing import EcmpRouting, PerPacketRouting
from repro.fabric.topology import build_clos
from repro.harness.experiment import GroKind, make_gro_factory
from repro.harness.reporting import format_table
from repro.nic.nic import NicConfig
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.sim.time import MS, US
from repro.tcp.config import TcpConfig
from repro.tcp.connection import Connection
from repro.net.pool import PacketPool
from repro.workloads.background import DiscardSink, PoissonPacketSource


@dataclass(frozen=True)
class CpuOverheadParams:
    """One scenario's configuration."""

    num_flows: int = 1
    reordering: bool = True  # per-packet spraying vs ECMP
    kind: GroKind = GroKind.JUGGLER
    target_gbps: float = 20.0
    uplink_gbps: float = 40.0
    n_spines: int = 2
    background_gbps: float = 20.0  # brings uplink load to ~50%
    inseq_timeout_us: int = 13  # 40G rule of thumb (§5.2.1)
    ofo_timeout_us: int = 100
    warmup_ms: int = 10
    measure_ms: int = 20
    seed: int = 9


@dataclass
class CpuOverheadResult:
    """One scenario's measurements."""

    params: CpuOverheadParams
    throughput_gbps: float = 0.0
    rx_core_pct: float = 0.0
    app_core_pct: float = 0.0
    batching_extent: float = 0.0
    segments: int = 0
    ooo_segment_fraction: float = 0.0
    acks_sent: int = 0

    @property
    def throughput_pct_of_target(self) -> float:
        """Throughput as % of the rate-limited target."""
        return 100.0 * self.throughput_gbps / self.params.target_gbps


def run_scenario(params: CpuOverheadParams) -> CpuOverheadResult:
    """Run one {flows, reordering, kernel} cell."""
    engine = Engine()
    rngs = RngRegistry(params.seed)
    cpu = HostCpu(engine)
    config = JugglerConfig(
        inseq_timeout=params.inseq_timeout_us * US,
        ofo_timeout=params.ofo_timeout_us * US,
    )
    gro_factory = make_gro_factory(params.kind, config, cpu.accountant)

    if params.reordering:
        def policy_factory():
            return PerPacketRouting(rngs.stream("spray"))
    else:
        def policy_factory():
            return EcmpRouting()

    # ToR 0 hosts the senders; ToR 1 hosts the receiver and the background
    # sink.  All measured flows aim at one receiver host => one RX queue.
    net = build_clos(
        engine,
        gro_factory,
        policy_factory,
        n_tors=2,
        hosts_per_tor=max(2, params.num_flows if params.num_flows <= 8 else 8),
        n_spines=params.n_spines,
        host_rate_gbps=params.uplink_gbps,
        uplink_rate_gbps=params.uplink_gbps,
        nic_config=NicConfig(num_queues=1, coalesce_frames=32),
    )
    hosts_per_tor = len(net.hosts) // 2
    senders = net.hosts[:hosts_per_tor]
    receiver = net.hosts[hosts_per_tor]
    sink_host = net.hosts[hosts_per_tor + 1]
    cpu.attach(receiver)

    per_flow_gbps = params.target_gbps / params.num_flows
    tcp = TcpConfig(init_cwnd=1 << 19, rx_buffer=4 << 20)
    start_rng = rngs.stream("flow-start")
    # Stagger flow starts across one pacing period so the aggregate is
    # smooth from t=0 (flows in the testbed were long-running, not
    # synchronised).
    burst_period_ns = max(1, round(64 * 1024 * 8 / per_flow_gbps))
    connections: List[Connection] = []
    for i in range(params.num_flows):
        src = senders[i % len(senders)]
        conn = Connection(
            engine, src, receiver, 10_000 + i, 80, tcp,
            pacing_gbps=per_flow_gbps,
        )
        engine.schedule(start_rng.randrange(burst_period_ns),
                        conn.send, 1 << 40)
        connections.append(conn)

    # Background load on the sending ToR's uplinks, routed to a discard
    # host under the receiving ToR (its own downlink, so it does not queue
    # behind the measured flows at the receiver's port).
    bg_pool = PacketPool()
    discard = DiscardSink(bg_pool)
    from repro.fabric.link import QueuedLink

    bg_dst = sink_host.host_id + 1_000_000  # synthetic id, never a real host
    net.tors[1].add_route(
        bg_dst,
        QueuedLink(engine, params.uplink_gbps, discard, name="bg-sink"),
    )
    for s, spine in enumerate(net.spines):
        spine.add_route(bg_dst, net.downlinks[s][1])
    background = PoissonPacketSource(
        engine,
        rngs.stream("background"),
        net.tors[0],
        load_gbps=params.background_gbps,
        src=99,
        dst=sink_host.host_id + 1_000_000,
        pool=bg_pool,
    )
    background.start()

    engine.run_until(params.warmup_ms * MS)
    engines = receiver.gro_engines
    before = merged_stats(engines)
    delivered_before = sum(c.delivered_bytes for c in connections)
    acks_before = sum(c.receiver.acks_sent for c in connections)
    cpu.mark(engine.now)

    engine.run_until((params.warmup_ms + params.measure_ms) * MS)
    after = merged_stats(engines)
    window = params.measure_ms * MS
    delivered = sum(c.delivered_bytes for c in connections) - delivered_before

    segments = after.segments - before.segments
    mtus = after.batched_mtus - before.batched_mtus
    ooo = after.ooo_segments - before.ooo_segments
    return CpuOverheadResult(
        params=params,
        throughput_gbps=delivered * 8 / window,
        rx_core_pct=100.0 * cpu.rx_utilization(engine.now),
        app_core_pct=100.0 * cpu.app_utilization(engine.now),
        batching_extent=(mtus / segments) if segments else 0.0,
        segments=segments,
        ooo_segment_fraction=(ooo / segments) if segments else 0.0,
        acks_sent=sum(c.receiver.acks_sent for c in connections) - acks_before,
    )


def run_figure(num_flows: int,
               base: CpuOverheadParams = CpuOverheadParams()) -> List[CpuOverheadResult]:
    """All four bars of Figure 9 (num_flows=1) or Figure 10 (256)."""
    results = []
    for reordering in (False, True):
        for kind in (GroKind.VANILLA, GroKind.JUGGLER):
            params = CpuOverheadParams(
                num_flows=num_flows,
                reordering=reordering,
                kind=kind,
                target_gbps=base.target_gbps,
                uplink_gbps=base.uplink_gbps,
                n_spines=base.n_spines,
                background_gbps=base.background_gbps,
                inseq_timeout_us=base.inseq_timeout_us,
                ofo_timeout_us=base.ofo_timeout_us,
                warmup_ms=base.warmup_ms,
                measure_ms=base.measure_ms,
                seed=base.seed,
            )
            results.append(run_scenario(params))
    return results


def render(results: List[CpuOverheadResult]) -> str:
    """The figure's bars as one table."""
    rows = [
        (
            r.params.num_flows,
            "per-packet" if r.params.reordering else "ecmp",
            r.params.kind.value,
            round(r.throughput_pct_of_target, 1),
            round(r.rx_core_pct, 1),
            round(min(r.app_core_pct, 100.0), 1),
            round(r.batching_extent, 1),
            round(r.ooo_segment_fraction, 3),
            r.acks_sent,
        )
        for r in results
    ]
    return format_table(
        ["flows", "routing", "kernel", "tput_pct_target", "rx_core_pct",
         "app_core_pct", "batching", "ooo_frac", "acks"],
        rows,
    )


if __name__ == "__main__":
    print("Figure 9 (single flow):")
    print(render(run_figure(1)))
    print()
    print("Figure 10 (256 flows):")
    print(render(run_figure(256)))

"""Named, independent random streams.

Every stochastic component (RPC arrivals, load-balancer spraying, NetFPGA
queue choice, drop element, ...) draws from its own stream derived from the
experiment's root seed.  This keeps experiments reproducible and lets one
component's draw count change without perturbing the others — essential when
comparing vanilla vs Juggler runs on "the same" workload.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory of named :class:`random.Random` streams under one root seed."""

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it deterministically.

        The same ``(seed, name)`` pair always yields an identically-seeded
        stream, regardless of creation order.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self._seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def fork(self, name: str) -> "RngRegistry":
        """Derive a child registry (e.g. one per host) from this one."""
        digest = hashlib.sha256(f"{self._seed}:fork:{name}".encode()).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))

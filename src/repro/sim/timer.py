"""A re-armable one-shot timer, modelled on the kernel's hrtimer.

Juggler registers "one high resolution timer callback per gro_table"
(§4.2.2) to check the ``inseq_timeout`` / ``ofo_timeout`` conditions between
polling intervals.  :class:`Timer` provides that abstraction on top of the
event engine: arm it for a deadline, re-arm to move the deadline, cancel it,
and the callback fires at most once per arming.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Engine
from repro.sim.event import EventHandle


class Timer:
    """One-shot re-armable timer bound to an engine and a callback."""

    def __init__(self, engine: Engine, callback: Callable[[], Any]):
        self._engine = engine
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    @property
    def armed(self) -> bool:
        """True if the timer has a pending expiry."""
        return self._handle is not None and self._handle.active

    @property
    def expires_at(self) -> Optional[int]:
        """Absolute expiry time, or None when disarmed."""
        if self.armed:
            assert self._handle is not None
            return self._handle.time
        return None

    def arm_at(self, time: int) -> None:
        """(Re-)arm the timer for absolute time ``time``."""
        self.cancel()
        self._handle = self._engine.schedule_at(time, self._fire)

    def arm_after(self, delay: int) -> None:
        """(Re-)arm the timer ``delay`` ns from now."""
        self.arm_at(self._engine.now + delay)

    def arm_if_earlier(self, time: int) -> None:
        """Arm for ``time`` unless already armed for an earlier deadline.

        This is how Juggler's per-table hrtimer is managed: each buffered
        packet wants a wake-up at its own timeout; the timer tracks the
        soonest one.
        """
        if self.armed:
            assert self._handle is not None
            if self._handle.time <= time:
                return
        self.arm_at(time)

    def cancel(self) -> None:
        """Disarm the timer if pending.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()

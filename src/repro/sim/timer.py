"""A re-armable one-shot timer, modelled on the kernel's hrtimer.

Juggler registers "one high resolution timer callback per gro_table"
(§4.2.2) to check the ``inseq_timeout`` / ``ofo_timeout`` conditions between
polling intervals.  :class:`Timer` provides that abstraction on top of the
event engine: arm it for a deadline, re-arm to move the deadline, cancel it,
and the callback fires at most once per arming.

Re-arming is the engine's highest-churn operation (the RX queue moves its
hrtimer after every poll), so the timer tracks its pending event directly —
generation-checked, like :class:`~repro.sim.event.EventHandle`, but without
allocating a handle per arm.  Each re-arm leaves one lazily-cancelled
tombstone behind; the engine's compaction keeps those bounded.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Engine
from repro.sim.event import Event


class Timer:
    """One-shot re-armable timer bound to an engine and a callback."""

    __slots__ = ("_engine", "_callback", "_event", "_gen")

    def __init__(self, engine: Engine, callback: Callable[[], Any]):
        self._engine = engine
        self._callback = callback
        self._event: Optional[Event] = None
        self._gen = 0

    @property
    def armed(self) -> bool:
        """True if the timer has a pending expiry."""
        event = self._event
        return (event is not None and event.gen == self._gen
                and not event.cancelled)

    @property
    def expires_at(self) -> Optional[int]:
        """Absolute expiry time, or None when disarmed."""
        if self.armed:
            assert self._event is not None
            return self._event.time
        return None

    def arm_at(self, time: int) -> None:
        """(Re-)arm the timer for absolute time ``time``."""
        self.cancel()
        event = self._engine._schedule_event(time, self._fire, ())
        self._event = event
        self._gen = event.gen

    def arm_after(self, delay: int) -> None:
        """(Re-)arm the timer ``delay`` ns from now."""
        self.arm_at(self._engine.now + delay)

    def arm_if_earlier(self, time: int) -> None:
        """Arm for ``time`` unless already armed for an earlier deadline.

        This is how Juggler's per-table hrtimer is managed: each buffered
        packet wants a wake-up at its own timeout; the timer tracks the
        soonest one.
        """
        if self.armed:
            assert self._event is not None
            if self._event.time <= time:
                return
        self.arm_at(time)

    def cancel(self) -> None:
        """Disarm the timer if pending.  Idempotent."""
        event = self._event
        if event is not None:
            if event.gen == self._gen and not event.cancelled:
                event.cancelled = True
                self._engine._on_cancel(event)
            self._event = None

    def _fire(self) -> None:
        self._event = None
        self._callback()

"""The discrete-event engine.

A single :class:`Engine` instance owns simulated time for one experiment.
Components hold a reference to the engine, schedule callbacks on it, and read
``engine.now`` for the current time — exactly the role ``ktime_get()`` and
timer wheels play for the kernel GRO path the paper modifies.

Internals (the hot loop of every experiment)
--------------------------------------------
Pending events live in a two-level structure modelled on the kernel's timer
wheel: deadlines within :data:`WHEEL_HORIZON_NS` of now go into per-slot
mini-heaps keyed by ``time >> SLOT_SHIFT`` (a heap of active slot indices
orders the slots), and far deadlines fall back to one overflow heap.  The
next runnable event is the (time, seq)-minimum across the front slot and the
overflow heap, so fire order is *identical* to the single-heap
implementation this replaced — total order by ``(time, seq)`` with ``seq``
unique — while pushes land in tiny per-slot heaps instead of one
ever-growing one.

Cancellation is lazy (a tombstone flag; see
:class:`~repro.sim.event.EventHandle`), which makes ``Timer`` re-arm churn
O(1) — but sustained churn against far deadlines would grow residency
without bound.  A compaction pass triggered by the tombstone/live ratio
rebuilds the structures with live events only, keeping resident tombstones
at no more than ``max(live, COMPACT_FLOOR)``.  Fired and compacted events
are recycled through a bounded free list (generation-counted, so stale
handles stay safe).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.event import Event, EventHandle
from repro.trace import runtime as trace_runtime

#: Wheel slot width: ``1 << SLOT_SHIFT`` ns (65.536 µs — a few polling
#: intervals; link/pacing/GRO deadlines cluster within a handful of slots).
SLOT_SHIFT = 16

#: Slots covered by the wheel; deadlines beyond ``now + WHEEL_HORIZON_NS``
#: go to the overflow heap instead.
WHEEL_HORIZON_SLOTS = 512
WHEEL_HORIZON_NS = WHEEL_HORIZON_SLOTS << SLOT_SHIFT  # ~33.6 ms

#: Compaction floor: never bother compacting fewer tombstones than this.
COMPACT_FLOOR = 256

#: Event free-list capacity.
_POOL_MAX = 1024


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, etc.)."""


class Engine:
    """A deterministic discrete-event simulation loop.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(100, fired.append, 100)
    >>> _ = eng.schedule(50, fired.append, 50)
    >>> eng.run()
    >>> fired
    [50, 100]
    """

    def __init__(self) -> None:
        self._now = 0
        #: Overflow heap: events beyond the wheel horizon at schedule time.
        self._heap: list[Event] = []
        #: Wheel: absolute slot index -> mini-heap of events in that slot.
        self._buckets: dict[int, list[Event]] = {}
        #: Heap of active slot indices (one entry per live bucket).
        self._slot_heap: list[int] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._live = 0
        self._tombstones = 0
        self._compactions = 0
        self._pool: list[Event] = []
        self._events_allocated = 0
        tracer = trace_runtime.current()
        if tracer is not None:
            # A new engine restarts simulated time: open a new trace epoch
            # and expose the event-loop totals as gauges.
            tracer.bind_engine(self)

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far (cancelled ones excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Resident events: live **plus** cancelled tombstones not yet
        discarded.  Use :attr:`pending_live` for the exact live count."""
        return self._live + self._tombstones

    @property
    def pending_live(self) -> int:
        """Events that will actually fire (cancelled ones excluded)."""
        return self._live

    @property
    def tombstones(self) -> int:
        """Cancelled events still resident (discarded lazily or by
        compaction); bounded at ``max(pending_live, COMPACT_FLOOR)``."""
        return self._tombstones

    @property
    def compactions(self) -> int:
        """Tombstone-compaction passes run so far."""
        return self._compactions

    @property
    def events_allocated(self) -> int:
        """Fresh :class:`Event` allocations (free-list misses) — the
        allocation-reduction gauge the perf suite tracks."""
        return self._events_allocated

    # -- scheduling -----------------------------------------------------------

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns in the past")
        return EventHandle(
            self, self._schedule_event(self._now + delay, callback, args))

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        return EventHandle(self, self._schedule_event(time, callback, args))

    def post(self, delay: int, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle.

        The hot path for components that never cancel (link transmit
        completions, source emission loops) — skips the handle allocation.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns in the past")
        self._schedule_event(self._now + delay, callback, args)

    def post_at(self, time: int, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no cancellation handle."""
        self._schedule_event(time, callback, args)

    def _schedule_event(self, time: int, callback, args: tuple) -> Event:
        """Allocate (or recycle) an event and file it in wheel or heap."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        pool = self._pool
        if pool:
            event = pool.pop()
            event.time = time
            event.seq = self._seq
            event.callback = callback
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, self._seq, callback, args)
            self._events_allocated += 1
        self._seq += 1
        self._live += 1
        slot = time >> SLOT_SHIFT
        if slot - (self._now >> SLOT_SHIFT) < WHEEL_HORIZON_SLOTS:
            bucket = self._buckets.get(slot)
            if bucket is None:
                self._buckets[slot] = [event]
                heapq.heappush(self._slot_heap, slot)
            else:
                heapq.heappush(bucket, event)
        else:
            heapq.heappush(self._heap, event)
        return event

    # -- cancellation & recycling ---------------------------------------------

    def _on_cancel(self, event: Event) -> None:
        """A live resident event became a tombstone (lazy cancellation)."""
        self._live -= 1
        self._tombstones += 1
        if self._tombstones > COMPACT_FLOOR and self._tombstones > self._live:
            self._compact()

    def _recycle(self, event: Event) -> None:
        """Return a fired/discarded event to the free list."""
        event.gen += 1  # invalidate any handle still pointing here
        event.callback = None
        event.args = ()
        pool = self._pool
        if len(pool) < _POOL_MAX:
            pool.append(event)

    def _compact(self) -> None:
        """Rebuild wheel and heap with live events only.

        Preserves order exactly: membership of wheel vs heap never affects
        fire order (the pop compares both heads), and heapify restores each
        structure's invariant over the same live (time, seq) keys.
        """
        self._compactions += 1
        keep = [e for e in self._heap if not e.cancelled]
        for e in self._heap:
            if e.cancelled:
                self._recycle(e)
        heapq.heapify(keep)
        self._heap = keep
        buckets: dict[int, list[Event]] = {}
        for slot, bucket in self._buckets.items():
            live = [e for e in bucket if not e.cancelled]
            for e in bucket:
                if e.cancelled:
                    self._recycle(e)
            if live:
                heapq.heapify(live)
                buckets[slot] = live
        self._buckets = buckets
        self._slot_heap = list(buckets)
        heapq.heapify(self._slot_heap)
        self._tombstones = 0

    # -- the run loop ---------------------------------------------------------

    def _wheel_head(self) -> Optional[Event]:
        """Earliest live wheel event (pruning tombstones and spent slots)."""
        slot_heap = self._slot_heap
        buckets = self._buckets
        while slot_heap:
            bucket = buckets.get(slot_heap[0])
            while bucket:
                head = bucket[0]
                if not head.cancelled:
                    return head
                heapq.heappop(bucket)
                self._tombstones -= 1
                self._recycle(head)
            buckets.pop(heapq.heappop(slot_heap), None)
        return None

    def _heap_head(self) -> Optional[Event]:
        """Earliest live overflow-heap event (pruning tombstones)."""
        heap = self._heap
        while heap:
            head = heap[0]
            if not head.cancelled:
                return head
            heapq.heappop(heap)
            self._tombstones -= 1
            self._recycle(head)
        return None

    def _pop_runnable(self) -> Optional[Event]:
        wheel = self._wheel_head()
        far = self._heap_head()
        if wheel is None:
            if far is None:
                return None
            return heapq.heappop(self._heap)
        if far is not None and far < wheel:
            return heapq.heappop(self._heap)
        return heapq.heappop(self._buckets[self._slot_heap[0]])

    def _peek_time(self) -> Optional[int]:
        """Timestamp of the next live event, or None when drained."""
        wheel = self._wheel_head()
        far = self._heap_head()
        if wheel is None:
            return None if far is None else far.time
        if far is not None and far < wheel:
            return far.time
        return wheel.time

    def step(self) -> bool:
        """Run the single next event.  Returns False when none are pending."""
        event = self._pop_runnable()
        if event is None:
            return False
        self._now = event.time
        self._live -= 1
        event.cancelled = True  # one-shot; guards re-entrant cancels
        event.callback(*event.args)
        self._events_processed += 1
        self._recycle(event)
        return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until every live event fired (or ``max_events`` callbacks ran)."""
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            count = 0
            while self.step():
                count += 1
                if max_events is not None and count >= max_events:
                    return
        finally:
            self._running = False

    def run_until(self, time: int) -> None:
        """Run all events with timestamp <= ``time``, then advance now to ``time``.

        Components scheduled past ``time`` stay pending, so a later
        ``run_until`` continues the same experiment.
        """
        if time < self._now:
            raise SimulationError(f"run_until({time}) is before now={self._now}")
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            while True:
                head = self._peek_time()
                if head is None or head > time:
                    break
                self.step()
            self._now = time
        finally:
            self._running = False

"""The discrete-event engine.

A single :class:`Engine` instance owns simulated time for one experiment.
Components hold a reference to the engine, schedule callbacks on it, and read
``engine.now`` for the current time — exactly the role ``ktime_get()`` and
timer wheels play for the kernel GRO path the paper modifies.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.sim.event import Event, EventHandle
from repro.trace import runtime as trace_runtime


class SimulationError(RuntimeError):
    """Raised on engine misuse (scheduling in the past, etc.)."""


class Engine:
    """A deterministic discrete-event simulation loop.

    Example
    -------
    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(100, fired.append, 100)
    >>> _ = eng.schedule(50, fired.append, 50)
    >>> eng.run()
    >>> fired
    [50, 100]
    """

    def __init__(self) -> None:
        self._now = 0
        self._heap: list[Event] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        tracer = trace_runtime.current()
        if tracer is not None:
            # A new engine restarts simulated time: open a new trace epoch
            # and expose the event-loop totals as gauges.
            tracer.bind_engine(self)

    @property
    def now(self) -> int:
        """Current simulation time in nanoseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far (cancelled ones excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled)."""
        return len(self._heap)

    def schedule(self, delay: int, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        ``delay`` must be non-negative; a zero delay fires after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}ns in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: int, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulation time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}"
            )
        event = Event(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def _pop_runnable(self) -> Optional[Event]:
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Run the single next event.  Returns False when the heap is empty."""
        event = self._pop_runnable()
        if event is None:
            return False
        self._now = event.time
        event.cancelled = True  # one-shot; guards re-entrant cancels
        event.callback(*event.args)
        self._events_processed += 1
        return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event heap drains (or ``max_events`` callbacks ran)."""
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            count = 0
            while self.step():
                count += 1
                if max_events is not None and count >= max_events:
                    return
        finally:
            self._running = False

    def run_until(self, time: int) -> None:
        """Run all events with timestamp <= ``time``, then advance now to ``time``.

        Components scheduled past ``time`` stay pending, so a later
        ``run_until`` continues the same experiment.
        """
        if time < self._now:
            raise SimulationError(f"run_until({time}) is before now={self._now}")
        if self._running:
            raise SimulationError("engine is already running (re-entrant run)")
        self._running = True
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if head.time > time:
                    break
                self.step()
            self._now = time
        finally:
            self._running = False

"""Event objects for the discrete-event engine."""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
    increasing counter assigned by the engine; two events scheduled for the
    same instant fire in scheduling order.  Events are one-shot.

    Fired and compacted-away events are *recycled* through the engine's
    free list: ``gen`` bumps on every recycle, so a stale
    :class:`EventHandle` (or :class:`~repro.sim.timer.Timer`) holding a
    recycled event sees the generation mismatch and treats it as dead
    instead of touching the new occupant.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "gen")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.gen = 0

    def __lt__(self, other: "Event") -> bool:
        # No tuple building: this runs several times per heap operation.
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time} seq={self.seq} cb={name}{state}>"


class EventHandle:
    """Cancellation handle returned by :meth:`Engine.schedule`.

    Cancellation is lazy: the event stays resident (in its wheel bucket or
    the heap) but is skipped when it reaches the front.  This is O(1) and
    matches how kernel timers behave from the caller's perspective; the
    engine's compaction pass bounds how many such tombstones accumulate.
    """

    __slots__ = ("_engine", "_event", "_gen")

    def __init__(self, engine, event: Event):
        self._engine = engine
        self._event = event
        self._gen = event.gen

    @property
    def time(self) -> int:
        """The simulation time this event is scheduled for.

        Only meaningful while :attr:`active`; after the event fires (and
        may be recycled) the value is unspecified.
        """
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        event = self._event
        return event.gen == self._gen and not event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if event.gen == self._gen and not event.cancelled:
            event.cancelled = True
            self._engine._on_cancel(event)

"""Event objects for the discrete-event engine."""

from __future__ import annotations

from typing import Any, Callable


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, seq)`` where ``seq`` is a monotonically
    increasing counter assigned by the engine; two events scheduled for the
    same instant fire in scheduling order.  Events are one-shot.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: int, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = " cancelled" if self.cancelled else ""
        name = getattr(self.callback, "__name__", repr(self.callback))
        return f"<Event t={self.time} seq={self.seq} cb={name}{state}>"


class EventHandle:
    """Cancellation handle returned by :meth:`Engine.schedule`.

    Cancellation is lazy: the event stays in the heap but is skipped when it
    reaches the top.  This is O(1) and matches how kernel timers behave from
    the caller's perspective.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> int:
        """The simulation time this event is scheduled for."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is still pending (not cancelled, not fired)."""
        return not self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True

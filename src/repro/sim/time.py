"""Time units for the simulator.

All simulation timestamps and durations are integer nanoseconds, mirroring
the kernel's use of ``ktime_t`` (nanoseconds since epoch) for Juggler's
``flush_timestamp``.  Using integers keeps event ordering exact and the
simulation reproducible across platforms.
"""

#: One nanosecond (the base unit).
NS = 1

#: Nanoseconds per microsecond.
US = 1_000

#: Nanoseconds per millisecond.
MS = 1_000_000

#: Nanoseconds per second.
SEC = 1_000_000_000


def format_time(ns: int) -> str:
    """Render a nanosecond timestamp in the most readable unit.

    >>> format_time(1_500)
    '1.500us'
    >>> format_time(250_000)
    '250.000us'
    >>> format_time(3_000_000_000)
    '3.000s'
    """
    if ns < 0:
        return "-" + format_time(-ns)
    if ns < US:
        return f"{ns}ns"
    if ns < MS:
        return f"{ns / US:.3f}us"
    if ns < SEC:
        return f"{ns / MS:.3f}ms"
    return f"{ns / SEC:.3f}s"

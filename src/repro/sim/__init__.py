"""Discrete-event simulation substrate.

The paper evaluates Juggler on 10/40 Gb/s hardware testbeds.  This package
provides the pure-Python replacement: an integer-nanosecond event engine that
the NIC, fabric, TCP and CPU models are driven by.  Everything in the
reproduction is deterministic given a seed.
"""

from repro.sim.time import NS, US, MS, SEC, format_time
from repro.sim.event import Event, EventHandle
from repro.sim.engine import Engine, SimulationError
from repro.sim.rng import RngRegistry
from repro.sim.timer import Timer

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "format_time",
    "Event",
    "EventHandle",
    "Engine",
    "SimulationError",
    "RngRegistry",
    "Timer",
]

"""Traffic generators for the paper's experiments.

* :class:`RpcWorkload` — open-loop Poisson RPC arrivals multiplexed over a
  pool of long-lived TCP connections (the Figure 20 all-to-all generator).
* :class:`PingPongRpc` — closed-loop request/response for latency
  micro-benchmarks (§5.1.2, Figure 14).
* :class:`PoissonPacketSource` — synthetic background load injected at
  fabric links, used to create the "average load on the sending ToR uplinks
  is 50%" conditions of §5.1.1 without simulating thousands of extra
  end-host stacks.
"""

from repro.workloads.rpc import RpcWorkload, PingPongRpc, RpcRecord
from repro.workloads.background import PoissonPacketSource
from repro.workloads.distributions import (
    DATA_MINING,
    EmpiricalSizeDistribution,
    WEB_SEARCH,
)

__all__ = [
    "RpcWorkload",
    "PingPongRpc",
    "RpcRecord",
    "PoissonPacketSource",
    "EmpiricalSizeDistribution",
    "WEB_SEARCH",
    "DATA_MINING",
]

"""Empirical datacenter flow-size distributions.

The paper's workload context ("most datacenter flows are short, lasting
only a few round-trip times [6]", §4.3) comes from the measurement studies
behind DCTCP.  This module provides the two canonical empirical CDFs those
studies popularised — *web search* (DCTCP, Alizadeh et al.) and *data
mining* (VL2, Greenberg et al.) — as samplable distributions for workload
generators, plus a generic piecewise-linear CDF sampler.
"""

from __future__ import annotations

import bisect
import random
from typing import List, Sequence, Tuple

#: (bytes, cumulative probability) knots of the DCTCP web-search workload.
WEB_SEARCH_CDF: Tuple[Tuple[int, float], ...] = (
    (6_000, 0.15),
    (13_000, 0.20),
    (19_000, 0.30),
    (33_000, 0.40),
    (53_000, 0.53),
    (133_000, 0.60),
    (667_000, 0.70),
    (1_333_000, 0.80),
    (3_333_000, 0.90),
    (6_667_000, 0.97),
    (20_000_000, 1.00),
)

#: (bytes, cumulative probability) knots of the VL2 data-mining workload.
DATA_MINING_CDF: Tuple[Tuple[int, float], ...] = (
    (100, 0.50),
    (1_000, 0.60),
    (10_000, 0.70),
    (30_000, 0.77),
    (100_000, 0.80),
    (1_000_000, 0.90),
    (10_000_000, 0.95),
    (100_000_000, 0.98),
    (1_000_000_000, 1.00),
)


class EmpiricalSizeDistribution:
    """Inverse-CDF sampling over a piecewise-linear empirical CDF."""

    def __init__(self, cdf: Sequence[Tuple[int, float]]):
        if not cdf:
            raise ValueError("need at least one CDF knot")
        previous_p = 0.0
        previous_size = 0
        for size, p in cdf:
            if not 0.0 < p <= 1.0:
                raise ValueError(f"probability {p} out of (0, 1]")
            if p < previous_p or size <= previous_size:
                raise ValueError("CDF knots must be strictly increasing")
            previous_p, previous_size = p, size
        if abs(cdf[-1][1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1.0")
        self._sizes: List[int] = [size for size, _ in cdf]
        self._probs: List[float] = [p for _, p in cdf]

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size in bytes."""
        u = rng.random()
        index = bisect.bisect_left(self._probs, u)
        if index >= len(self._probs):
            index = len(self._probs) - 1
        high_size, high_p = self._sizes[index], self._probs[index]
        if index == 0:
            low_size, low_p = 0, 0.0
        else:
            low_size, low_p = self._sizes[index - 1], self._probs[index - 1]
        if high_p == low_p:
            return high_size
        frac = (u - low_p) / (high_p - low_p)
        return max(1, round(low_size + frac * (high_size - low_size)))

    def mean(self) -> float:
        """Expected flow size under the piecewise-linear interpolation."""
        total = 0.0
        low_size, low_p = 0, 0.0
        for size, p in zip(self._sizes, self._probs):
            total += (p - low_p) * (low_size + size) / 2.0
            low_size, low_p = size, p
        return total


#: Ready-made instances of the two canonical workloads.
WEB_SEARCH = EmpiricalSizeDistribution(WEB_SEARCH_CDF)
DATA_MINING = EmpiricalSizeDistribution(DATA_MINING_CDF)

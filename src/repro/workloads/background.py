"""Synthetic background load.

The CPU experiments (§5.1.1) "generate some background traffic such that the
average load on the sending ToR uplinks is 50%".  Simulating full TCP stacks
for that filler would dominate runtime without changing what it does to the
measured flows — occupy queues and perturb per-path delays.  A Poisson
MTU-packet stream injected at the ToR, spread across many synthetic flows
(so ECMP balances it) and routed to a discard host, produces the same
queueing process.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.fabric.link import PacketSink
from repro.net.addr import FiveTuple
from repro.net.constants import MSS, wire_bytes
from repro.net.packet import Packet
from repro.net.pool import PacketPool
from repro.sim.engine import Engine


class DiscardSink:
    """A packet sink that counts and drops (the background's "receiver").

    As the terminal consumer of background packets it is the one place
    allowed to recycle them: pass the :class:`PacketPool` the source
    allocates from and every discarded packet goes straight back to it.
    """

    def __init__(self, pool: Optional[PacketPool] = None) -> None:
        self.packets = 0
        self.bytes = 0
        self.pool = pool

    def receive(self, packet: Packet) -> None:
        """Count and discard (recycling into the pool when wired)."""
        self.packets += 1
        self.bytes += packet.wire_len
        if self.pool is not None:
            self.pool.release(packet)


class PoissonPacketSource:
    """Open-loop MTU packets at a target offered load, over many flows."""

    def __init__(
        self,
        engine: Engine,
        rng: random.Random,
        sink: PacketSink,
        *,
        load_gbps: float,
        src: int,
        dst: int,
        num_flows: int = 32,
        stop_at_ns: Optional[int] = None,
        pool: Optional[PacketPool] = None,
    ):
        if load_gbps <= 0:
            raise ValueError(f"load must be positive, got {load_gbps}")
        if num_flows < 1:
            raise ValueError(f"need at least one flow, got {num_flows}")
        self._engine = engine
        self._rng = rng
        self._sink = sink
        self.load_gbps = load_gbps
        self.stop_at_ns = stop_at_ns
        #: ns between packets so wire_bits/interarrival == load.
        # det: allow(float-ns) -- rate parameter for expovariate, not a timestamp; drawn gaps are rounded to integer ns in _next_gap
        self.mean_interarrival_ns = wire_bytes(MSS) * 8 / load_gbps
        self._flows: List[FiveTuple] = [
            FiveTuple(src, dst, 20000 + i, 20000) for i in range(num_flows)
        ]
        self._next_seq: List[int] = [0] * num_flows
        self.packets_sent = 0
        #: Optional recycling pool shared with the terminal sink.
        self.pool = pool

    def start(self) -> None:
        """Begin emitting."""
        self._engine.post(self._next_gap(), self._emit)

    def _next_gap(self) -> int:
        return max(1, round(self._rng.expovariate(1.0 / self.mean_interarrival_ns)))

    def _emit(self) -> None:
        now = self._engine.now
        if self.stop_at_ns is not None and now >= self.stop_at_ns:
            return
        index = self._rng.randrange(len(self._flows))
        pool = self.pool
        if pool is not None:
            packet = pool.acquire(self._flows[index], self._next_seq[index],
                                  MSS, sent_at=now)
        else:
            packet = Packet(
                self._flows[index],
                self._next_seq[index],
                MSS,
                sent_at=now,
            )
        self._next_seq[index] += MSS
        self._sink.receive(packet)
        self.packets_sent += 1
        self._engine.post(self._next_gap(), self._emit)

"""RPC traffic generators.

The Figure 20 experiment: "The senders generate RPCs in an open-loop
fashion, with inter-arrival times drawn from an exponential distribution
(Poisson arrivals) ... The traffic generator randomly multiplexes RPCs
across 8 long-lived TCP sessions between every client-server pair."

An RPC's completion time runs from its (open-loop) arrival at the sender to
the moment its last byte is delivered in order at the receiver — queueing
behind earlier RPCs on the same session counts, as it does in the paper.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.sim.engine import Engine
from repro.tcp.connection import Connection


@dataclass(frozen=True)
class RpcRecord:
    """One completed RPC."""

    size: int
    start_ns: int
    end_ns: int

    @property
    def latency_ns(self) -> int:
        """Completion time, arrival to in-order delivery."""
        return self.end_ns - self.start_ns


class RpcWorkload:
    """Open-loop Poisson RPCs multiplexed over a connection pool."""

    def __init__(
        self,
        engine: Engine,
        rng: random.Random,
        connections: List[Connection],
        *,
        rpc_bytes: int,
        load_gbps: float,
        stop_at_ns: Optional[int] = None,
    ):
        if not connections:
            raise ValueError("need at least one connection")
        if rpc_bytes <= 0 or load_gbps <= 0:
            raise ValueError("rpc_bytes and load_gbps must be positive")
        self._engine = engine
        self._rng = rng
        self._connections = connections
        self.rpc_bytes = rpc_bytes
        self.load_gbps = load_gbps
        self.stop_at_ns = stop_at_ns
        #: Mean inter-arrival in ns so that size*8/interarrival == load.
        # det: allow(float-ns) -- rate parameter for expovariate, not a timestamp; drawn gaps are rounded to integer ns at draw time
        self.mean_interarrival_ns = rpc_bytes * 8 / load_gbps
        self.records: List[RpcRecord] = []
        self.issued = 0
        #: Per-connection in-flight RPCs, indexed by pool position (a
        #: stable, reproducible key — object ids are not).
        self._pending: List[Deque[Tuple[int, int]]] = [
            deque() for _ in connections]
        for index, conn in enumerate(connections):
            conn.receiver.on_bytes = self._make_on_bytes(index)

    def _make_on_bytes(self, key: int):
        def on_bytes(watermark: int, now: int) -> None:
            pending = self._pending[key]
            while pending and pending[0][0] <= watermark:
                boundary, started = pending.popleft()
                self.records.append(RpcRecord(self.rpc_bytes, started, now))

        return on_bytes

    def start(self) -> None:
        """Schedule the first arrival."""
        self._engine.schedule(self._next_gap(), self._arrival)

    def _next_gap(self) -> int:
        return max(1, round(self._rng.expovariate(1.0 / self.mean_interarrival_ns)))

    def _arrival(self) -> None:
        now = self._engine.now
        if self.stop_at_ns is not None and now >= self.stop_at_ns:
            return
        # randrange + index keeps the same _randbelow draw sequence
        # random.choice would make, so seeded traces stay byte-identical.
        index = self._rng.randrange(len(self._connections))
        conn = self._connections[index]
        boundary = conn.sender.data_target + self.rpc_bytes
        self._pending[index].append((boundary, now))
        conn.send(self.rpc_bytes)
        self.issued += 1
        self._engine.schedule(self._next_gap(), self._arrival)

    def latencies_ns(self) -> List[int]:
        """Completion times of all finished RPCs."""
        return [r.latency_ns for r in self.records]


class PingPongRpc:
    """Closed-loop message stream: send, wait for delivery, send again.

    Used for the latency micro-benchmarks: 150-byte RPCs with no competing
    traffic (§5.1.2) and the 10 KB RPCs of Figure 14.
    """

    def __init__(
        self,
        engine: Engine,
        connection: Connection,
        *,
        rpc_bytes: int,
        gap_ns: int = 0,
        pipeline: int = 1,
        max_rpcs: Optional[int] = None,
    ):
        if rpc_bytes <= 0:
            raise ValueError(f"rpc_bytes must be positive, got {rpc_bytes}")
        if pipeline < 1:
            raise ValueError(f"pipeline depth must be >= 1, got {pipeline}")
        self._engine = engine
        self._conn = connection
        self.rpc_bytes = rpc_bytes
        self.gap_ns = gap_ns
        #: Messages kept outstanding at once.  Depth 1 is strict ping-pong;
        #: deeper pipelines model a streamed RPC channel, where one stalled
        #: message delays the queue behind it (head-of-line blocking).
        self.pipeline = pipeline
        self.max_rpcs = max_rpcs
        self.records: List[RpcRecord] = []
        self._sent = 0
        self._outstanding: Deque[Tuple[int, int]] = deque()
        connection.receiver.on_bytes = self._on_bytes

    def start(self) -> None:
        """Fill the pipeline."""
        for _ in range(self.pipeline):
            self._send_next()

    def _send_next(self) -> None:
        if self.max_rpcs is not None and self._sent >= self.max_rpcs:
            return
        boundary = self._conn.sender.data_target + self.rpc_bytes
        self._outstanding.append((boundary, self._engine.now))
        self._conn.send(self.rpc_bytes)
        self._sent += 1

    def _on_bytes(self, watermark: int, now: int) -> None:
        completed = 0
        while self._outstanding and self._outstanding[0][0] <= watermark:
            boundary, started = self._outstanding.popleft()
            self.records.append(RpcRecord(self.rpc_bytes, started, now))
            completed += 1
        for _ in range(completed):
            if self.gap_ns > 0:
                self._engine.schedule(self.gap_ns, self._send_next)
            else:
                self._send_next()

    def latencies_ns(self) -> List[int]:
        """Completion times of all finished messages."""
        return [r.latency_ns for r in self.records]

"""Experiment adapters: how the campaign runner drives each experiment.

The scheduler moves tasks between processes as plain dicts; a worker
resolves the experiment *by name* through this registry and asks its
adapter to execute one task.  Two shapes exist:

* :class:`GridAdapter` — experiments whose ``run()`` is a parameter sweep
  (fig12/fig13/fig14/fig15).  One task per grid point; the adapter calls
  the module's ``run_point(params, **point)`` and the reporter later
  reassembles the points into the module's own ``render()`` table.
* :class:`ParamsAdapter` — everything else.  One task runs the whole
  experiment and returns its rendered table as a single ``output`` row.

Adapters import their experiment module lazily, so listing experiments
stays cheap and workers only pay for what they run.
"""

from __future__ import annotations

import dataclasses
import importlib
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple


def _tuplify(value):
    """JSON round-trips tuples as lists; params fields expect tuples."""
    if isinstance(value, list):
        return tuple(_tuplify(v) for v in value)
    return value


class Adapter:
    """Interface between the campaign machinery and one experiment."""

    is_grid = False
    #: Hidden adapters are resolvable by name (workers, tests) but do not
    #: appear in ``juggler-repro list`` or ``all``.
    hidden = False

    def __init__(self, name: str, module: str, description: str,
                 params_cls: Optional[str] = None):
        self.name = name
        self.module = module
        self.description = description
        self.params_cls_name = params_cls

    def _mod(self):
        return importlib.import_module(self.module)

    def _params_cls(self):
        return getattr(self._mod(), self.params_cls_name)

    def build_params(self, base: Mapping, seed: Optional[int]):
        """Instantiate the ``*Params`` dataclass with overrides + seed."""
        kwargs = {k: _tuplify(v) for k, v in dict(base).items()}
        if seed is not None:
            kwargs["seed"] = seed
        return self._params_cls()(**kwargs)

    def validate_overrides(self, overrides: Mapping) -> None:
        """Reject overrides that name fields the params class lacks."""
        if not overrides:
            return
        fields = {f.name for f in dataclasses.fields(self._params_cls())}
        unknown = set(overrides) - fields
        if unknown:
            raise ValueError(
                f"{self.name}: unknown override field(s) "
                f"{sorted(unknown)}; valid fields: {sorted(fields)}")

    def axis_names(self) -> Tuple[str, ...]:
        return ()

    def execute(self, base: Mapping, seed: Optional[int], point: Mapping,
                attempt: int = 1) -> List[dict]:
        """Run one task; return its result rows (JSON-able dicts)."""
        raise NotImplementedError

    def render(self, records: Sequence[Mapping]) -> str:
        """Rebuild the experiment's table from its completed records."""
        raise NotImplementedError

    def run_default(self) -> str:
        """The serial, whole-experiment run (what the plain CLI prints)."""
        raise NotImplementedError


class ParamsAdapter(Adapter):
    """Whole-run experiments: one task, output already rendered."""

    def __init__(self, name: str, module: str, description: str,
                 params_cls: str,
                 runner: Optional[Callable] = None):
        super().__init__(name, module, description, params_cls)
        #: ``runner(mod, params_or_None) -> str``; params is None when the
        #: task has no overrides and no derived seed, in which case the
        #: module's own defaults apply (byte-identical to the plain CLI).
        self._runner = runner or (
            lambda mod, params: mod.render(
                mod.run() if params is None else mod.run(params)))

    def execute(self, base, seed, point, attempt=1):
        mod = self._mod()
        params = (None if not base and seed is None
                  else self.build_params(base, seed))
        return [{"output": self._runner(mod, params)}]

    def render(self, records):
        parts = []
        for record in sorted(records, key=lambda r: r["index"]):
            parts.extend(row["output"] for row in record["rows"])
        return "\n".join(parts)

    def run_default(self) -> str:
        return self.execute({}, None, {})[0]["output"]


class GridAdapter(Adapter):
    """Sweep experiments: one task per grid point."""

    is_grid = True

    def __init__(self, name: str, module: str, description: str,
                 params_cls: str, axes: Sequence[Tuple[str, str]],
                 point_cls: str, result_cls: str):
        super().__init__(name, module, description, params_cls)
        #: Ordered ``(axis_name, params_field)`` pairs; the order is the
        #: module's own loop nesting, so reports match serial output.
        self.axes = tuple(axes)
        self.point_cls_name = point_cls
        self.result_cls_name = result_cls

    def axis_names(self):
        return tuple(axis for axis, _ in self.axes)

    def default_grid(self) -> Dict[str, list]:
        defaults = self._params_cls()()
        return {axis: list(getattr(defaults, field))
                for axis, field in self.axes}

    def validate_grid(self, grid: Optional[Mapping]) -> Dict[str, list]:
        """Check axis names and shapes; fill in the default grid."""
        if grid is None:
            return self.default_grid()
        expected = set(self.axis_names())
        if set(grid) != expected:
            raise ValueError(
                f"{self.name}: grid axes {sorted(grid)} != "
                f"expected {sorted(expected)}")
        out = {}
        for axis, values in grid.items():
            values = list(values)
            if not values:
                raise ValueError(f"{self.name}: empty grid axis '{axis}'")
            if len(set(values)) != len(values):
                raise ValueError(
                    f"{self.name}: duplicate values on axis '{axis}'")
            out[axis] = values
        return out

    def validate_overrides(self, overrides: Mapping) -> None:
        super().validate_overrides(overrides)
        grid_fields = {field for _, field in self.axes}
        clash = set(overrides) & grid_fields
        if clash:
            raise ValueError(
                f"{self.name}: {sorted(clash)} are grid axes — put them "
                f"in 'grid', not 'overrides'")

    def build_point_params(self, base: Mapping, seed: Optional[int],
                           point: Mapping):
        """Params for one point: axis tuples collapsed to that point."""
        kwargs = {k: _tuplify(v) for k, v in dict(base).items()}
        for axis, field in self.axes:
            kwargs[field] = (point[axis],)
        if seed is not None:
            kwargs["seed"] = seed
        return self._params_cls()(**kwargs)

    def execute(self, base, seed, point, attempt=1):
        mod = self._mod()
        params = self.build_point_params(base, seed, point)
        result = mod.run_point(params, **point)
        return [dataclasses.asdict(result)]

    def render(self, records):
        mod = self._mod()
        point_cls = getattr(mod, self.point_cls_name)
        points = [point_cls(**row)
                  for record in sorted(records, key=lambda r: r["index"])
                  for row in record["rows"]]
        result_cls = getattr(mod, self.result_cls_name)
        return mod.render(result_cls(points=points))

    def run_default(self) -> str:
        mod = self._mod()
        return mod.render(mod.run())


class HiddenGridAdapter(GridAdapter):
    """Grid experiments resolvable by name (campaign specs, workers) but
    absent from ``juggler-repro list``/``all`` — they ship their own CLI
    front-end (e.g. ``juggler-repro faults matrix``)."""

    hidden = True


class SelftestAdapter(GridAdapter):
    """The built-in failure-injection experiment (tests and CI)."""

    hidden = True

    def execute(self, base, seed, point, attempt=1):
        mod = self._mod()
        params = self.build_point_params(base, seed, point)
        result = mod.run_point(params, attempt=attempt, **point)
        return [dataclasses.asdict(result)]


def _run_cpu_overhead(flows: int) -> Callable:
    def runner(mod, params):
        results = (mod.run_figure(flows) if params is None
                   else mod.run_figure(flows, params))
        return mod.render(results)
    return runner


def _run_ablations(mod, params):
    # The build-up ablation defaults to 60 us reordering (see its
    # docstring); pin that when a params override is supplied too.
    if params is None:
        buildup = mod.run_buildup_ablation()
        eviction = mod.run_eviction_ablation()
        table = mod.run_table_size_ablation()
    else:
        buildup = mod.run_buildup_ablation(
            dataclasses.replace(params, reorder_delay_us=60))
        eviction = mod.run_eviction_ablation(params)
        table = mod.run_table_size_ablation(params)
    return "\n".join([
        "Build-up phase:", mod.render(buildup),
        "\nEviction policy:", mod.render(eviction),
        "\ngro_table size:", mod.render(table),
    ])


_E = "repro.experiments"

ADAPTERS: Dict[str, Adapter] = {a.name: a for a in [
    ParamsAdapter("fig01", f"{_E}.fig01_bandwidth_guarantee",
                  "bandwidth-guarantee time series (Figure 1)",
                  "Fig01Params"),
    ParamsAdapter("fig09", f"{_E}.cpu_overhead",
                  "CPU overhead, single flow (Figure 9)",
                  "CpuOverheadParams", runner=_run_cpu_overhead(1)),
    ParamsAdapter("fig10", f"{_E}.cpu_overhead",
                  "CPU overhead, 256 flows (Figure 10)",
                  "CpuOverheadParams", runner=_run_cpu_overhead(256)),
    GridAdapter("fig12", f"{_E}.fig12_inseq_timeout",
                "batching vs inseq_timeout (Figure 12)", "Fig12Params",
                axes=[("reorder_delay_us", "reorder_delays_us"),
                      ("inseq_timeout_us", "inseq_timeouts_us")],
                point_cls="Fig12Point", result_cls="Fig12Result"),
    GridAdapter("fig13", f"{_E}.fig13_ofo_timeout_throughput",
                "throughput vs ofo_timeout (Figure 13)", "Fig13Params",
                axes=[("reorder_delay_us", "reorder_delays_us"),
                      ("ofo_timeout_us", "ofo_timeouts_us")],
                point_cls="Fig13Point", result_cls="Fig13Result"),
    GridAdapter("fig14", f"{_E}.fig14_ofo_timeout_latency",
                "RPC tail vs ofo_timeout under loss (Figure 14)",
                "Fig14Params",
                axes=[("reorder_delay_us", "reorder_delays_us"),
                      ("ofo_timeout_us", "ofo_timeouts_us")],
                point_cls="Fig14Point", result_cls="Fig14Result"),
    GridAdapter("fig15", f"{_E}.fig15_active_flows",
                "active flows vs concurrency (Figure 15)", "Fig15Params",
                axes=[("reorder_delay_us", "reorder_delays_us"),
                      ("concurrent_flows", "concurrent_flows")],
                point_cls="Fig15Point", result_cls="Fig15Result"),
    ParamsAdapter("fig16", f"{_E}.fig16_active_list_histogram",
                  "active-list statistics on Clos (Figure 16)",
                  "Fig16Params"),
    ParamsAdapter("fig18", f"{_E}.fig18_bandwidth_sweep",
                  "guarantee sweep (Figure 18)", "Fig18Params"),
    ParamsAdapter("fig20", f"{_E}.fig20_load_balancing",
                  "load-balancing granularity (Figure 20)", "Fig20Params"),
    ParamsAdapter("sec31", f"{_E}.sec31_chained_gro_cost",
                  "linked-list batching cost (Section 3.1)", "Sec31Params"),
    ParamsAdapter("sec512", f"{_E}.sec512_latency_overhead",
                  "latency overhead (Section 5.1.2)", "Sec512Params"),
    ParamsAdapter("ablations", f"{_E}.ablations",
                  "design-choice ablations (DESIGN.md §5)", "AblationParams",
                  runner=_run_ablations),
    ParamsAdapter("scheduling", f"{_E}.flow_scheduling",
                  "extension: PIAS/pFabric flow scheduling",
                  "SchedulingParams"),
    HiddenGridAdapter("fdir_reordering", f"{_E}.fdir_reordering",
                      "self-inflicted reordering: steering policy x flow "
                      "count x churn x GRO engine (see 'juggler-repro "
                      "steer sweep')",
                      "FdirParams",
                      axes=[("policy", "policies"),
                            ("flow_count", "flow_counts"),
                            ("churn", "churn_levels"),
                            ("engine", "engines")],
                      point_cls="FdirPoint", result_cls="FdirResult"),
    HiddenGridAdapter("cc_reordering", f"{_E}.cc_reordering",
                      "congestion control x reordering intensity x GRO "
                      "engine (see 'juggler-repro cc sweep')",
                      "CcParams",
                      axes=[("cc", "ccs"),
                            ("intensity", "intensities"),
                            ("engine", "engines")],
                      point_cls="CcPoint", result_cls="CcResult"),
    HiddenGridAdapter("host_vs_fabric", f"{_E}.host_vs_fabric",
                      "host-side Juggler vs fabric-side in-order routing: "
                      "GRO engine x routing policy x load x fault (see "
                      "'juggler-repro fabric sweep')",
                      "HostFabricParams",
                      axes=[("engine", "engines"),
                            ("routing", "routings"),
                            ("load", "loads"),
                            ("fault", "faults")],
                      point_cls="HostFabricPoint",
                      result_cls="HostFabricResult"),
    HiddenGridAdapter("faults_matrix", "repro.faults.experiments",
                      "resilience matrix: fault kind x intensity x GRO "
                      "engine (see 'juggler-repro faults matrix')",
                      "MatrixParams",
                      axes=[("fault_kind", "fault_kinds"),
                            ("intensity", "intensities"),
                            ("engine", "engines")],
                      point_cls="MatrixPoint", result_cls="MatrixResult"),
    SelftestAdapter("selftest", "repro.campaign.selftest",
                    "campaign failure-injection selftest (hidden)",
                    "SelftestParams",
                    axes=[("task_id", "task_ids")],
                    point_cls="SelftestPoint", result_cls="SelftestResult"),
]}


def get(name: str) -> Adapter:
    """Resolve an adapter by experiment name."""
    try:
        return ADAPTERS[name]
    except KeyError:
        raise KeyError(f"unknown experiment: {name}") from None


def names(include_hidden: bool = False) -> List[str]:
    """Registered experiment names, in catalog order."""
    return [n for n, a in ADAPTERS.items()
            if include_hidden or not a.hidden]


def cli_experiments() -> Dict[str, tuple]:
    """The ``{name: (runner, description)}`` dict the CLI lists and runs."""
    def make_runner(adapter: Adapter):
        return lambda: adapter.run_default()

    return {name: (make_runner(adapter), adapter.description)
            for name, adapter in ADAPTERS.items() if not adapter.hidden}

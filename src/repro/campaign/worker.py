"""What runs inside a campaign worker process.

:func:`execute_task` is the only function the scheduler submits to the
pool.  It resolves the experiment adapter by name (the task itself
crosses the process boundary as a plain dict), enforces the per-task
timeout with ``SIGALRM`` — each worker is a fresh process whose main
thread runs the task, so an alarm cleanly interrupts pure-Python compute
— and reports *every* failure as a structured outcome dict rather than a
raised exception, so one bad task can never poison the pool protocol.

Workers inherit the :mod:`repro.trace` runtime: with ``trace: jsonl`` in
the worker config, each task installs a process-wide tracer writing to
its own per-fingerprint JSONL file before the experiment builds any
components (see docs/observability.md).
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from contextlib import contextmanager
from typing import Optional


class TaskTimeout(Exception):
    """The per-task wall-clock budget expired."""


def _on_alarm(signum, frame):
    raise TaskTimeout()


@contextmanager
def _deadline(timeout_s: Optional[float]):
    """Raise :class:`TaskTimeout` in this process after ``timeout_s``."""
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        yield
        return
    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, previous)


def trace_path(trace_dir: str, wire: dict) -> str:
    """Per-task trace file: experiment + fingerprint prefix."""
    return os.path.join(
        trace_dir, f"{wire['experiment']}-{wire['fingerprint'][:12]}.jsonl")


def execute_task(wire: dict, attempt: int, worker_cfg: dict) -> dict:
    """Run one task; always return an outcome dict, never raise.

    Outcome: ``{"status": "ok", "rows": [...], "elapsed_s": ...}`` or
    ``{"status": "timeout"|"error", "error": ..., "traceback": ...}``.
    """
    from repro.campaign import registry
    from repro.trace import runtime

    started = time.perf_counter()
    timeout_s = worker_cfg.get("timeout_s")
    tracer = None
    trace_file = None
    try:
        adapter = registry.get(wire["experiment"])
        if worker_cfg.get("trace") == "jsonl" and worker_cfg.get("trace_dir"):
            from repro.trace import JsonlSink, Tracer

            trace_file = trace_path(worker_cfg["trace_dir"], wire)
            tracer = Tracer([JsonlSink(trace_file)])
            runtime.install(tracer)
        with _deadline(timeout_s):
            rows = adapter.execute(wire["base"], wire["seed"],
                                   wire["point"], attempt=attempt)
        return {
            "status": "ok",
            "rows": rows,
            "elapsed_s": round(time.perf_counter() - started, 4),
            "trace_file": trace_file,
        }
    except TaskTimeout:
        return {
            "status": "timeout",
            "error": f"task exceeded its {timeout_s}s timeout",
            "elapsed_s": round(time.perf_counter() - started, 4),
            "trace_file": trace_file,
        }
    except Exception as exc:  # noqa: BLE001 — outcomes cross processes
        return {
            "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "elapsed_s": round(time.perf_counter() - started, 4),
            "trace_file": trace_file,
        }
    finally:
        if tracer is not None:
            runtime.uninstall()
            tracer.close()

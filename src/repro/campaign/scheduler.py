"""Fan tasks out over worker processes; retry, back off, survive crashes.

Execution model:

* ``jobs == 1`` runs tasks inline in this process — the exact serial
  behaviour the figure modules have always had, with the same retry and
  timeout accounting (but no crash isolation).
* ``jobs > 1`` uses a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Workers report failures as structured outcomes (see
  :mod:`repro.campaign.worker`), so the only exception the scheduler
  expects from a future is ``BrokenProcessPool`` — a worker died hard
  (OOM-killed, ``kill -9``).  That poisons every in-flight future, so the
  scheduler rebuilds the pool and resubmits the affected tasks with their
  attempt counters bumped: the task that actually keeps killing its
  worker exhausts its retry budget and is recorded as failed, while
  innocent bystanders complete on the fresh pool.  The campaign always
  runs to completion.

Every finished task (ok or given up) is appended to the result store
immediately, which is what makes ``campaign resume`` cheap and a crash of
the *scheduler* process lose almost nothing.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.spec import Task
from repro.campaign.store import ResultStore, failure_outcome, make_record
from repro.campaign.worker import execute_task

Progress = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class SchedulerConfig:
    """Knobs for one campaign run."""

    jobs: int = 1
    #: Per-task wall-clock budget (None = unlimited).
    timeout_s: Optional[float] = None
    #: Extra attempts after the first failure (attempts = retries + 1).
    retries: int = 2
    #: First retry waits this long; doubles per subsequent attempt.
    backoff_s: float = 0.25
    #: "jsonl" to give every task its own trace file under ``trace_dir``.
    trace: Optional[str] = None
    trace_dir: Optional[str] = None

    def worker_cfg(self) -> dict:
        return {"timeout_s": self.timeout_s, "trace": self.trace,
                "trace_dir": self.trace_dir}


@dataclass
class CampaignStats:
    """What happened, for the summary line and the machine summary."""

    planned: int = 0
    skipped: int = 0
    ran: int = 0
    ok: int = 0
    failed: int = 0
    retries: int = 0
    pool_rebuilds: int = 0
    elapsed_s: float = 0.0

    def summary_line(self, name: str) -> str:
        return (f"campaign '{name}': planned {self.planned}, "
                f"skipped {self.skipped}, ran {self.ran}, ok {self.ok}, "
                f"failed {self.failed}, retries {self.retries} "
                f"({self.elapsed_s:.1f}s)")

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class _Pending:
    task: Task
    attempt: int = 1


def run_campaign(tasks: Sequence[Task], store: ResultStore,
                 config: SchedulerConfig = SchedulerConfig(),
                 progress: Progress = None) -> CampaignStats:
    """Run every task not already completed in ``store``."""
    say = progress or (lambda _line: None)
    started = time.perf_counter()
    stats = CampaignStats(planned=len(tasks))

    done = store.completed()
    todo = [task for task in tasks if task.fingerprint not in done]
    stats.skipped = len(tasks) - len(todo)
    if stats.skipped:
        say(f"resume: {stats.skipped} task(s) already complete, "
            f"{len(todo)} to run")

    if config.trace == "jsonl" and config.trace_dir:
        import os

        os.makedirs(config.trace_dir, exist_ok=True)

    if todo:
        if config.jobs <= 1:
            _run_inline(todo, store, config, stats, say)
        else:
            _run_pool(todo, store, config, stats, say)

    stats.elapsed_s = round(time.perf_counter() - started, 3)
    return stats


def _backoff(config: SchedulerConfig, attempt: int) -> None:
    if config.backoff_s > 0:
        time.sleep(config.backoff_s * (2 ** (attempt - 1)))


def _finish(store: ResultStore, stats: CampaignStats, task: Task,
            outcome: dict, attempts: int, say) -> None:
    store.append(make_record(task.to_wire(), outcome, attempts))
    stats.ran += 1
    if outcome.get("status") == "ok":
        stats.ok += 1
        say(f"  ok     {task.label} "
            f"({outcome.get('elapsed_s', 0):.2f}s, attempt {attempts})")
    else:
        stats.failed += 1
        say(f"  FAILED {task.label} after {attempts} attempt(s): "
            f"{outcome.get('error')}")


def _run_inline(todo: List[Task], store: ResultStore,
                config: SchedulerConfig, stats: CampaignStats, say) -> None:
    worker_cfg = config.worker_cfg()
    for task in todo:
        attempt = 1
        while True:
            outcome = execute_task(task.to_wire(), attempt, worker_cfg)
            if outcome["status"] == "ok" or attempt > config.retries:
                _finish(store, stats, task, outcome, attempt, say)
                break
            stats.retries += 1
            say(f"  retry  {task.label} (attempt {attempt} "
                f"{outcome['status']}: {outcome.get('error')})")
            _backoff(config, attempt)
            attempt += 1


_CRASH_ERROR = "worker process died (killed or crashed hard)"


def _run_pool(todo: List[Task], store: ResultStore,
              config: SchedulerConfig, stats: CampaignStats, say) -> None:
    """The parallel path.

    A hard worker death (``kill -9``, OOM) poisons every in-flight future
    of a ``ProcessPoolExecutor``, and the futures API cannot say *which*
    task was on the dying worker.  Charging every interrupted task a
    failed attempt would let one repeat-crasher exhaust innocent tasks'
    retry budgets collaterally, so crash attribution is exact instead:
    interrupted tasks go to a quarantine and are re-run **one at a time**
    on a fresh pool.  A task that crashes while running alone is the
    culprit and is charged a crashed attempt; tasks that complete in
    quarantine were bystanders and pay nothing.  Parallel fan-out resumes
    once the quarantine drains.
    """
    worker_cfg = config.worker_cfg()
    pool = ProcessPoolExecutor(max_workers=config.jobs)
    inflight: Dict = {}
    #: Pendings awaiting (re)submission: initial tasks and retries.
    backlog: List[_Pending] = [_Pending(task) for task in todo]
    #: Pendings interrupted by a pool break, re-run serially.
    quarantine: List[_Pending] = []
    pool_broken = False

    def rebuild_pool() -> None:
        nonlocal pool, pool_broken
        pool.shutdown(wait=False, cancel_futures=True)
        pool = ProcessPoolExecutor(max_workers=config.jobs)
        stats.pool_rebuilds += 1
        pool_broken = False

    def retry_or_finish(pending: _Pending, outcome: dict,
                        serially: bool = False) -> None:
        if outcome["status"] == "ok" or pending.attempt > config.retries:
            _finish(store, stats, pending.task, outcome, pending.attempt,
                    say)
            return
        stats.retries += 1
        say(f"  retry  {pending.task.label} (attempt {pending.attempt} "
            f"{outcome['status']}: {outcome.get('error')})")
        _backoff(config, pending.attempt)
        retry = _Pending(pending.task, pending.attempt + 1)
        if serially:
            quarantine.insert(0, retry)
        else:
            backlog.append(retry)

    def probe(pending: _Pending) -> None:
        """Run one quarantined task alone; a crash now has one suspect."""
        nonlocal pool_broken
        try:
            future = pool.submit(execute_task, pending.task.to_wire(),
                                 pending.attempt, worker_cfg)
            outcome = future.result()
        except BrokenProcessPool:
            say(f"  crash  {pending.task.label} killed its worker "
                f"(attempt {pending.attempt})")
            rebuild_pool()
            retry_or_finish(pending, failure_outcome("crash", _CRASH_ERROR),
                            serially=True)
            return
        retry_or_finish(pending, outcome)

    try:
        while inflight or backlog or quarantine:
            if pool_broken:
                interrupted = list(inflight.values())
                inflight.clear()
                rebuild_pool()
                say(f"  worker crashed; rebuilt pool, re-running "
                    f"{len(interrupted)} interrupted task(s) serially")
                quarantine.extend(interrupted)
                continue
            if quarantine:
                probe(quarantine.pop(0))
                continue
            if backlog:
                drain, backlog[:] = backlog[:], []
                for pending in drain:
                    try:
                        future = pool.submit(execute_task,
                                             pending.task.to_wire(),
                                             pending.attempt, worker_cfg)
                    except BrokenProcessPool:
                        pool_broken = True
                        quarantine.append(pending)
                    else:
                        inflight[future] = pending
                continue
            completed, _ = wait(list(inflight),
                                return_when=FIRST_COMPLETED)
            for future in completed:
                pending = inflight.pop(future)
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    # Interrupted, not yet guilty: quarantine re-runs it
                    # alone without charging an attempt.
                    pool_broken = True
                    quarantine.append(pending)
                    continue
                except Exception as exc:  # pool bookkeeping failures
                    outcome = failure_outcome(
                        "error", f"{type(exc).__name__}: {exc}")
                retry_or_finish(pending, outcome)
    finally:
        pool.shutdown(wait=False, cancel_futures=True)

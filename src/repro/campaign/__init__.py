"""Parallel, resumable experiment-sweep campaigns.

The pieces (see docs/campaign.md for the full story):

* :mod:`repro.campaign.spec` — declarative specs expanded into
  fingerprinted :class:`Task` objects with deterministically derived
  per-task seeds (``sim.rng``-style hashing).
* :mod:`repro.campaign.registry` — adapters that let workers drive any
  experiment by name: per-grid-point for the sweep figures, whole-run
  for the rest.
* :mod:`repro.campaign.scheduler` — process-pool fan-out with per-task
  timeouts, bounded retry with backoff, and worker-crash recovery.
* :mod:`repro.campaign.store` — append-only JSONL result store keyed by
  task fingerprint; what makes ``campaign resume`` skip finished work.
* :mod:`repro.campaign.reporter` — rebuilds the figures' ``render()``
  tables and a machine-readable summary from the store.
"""

from repro.campaign.reporter import render_report, summarize
from repro.campaign.scheduler import (
    CampaignStats,
    SchedulerConfig,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignSpec,
    ExperimentSpec,
    Task,
    build_default_spec,
    derive_seed,
    expand,
)
from repro.campaign.store import ResultStore

__all__ = [
    "CampaignSpec",
    "CampaignStats",
    "ExperimentSpec",
    "ResultStore",
    "SchedulerConfig",
    "Task",
    "build_default_spec",
    "derive_seed",
    "expand",
    "render_report",
    "run_campaign",
    "summarize",
]

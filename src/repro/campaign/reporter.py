"""Turn a result store back into figure tables and a machine summary.

The reporter is pure: it reads records (dicts out of the JSONL store),
groups them by experiment, sorts by task index — so output order never
depends on completion order or ``--jobs`` — and asks each experiment's
adapter to rebuild its own ``render()`` table from the stored rows.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence

from repro.campaign import registry
from repro.campaign.spec import CampaignSpec
from repro.harness.reporting import banner


def _group(records: Sequence[Mapping],
           spec: Optional[CampaignSpec]) -> "OrderedDict[str, List[dict]]":
    """Records by experiment, ordered by spec (else first-seen index)."""
    groups: "OrderedDict[str, List[dict]]" = OrderedDict()
    if spec is not None:
        for espec in spec.experiments:
            groups.setdefault(espec.experiment, [])
    for record in sorted(records, key=lambda r: (r.get("index", 0))):
        groups.setdefault(record["experiment"], []).append(record)
    return groups


def render_report(records: Sequence[Mapping],
                  spec: Optional[CampaignSpec] = None) -> str:
    """Per-experiment tables plus a failure section."""
    groups = _group(records, spec)
    parts: List[str] = []
    failures: List[dict] = []
    for experiment, recs in groups.items():
        ok = [r for r in recs if r.get("status") == "ok"]
        failures.extend(r for r in recs if r.get("status") != "ok")
        if not ok:
            continue
        adapter = registry.get(experiment)
        parts.append(banner(f"{experiment}: {adapter.description}"))
        parts.append(adapter.render(ok))
        parts.append("")
    if failures:
        parts.append(banner(f"FAILED TASKS ({len(failures)})"))
        for record in failures:
            point = record.get("point") or {}
            where = ", ".join(f"{k}={v}" for k, v in sorted(point.items()))
            parts.append(
                f"  {record['experiment']}"
                + (f"[{where}]" if where else "")
                + f": {record.get('failure')} after "
                  f"{record.get('attempts')} attempt(s) — "
                  f"{record.get('error')}")
        parts.append("")
    if not parts:
        return "(no results in store)"
    return "\n".join(parts).rstrip() + "\n"


def summarize(records: Sequence[Mapping],
              stats: Optional[Mapping] = None) -> dict:
    """Machine-readable rollup (written by ``campaign report --json``)."""
    experiments: Dict[str, dict] = {}
    attempts = 0
    for record in records:
        entry = experiments.setdefault(
            record["experiment"],
            {"tasks": 0, "ok": 0, "failed": 0, "rows": 0})
        entry["tasks"] += 1
        attempts += record.get("attempts") or 0
        if record.get("status") == "ok":
            entry["ok"] += 1
            entry["rows"] += len(record.get("rows") or [])
        else:
            entry["failed"] += 1
    summary = {
        "campaigns": sorted({r.get("campaign") for r in records
                             if r.get("campaign")}),
        "tasks": len(records),
        "ok": sum(e["ok"] for e in experiments.values()),
        "failed": sum(e["failed"] for e in experiments.values()),
        "attempts": attempts,
        "experiments": experiments,
    }
    if stats is not None:
        summary["scheduler"] = dict(stats)
    return summary

"""Durable result store: append-only JSONL keyed by task fingerprint.

One JSON object per line, flushed and fsync'd per append, so a crashed or
killed campaign loses at most the record being written.  A truncated or
otherwise corrupt line — the expected wreckage of a mid-write ``kill -9``
— is skipped with a warning on load, never a crash; ``campaign resume``
then simply re-runs that one task.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Dict, List, Optional

logger = logging.getLogger("repro.campaign")

#: Schema marker written into every record; bump on breaking changes.
STORE_VERSION = 1


class ResultStore:
    """Append-only JSONL file of task records."""

    def __init__(self, path):
        self.path = Path(path)

    def exists_nonempty(self) -> bool:
        """True when the file already holds data (run vs resume guard)."""
        try:
            return self.path.stat().st_size > 0
        except FileNotFoundError:
            return False

    def load(self) -> List[dict]:
        """All intact records, in file order; corrupt lines are skipped."""
        if not self.path.exists():
            return []
        records = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    logger.warning(
                        "%s:%d: skipping corrupt/truncated record "
                        "(the task will be re-run on resume)",
                        self.path, lineno)
                    continue
                if not isinstance(record, dict) or \
                        "fingerprint" not in record:
                    logger.warning(
                        "%s:%d: skipping malformed record (no fingerprint)",
                        self.path, lineno)
                    continue
                records.append(record)
        return records

    def completed(self) -> Dict[str, dict]:
        """fingerprint -> record for tasks that finished OK (last wins).

        Failed records are *not* included: resume retries failures but
        never re-runs completed work.
        """
        return {record["fingerprint"]: record
                for record in self.load() if record.get("status") == "ok"}

    def append(self, record: dict) -> None:
        """Durably append one record (flush + fsync).

        If a previous writer died mid-line (no trailing newline), start on
        a fresh line so the new record is not welded onto the wreckage.
        """
        record.setdefault("store_version", STORE_VERSION)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        needs_newline = False
        try:
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                needs_newline = handle.read(1) != b"\n"
        except (FileNotFoundError, OSError):
            pass
        with open(self.path, "a", encoding="utf-8") as handle:
            if needs_newline:
                handle.write("\n")
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())


def make_record(task_wire: dict, outcome: dict, attempts: int) -> dict:
    """Build the stored record for one finished (ok or given-up) task."""
    ok = outcome.get("status") == "ok"
    return {
        "fingerprint": task_wire["fingerprint"],
        "campaign": task_wire["campaign"],
        "experiment": task_wire["experiment"],
        "index": task_wire["index"],
        "base": task_wire["base"],
        "point": task_wire["point"],
        "seed": task_wire["seed"],
        "status": "ok" if ok else "failed",
        "failure": None if ok else outcome.get("status"),
        "error": outcome.get("error"),
        "attempts": attempts,
        "elapsed_s": outcome.get("elapsed_s"),
        "rows": outcome.get("rows"),
        "trace_file": outcome.get("trace_file"),
    }


def failure_outcome(kind: str, error: str,
                    elapsed_s: Optional[float] = None) -> dict:
    """An outcome dict for scheduler-side failures (worker crashes)."""
    return {"status": kind, "error": error, "elapsed_s": elapsed_s}

"""``juggler-repro campaign run|resume|report``.

``run`` expands a spec (from ``--spec FILE`` or ``--experiments a,b,c``)
into tasks and schedules them; it refuses a non-empty store so completed
results cannot be silently appended to twice.  ``resume`` is the same
command minus that guard: tasks whose fingerprints already sit in the
store as ``ok`` are skipped.  ``report`` re-renders the figure tables
from the store alone — no re-execution — and can emit a machine-readable
JSON summary.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys

from repro.campaign import registry
from repro.campaign.reporter import render_report, summarize
from repro.campaign.scheduler import SchedulerConfig, run_campaign
from repro.campaign.spec import (
    CampaignSpec,
    build_default_spec,
    expand,
    load_spec,
)
from repro.campaign.store import ResultStore


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--spec", default=None,
                        help="campaign spec JSON file (see docs/campaign.md)")
    parser.add_argument("--experiments", default=None, metavar="A,B,C",
                        help="comma-separated experiment names (default "
                             "grids) instead of --spec")
    parser.add_argument("--store", required=True,
                        help="result store (append-only JSONL)")
    parser.add_argument("--name", default=None,
                        help="campaign name override")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = inline serial)")
    parser.add_argument("--seed", type=int, default=None,
                        help="root seed for per-task seed derivation "
                             "(default: keep each experiment's own seed)")
    parser.add_argument("--timeout", type=float, default=None,
                        metavar="SECONDS", help="per-task timeout")
    parser.add_argument("--retries", type=int, default=2,
                        help="extra attempts per failing task (default 2)")
    parser.add_argument("--backoff", type=float, default=0.25,
                        metavar="SECONDS",
                        help="first-retry backoff; doubles per attempt")
    parser.add_argument("--trace", choices=("jsonl",), default=None,
                        help="per-task tracing (workers inherit the "
                             "repro.trace runtime)")
    parser.add_argument("--trace-dir", default="campaign_traces",
                        help="directory for per-task trace files")
    parser.add_argument("--report", action="store_true",
                        help="print the full report after the run")


def _build_spec(args) -> CampaignSpec:
    if bool(args.spec) == bool(args.experiments):
        raise SystemExit("exactly one of --spec or --experiments required")
    if args.spec:
        spec = load_spec(args.spec)
    else:
        names = [n.strip() for n in args.experiments.split(",") if n.strip()]
        unknown = [n for n in names
                   if n not in registry.names(include_hidden=True)]
        if unknown:
            raise SystemExit(f"unknown experiment(s): {', '.join(unknown)}")
        spec = build_default_spec(names)
    if args.name is not None:
        spec = CampaignSpec(name=args.name, experiments=spec.experiments,
                            seed=spec.seed)
    if args.seed is not None:
        spec = CampaignSpec(name=spec.name, experiments=spec.experiments,
                            seed=args.seed)
    return spec


def _cmd_run(args, resume: bool) -> int:
    spec = _build_spec(args)
    store = ResultStore(args.store)
    if not resume and store.exists_nonempty():
        print(f"store {args.store} already has results; use "
              f"'campaign resume' to continue it (or pick a new path)",
              file=sys.stderr)
        return 2
    try:
        tasks = expand(spec)
    except (ValueError, KeyError) as exc:
        print(f"bad spec: {exc}", file=sys.stderr)
        return 2
    config = SchedulerConfig(
        jobs=args.jobs, timeout_s=args.timeout, retries=args.retries,
        backoff_s=args.backoff, trace=args.trace,
        trace_dir=args.trace_dir if args.trace else None,
    )
    print(f"campaign '{spec.name}': {len(tasks)} task(s), "
          f"jobs={args.jobs}, store={args.store}")
    stats = run_campaign(tasks, store, config, progress=print)
    print(stats.summary_line(spec.name))
    if args.report:
        print()
        print(render_report(store.load(), spec))
    return 0 if stats.failed == 0 else 1


def _cmd_report(args) -> int:
    store = ResultStore(args.store)
    records = store.load()
    spec = load_spec(args.spec) if args.spec else None
    print(render_report(records, spec))
    if args.json:
        summary = summarize(records)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"summary written to {args.json}")
    return 0


def main(argv) -> int:
    """Entry point for the ``campaign`` subcommand."""
    logging.basicConfig(format="%(levelname)s %(name)s: %(message)s")
    parser = argparse.ArgumentParser(
        prog="juggler-repro campaign",
        description="Parallel, resumable experiment sweeps with a durable "
                    "result store (see docs/campaign.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run a campaign into a fresh store")
    _add_run_args(run_p)
    resume_p = sub.add_parser(
        "resume", help="continue a campaign, skipping completed tasks")
    _add_run_args(resume_p)
    report_p = sub.add_parser(
        "report", help="render tables + summary from an existing store")
    report_p.add_argument("--store", required=True)
    report_p.add_argument("--spec", default=None,
                          help="spec file (orders the report sections)")
    report_p.add_argument("--json", default=None, metavar="PATH",
                          help="also write a machine-readable summary")

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args, resume=False)
    if args.command == "resume":
        return _cmd_run(args, resume=True)
    return _cmd_report(args)

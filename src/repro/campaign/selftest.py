"""Failure-injection experiment for exercising the campaign scheduler.

Registered (hidden) as ``selftest`` so worker processes can resolve it by
name like any real experiment.  Each grid point's behaviour comes from
``plan[task_id]``:

``ok``          return a row immediately.
``fail``        raise on every attempt (retry-then-give-up accounting).
``flaky``       raise while ``attempt <= fail_attempts``, then succeed.
``crash``       ``SIGKILL`` the worker process (BrokenProcessPool path).
``crash_once``  crash while ``attempt <= fail_attempts``, then succeed.
``sleep``       sleep ``sleep_s`` then return (per-task timeout path).

When ``marker_dir`` is set, every execution appends one
``<attempt> <pid>`` line to ``<marker_dir>/task<task_id>.log`` before
doing anything else — tests count lines to prove resume re-runs nothing
and retries run exactly as budgeted (the line survives even when the
execution then kills its own worker).
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from typing import List

from repro.harness.reporting import format_table


@dataclass(frozen=True)
class SelftestParams:
    """Grid configuration (``task_ids`` is the only axis)."""

    task_ids: tuple = (0, 1, 2, 3)
    #: Behaviour per task id (padded with "ok" when shorter).
    plan: tuple = ()
    #: ``flaky``/``crash_once`` succeed once ``attempt > fail_attempts``.
    fail_attempts: int = 1
    sleep_s: float = 5.0
    marker_dir: str = ""
    seed: int = 99


@dataclass
class SelftestPoint:
    """One executed point."""

    task_id: int
    mode: str
    attempt: int
    value: int


@dataclass
class SelftestResult:
    """All points."""

    points: List[SelftestPoint] = field(default_factory=list)


def _mode(params: SelftestParams, task_id: int) -> str:
    if 0 <= task_id < len(params.plan):
        return params.plan[task_id]
    return "ok"


def run_point(params: SelftestParams, *, task_id: int,
              attempt: int = 1) -> SelftestPoint:
    """Execute one point with the planned behaviour."""
    if params.marker_dir:
        marker = os.path.join(params.marker_dir, f"task{task_id}.log")
        with open(marker, "a", encoding="utf-8") as handle:
            handle.write(f"{attempt} {os.getpid()}\n")
            handle.flush()
            os.fsync(handle.fileno())
    mode = _mode(params, task_id)
    if mode == "fail":
        raise RuntimeError(f"selftest task {task_id} always fails")
    if mode == "flaky" and attempt <= params.fail_attempts:
        raise RuntimeError(
            f"selftest task {task_id} flaky on attempt {attempt}")
    if mode == "crash" or (mode == "crash_once"
                           and attempt <= params.fail_attempts):
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "sleep":
        time.sleep(params.sleep_s)
    # Deterministic payload: depends only on (seed, task_id).
    value = (params.seed * 1_000_003 + task_id * 97) % 1_000_000_007
    return SelftestPoint(task_id=task_id, mode=mode, attempt=attempt,
                         value=value)


def run(params: SelftestParams = SelftestParams()) -> SelftestResult:
    """Serial sweep (parity with real experiment modules)."""
    return SelftestResult(points=[
        run_point(params, task_id=task_id) for task_id in params.task_ids
    ])


def render(result: SelftestResult) -> str:
    """The points as a table."""
    rows = [(p.task_id, p.mode, p.attempt, p.value) for p in result.points]
    return format_table(["task_id", "mode", "attempt", "value"], rows)

"""Declarative sweep specs expanded into fingerprinted tasks.

A campaign is a named set of experiments, each with parameter overrides
and (for grid experiments) a grid of axis values.  :func:`expand` turns a
spec into a flat list of :class:`Task` objects — one per grid point, or
one per whole-run experiment — each carrying:

* a **fingerprint**: the SHA-256 of the canonical JSON of everything that
  determines the task's output (experiment, overrides, point, seed).  The
  result store keys on it, which is what makes ``campaign resume`` able to
  skip completed work and what makes a re-run with different parameters
  a *different* task rather than a stale cache hit.
* a **seed**: when the spec sets a root seed, each task derives its own
  seed from ``sha256(root:experiment:payload)`` — the same hashing idiom
  as :class:`repro.sim.rng.RngRegistry` — so per-task randomness is stable
  across runs and independent of scheduling order or ``--jobs``.  With no
  root seed, tasks keep each experiment's baked-in default seed, which
  makes a campaign's rows byte-identical to the serial ``run()`` loops.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace, tuples as lists."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      default=_jsonify)


def _jsonify(obj):
    if isinstance(obj, (set, frozenset)):
        return sorted(obj)
    raise TypeError(f"not canonically serialisable: {type(obj).__name__}")


def derive_seed(root_seed: int, experiment: str, payload: str) -> int:
    """A per-task seed from the campaign root seed (sim.rng-style hashing)."""
    digest = hashlib.sha256(
        f"{root_seed}:{experiment}:{payload}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Task:
    """One unit of campaign work: a single grid point (or whole run)."""

    campaign: str
    experiment: str
    #: Position in the deterministic expansion order; the reporter sorts on
    #: it so output never depends on completion order.
    index: int
    #: Parameter overrides applied to the experiment's ``*Params`` defaults.
    base: Mapping
    #: Axis values for this grid point (empty for whole-run tasks).
    point: Mapping
    #: Per-task seed, or None to keep the experiment's default seed.
    seed: Optional[int]
    fingerprint: str

    def to_wire(self) -> dict:
        """A plain JSON-able dict (what crosses the process boundary)."""
        return {
            "campaign": self.campaign,
            "experiment": self.experiment,
            "index": self.index,
            "base": dict(self.base),
            "point": dict(self.point),
            "seed": self.seed,
            "fingerprint": self.fingerprint,
        }

    @property
    def label(self) -> str:
        """Short human-readable identity for progress lines."""
        if not self.point:
            return self.experiment
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.point.items()))
        return f"{self.experiment}[{inner}]"


def make_task(campaign: str, experiment: str, index: int, base: Mapping,
              point: Mapping, root_seed: Optional[int]) -> Task:
    """Build a task, deriving its seed and fingerprint."""
    payload = canonical_json({"base": base, "point": point})
    seed = (None if root_seed is None
            else derive_seed(root_seed, experiment, payload))
    fingerprint = hashlib.sha256(canonical_json({
        "experiment": experiment,
        "base": base,
        "point": point,
        "seed": seed,
    }).encode()).hexdigest()
    return Task(campaign=campaign, experiment=experiment, index=index,
                base=dict(base), point=dict(point), seed=seed,
                fingerprint=fingerprint)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment's slice of a campaign."""

    experiment: str
    #: ``*Params`` field overrides (grid-axis tuples excluded for grids).
    overrides: Mapping = field(default_factory=dict)
    #: axis name -> list of values; None means the experiment's default
    #: grid (for grid experiments) or a single whole-run task (others).
    grid: Optional[Mapping] = None


@dataclass(frozen=True)
class CampaignSpec:
    """A named, seeded collection of experiment sweeps."""

    name: str
    experiments: Sequence[ExperimentSpec]
    #: Root seed for per-task seed derivation; None keeps module defaults.
    seed: Optional[int] = None

    @classmethod
    def from_dict(cls, data: Mapping) -> "CampaignSpec":
        """Parse the JSON spec format (see docs/campaign.md)."""
        if "experiments" not in data:
            raise ValueError("spec needs an 'experiments' list")
        experiments = []
        for entry in data["experiments"]:
            if isinstance(entry, str):
                entry = {"experiment": entry}
            unknown = set(entry) - {"experiment", "overrides", "grid"}
            if unknown:
                raise ValueError(
                    f"unknown experiment-spec keys: {sorted(unknown)}")
            experiments.append(ExperimentSpec(
                experiment=entry["experiment"],
                overrides=dict(entry.get("overrides") or {}),
                grid=(dict(entry["grid"])
                      if entry.get("grid") is not None else None),
            ))
        return cls(name=data.get("name", "campaign"),
                   experiments=tuple(experiments),
                   seed=data.get("seed"))

    @classmethod
    def from_file(cls, path) -> "CampaignSpec":
        """Load a JSON spec file."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def to_dict(self) -> dict:
        """The JSON spec format (round-trips through :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "experiments": [
                {"experiment": e.experiment,
                 **({"overrides": dict(e.overrides)} if e.overrides else {}),
                 **({"grid": dict(e.grid)} if e.grid is not None else {})}
                for e in self.experiments
            ],
        }


def build_default_spec(names: Sequence[str], seed: Optional[int] = None,
                       name: str = "campaign") -> CampaignSpec:
    """A spec running each named experiment with its default parameters."""
    return CampaignSpec(
        name=name,
        experiments=tuple(ExperimentSpec(n) for n in names),
        seed=seed,
    )


def expand(spec: CampaignSpec) -> List[Task]:
    """Flatten a spec into fingerprinted tasks, in deterministic order.

    Grid experiments produce one task per point, iterated in the module's
    own nesting order (outer axis first), so a campaign report lists rows
    exactly as the serial ``render(run())`` would.
    """
    from repro.campaign import registry

    tasks: List[Task] = []
    for espec in spec.experiments:
        adapter = registry.get(espec.experiment)
        if adapter.is_grid:
            grid = adapter.validate_grid(espec.grid)
            adapter.validate_overrides(espec.overrides)
            for point in _grid_product(adapter.axis_names(), grid):
                tasks.append(make_task(spec.name, espec.experiment,
                                       len(tasks), espec.overrides, point,
                                       spec.seed))
        else:
            if espec.grid:
                raise ValueError(
                    f"experiment '{espec.experiment}' takes no grid")
            adapter.validate_overrides(espec.overrides)
            tasks.append(make_task(spec.name, espec.experiment, len(tasks),
                                   espec.overrides, {}, spec.seed))
    _check_unique(tasks)
    return tasks


def _grid_product(axis_names: Sequence[str], grid: Mapping):
    values = [list(grid[axis]) for axis in axis_names]
    for combo in itertools.product(*values):
        yield dict(zip(axis_names, combo))


def _check_unique(tasks: List[Task]) -> None:
    seen: Dict[str, Task] = {}
    for task in tasks:
        other = seen.get(task.fingerprint)
        if other is not None:
            raise ValueError(
                f"duplicate tasks in campaign: {other.label} and "
                f"{task.label} have the same fingerprint")
        seen[task.fingerprint] = task


def load_spec(path) -> CampaignSpec:
    """Convenience wrapper used by the CLI."""
    if not Path(path).exists():
        raise FileNotFoundError(f"spec file not found: {path}")
    return CampaignSpec.from_file(path)

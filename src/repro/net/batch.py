"""Struct-of-arrays packet batches — one object per NAPI poll, not per packet.

PR 4 took the per-packet cost down with a timer wheel and allocation cuts;
the next multiple comes from the data layout (ROADMAP item 2).  A
:class:`PacketBatch` carries a whole poll's worth of wire packets as
parallel integer columns (``array('q')``, or numpy int64 when
``JUGGLER_NUMPY=1`` and numpy is importable) plus a construction-time
*flow-run index*: maximal stretches of consecutive packets that belong to
the same flow.  GRO engines walk the run index and process each run against
one flow's state with all lookups hoisted, touching Python ``Packet``
objects only on the fallback path (rehydrated from a :class:`PacketPool`).

Two backings share the one type:

* **native** batches are filled column-wise at the RX ring
  (:meth:`append_wire` + :meth:`seal`) and never hold ``Packet`` objects
  unless a consumer explicitly materializes them;
* **object-backed** batches (:meth:`from_packets`) wrap an existing packet
  list — only the run index is built eagerly; columns materialize lazily
  for consumers that want them.

The *fast-path predicate* (what a columnar engine may handle in-loop)
is deliberately narrow; everything else punts to the engine's per-packet
``receive`` reference path:

* ``0 < payload_len <= MSS`` — zero-payload ACKs pass through, jumbo
  payloads are not worth special-casing;
* no flush-forcing flags (PSH/URG/SYN/FIN/RST — ``fint & 0x2F == 0``);
* no CE mark and no TCP options (``sig_key & 0x300 == 0``) — with those
  bits clear the integer ``sig_key`` is injective w.r.t. the tuple
  signature, so merge probes compare one int.

:class:`SoaSegment` is the column-backed counterpart of
:class:`~repro.net.segment.Segment`: GRO nodes built from native batches
append *values*, not packets, and materialize real ``Packet`` objects only
if somebody reads ``.packets`` (delivery consumers that iterate payloads).
"""

from __future__ import annotations

import os
from array import array
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.net.addr import FiveTuple
from repro.net.constants import MSS, PRIORITY_LOW
from repro.net.flags import TcpFlags
from repro.net.packet import Packet
from repro.net.pool import PacketPool, release_terminal
from repro.net.segment import BatchingMode, Segment

#: Flag bits that force a flush (PSH|URG|SYN|FIN|RST) — Table 2.
FLUSH_MASK = 0x2F
#: sig_key bits that mark a packet columnar code must not merge by int
#: compare: 0x100 = carries TCP options (opaque), 0x200 = CE-marked,
#: 0x400 = the row is backed by a real ``Packet`` held in ``_extras``
#: (state the columns cannot encode — ack/rwnd/SACK, retransmission
#: marks); such rows must be materialized, never value-merged.
ODD_SIG_MASK = 0x700
#: The object-carried bit alone (see :meth:`PacketBatch.append_packet`).
OBJ_ROW = 0x400

_NUMPY_ENV = "JUGGLER_NUMPY"

if os.environ.get(_NUMPY_ENV, "") not in ("", "0"):
    try:  # pragma: no cover - exercised only in the numpy CI leg
        import numpy as _np
    except ImportError:  # pragma: no cover
        _np = None
else:
    _np = None


def numpy_columns_enabled() -> bool:
    """True when columns are numpy int64 arrays instead of ``array('q')``."""
    return _np is not None


def _column(values: Sequence[int]):
    """Freeze a staged list of ints into this build's column type."""
    if _np is not None:  # pragma: no cover - numpy CI leg
        return _np.asarray(values, dtype=_np.int64)
    return array("q", values)


#: All 256 flag combinations, premade so rehydration never constructs an
#: IntFlag (and never keeps a mutable cache on the receive path).
_FLAGS_BY_INT = tuple(TcpFlags(v) for v in range(256))


def sig_key_of(flags_int: int, ce: bool, options: tuple) -> int:
    """The integer merge signature (mirrors ``Packet.sig_key``)."""
    return ((flags_int & ~0x08)
            | (0x100 if options else 0)
            | (0x200 if ce else 0))


class PacketBatch:
    """A poll's worth of packets as parallel columns plus a flow-run index.

    ``runs`` is a list of ``(slot, start, stop)`` tuples covering
    ``[0, len(batch))`` in order: packets ``start..stop`` all belong to
    ``flows[slot]``.  A flow may own several runs in one batch (its packets
    interleaved with another flow's), and engines must re-establish flow
    state per run — admission or eviction triggered by one run can
    invalidate entries cached across another.
    """

    __slots__ = ("length", "packets", "flows", "runs", "owner_domain",
                 "_slot_of", "_seq", "_payload_len", "_end_seq", "_flags",
                 "_sig", "_slot", "_sent_at", "_received_at", "_tso",
                 "_extras", "_sealed")

    def __init__(self) -> None:
        """Open an empty *native* batch for column-wise filling."""
        self.length = 0
        #: ``None`` for native batches; the wrapped list for object-backed.
        self.packets: Optional[List[Packet]] = None
        self.flows: List[FiveTuple] = []
        self.runs: Optional[List[Tuple[int, int, int]]] = None
        #: Shard-isolation tag: set by the owning RxQueue so OSAN can treat
        #: batch columns as that shard's private state.
        self.owner_domain: Optional[str] = None
        self._slot_of: Dict[FiveTuple, int] = {}
        self._seq: list = []
        self._payload_len: list = []
        self._end_seq: Optional[list] = None
        self._flags: list = []
        self._sig: list = []
        self._slot: list = []
        self._sent_at: list = []
        self._received_at: list = []
        #: TSO burst id per row, -1 = none (the id is upstream telemetry —
        #: fabric routing reads it before the NIC — but carrying it keeps
        #: rehydrated packets field-identical to what arrived).
        self._tso: list = []
        #: Sparse row -> kwargs for fields the columns cannot carry
        #: (currently only TCP options); consulted at materialization.
        self._extras: Optional[Dict[int, dict]] = None
        self._sealed = False

    # -- native fill path -----------------------------------------------------

    def append_wire(self, flow: FiveTuple, seq: int, payload_len: int, *,
                    flags: int = int(TcpFlags.ACK), ce: bool = False,
                    sent_at: int = 0, received_at: int = 0,
                    tso: int = -1, options: tuple = ()) -> int:
        """Append one wire packet's header fields; returns its row index.

        This is the NIC's columnar ring fill — checksum verification and
        ring-overflow drops happen *before* this call, so a batch only ever
        holds frames that will reach GRO.
        """
        i = self.length
        f = int(flags)
        slot = self._slot_of.get(flow)
        if slot is None:
            slot = len(self.flows)
            self._slot_of[flow] = slot
            self.flows.append(flow)
        self._seq.append(seq)
        self._payload_len.append(payload_len)
        self._flags.append(f)
        self._sig.append((f & ~0x08)
                         | (0x100 if options else 0)
                         | (0x200 if ce else 0))
        self._slot.append(slot)
        self._sent_at.append(sent_at)
        self._received_at.append(received_at)
        self._tso.append(tso)
        if options:
            if self._extras is None:
                self._extras = {}
            self._extras[i] = {"options": options}
        self.length = i + 1
        return i

    def append_packet(self, packet: Packet, *, received_at: int = 0) -> int:
        """Absorb one wire ``Packet`` into the columns; returns its row.

        The columnar ring's compatibility entry: the object path hands us
        packets, the columns carry what they can.  A packet whose state the
        columns encode exactly (plain data: no ack/rwnd/SACK feedback, no
        options, default priority) is absorbed *by value* and released back
        to its pool right away — downstream only ever sees the row.
        Anything else rides along as an object-carried row: the original
        packet is parked in ``_extras`` and the row's sig gets the
        :data:`OBJ_ROW` bit, so engines punt it to their per-packet
        reference path and :meth:`materialize` returns the very object that
        arrived — zero fidelity loss for pure ACKs and other oddballs.
        """
        tso = -1 if packet.tso_id is None else packet.tso_id
        if (packet.ack == 0 and packet.rwnd is None and not packet.sack
                and packet.ce_bytes == 0
                and not packet.is_retransmission and not packet.options
                and packet.priority == PRIORITY_LOW):
            i = self.append_wire(packet.flow, packet.seq, packet.payload_len,
                                 flags=packet.fint, ce=packet.ce,
                                 sent_at=packet.sent_at,
                                 received_at=received_at, tso=tso)
            release_terminal(packet)
            return i
        i = self.append_wire(packet.flow, packet.seq, packet.payload_len,
                             flags=packet.fint, ce=packet.ce,
                             sent_at=packet.sent_at, received_at=received_at,
                             tso=tso)
        self._sig[i] |= OBJ_ROW
        if self._extras is None:
            self._extras = {}
        self._extras[i] = {"packet": packet}
        return i

    def seal(self) -> "PacketBatch":
        """Freeze columns and build the flow-run index; idempotent."""
        if self._sealed:
            return self
        if self.packets is not None:
            raise ValueError("object-backed batches are sealed at construction")
        slots = self._slot
        runs: List[Tuple[int, int, int]] = []
        n = len(slots)
        if n:
            prev = slots[0]
            start = 0
            for i in range(1, n):
                s = slots[i]
                if s != prev:
                    runs.append((prev, start, i))
                    prev = s
                    start = i
            runs.append((prev, start, n))
        self.runs = runs
        self._seq = _column(self._seq)
        self._payload_len = _column(self._payload_len)
        self._flags = _column(self._flags)
        self._sig = _column(self._sig)
        self._slot = _column(self._slot)
        self._sent_at = _column(self._sent_at)
        self._received_at = _column(self._received_at)
        self._tso = _column(self._tso)
        self._sealed = True
        return self

    # -- object-backed construction -------------------------------------------

    @classmethod
    def from_packets(cls, packets: Sequence[Packet]) -> "PacketBatch":
        """Wrap an existing packet list; only the run index is built eagerly.

        The fast skip below leans on workloads reusing one ``FiveTuple``
        object per flow (identity check); distinct-but-equal keys still
        land on one slot through the dict, just via a slower probe.
        """
        b = cls.__new__(cls)
        pkts = packets if type(packets) is list else list(packets)
        b.packets = pkts
        b.length = len(pkts)
        flows: List[FiveTuple] = []
        slot_of: Dict[FiveTuple, int] = {}
        runs: List[Tuple[int, int, int]] = []
        prev_flow = None
        prev_slot = -1
        start = 0
        for i, p in enumerate(pkts):
            fl = p.flow
            if fl is prev_flow:
                continue
            slot = slot_of.get(fl)
            if slot is None:
                slot = len(flows)
                slot_of[fl] = slot
                flows.append(fl)
            if slot != prev_slot or prev_flow is None:
                if i:
                    runs.append((prev_slot, start, i))
                start = i
            prev_slot = slot
            prev_flow = fl
        if pkts:
            runs.append((prev_slot, start, len(pkts)))
        b.flows = flows
        b.runs = runs
        b.owner_domain = None
        b._slot_of = slot_of
        b._seq = None
        b._payload_len = None
        b._end_seq = None
        b._flags = None
        b._sig = None
        b._slot = None
        b._sent_at = None
        b._received_at = None
        b._tso = None
        b._extras = None
        b._sealed = True
        return b

    # -- columns ---------------------------------------------------------------

    @property
    def seq(self):
        col = self._seq
        if col is None:
            col = self._seq = _column([p.seq for p in self.packets])
        return col

    @property
    def payload_len(self):
        col = self._payload_len
        if col is None:
            col = self._payload_len = _column(
                [p.payload_len for p in self.packets])
        return col

    @property
    def end_seq(self):
        col = self._end_seq
        if col is None:
            seq = self.seq
            ln = self.payload_len
            col = self._end_seq = _column(
                [seq[i] + ln[i] for i in range(self.length)])
        return col

    @property
    def flags(self):
        col = self._flags
        if col is None:
            col = self._flags = _column([p.fint for p in self.packets])
        return col

    @property
    def sig(self):
        col = self._sig
        if col is None:
            col = self._sig = _column([p.sig_key for p in self.packets])
        return col

    @property
    def slot(self):
        col = self._slot
        if col is None:
            slot_of = self._slot_of
            col = self._slot = _column(
                [slot_of[p.flow] for p in self.packets])
        return col

    @property
    def sent_at(self):
        col = self._sent_at
        if col is None:
            col = self._sent_at = _column([p.sent_at for p in self.packets])
        return col

    @property
    def received_at(self):
        col = self._received_at
        if col is None:
            col = self._received_at = _column(
                [p.received_at for p in self.packets])
        return col

    @property
    def tso(self):
        col = self._tso
        if col is None:
            col = self._tso = _column(
                [-1 if p.tso_id is None else p.tso_id
                 for p in self.packets])
        return col

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    @property
    def is_native(self) -> bool:
        """True when no ``Packet`` objects back this batch."""
        return self.packets is None

    def eligible_split(self, start: int, stop: int) -> int:
        """First row in ``[start, stop)`` failing the fast-path predicate.

        Returns ``stop`` when the whole range is columnar-eligible.  This is
        the documented run-split point; engines apply the same per-row
        predicate inline (and resume in-loop after a punted row, which is
        equivalent because every row is classified independently against
        refreshed flow state).
        """
        if self.packets is not None:
            for i in range(start, stop):
                p = self.packets[i]
                ln = p.payload_len
                if (ln <= 0 or ln > MSS or p.forces_flush
                        or (p.sig_key & ODD_SIG_MASK)):
                    return i
            return stop
        lens = self.payload_len
        flags = self.flags
        sigs = self.sig
        for i in range(start, stop):
            ln = lens[i]
            if (ln <= 0 or ln > MSS or (flags[i] & FLUSH_MASK)
                    or (sigs[i] & ODD_SIG_MASK)):
                return i
        return stop

    # -- rehydration -----------------------------------------------------------

    def materialize(self, i: int, pool: Optional[PacketPool] = None) -> Packet:
        """Rehydrate row ``i`` as a real ``Packet`` (drawing from ``pool``)."""
        pkts = self.packets
        if pkts is not None:
            return pkts[i]
        flow = self.flows[self._slot[i]]
        seq = self._seq[i]
        ln = self._payload_len[i]
        fl = int(self._flags[i])
        kwargs = {}
        extras = self._extras
        if extras is not None:
            extra = extras.get(i)
            if extra is not None:
                carried = extra.get("packet")
                if carried is not None:
                    # Object-carried row: the wire packet itself, exactly
                    # as it arrived (see append_packet).
                    return carried
                kwargs = extra
        t = self._tso[i]
        if t >= 0:
            kwargs = dict(kwargs, tso_id=int(t))
        if pool is not None:
            pk = pool.acquire(flow, seq, ln, flags=_FLAGS_BY_INT[fl & 0xFF],
                              ce=bool(self._sig[i] & 0x200),
                              sent_at=int(self._sent_at[i]), **kwargs)
        else:
            pk = Packet(flow, seq, ln, flags=_FLAGS_BY_INT[fl & 0xFF],
                        ce=bool(self._sig[i] & 0x200),
                        sent_at=int(self._sent_at[i]), **kwargs)
        pk.received_at = int(self._received_at[i])
        return pk

    def to_packets(self, pool: Optional[PacketPool] = None) -> List[Packet]:
        """The whole batch as ``Packet`` objects (identity for object mode)."""
        if self.packets is not None:
            return self.packets
        return [self.materialize(i, pool) for i in range(self.length)]

    def gather(self, indices: Sequence[int]) -> "PacketBatch":
        """A new sealed native batch holding the given rows, in order.

        Used by the NIC demux to split one wire batch into per-queue
        sub-batches; native batches only (object-backed demux just slices
        the packet list).
        """
        if self.packets is not None:
            raise ValueError("gather() is for native batches; slice .packets")
        if not self._sealed:
            self.seal()
        sub = PacketBatch()
        flows = self.flows
        slots = self._slot
        extras = self._extras
        for i in indices:
            j = sub.append_wire(
                flows[slots[i]], int(self._seq[i]),
                int(self._payload_len[i]), flags=int(self._flags[i]),
                ce=bool(self._sig[i] & 0x200),
                sent_at=int(self._sent_at[i]),
                received_at=int(self._received_at[i]),
                tso=int(self._tso[i]))
            # Copy the signature verbatim: append_wire rebuilds it from
            # flags+CE alone, which would shed the options (0x100) and
            # object-carried (0x400) odd bits.
            sub._sig[j] = int(self._sig[i])
            if extras is not None and i in extras:
                if sub._extras is None:
                    sub._extras = {}
                sub._extras[j] = extras[i]
        sub.owner_domain = self.owner_domain
        return sub.seal()

    def iter_rows(self) -> Iterator[Tuple[FiveTuple, int, int, int]]:
        """(flow, seq, payload_len, flags) per row — tests/debugging aid."""
        slots = self.slot
        seqs = self.seq
        lens = self.payload_len
        flags = self.flags
        flows = self.flows
        for i in range(self.length):
            yield flows[slots[i]], int(seqs[i]), int(lens[i]), int(flags[i])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "obj" if self.packets is not None else "native"
        return (f"<PacketBatch {kind} len={self.length} "
                f"flows={len(self.flows)} runs={len(self.runs or [])}>")


class SoaSegment(Segment):
    """A GRO node whose packets live as parallel value lists, not objects.

    Opened by columnar engines for rows of native batches; every merge is a
    handful of int appends.  ``.packets`` materializes real ``Packet``
    objects lazily (first read) for delivery consumers, and from then on
    the materialized list is kept in sync so mixed object/value merge
    sequences stay coherent.

    Only fast-path-eligible rows open or merge into these nodes by value,
    so a ``SoaSegment`` never carries CE marks or TCP options; object
    packets that pass the tuple-signature checks are *absorbed* by value
    and immediately released back to their pool.
    """

    __slots__ = ("_pseq", "_plen", "_pflags", "_psent", "_mat")

    @classmethod
    def open(cls, flow: FiveTuple, seq: int, end_seq: int, payload_len: int,
             flags_int: int, sent_at: int) -> "SoaSegment":
        seg = cls.__new__(cls)
        seg.flow = flow
        seg.seq = seq
        seg.end_seq = end_seq
        seg.mtus = 1
        seg.mode = BatchingMode.FRAGS_ARRAY
        seg.first_sent_at = sent_at
        seg.flushed_at = 0
        seg.in_order = True
        fm = flags_int & ~0x08
        seg.sig = ((), False, fm)
        seg.sig_key = fm
        seg._payload = payload_len
        seg._closed = (flags_int & FLUSH_MASK) != 0
        seg._pseq = [seq]
        seg._plen = [payload_len]
        seg._pflags = [flags_int]
        seg._psent = [sent_at]
        seg._mat = None
        return seg

    # -- packet view -----------------------------------------------------------

    @property
    def packets(self) -> List[Packet]:
        mat = self._mat
        if mat is None:
            flow = self.flow
            pseq = self._pseq
            plen = self._plen
            pflags = self._pflags
            psent = self._psent
            mat = self._mat = [
                Packet(flow, pseq[k], plen[k],
                       flags=_FLAGS_BY_INT[pflags[k] & 0xFF],
                       sent_at=psent[k])
                for k in range(len(pseq))
            ]
        return mat

    @property
    def forces_flush(self) -> bool:
        return any(f & FLUSH_MASK for f in self._pflags)

    @property
    def ce_payload_bytes(self) -> int:
        return 0  # value-merged rows are CE-free by the fast-path predicate

    # -- value merges ----------------------------------------------------------

    def append_value(self, seq: int, end_seq: int, payload_len: int,
                     flags_int: int, sent_at: int) -> None:
        """Tail-merge one row (caller checked contiguity/sig/cap)."""
        mat = self._mat
        if mat is not None:
            mat.append(Packet(self.flow, seq, payload_len,
                              flags=_FLAGS_BY_INT[flags_int & 0xFF],
                              sent_at=sent_at))
        self._pseq.append(seq)
        self._plen.append(payload_len)
        self._pflags.append(flags_int)
        self._psent.append(sent_at)
        self.end_seq = end_seq
        self.mtus += 1
        self._payload += payload_len
        self._closed = (flags_int & FLUSH_MASK) != 0
        if sent_at < self.first_sent_at:
            self.first_sent_at = sent_at

    def prepend_value(self, seq: int, payload_len: int, flags_int: int,
                      sent_at: int) -> None:
        """Head-merge one row (caller checked contiguity/sig/cap)."""
        mat = self._mat
        if mat is not None:
            mat.insert(0, Packet(self.flow, seq, payload_len,
                                 flags=_FLAGS_BY_INT[flags_int & 0xFF],
                                 sent_at=sent_at))
        self._pseq.insert(0, seq)
        self._plen.insert(0, payload_len)
        self._pflags.insert(0, flags_int)
        self._psent.insert(0, sent_at)
        self.seq = seq
        self.mtus += 1
        self._payload += payload_len
        if sent_at < self.first_sent_at:
            self.first_sent_at = sent_at

    # -- object-packet interop -------------------------------------------------

    def append(self, packet: Packet) -> None:
        """Absorb an object packet by value and release it to its pool.

        The signature checks the caller ran (``can_append``) guarantee the
        packet is CE-free and option-free, so the columns can represent it
        exactly; the object itself is surplus and goes back to the pool
        (its field values stay readable until the pool reuses it, which
        cannot happen before the caller's own reads complete).
        """
        self.append_value(packet.seq, packet.end_seq, packet.payload_len,
                          packet.fint, packet.sent_at)
        release_terminal(packet)

    def prepend(self, packet: Packet) -> None:
        self.prepend_value(packet.seq, packet.payload_len, packet.fint,
                           packet.sent_at)
        release_terminal(packet)

    def extend(self, other: Segment) -> None:
        if isinstance(other, SoaSegment):
            mat = self._mat
            if mat is not None:
                mat.extend(other.packets)
            elif other._mat is not None:
                # Keep one source of truth: materialize ourselves too.
                self.packets.extend(other.packets)
            self._pseq.extend(other._pseq)
            self._plen.extend(other._plen)
            self._pflags.extend(other._pflags)
            self._psent.extend(other._psent)
            self.end_seq = other.end_seq
            self.mtus += other.mtus
            self._payload += other._payload
            self._closed = other._closed
            if other.first_sent_at < self.first_sent_at:
                self.first_sent_at = other.first_sent_at
        else:
            for p in list(other.packets):
                self.append(p)

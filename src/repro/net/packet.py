"""The Packet — the simulation's sk_buff as it arrives from the wire."""

from __future__ import annotations

import itertools
from typing import Optional

from repro.net.addr import FiveTuple
from repro.net.constants import PRIORITY_LOW, wire_bytes
from repro.net.flags import TcpFlags

_packet_ids = itertools.count()


def next_pid() -> int:
    """Consume and return the next packet id.

    This is also the allocation watermark the zero-allocation guards use:
    two calls bracketing a region return consecutive values iff no
    ``Packet`` was constructed (or pool-reset) in between.
    """
    return next(_packet_ids)


class Packet:
    """One MTU-or-smaller TCP/IP packet.

    Carries exactly the header state the GRO layer inspects (five-tuple,
    sequence number, flags, options signature, CE mark) plus bookkeeping the
    harness uses to measure reordering (``pid``, ``sent_at``, ``tso_id``).
    """

    __slots__ = (
        "flow",
        "seq",
        "payload_len",
        "flags",
        "ack",
        "options",
        "ce",
        "priority",
        "rwnd",
        "sack",
        "ce_bytes",
        "pid",
        "tso_id",
        "sent_at",
        "received_at",
        "is_retransmission",
        "path_id",
        "sig",
        "sig_key",
        "fint",
        "forces_flush",
        "corrupt",
        "origin",
    )

    def __init__(
        self,
        flow: FiveTuple,
        seq: int,
        payload_len: int,
        *,
        flags: TcpFlags = TcpFlags.ACK,
        ack: int = 0,
        options: tuple = (),
        ce: bool = False,
        priority: int = PRIORITY_LOW,
        tso_id: Optional[int] = None,
        sent_at: int = 0,
        is_retransmission: bool = False,
        rwnd: Optional[int] = None,
        sack: tuple = (),
    ):
        self.flow = flow
        self.seq = seq
        self.payload_len = payload_len
        self.flags = flags
        self.ack = ack
        self.rwnd = rwnd
        self.sack = sack
        #: On ACKs: payload bytes the receiver saw CE-marked since its last
        #: ACK (DCTCP-style precise congestion feedback).
        self.ce_bytes = 0
        self.options = options
        self.ce = ce
        self.priority = priority
        self.pid = next(_packet_ids)
        self.tso_id = tso_id
        self.sent_at = sent_at
        self.received_at = 0
        self.is_retransmission = is_retransmission
        self.path_id = 0
        #: Payload damaged in flight; the NIC's checksum verification drops
        #: such frames at the ring (see repro.faults and RxQueue.enqueue).
        self.corrupt = False
        #: The PacketPool this packet must be released to when it dies at a
        #: terminal drop site (None for unpooled packets).
        self.origin = None
        # GRO-hot-path fields, precomputed once here instead of per merge
        # check (IntFlag arithmetic is far too slow for a per-probe cost).
        f = int(flags)
        self.fint = f
        self.sig = (options, ce, f & ~0x08)  # ~PSH
        #: Integer merge signature for columnar paths: flag bits (sans PSH)
        #: plus 0x100 when any TCP options ride along and 0x200 for CE.
        #: Injective w.r.t. ``sig`` whenever ``options == ()`` — packets
        #: carrying options collapse onto the 0x100 bit, so columnar code
        #: must treat that bit as "opaque, fall back to the tuple".
        self.sig_key = (f & ~0x08) | (0x100 if options else 0) | (0x200 if ce else 0)
        self.forces_flush = (f & 0x2F) != 0  # PSH|URG|SYN|FIN|RST

    def reset(
        self,
        flow: FiveTuple,
        seq: int,
        payload_len: int,
        *,
        flags: TcpFlags = TcpFlags.ACK,
        ack: int = 0,
        options: tuple = (),
        ce: bool = False,
        priority: int = PRIORITY_LOW,
        tso_id: Optional[int] = None,
        sent_at: int = 0,
        is_retransmission: bool = False,
        rwnd: Optional[int] = None,
        sack: tuple = (),
    ) -> "Packet":
        """Reinitialise a recycled packet (see :class:`repro.net.pool.PacketPool`).

        Identical to ``__init__`` except it runs on an existing instance; a
        fresh ``pid`` is assigned so reordering bookkeeping never confuses
        two wire packets that shared an object.
        """
        self.__init__(flow, seq, payload_len, flags=flags, ack=ack,
                      options=options, ce=ce, priority=priority,
                      tso_id=tso_id, sent_at=sent_at,
                      is_retransmission=is_retransmission, rwnd=rwnd,
                      sack=sack)
        return self

    def mark_ce(self) -> None:
        """Set the ECN CE codepoint (done by congested links in flight).

        Must go through this method: the merge signature includes the CE
        mark, so the precomputed ``sig`` has to change with it.
        """
        self.ce = True
        self.sig = (self.options, True, self.sig[2])
        self.sig_key |= 0x200

    @property
    def end_seq(self) -> int:
        """Sequence number of the byte just past this packet's payload."""
        return self.seq + self.payload_len

    @property
    def wire_len(self) -> int:
        """Bytes occupied on the wire, including all framing overhead."""
        return wire_bytes(self.payload_len)

    @property
    def is_pure_ack(self) -> bool:
        """True for a zero-payload ACK (never buffered by GRO)."""
        return self.payload_len == 0 and bool(self.flags & TcpFlags.ACK)

    def merge_signature(self) -> tuple:
        """Header fields that must match for GRO to merge two packets.

        Per Table 2, a packet that "differs from [the] in-sequence segment in
        TCP options, CE marks, etc" cannot be merged without losing
        information TCP needs, and forces a flush.  (Precomputed at
        construction as :attr:`sig`; hot paths compare that directly.)
        """
        return self.sig

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Packet {self.flow} seq={self.seq}+{self.payload_len} "
            f"flags={self.flags!r} prio={self.priority}>"
        )

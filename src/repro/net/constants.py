"""Wire-format constants shared across the stack.

The values mirror a standard Ethernet datacenter deployment, the setting of
the paper's testbed: 1500-byte MTU, TCP/IPv4 headers, 64 KB TSO/GRO segments
("as much as 64KB of data — 45 MTU-sized packets", §2.2 footnote).
"""

#: Ethernet MTU in bytes (IP packet size limit).
MTU = 1500

#: TCP/IPv4 header bytes inside the MTU (20 IP + 20 TCP; options are modelled
#: separately and do not change segmentation arithmetic).
HEADER_LEN = 40

#: Maximum TCP payload per MTU-sized packet.
MSS = MTU - HEADER_LEN  # 1460

#: Per-frame overhead outside the IP packet: 14 Ethernet header + 4 FCS +
#: 8 preamble + 12 inter-frame gap.
ETHERNET_OVERHEAD = 38

#: GRO flushes a merged segment once it reaches this many payload bytes
#: ("whenever its size exceeds a preconfigured maximum (64KB)", §3.1).
MAX_GRO_SEGMENT = 65536

#: Largest TSO burst a sender hands to the NIC (fits in MAX_GRO_SEGMENT when
#: re-merged: 44 full MSS packets = 64240 bytes <= 64 KB).
MAX_TSO_PAYLOAD = (MAX_GRO_SEGMENT // MSS) * MSS

#: Two network priority levels, as used by the bandwidth-guarantee system
#: (§2.1): strict priority in the switch, high preempts low.
PRIORITY_HIGH = 0
PRIORITY_LOW = 1


def wire_bytes(payload_len: int) -> int:
    """Bytes a packet with ``payload_len`` TCP payload occupies on the wire."""
    return payload_len + HEADER_LEN + ETHERNET_OVERHEAD


def transmit_time_ns(payload_len: int, rate_gbps: float) -> int:
    """Serialisation delay of one packet on a ``rate_gbps`` link, in ns."""
    bits = wire_bytes(payload_len) * 8
    return max(1, round(bits / rate_gbps))

"""The canonical five-tuple flow key.

Juggler keys its ``gro_table`` entries "by the canonical five-tuple" (§4.1);
the NIC's RSS hash that spreads flows across receive queues uses the same
tuple.  We model addresses as small integers (host ids / port numbers) —
sufficient for hashing and equality, which is all the stack inspects.

``FiveTuple`` is the single hottest dictionary key in the stack: every
packet probes the ``gro_table`` (and the host demux, and the stats map)
with one.  It is therefore a slotted value class with its hash computed
once at construction — as a ``NamedTuple`` it re-hashed all five fields on
every probe, which profiling showed near the top of the receive path.
"""

from __future__ import annotations


class FiveTuple:
    """(src addr, dst addr, src port, dst port, protocol).

    Immutable by convention: nothing in the stack mutates a flow key after
    construction (mutating one would corrupt every dict it keys).
    """

    __slots__ = ("src", "dst", "sport", "dport", "proto", "_hash", "_rss")

    def __init__(self, src: int, dst: int, sport: int, dport: int,
                 proto: int = 6):
        self.src = src
        self.dst = dst
        self.sport = sport
        self.dport = dport
        self.proto = proto  # 6 = TCP
        self._hash = hash((src, dst, sport, dport, proto))
        # The NIC probes the RSS hash once per packet (steering demux);
        # computed here, beside _hash, for the same reason _hash is.
        h = 0xCBF29CE484222325
        for field in (src, dst, sport, dport, proto):
            h ^= field & 0xFFFFFFFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            h ^= h >> 29
        self._rss = h

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FiveTuple):
            return (self.src == other.src and self.dst == other.dst
                    and self.sport == other.sport
                    and self.dport == other.dport
                    and self.proto == other.proto)
        return NotImplemented

    def reversed(self) -> "FiveTuple":
        """The tuple of the opposite direction (for ACKs)."""
        return FiveTuple(self.dst, self.src, self.dport, self.sport, self.proto)

    def rss_hash(self) -> int:
        """Deterministic flow hash, stand-in for the NIC's Toeplitz hash.

        Real NICs hash the five-tuple so all packets of one flow land on one
        RX queue; any well-mixed deterministic function reproduces that
        behaviour.  We use an FNV-1a style mix over the tuple fields,
        computed once at construction (``_rss``) — the NIC demuxes every
        wire packet through this value.
        """
        return self._rss

    def __str__(self) -> str:
        return f"{self.src}:{self.sport}->{self.dst}:{self.dport}/{self.proto}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"FiveTuple(src={self.src}, dst={self.dst}, "
                f"sport={self.sport}, dport={self.dport}, proto={self.proto})")

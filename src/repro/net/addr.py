"""The canonical five-tuple flow key.

Juggler keys its ``gro_table`` entries "by the canonical five-tuple" (§4.1);
the NIC's RSS hash that spreads flows across receive queues uses the same
tuple.  We model addresses as small integers (host ids / port numbers) —
sufficient for hashing and equality, which is all the stack inspects.
"""

from __future__ import annotations

from typing import NamedTuple


class FiveTuple(NamedTuple):
    """(src addr, dst addr, src port, dst port, protocol)."""

    src: int
    dst: int
    sport: int
    dport: int
    proto: int = 6  # TCP

    def reversed(self) -> "FiveTuple":
        """The tuple of the opposite direction (for ACKs)."""
        return FiveTuple(self.dst, self.src, self.dport, self.sport, self.proto)

    def rss_hash(self) -> int:
        """Deterministic flow hash, stand-in for the NIC's Toeplitz hash.

        Real NICs hash the five-tuple so all packets of one flow land on one
        RX queue; any well-mixed deterministic function reproduces that
        behaviour.  We use an FNV-1a style mix over the tuple fields.
        """
        h = 0xCBF29CE484222325
        for field in self:
            h ^= field & 0xFFFFFFFF
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
            h ^= h >> 29
        return h

    def __str__(self) -> str:
        return f"{self.src}:{self.sport}->{self.dst}:{self.dport}/{self.proto}"

"""Merged receive segments — Figure 3 of the paper.

Standard GRO merges in-sequence packets into one large sk_buff using the
``frags[]`` page array (left of Figure 3).  The alternative the paper
measures and rejects (§3.1) chains out-of-order sk_buffs in a linked list
(right of Figure 3), which costs ~50% more CPU from cache misses.  A
:class:`Segment` records which mode produced it so the CPU model can charge
the difference.
"""

from __future__ import annotations

import enum
from typing import Iterable, List

from repro.net.addr import FiveTuple
from repro.net.packet import Packet


class BatchingMode(enum.Enum):
    """How the packets inside a segment are stitched together."""

    #: Contiguous in-sequence payloads in one sk_buff's frags[] array.
    FRAGS_ARRAY = "frags"
    #: Possibly non-contiguous sk_buffs chained in a linked list.
    LINKED_LIST = "chain"


class Segment:
    """A batch of packets GRO delivers up the stack as one unit.

    ``mtus`` (the number of wire packets merged in) is the quantity Figure 12
    reports as "batching extent"; per-segment stack traversal cost is charged
    once per Segment, which is what makes batching matter for CPU load.
    """

    __slots__ = ("flow", "seq", "end_seq", "mtus", "mode", "packets",
                 "first_sent_at", "flushed_at", "in_order", "sig", "sig_key",
                 "_payload", "_closed")

    def __init__(self, packets: List[Packet], mode: BatchingMode = BatchingMode.FRAGS_ARRAY):
        if not packets:
            raise ValueError("a Segment must contain at least one packet")
        head = packets[0]
        self.flow: FiveTuple = head.flow
        self.packets = packets
        self.mode = mode
        self.seq = head.seq
        self.flushed_at = 0
        #: Head packet's merge signature; every later merge matched it, and
        #: prepends may only add a packet with the same signature, so it is
        #: the whole segment's signature.
        self.sig = head.sig
        #: Integer encoding of :attr:`sig` (see Packet.sig_key).  For
        #: option-free packets the encoding is injective, so columnar merge
        #: probes compare this single int instead of the tuple.
        self.sig_key = head.sig_key
        if len(packets) == 1:
            # The common case — GRO opens every run with a single packet.
            self.end_seq = head.end_seq
            self.mtus = 1
            self.first_sent_at = head.sent_at
            self.in_order = True
            self._payload = head.payload_len
            self._closed = head.forces_flush
        else:
            self.end_seq = packets[-1].end_seq
            self.mtus = len(packets)
            self.first_sent_at = min(p.sent_at for p in packets)
            self.in_order = all(
                packets[i].end_seq == packets[i + 1].seq
                for i in range(len(packets) - 1)
            )
            self._payload = sum(p.payload_len for p in packets)
            self._closed = packets[-1].forces_flush

    @property
    def payload_len(self) -> int:
        """Total TCP payload bytes carried (maintained incrementally)."""
        return self._payload

    @property
    def contiguous(self) -> bool:
        """True when the packets form one gapless byte range."""
        return self.in_order

    @property
    def closed(self) -> bool:
        """True when the tail packet's flags forbid merging anything after it.

        A PSH/URG/FIN packet ends a GRO batch ("protocol semantics
        necessitates urgent delivery", Table 2); the segment may still be
        buffered briefly but never grows.
        """
        return self._closed

    @property
    def forces_flush(self) -> bool:
        """True if any packet inside carries an urgent-delivery flag."""
        return any(p.forces_flush for p in self.packets)

    @property
    def ce_payload_bytes(self) -> int:
        """Payload bytes carried by CE-marked packets inside this segment.

        The TCP receiver charges these into its DCTCP-style ``ce_bytes``
        feedback; column-backed segments (repro.net.batch.SoaSegment)
        override this with an O(1) answer.
        """
        return sum(p.payload_len for p in self.packets if p.ce)

    def can_append(self, packet: Packet, max_payload: int | None = None) -> bool:
        """Frags-array mergeability: next-in-sequence with matching headers."""
        if self._closed:
            return False
        if max_payload is not None and self._payload + packet.payload_len > max_payload:
            return False
        return packet.seq == self.end_seq and packet.sig == self.sig

    def can_prepend(self, packet: Packet, max_payload: int | None = None) -> bool:
        """Mergeability at the head: packet ends exactly where we begin."""
        if packet.forces_flush and packet.end_seq != self.end_seq:
            # A PSH packet may only ever be a segment's tail.
            return False
        if max_payload is not None and self._payload + packet.payload_len > max_payload:
            return False
        return packet.end_seq == self.seq and packet.sig == self.sig

    def can_extend(self, other: "Segment", max_payload: int | None = None) -> bool:
        """Whether ``other`` (the next node) can be folded onto our tail."""
        if self._closed:
            return False
        if max_payload is not None and self._payload + other._payload > max_payload:
            return False
        return other.seq == self.end_seq and other.sig == self.sig

    def append(self, packet: Packet) -> None:
        """Merge ``packet`` onto the tail (caller checked :meth:`can_append`)."""
        self.packets.append(packet)
        self.end_seq = packet.end_seq
        self.mtus += 1
        self._payload += packet.payload_len
        self._closed = packet.forces_flush
        if packet.sent_at < self.first_sent_at:
            self.first_sent_at = packet.sent_at

    def prepend(self, packet: Packet) -> None:
        """Merge ``packet`` onto the head (caller checked :meth:`can_prepend`)."""
        self.packets.insert(0, packet)
        self.seq = packet.seq
        self.mtus += 1
        self._payload += packet.payload_len
        if packet.sent_at < self.first_sent_at:
            self.first_sent_at = packet.sent_at

    def extend(self, other: "Segment") -> None:
        """Fold the next node onto our tail (caller checked :meth:`can_extend`)."""
        self.packets.extend(other.packets)
        self.end_seq = other.end_seq
        self.mtus += other.mtus
        self._payload += other._payload
        self._closed = other._closed
        if other.first_sent_at < self.first_sent_at:
            self.first_sent_at = other.first_sent_at

    @classmethod
    def chain(cls, packets: Iterable[Packet]) -> "Segment":
        """Build a linked-list segment from packets in arrival order."""
        return cls(list(packets), mode=BatchingMode.LINKED_LIST)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Segment {self.flow} [{self.seq},{self.end_seq}) "
            f"mtus={self.mtus} mode={self.mode.value}>"
        )

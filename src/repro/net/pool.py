"""A bounded free list for :class:`~repro.net.packet.Packet`.

The background-load generators emit millions of short-lived packets per
experiment (emit → traverse one queued link → discard).  Allocating a fresh
``Packet`` for each is the simulator's analogue of the kernel allocating an
sk_buff per frame — and the kernel's answer is the same one used here: a
recycling pool (cf. ``skb_attempt_defer_free`` / page-pool recycling).

Only terminal consumers may release a packet: whoever calls
:meth:`PacketPool.release` asserts nothing else holds a reference.  GRO
paths never release — buffered packets live inside Segments with arbitrary
lifetime.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import Packet

#: Default free-list capacity; beyond this, released packets fall to the GC.
POOL_MAX = 4096


class PacketPool:
    """Recycle terminal packets instead of re-allocating.

    ``acquire`` has the exact signature of ``Packet(...)`` and returns a
    fully re-initialised instance (fresh ``pid`` included), so call sites
    swap ``Packet(...)`` for ``pool.acquire(...)`` with no other change.
    """

    __slots__ = ("_free", "max_size", "allocated", "recycled", "released")

    def __init__(self, max_size: int = POOL_MAX):
        self._free: List[Packet] = []
        self.max_size = max_size
        #: Fresh constructions (pool misses).
        self.allocated = 0
        #: Acquisitions served from the free list.
        self.recycled = 0
        #: Releases (free-list appends plus overflow falls to the GC);
        #: ``allocated + recycled - released`` is the in-flight count, which
        #: the pool-balance tests assert returns to zero.
        self.released = 0

    def __len__(self) -> int:
        return len(self._free)

    @property
    def in_flight(self) -> int:
        """Live packets acquired from this pool and not yet released."""
        return self.allocated + self.recycled - self.released

    def acquire(self, flow, seq: int, payload_len: int, **kwargs) -> Packet:
        """A packet initialised exactly as ``Packet(flow, seq, payload_len,
        **kwargs)`` would be."""
        free = self._free
        if free:
            self.recycled += 1
            packet = free.pop().reset(flow, seq, payload_len, **kwargs)
        else:
            self.allocated += 1
            packet = Packet(flow, seq, payload_len, **kwargs)
        packet.origin = self
        return packet

    def release(self, packet: Packet) -> None:
        """Return a dead packet.  Caller guarantees no live references."""
        self.released += 1
        packet.origin = None
        free = self._free
        if len(free) < self.max_size:
            free.append(packet)


#: Shared no-op stand-in: ``Optional[PacketPool]`` call sites use ``None``.
def pooled_or_new(pool: Optional[PacketPool], flow, seq: int,
                  payload_len: int, **kwargs) -> Packet:
    """``pool.acquire(...)`` when pooling is on, plain ``Packet`` otherwise."""
    if pool is not None:
        return pool.acquire(flow, seq, payload_len, **kwargs)
    return Packet(flow, seq, payload_len, **kwargs)


def release_terminal(packet: Packet) -> None:
    """Recycle a packet that just died at a terminal drop site.

    Every place the simulation destroys a packet mid-flight — link
    tail-drops, NIC ring overflows, checksum failures, fault-injector
    losses — routes through here.  Pooled packets go back to their
    ``origin`` pool; unpooled ones (the common case on the TCP data path)
    fall to the garbage collector exactly as before.  Clearing ``origin``
    in ``release`` makes an accidental double drop a no-op instead of a
    free-list corruption.
    """
    pool = packet.origin
    if pool is not None:
        pool.release(packet)

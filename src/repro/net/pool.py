"""A bounded free list for :class:`~repro.net.packet.Packet`.

The background-load generators emit millions of short-lived packets per
experiment (emit → traverse one queued link → discard).  Allocating a fresh
``Packet`` for each is the simulator's analogue of the kernel allocating an
sk_buff per frame — and the kernel's answer is the same one used here: a
recycling pool (cf. ``skb_attempt_defer_free`` / page-pool recycling).

Only terminal consumers may release a packet: whoever calls
:meth:`PacketPool.release` asserts nothing else holds a reference.  GRO
paths never release — buffered packets live inside Segments with arbitrary
lifetime.
"""

from __future__ import annotations

from typing import List, Optional

from repro.net.packet import Packet

#: Default free-list capacity; beyond this, released packets fall to the GC.
POOL_MAX = 4096


class PacketPool:
    """Recycle terminal packets instead of re-allocating.

    ``acquire`` has the exact signature of ``Packet(...)`` and returns a
    fully re-initialised instance (fresh ``pid`` included), so call sites
    swap ``Packet(...)`` for ``pool.acquire(...)`` with no other change.
    """

    __slots__ = ("_free", "max_size", "allocated", "recycled")

    def __init__(self, max_size: int = POOL_MAX):
        self._free: List[Packet] = []
        self.max_size = max_size
        #: Fresh constructions (pool misses).
        self.allocated = 0
        #: Acquisitions served from the free list.
        self.recycled = 0

    def __len__(self) -> int:
        return len(self._free)

    def acquire(self, flow, seq: int, payload_len: int, **kwargs) -> Packet:
        """A packet initialised exactly as ``Packet(flow, seq, payload_len,
        **kwargs)`` would be."""
        free = self._free
        if free:
            self.recycled += 1
            return free.pop().reset(flow, seq, payload_len, **kwargs)
        self.allocated += 1
        return Packet(flow, seq, payload_len, **kwargs)

    def release(self, packet: Packet) -> None:
        """Return a dead packet.  Caller guarantees no live references."""
        free = self._free
        if len(free) < self.max_size:
            free.append(packet)


#: Shared no-op stand-in: ``Optional[PacketPool]`` call sites use ``None``.
def pooled_or_new(pool: Optional[PacketPool], flow, seq: int,
                  payload_len: int, **kwargs) -> Packet:
    """``pool.acquire(...)`` when pooling is on, plain ``Packet`` otherwise."""
    if pool is not None:
        return pool.acquire(flow, seq, payload_len, **kwargs)
    return Packet(flow, seq, payload_len, **kwargs)

"""TCP flag bits — the subset GRO inspects for flush decisions."""

from __future__ import annotations

import enum


class TcpFlags(enum.IntFlag):
    """TCP header flags.

    Juggler flushes immediately when a packet carries "certain flags (e.g.,
    PUSH, URGENT)" (Table 2) because protocol semantics require prompt
    delivery; SYN/FIN/RST likewise terminate batching in standard GRO.
    """

    NONE = 0
    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20
    ECE = 0x40
    CWR = 0x80

    @property
    def forces_flush(self) -> bool:
        """True if a packet with these flags must be delivered immediately."""
        return bool(self & (TcpFlags.PSH | TcpFlags.URG | TcpFlags.SYN
                            | TcpFlags.FIN | TcpFlags.RST))

"""Packet-level model of the wire and of sk_buffs.

This package is the reproduction's stand-in for what the kernel and NIC see:
five-tuples, TCP headers (the subset GRO inspects), MTU-sized packets, TSO
segmentation at the sender, and merged receive segments (the ``frags[]``
array vs linked-list distinction from Figure 3 of the paper).
"""

from repro.net.constants import (
    ETHERNET_OVERHEAD,
    MTU,
    MSS,
    HEADER_LEN,
    MAX_GRO_SEGMENT,
    MAX_TSO_PAYLOAD,
    PRIORITY_HIGH,
    PRIORITY_LOW,
    wire_bytes,
    transmit_time_ns,
)
from repro.net.addr import FiveTuple
from repro.net.batch import PacketBatch, SoaSegment
from repro.net.flags import TcpFlags
from repro.net.packet import Packet
from repro.net.segment import Segment, BatchingMode
from repro.net.tso import segment_tso_burst

__all__ = [
    "ETHERNET_OVERHEAD",
    "MTU",
    "MSS",
    "HEADER_LEN",
    "MAX_GRO_SEGMENT",
    "MAX_TSO_PAYLOAD",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "wire_bytes",
    "transmit_time_ns",
    "FiveTuple",
    "TcpFlags",
    "Packet",
    "PacketBatch",
    "Segment",
    "SoaSegment",
    "BatchingMode",
    "segment_tso_burst",
]

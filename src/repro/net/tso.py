"""TCP Segmentation Offload at the sender.

The TCP stack hands the NIC bursts of up to 64 KB ("45 MTU-sized packets",
§2.2); the NIC cuts them into MSS packets back-to-back on the wire.  This is
the source of the traffic burstiness Juggler exploits (§4.3): a flow is only
*active* for the duration of a TSO burst's flight, then idle until the next
burst.  Per-TSO load balancing (Presto) sprays these bursts as units.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.net.addr import FiveTuple
from repro.net.constants import MSS, MAX_TSO_PAYLOAD, PRIORITY_LOW
from repro.net.flags import TcpFlags
from repro.net.packet import Packet

_tso_ids = itertools.count()


def segment_tso_burst(
    flow: FiveTuple,
    seq: int,
    nbytes: int,
    *,
    sent_at: int = 0,
    priority: int = PRIORITY_LOW,
    options: tuple = (),
    push_last: bool = True,
    is_retransmission: bool = False,
    tso_id: Optional[int] = None,
) -> List[Packet]:
    """Cut ``nbytes`` starting at ``seq`` into MSS-sized wire packets.

    Mirrors NIC TSO: every packet carries the same headers; the final packet
    of the burst gets PSH when ``push_last`` (Linux sets PSH on the last
    segment of a write so the receiver delivers promptly).

    ``nbytes`` may exceed ``MAX_TSO_PAYLOAD``; the caller (TCP sender) is
    expected to have already limited burst size, but we clamp defensively.
    """
    if nbytes <= 0:
        raise ValueError(f"TSO burst must carry payload, got {nbytes}")
    nbytes = min(nbytes, MAX_TSO_PAYLOAD)
    burst_id = next(_tso_ids) if tso_id is None else tso_id

    packets: List[Packet] = []
    offset = 0
    while offset < nbytes:
        chunk = min(MSS, nbytes - offset)
        last = offset + chunk >= nbytes
        flags = TcpFlags.ACK
        if last and push_last:
            flags |= TcpFlags.PSH
        packets.append(
            Packet(
                flow,
                seq + offset,
                chunk,
                flags=flags,
                options=options,
                priority=priority,
                tso_id=burst_id,
                sent_at=sent_at,
                is_retransmission=is_retransmission,
            )
        )
        offset += chunk
    return packets

"""Command-line entry point: run any reproduced experiment by name.

::

    juggler-repro list
    juggler-repro fig12
    juggler-repro fig20 ablations
    juggler-repro all
    juggler-repro all --jobs 4                   # parallel, via campaign
    juggler-repro trace fig12                    # Chrome trace -> Perfetto
    juggler-repro trace fig12 --format jsonl --events flush,phase
    juggler-repro analyze                        # determinism lint, exit!=0 on findings
    juggler-repro bench --check                  # hot-path microbenches vs BENCH_core.json
    juggler-repro faults run --plan chaos.json   # one fault plan, one report
    juggler-repro faults matrix --jobs 4         # resilience matrix sweep
    juggler-repro steer sweep --jobs 4           # self-inflicted reordering
    juggler-repro cc sweep --jobs 4              # congestion control x reordering
    juggler-repro fabric sweep --jobs 4          # host-side vs fabric-side resilience
    juggler-repro campaign run --spec sweep.json --store out.jsonl --jobs 4
    juggler-repro campaign resume --spec sweep.json --store out.jsonl
    juggler-repro campaign report --store out.jsonl --json summary.json

The experiment catalog itself lives in :mod:`repro.campaign.registry`;
this module is only the dispatcher.  ``--jobs 1`` (the default) runs the
historical in-process serial loop; ``--jobs N`` or ``--seed`` routes the
same selection through the campaign scheduler.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict

from repro.campaign.registry import cli_experiments

#: name -> (runner, description).  A plain mutable dict so tests can
#: monkeypatch stub runners in.
EXPERIMENTS: Dict[str, tuple] = cli_experiments()


def run_trace(argv) -> int:
    """``juggler-repro trace``: run one experiment with tracing enabled.

    Installs a process-wide tracer (see :mod:`repro.trace.runtime`) so every
    engine, NIC queue and TCP endpoint the experiment builds picks it up,
    then dumps the artifact: a Chrome ``trace_event`` file (open it in
    Perfetto or ``chrome://tracing``) or a JSONL event log, plus a metrics
    snapshot.
    """
    from repro.trace import (
        ChromeTraceSink,
        EventKind,
        JsonlSink,
        Tracer,
        runtime,
    )

    parser = argparse.ArgumentParser(
        prog="juggler-repro trace",
        description="Run one experiment with structured tracing enabled "
                    "and dump the trace artifact.",
    )
    parser.add_argument("experiment", metavar="EXPERIMENT",
                        help="experiment name (see 'juggler-repro list')")
    parser.add_argument("--out", default=None,
                        help="output path (default: trace_<experiment>.<ext>)")
    parser.add_argument("--format", choices=("chrome", "jsonl"),
                        default="chrome",
                        help="chrome trace_event JSON (default) or JSONL")
    parser.add_argument(
        "--events", default="all",
        help="comma-separated event kinds to record "
             f"({', '.join(k.value for k in EventKind)}), or 'all'")
    args = parser.parse_args(argv)

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment: {args.experiment}", file=sys.stderr)
        return 2

    if args.events == "all":
        kinds = None
    else:
        try:
            kinds = {EventKind(k.strip()) for k in args.events.split(",")}
        except ValueError as exc:
            print(f"unknown event kind: {exc}", file=sys.stderr)
            return 2

    out = args.out
    if out is None:
        ext = "json" if args.format == "chrome" else "jsonl"
        out = f"trace_{args.experiment}.{ext}"
    sink = ChromeTraceSink(out) if args.format == "chrome" else JsonlSink(out)
    tracer = Tracer([sink], kinds=kinds)

    runner, description = EXPERIMENTS[args.experiment]
    print(f"\n=== {args.experiment}: {description} (tracing) ===")
    started = time.time()
    with runtime.tracing(tracer):
        output = runner()
    tracer.close()
    print(output)
    print(f"({time.time() - started:.1f}s)")

    print(f"\ntrace written to {out} ({tracer.events_emitted} events)")
    for kind, count in sorted(tracer.by_kind.items(),
                              key=lambda kv: kv[0].value):
        print(f"  {kind.value:15s} {count}")
    print("\nmetrics snapshot:")
    print(tracer.metrics.render())
    return 0


def _run_parallel(names, jobs: int, seed, store_path) -> int:
    """Route an experiment selection through the campaign scheduler."""
    import tempfile

    from repro.campaign import (
        ResultStore,
        SchedulerConfig,
        build_default_spec,
        expand,
        render_report,
        run_campaign,
    )

    spec = build_default_spec(names, seed=seed, name="cli")
    if store_path is None:
        fd, store_path = tempfile.mkstemp(prefix="juggler_campaign_",
                                          suffix=".jsonl")
        import os

        os.close(fd)
    store = ResultStore(store_path)
    tasks = expand(spec)
    print(f"running {len(tasks)} task(s) with {jobs} worker(s); "
          f"results -> {store_path}")
    stats = run_campaign(tasks, store, SchedulerConfig(jobs=jobs),
                         progress=print)
    print(stats.summary_line(spec.name))
    print()
    print(render_report(store.load(), spec))
    return 0 if stats.failed == 0 else 1


def main(argv=None) -> int:
    """Entry point for the ``juggler-repro`` console script."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace":
        return run_trace(argv[1:])
    if argv and argv[0] == "campaign":
        from repro.campaign.cli import main as campaign_main

        return campaign_main(argv[1:])
    if argv and argv[0] == "analyze":
        from repro.analysis.cli import main as analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.perf.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "faults":
        from repro.faults.cli import main as faults_main

        return faults_main(argv[1:])
    if argv and argv[0] == "steer":
        from repro.steer.cli import main as steer_main

        return steer_main(argv[1:])
    if argv and argv[0] == "cc":
        from repro.cc.cli import main as cc_main

        return cc_main(argv[1:])
    if argv and argv[0] == "fabric":
        from repro.fabric.cli import main as fabric_main

        return fabric_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="juggler-repro",
        description="Run reproduced experiments from the Juggler paper "
                    "(EuroSys 2016).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes; >1 runs the selection through the "
             "campaign scheduler (default 1: serial, in-process)")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="campaign root seed for per-task seed derivation "
             "(implies the campaign path even with --jobs 1)")
    parser.add_argument(
        "--store", default=None, metavar="PATH",
        help="with --jobs/--seed: keep the result JSONL here "
             "(default: a temp file)")
    args = parser.parse_args(argv)

    if not args.experiments or args.experiments == ["list"]:
        print("available experiments:")
        for name, (_, description) in EXPERIMENTS.items():
            print(f"  {name:12s} {description}")
        print("  all          run everything")
        print("run 'juggler-repro trace EXPERIMENT' to record a trace "
              "artifact (see docs/observability.md)")
        print("run 'juggler-repro campaign --help' for parallel, resumable "
              "sweeps (see docs/campaign.md)")
        print("run 'juggler-repro faults run|matrix' for fault injection "
              "and the resilience matrix (see docs/faults.md)")
        print("run 'juggler-repro steer sweep' for the steering / "
              "self-inflicted reordering family (see docs/steering.md)")
        print("run 'juggler-repro cc sweep' for the congestion-control / "
              "reordering family (see docs/transport.md)")
        print("run 'juggler-repro fabric sweep' for the host-vs-fabric "
              "resilience comparison (see docs/fabric.md)")
        return 0

    names = (list(EXPERIMENTS) if args.experiments == ["all"]
             else args.experiments)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    if args.jobs > 1 or args.seed is not None:
        return _run_parallel(names, max(1, args.jobs), args.seed,
                             args.store)

    for name in names:
        runner, description = EXPERIMENTS[name]
        print(f"\n=== {name}: {description} ===")
        started = time.time()
        print(runner())
        print(f"({time.time() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

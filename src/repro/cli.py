"""Command-line entry point: run any reproduced experiment by name.

::

    juggler-repro list
    juggler-repro fig12
    juggler-repro fig20 ablations
    juggler-repro all
    juggler-repro trace fig12                    # Chrome trace -> Perfetto
    juggler-repro trace fig12 --format jsonl --events flush,phase
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict


def _fig01() -> str:
    from repro.experiments import fig01_bandwidth_guarantee as m

    return m.render(m.run())


def _fig09() -> str:
    from repro.experiments import cpu_overhead as m

    return m.render(m.run_figure(1))


def _fig10() -> str:
    from repro.experiments import cpu_overhead as m

    return m.render(m.run_figure(256))


def _fig12() -> str:
    from repro.experiments import fig12_inseq_timeout as m

    return m.render(m.run())


def _fig13() -> str:
    from repro.experiments import fig13_ofo_timeout_throughput as m

    return m.render(m.run())


def _fig14() -> str:
    from repro.experiments import fig14_ofo_timeout_latency as m

    return m.render(m.run())


def _fig15() -> str:
    from repro.experiments import fig15_active_flows as m

    return m.render(m.run())


def _fig16() -> str:
    from repro.experiments import fig16_active_list_histogram as m

    return m.render(m.run())


def _fig18() -> str:
    from repro.experiments import fig18_bandwidth_sweep as m

    return m.render(m.run())


def _fig20() -> str:
    from repro.experiments import fig20_load_balancing as m

    return m.render(m.run())


def _sec31() -> str:
    from repro.experiments import sec31_chained_gro_cost as m

    return m.render(m.run())


def _sec512() -> str:
    from repro.experiments import sec512_latency_overhead as m

    return m.render(m.run())


def _ablations() -> str:
    from repro.experiments import ablations as m

    parts = [
        "Build-up phase:",
        m.render(m.run_buildup_ablation()),
        "\nEviction policy:",
        m.render(m.run_eviction_ablation()),
        "\ngro_table size:",
        m.render(m.run_table_size_ablation()),
    ]
    return "\n".join(parts)


def _scheduling() -> str:
    from repro.experiments import flow_scheduling as m

    return m.render(m.run())


EXPERIMENTS: Dict[str, tuple] = {
    "fig01": (_fig01, "bandwidth-guarantee time series (Figure 1)"),
    "fig09": (_fig09, "CPU overhead, single flow (Figure 9)"),
    "fig10": (_fig10, "CPU overhead, 256 flows (Figure 10)"),
    "fig12": (_fig12, "batching vs inseq_timeout (Figure 12)"),
    "fig13": (_fig13, "throughput vs ofo_timeout (Figure 13)"),
    "fig14": (_fig14, "RPC tail vs ofo_timeout under loss (Figure 14)"),
    "fig15": (_fig15, "active flows vs concurrency (Figure 15)"),
    "fig16": (_fig16, "active-list statistics on Clos (Figure 16)"),
    "fig18": (_fig18, "guarantee sweep (Figure 18)"),
    "fig20": (_fig20, "load-balancing granularity (Figure 20)"),
    "sec31": (_sec31, "linked-list batching cost (Section 3.1)"),
    "sec512": (_sec512, "latency overhead (Section 5.1.2)"),
    "ablations": (_ablations, "design-choice ablations (DESIGN.md §5)"),
    "scheduling": (_scheduling, "extension: PIAS/pFabric flow scheduling"),
}


def run_trace(argv) -> int:
    """``juggler-repro trace``: run one experiment with tracing enabled.

    Installs a process-wide tracer (see :mod:`repro.trace.runtime`) so every
    engine, NIC queue and TCP endpoint the experiment builds picks it up,
    then dumps the artifact: a Chrome ``trace_event`` file (open it in
    Perfetto or ``chrome://tracing``) or a JSONL event log, plus a metrics
    snapshot.
    """
    from repro.trace import (
        ChromeTraceSink,
        EventKind,
        JsonlSink,
        Tracer,
        runtime,
    )

    parser = argparse.ArgumentParser(
        prog="juggler-repro trace",
        description="Run one experiment with structured tracing enabled "
                    "and dump the trace artifact.",
    )
    parser.add_argument("experiment", metavar="EXPERIMENT",
                        help="experiment name (see 'juggler-repro list')")
    parser.add_argument("--out", default=None,
                        help="output path (default: trace_<experiment>.<ext>)")
    parser.add_argument("--format", choices=("chrome", "jsonl"),
                        default="chrome",
                        help="chrome trace_event JSON (default) or JSONL")
    parser.add_argument(
        "--events", default="all",
        help="comma-separated event kinds to record "
             f"({', '.join(k.value for k in EventKind)}), or 'all'")
    args = parser.parse_args(argv)

    if args.experiment not in EXPERIMENTS:
        print(f"unknown experiment: {args.experiment}", file=sys.stderr)
        return 2

    if args.events == "all":
        kinds = None
    else:
        try:
            kinds = {EventKind(k.strip()) for k in args.events.split(",")}
        except ValueError as exc:
            print(f"unknown event kind: {exc}", file=sys.stderr)
            return 2

    out = args.out
    if out is None:
        ext = "json" if args.format == "chrome" else "jsonl"
        out = f"trace_{args.experiment}.{ext}"
    sink = ChromeTraceSink(out) if args.format == "chrome" else JsonlSink(out)
    tracer = Tracer([sink], kinds=kinds)

    runner, description = EXPERIMENTS[args.experiment]
    print(f"\n=== {args.experiment}: {description} (tracing) ===")
    started = time.time()
    with runtime.tracing(tracer):
        output = runner()
    tracer.close()
    print(output)
    print(f"({time.time() - started:.1f}s)")

    print(f"\ntrace written to {out} ({tracer.events_emitted} events)")
    for kind, count in sorted(tracer.by_kind.items(),
                              key=lambda kv: kv[0].value):
        print(f"  {kind.value:15s} {count}")
    print("\nmetrics snapshot:")
    print(tracer.metrics.render())
    return 0


def main(argv=None) -> int:
    """Entry point for the ``juggler-repro`` console script."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace":
        return run_trace(argv[1:])
    parser = argparse.ArgumentParser(
        prog="juggler-repro",
        description="Run reproduced experiments from the Juggler paper "
                    "(EuroSys 2016).",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names (see 'list'), or 'all'",
    )
    args = parser.parse_args(argv)

    if not args.experiments or args.experiments == ["list"]:
        print("available experiments:")
        for name, (_, description) in EXPERIMENTS.items():
            print(f"  {name:12s} {description}")
        print("  all          run everything")
        print("run 'juggler-repro trace EXPERIMENT' to record a trace "
              "artifact (see docs/observability.md)")
        return 0

    names = (list(EXPERIMENTS) if args.experiments == ["all"]
             else args.experiments)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    for name in names:
        runner, description = EXPERIMENTS[name]
        print(f"\n=== {name}: {description} ===")
        started = time.time()
        print(runner())
        print(f"({time.time() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Hooks that let the GRO engines report work to the CPU model.

The GRO implementations (standard, Juggler, chained) are pure algorithms;
they emit *events* ("scanned 3 nodes", "flushed a 44-MTU segment") through a
:class:`GroCpuAccountant`, which prices them with a :class:`CostTable` and
charges the RX core meter.  Experiments that don't study CPU pass the
:class:`NullAccountant` and pay nothing.
"""

from __future__ import annotations


from repro.cpu.costs import CostTable, DEFAULT_COSTS
from repro.cpu.meter import CoreMeter
from repro.net.segment import BatchingMode, Segment


class GroCpuAccountant:
    """Prices GRO-layer work onto an RX-core meter."""

    def __init__(self, meter: CoreMeter, costs: CostTable = DEFAULT_COSTS):
        self.meter = meter
        self.costs = costs

    def on_rx_packet(self) -> None:
        """Driver + NAPI handling of one wire packet."""
        self.meter.charge(self.costs.rx_per_packet)

    def on_gro_packet(self) -> None:
        """GRO flow lookup + header inspection of one packet."""
        self.meter.charge(self.costs.gro_per_packet)

    def on_merge(self, mode: BatchingMode) -> None:
        """Merging one packet into an existing segment."""
        if mode is BatchingMode.FRAGS_ARRAY:
            self.meter.charge(self.costs.gro_merge_frag)
        else:
            self.meter.charge(self.costs.gro_merge_chain)

    def on_node_scan(self, nodes: int) -> None:
        """Walking ``nodes`` OOO-queue entries to find an insert position."""
        if nodes:
            self.meter.charge(self.costs.gro_node_scan * nodes)

    def on_flush_segment(self, segment: Segment) -> None:
        """Pushing one merged segment up out of GRO."""
        self.meter.charge(self.costs.rx_per_segment)

    def on_poll(self) -> None:
        """Fixed overhead of one NAPI poll invocation."""
        self.meter.charge(self.costs.rx_per_poll)


class NullAccountant(GroCpuAccountant):
    """Free-of-charge accountant for experiments that ignore CPU."""

    def __init__(self) -> None:
        super().__init__(CoreMeter("null"))

    def on_rx_packet(self) -> None:  # noqa: D102 - intentionally empty
        pass

    def on_gro_packet(self) -> None:  # noqa: D102
        pass

    def on_merge(self, mode: BatchingMode) -> None:  # noqa: D102
        pass

    def on_node_scan(self, nodes: int) -> None:  # noqa: D102
        pass

    def on_flush_segment(self, segment: Segment) -> None:  # noqa: D102
        pass

    def on_poll(self) -> None:  # noqa: D102
        pass

"""A CPU core as a saturating work-conserving server.

When the application core cannot keep up with per-segment work (the vanilla
kernel under reordering), the socket buffer fills, the advertised window
closes, and the sender throttles — that is how the paper's Figure 9 vanilla
receiver "falls short of reaching 20Gb/s".  :class:`CpuCore` provides that
coupling: work is submitted with a completion callback; completions are
serialised at real-time speed on the simulated clock, so a backlog develops
whenever offered load exceeds one core.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cpu.meter import CoreMeter
from repro.sim.engine import Engine


class CpuCore:
    """Single-server FIFO queue of work items on the simulation clock."""

    def __init__(self, engine: Engine, name: str = "core"):
        self._engine = engine
        self.meter = CoreMeter(name)
        self.name = name
        self._busy_until = 0
        self._jobs_completed = 0

    @property
    def backlog_ns(self) -> int:
        """Queued-but-unfinished work, in ns, as of now."""
        return max(0, self._busy_until - self._engine.now)

    @property
    def jobs_completed(self) -> int:
        """Number of submitted work items that have finished."""
        return self._jobs_completed

    def submit(
        self,
        work_ns: float,
        callback: Optional[Callable[..., Any]] = None,
        *args: Any,
    ) -> int:
        """Enqueue ``work_ns`` of processing; fire ``callback`` on completion.

        Returns the absolute completion time.  Work is also charged to the
        core's meter so utilisation reflects everything submitted.
        """
        if work_ns < 0:
            raise ValueError(f"negative work: {work_ns}")
        self.meter.charge(work_ns)
        start = max(self._engine.now, self._busy_until)
        done = start + max(1, round(work_ns))
        self._busy_until = done
        if callback is not None:
            self._engine.schedule_at(done, self._complete, callback, args)
        else:
            self._jobs_completed += 1
        return done

    def charge(self, work_ns: float) -> None:
        """Account work without modelling its queueing delay.

        Used for bookkeeping-only costs (e.g. RX-core accounting in
        experiments that study the application core), where the utilisation
        number matters but the latency coupling does not.
        """
        self.meter.charge(work_ns)
        self._busy_until = max(self._busy_until, self._engine.now) + max(
            1, round(work_ns)
        )

    def _complete(self, callback: Callable[..., Any], args: tuple) -> None:
        self._jobs_completed += 1
        callback(*args)

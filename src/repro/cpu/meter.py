"""Busy-time accumulation and utilisation windows."""

from __future__ import annotations


class CoreMeter:
    """Accumulates nanoseconds of busy time for one core.

    Utilisation is measured over explicit windows so experiments can discard
    warm-up: call :meth:`mark` at the window start and
    :meth:`utilization_since` at the end.
    """

    def __init__(self, name: str = "core"):
        self.name = name
        # det: allow(float-ns) -- accumulator of fractional modeled work, not an event timestamp; never feeds back into scheduling
        self._busy_ns = 0.0
        self._mark_busy = 0.0
        self._mark_time = 0

    @property
    def busy_ns(self) -> float:
        """Total busy nanoseconds since construction."""
        return self._busy_ns

    def charge(self, ns: float) -> None:
        """Add ``ns`` nanoseconds of work."""
        if ns < 0:
            raise ValueError(f"cannot charge negative work: {ns}")
        self._busy_ns += ns

    def mark(self, now: int) -> None:
        """Start a measurement window at simulation time ``now``."""
        self._mark_busy = self._busy_ns
        self._mark_time = now

    def utilization_since(self, now: int) -> float:
        """Fraction of one core used since the last :meth:`mark`.

        Can exceed 1.0 when the offered work outstrips a single core — the
        saturation signal Figure 9 reports as a pegged application core.
        """
        elapsed = now - self._mark_time
        if elapsed <= 0:
            return 0.0
        return (self._busy_ns - self._mark_busy) / elapsed

"""CPU cost model.

The paper's headline CPU results (Figures 9, 10, 12; the §3.1 linked-list
measurement) are driven by *how many units of work* the stack performs —
packets polled, GRO nodes scanned, segments pushed up the stack, bytes
copied, ACKs generated.  The simulation reproduces those counts exactly;
this package converts them to nanoseconds of core time via a calibrated cost
table, and models each core as a saturating server so that an overloaded
application core throttles TCP through flow control, exactly the failure
mode Figure 9's "vanilla + reordering" bars show.
"""

from repro.cpu.costs import CostTable, DEFAULT_COSTS
from repro.cpu.meter import CoreMeter
from repro.cpu.core import CpuCore
from repro.cpu.accounting import GroCpuAccountant, NullAccountant

__all__ = [
    "CostTable",
    "DEFAULT_COSTS",
    "CoreMeter",
    "CpuCore",
    "GroCpuAccountant",
    "NullAccountant",
]

"""Calibrated per-operation CPU costs.

Costs are nanoseconds of core time per operation.  The constants are
calibrated so the *vanilla kernel, in-order traffic, 20 Gb/s into one RX
queue* operating point of Figure 9 lands near the paper's reported bars
(RX core ≈ 45%, application core ≈ 60%); every other number in the
reproduction is emergent from these same constants.

Where the calibration anchors come from:

* 20 Gb/s of MSS packets ≈ 1.66 Mpps; with full 64 KB GRO batching that is
  ≈ 38 k segments/s (44 MTUs per segment).
* RX core work is dominated by per-packet driver+GRO handling; app core work
  by per-byte copy to userspace plus per-segment TCP/socket traversal.
* Under reordering, GRO batching collapses to ~3 MTUs/segment — the paper's
  "15 times more segments" — multiplying per-segment work by ~15× and
  saturating the application core.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CostTable:
    """Nanoseconds of CPU time per operation."""

    #: Driver + NAPI work per wire packet (DMA map, descriptor, skb alloc).
    rx_per_packet: float = 220.0
    #: GRO flow lookup + header inspection per packet.
    gro_per_packet: float = 60.0
    #: Appending one packet to a frags[] segment (no cache miss: payload
    #: pages are not touched, only the frag descriptor).
    gro_merge_frag: float = 25.0
    #: Chaining one sk_buff onto a linked-list segment.  Dominated by the
    #: cache miss on the chained skb's header (Figure 3 right / §3.1).
    gro_merge_chain: float = 180.0
    #: Scanning one OOO-queue node while searching the insert position.
    gro_node_scan: float = 30.0
    #: Pushing one merged segment out of GRO into the netfilter/IP path
    #: (charged on the RX core).
    rx_per_segment: float = 450.0
    #: Fixed cost of one NAPI poll invocation (irq, budget bookkeeping).
    rx_per_poll: float = 1500.0
    #: TCP/socket-layer traversal per delivered segment (charged on the
    #: application core: tcp_rcv, socket wakeup, syscall amortisation).
    app_per_segment: float = 2300.0
    #: Copy cost per payload byte (skb → user buffer).
    app_per_byte: float = 0.19
    #: Building and sending one ACK.
    app_per_ack: float = 900.0
    #: Extra per-segment cost when the segment arrived as a linked-list
    #: chain: the app-side copy walks the chain, one miss per element.
    app_per_chain_element: float = 140.0
    #: TCP receiver out-of-order handling per OOO segment (queue insert,
    #: SACK bookkeeping, immediate dupACK).
    app_per_ooo_segment: float = 1200.0


#: The cost table all experiments use unless they explicitly override it.
DEFAULT_COSTS = CostTable()

"""Exact per-flow reordering ground truth, computed from trace events.

The data-plane detector (:mod:`repro.fabric.detector`) measures TCP
reordering under a *bounded* memory budget — compact flow slots that
collide and evict, a count-min sketch that over-counts.  Asserting its
precision and recall needs an oracle with none of those limits: this sink
consumes the ``packet_rx`` events the receive path already emits and keeps
*complete* per-flow state, so every displacement and every reordered byte
is counted exactly.

The observation points line up by construction: a detector attached to the
egress ToR sees a flow's packets in the same order the destination host's
GRO path sees them (the host-facing downlink is a FIFO), and the GRO path
emits one ``packet_rx`` event per data packet.  Feed the tracer through a
:class:`GroundTruthSink` and the sink's per-flow truth is directly
comparable with the detector's sketch-bounded answer — which is how the
detector suite asserts ≥0.9 precision/recall instead of eyeballing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.harness.reorder_metrics import ReorderObserver, ReorderStats
from repro.trace.events import EventKind, TraceEvent
from repro.trace.sinks import Sink


@dataclass
class FlowTruth:
    """Exact reordering totals for one flow."""

    packets: int = 0
    #: Packets that arrived after a later-sequenced byte had already
    #: arrived (RFC 4737 Type-P-Reordered).
    reordered_packets: int = 0
    #: Payload bytes carried by those late packets — the quantity the
    #: detector's heavy-reorderer sketch estimates.
    reordered_bytes: int = 0
    #: Highest end_seq seen so far (the late/early watermark).
    max_end_seq: int = -1


class GroundTruthSink(Sink):
    """Per-flow reordering oracle over ``packet_rx`` events.

    Ignores every other event kind and (by default) zero-payload packets —
    pure ACKs are not data reordering, and the detector skips them too.
    Memory is unbounded by design: this is the truth the bounded detector
    is graded against, not something a switch could run.
    """

    def __init__(self, *, min_payload: int = 1):
        self.min_payload = min_payload
        self._truth: Dict[object, FlowTruth] = {}
        self._observers: Dict[object, ReorderObserver] = {}

    # -- sink interface -------------------------------------------------------

    def emit(self, event: TraceEvent) -> None:
        if event.kind is not EventKind.PACKET_RX:
            return
        payload = event.payload_len
        if payload < self.min_payload:
            return
        self.observe(event.flow, event.seq, event.end_seq, event.ts,
                     payload)

    # -- direct observation (for harnesses that bypass the tracer) ------------

    def observe(self, flow, seq: int, end_seq: int, now: int,
                payload_len: int) -> None:
        """Record one data-packet arrival."""
        truth = self._truth.get(flow)
        if truth is None:
            truth = self._truth[flow] = FlowTruth()
            self._observers[flow] = ReorderObserver()
        truth.packets += 1
        if seq < truth.max_end_seq:
            truth.reordered_packets += 1
            truth.reordered_bytes += payload_len
        if end_seq > truth.max_end_seq:
            truth.max_end_seq = end_seq
        self._observers[flow].observe(seq, now)

    # -- queries --------------------------------------------------------------

    @property
    def flows(self) -> int:
        """Distinct flows observed."""
        return len(self._truth)

    def per_flow(self) -> Dict[object, FlowTruth]:
        """The exact totals, keyed by flow."""
        return dict(self._truth)

    def flow_stats(self, flow) -> ReorderStats:
        """Full RFC 4737-style metrics (displacement, reorder delay) for
        one flow's complete arrival record."""
        observer = self._observers.get(flow)
        if observer is None:
            return ReorderStats(0, 0, 0, 0.0, 0, 0.0)
        return observer.stats()

    def heavy_reorderers(self, min_bytes: int) -> Set[object]:
        """Flows whose exact reordered-byte count reaches ``min_bytes`` —
        the set the detector's sketch answer is graded against."""
        return {flow for flow, t in self._truth.items()
                if t.reordered_bytes >= min_bytes}

    def totals(self) -> Tuple[int, int, int]:
        """(packets, reordered_packets, reordered_bytes) across all flows."""
        packets = reordered = rbytes = 0
        for t in self._truth.values():
            packets += t.packets
            reordered += t.reordered_packets
            rbytes += t.reordered_bytes
        return packets, reordered, rbytes

    def rows(self) -> List[Tuple[str, int, int, int]]:
        """Sorted (flow, packets, reordered, bytes) rows for reports."""
        return sorted(
            (str(flow), t.packets, t.reordered_packets, t.reordered_bytes)
            for flow, t in self._truth.items()
        )


def grade(predicted: Set[object], actual: Set[object]) -> Tuple[float, float]:
    """(precision, recall) of a predicted heavy-reorderer set.

    Degenerate cases follow the usual convention: with nothing predicted,
    precision is 1.0 (no false positives); with nothing actual, recall is
    1.0 (nothing to miss).
    """
    true_pos = len(predicted & actual)
    precision = true_pos / len(predicted) if predicted else 1.0
    recall = true_pos / len(actual) if actual else 1.0
    return precision, recall

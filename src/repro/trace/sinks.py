"""Event sinks: where emitted trace events go.

===================  ========================================================
Sink                 Use
===================  ========================================================
RingBufferSink       Bounded in-memory buffer — tests and interactive poking.
CallbackSink         Invoke a function per event — live narration.
JsonlSink            One JSON object per line — grep/jq-friendly archives.
ChromeTraceSink      Chrome ``trace_event`` JSON — open in Perfetto or
                     ``chrome://tracing``; one track (tid) per flow.
===================  ========================================================

Serialising sinks stream: events are written as they arrive, so arbitrarily
long runs never accumulate in memory.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Dict, List, Optional, TextIO, Union

from repro.trace.events import TraceEvent


class Sink:
    """Interface: receive events, release resources on close."""

    def emit(self, event: TraceEvent) -> None:
        """Accept one event."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


class CallbackSink(Sink):
    """Calls ``fn(event)`` for every event."""

    def __init__(self, fn: Callable[[TraceEvent], None]):
        self._fn = fn

    def emit(self, event: TraceEvent) -> None:
        self._fn(event)


class RingBufferSink(Sink):
    """Keeps the newest ``capacity`` events."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque = deque(maxlen=capacity)
        #: Total events ever offered (including those the ring dropped).
        self.offered = 0

    def emit(self, event: TraceEvent) -> None:
        self.offered += 1
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    @property
    def events(self) -> List[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def drain(self) -> List[TraceEvent]:
        """Return and clear the buffered events."""
        drained = list(self._events)
        self._events.clear()
        return drained


def _open(path_or_file: Union[str, TextIO]):
    """(file, owned) — open a path, or adopt a caller-owned file object."""
    if isinstance(path_or_file, str):
        return open(path_or_file, "w", encoding="utf-8"), True
    return path_or_file, False


class JsonlSink(Sink):
    """One ``event.to_dict()`` JSON object per line."""

    def __init__(self, path_or_file: Union[str, TextIO]):
        self._file, self._owned = _open(path_or_file)
        self.written = 0

    def emit(self, event: TraceEvent) -> None:
        self._file.write(json.dumps(event.to_dict()) + "\n")
        self.written += 1

    def close(self) -> None:
        if self._file is None:
            return
        self._file.flush()
        if self._owned:
            self._file.close()
        self._file = None


def read_jsonl(path: str) -> List[dict]:
    """Load a JSONL trace back into a list of event dicts."""
    with open(path, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


class ChromeTraceSink(Sink):
    """Streams Chrome ``trace_event`` JSON (the "JSON array format").

    Layout: one process (pid 1, named ``juggler-repro``); one thread track
    per flow, named after its five-tuple; tid 0 is the ``stack`` track for
    flow-less events (timer fires).  Every event is an instant (``ph: "i"``)
    with thread scope and a microsecond ``ts``, which is what Perfetto and
    ``chrome://tracing`` expect.
    """

    PID = 1

    def __init__(self, path_or_file: Union[str, TextIO]):
        self._file, self._owned = _open(path_or_file)
        self._tids: Dict[str, int] = {}
        self._first = True
        self.written = 0
        self._file.write('{"displayTimeUnit": "ns", "traceEvents": [')
        self._write_record({
            "name": "process_name", "ph": "M", "ts": 0,
            "pid": self.PID, "tid": 0,
            "args": {"name": "juggler-repro"},
        })
        self._write_record({
            "name": "thread_name", "ph": "M", "ts": 0,
            "pid": self.PID, "tid": 0, "args": {"name": "stack"},
        })

    def _write_record(self, record: dict) -> None:
        prefix = "\n" if self._first else ",\n"
        self._first = False
        self._file.write(prefix + json.dumps(record))
        self.written += 1

    def _tid_for(self, flow: Optional[str]) -> int:
        if flow is None:
            return 0
        tid = self._tids.get(flow)
        if tid is None:
            tid = self._tids[flow] = len(self._tids) + 1
            self._write_record({
                "name": "thread_name", "ph": "M", "ts": 0,
                "pid": self.PID, "tid": tid, "args": {"name": flow},
            })
        return tid

    def emit(self, event: TraceEvent) -> None:
        data = event.to_dict()
        name = data.pop("event")
        ts_ns = data.pop("ts")
        flow = data.pop("flow", None)
        self._write_record({
            "name": name,
            "cat": "juggler",
            "ph": "i",
            "s": "t",
            "ts": ts_ns / 1000.0,  # trace_event ts is in microseconds
            "pid": self.PID,
            "tid": self._tid_for(flow),
            "args": data,
        })

    def close(self) -> None:
        if self._file is None:
            return
        self._file.write("\n]}\n")
        self._file.flush()
        if self._owned:
            self._file.close()
        self._file = None

"""The metrics registry: counters, gauges, histograms and timeseries.

Components *register into* one :class:`MetricsRegistry` instead of growing
bespoke counter bags: :class:`~repro.core.stats.GroStats` binds its counters
as gauges, :class:`~repro.sim.engine.Engine` exposes its event-loop totals,
and :class:`~repro.harness.metrics.Sampler` can feed a :class:`Timeseries`.
A snapshot of the whole registry is one dict, ready for a report table or a
JSON artifact.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1)."""
        self.value += n


class Gauge:
    """A named probe read at snapshot time."""

    __slots__ = ("name", "probe")

    def __init__(self, name: str, probe: Callable[[], float]):
        self.name = name
        self.probe = probe

    def read(self) -> float:
        """Evaluate the probe now."""
        return self.probe()


class HistogramMetric:
    """Fixed-width histogram of observations (counts per bucket)."""

    __slots__ = ("name", "bin_width", "counts", "total")

    def __init__(self, name: str, bin_width: int = 1):
        if bin_width < 1:
            raise ValueError(f"bin_width must be >= 1, got {bin_width}")
        self.name = name
        self.bin_width = bin_width
        self.counts: Dict[int, int] = {}
        self.total = 0

    def add(self, value: float) -> None:
        """Record one observation."""
        bucket = int(value) // self.bin_width
        self.counts[bucket] = self.counts.get(bucket, 0) + 1
        self.total += 1

    def buckets(self) -> List[Tuple[int, int]]:
        """Sorted (bucket_start, count) pairs."""
        return sorted((b * self.bin_width, n) for b, n in self.counts.items())


class Timeseries:
    """(timestamp, value) samples, optionally bounded to the newest ``maxlen``."""

    __slots__ = ("name", "maxlen", "samples")

    def __init__(self, name: str, maxlen: Optional[int] = None):
        self.name = name
        self.maxlen = maxlen
        self.samples: List[Tuple[int, float]] = []

    def add(self, ts: int, value: float) -> None:
        """Append one sample, evicting the oldest when bounded."""
        self.samples.append((ts, value))
        if self.maxlen is not None and len(self.samples) > self.maxlen:
            del self.samples[0]

    def values(self) -> List[float]:
        """Just the sampled values."""
        return [v for _, v in self.samples]


class MetricsRegistry:
    """Named metrics, one namespace per tracer (or standalone)."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, HistogramMetric] = {}
        self._timeseries: Dict[str, Timeseries] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, probe: Callable[[], float]) -> Gauge:
        """Register (or re-point) the gauge ``name`` at ``probe``.

        Re-registration replaces the probe: experiment sweeps rebuild their
        components per cell, and the gauge should follow the live instance.
        """
        gauge = Gauge(name, probe)
        self._gauges[name] = gauge
        return gauge

    def histogram(self, name: str, bin_width: int = 1) -> HistogramMetric:
        """Get or create the histogram ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = HistogramMetric(name, bin_width)
        return hist

    def timeseries(self, name: str, maxlen: Optional[int] = None) -> Timeseries:
        """Get or create the timeseries ``name``."""
        series = self._timeseries.get(name)
        if series is None:
            series = self._timeseries[name] = Timeseries(name, maxlen)
        return series

    def snapshot(self) -> dict:
        """Every metric's current value as one plain dict."""
        out: dict = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.read()
        for name, hist in self._histograms.items():
            out[name] = {"total": hist.total, "buckets": hist.buckets()}
        for name, series in self._timeseries.items():
            out[name] = {"samples": len(series.samples)}
        return out

    def render(self) -> str:
        """Aligned ``name value`` lines, sorted by name."""
        snap = self.snapshot()
        if not snap:
            return "(no metrics registered)"
        width = max(len(name) for name in snap)
        lines = []
        for name in sorted(snap):
            value = snap[name]
            if isinstance(value, float):
                value = round(value, 4)
            lines.append(f"{name.ljust(width)}  {value}")
        return "\n".join(lines)

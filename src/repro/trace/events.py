"""Typed trace events — the observable vocabulary of the stack.

Each event class is a frozen, slotted dataclass: cheap to construct when
tracing is on, and never constructed at all when it is off (hot paths guard
with ``if tracer is not None`` before building one).  Events carry whatever
domain objects the emitter has in hand (``FiveTuple`` keys, ``FlushReason``
and ``Phase`` enums); :meth:`TraceEvent.to_dict` flattens them to plain JSON
types for the serialising sinks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Any, ClassVar, Optional

from repro.net.addr import FiveTuple


class EventKind(enum.Enum):
    """The event catalog (see docs/observability.md)."""

    #: A wire packet entered a GRO engine's receive path.
    PACKET_RX = "packet_rx"
    #: A packet merged into an existing OOO-queue run.
    MERGE = "merge"
    #: A segment left the GRO layer, tagged with its Table 2 reason.
    FLUSH = "flush"
    #: A flow entry moved between lifecycle phases (Figure 5).
    PHASE = "phase"
    #: A flow was evicted from the gro_table (§4.3).
    EVICTION = "eviction"
    #: A timer fired: interrupt coalescing or the per-table hrtimer.
    TIMER = "timer"
    #: The TCP receiver's in-order watermark (rcv_nxt) advanced.
    TCP_DELIVERY = "tcp_delivery"
    #: A fault-plan window opened (see repro.faults).
    FAULT_INJECTED = "fault_injected"
    #: A fault-plan window closed; the perturbation was reverted.
    FAULT_CLEARED = "fault_cleared"
    #: A steering rule moved a flow between RX queues (see repro.steer).
    STEER_MIGRATION = "steer_migration"
    #: The steering policy rebalanced its affinity assignment.
    STEER_REBALANCE = "steer_rebalance"
    #: A congestion-control policy changed state (see repro.cc).
    CC_STATE = "cc_state"
    #: The sender entered loss recovery (fast retransmit or RTO).
    CC_RECOVERY = "cc_recovery"
    #: An object changed ownership domain at a rendezvous point (OSAN).
    OWNERSHIP_TRANSFER = "ownership_transfer"
    #: A switch pinned a new flowcut/flowlet to an uplink (repro.fabric).
    FLOWCUT_PIN = "flowcut_pin"
    #: A drained flowcut/flowlet re-pinned to a different uplink.
    FLOWCUT_MOVE = "flowcut_move"


def _plain(value: Any) -> Any:
    """Flatten a field value to a JSON-serialisable type."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (FiveTuple, tuple)):  # flow keys, option tuples
        return str(value)
    return value


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base event: a kind, a timestamp, and (usually) a flow."""

    kind: ClassVar[EventKind]

    #: Nanosecond timestamp (simulation time, epoch-offset by the tracer).
    ts: int

    def to_dict(self) -> dict:
        """A plain dict for JSON sinks; enums/tuples become strings."""
        d: dict = {"event": self.kind.value}
        for f in fields(self):
            d[f.name] = _plain(getattr(self, f.name))
        return d


@dataclass(frozen=True, slots=True)
class PacketRx(TraceEvent):
    """One packet entered ``receive`` (data and pure-ACK alike)."""

    kind: ClassVar[EventKind] = EventKind.PACKET_RX

    flow: Any
    seq: int
    end_seq: int
    payload_len: int


@dataclass(frozen=True, slots=True)
class Merge(TraceEvent):
    """One packet merged into an existing OOO-queue run."""

    kind: ClassVar[EventKind] = EventKind.MERGE

    flow: Any
    seq: int
    end_seq: int
    #: Queue nodes examined to find the insert position.
    scanned: int


@dataclass(frozen=True, slots=True)
class Flush(TraceEvent):
    """One segment delivered up the stack."""

    kind: ClassVar[EventKind] = EventKind.FLUSH

    flow: Any
    seq: int
    end_seq: int
    mtus: int
    #: A :class:`~repro.core.flush.FlushReason` (stored as given).
    reason: Any


@dataclass(frozen=True, slots=True)
class PhaseTransition(TraceEvent):
    """A flow entry moved between Figure 5 phases."""

    kind: ClassVar[EventKind] = EventKind.PHASE

    flow: Any
    old_phase: Any
    new_phase: Any


@dataclass(frozen=True, slots=True)
class Eviction(TraceEvent):
    """A flow was evicted; ``phase`` is the list the victim came from."""

    kind: ClassVar[EventKind] = EventKind.EVICTION

    flow: Any
    phase: Any


@dataclass(frozen=True, slots=True)
class TimerFire(TraceEvent):
    """A NIC-level timer ran: ``source`` names it (e.g. ``rxq.hrtimer``)."""

    kind: ClassVar[EventKind] = EventKind.TIMER

    source: str
    flow: Optional[Any] = None


@dataclass(frozen=True, slots=True)
class TcpDelivery(TraceEvent):
    """The TCP receiver absorbed in-order bytes; ``rcv_nxt`` advanced."""

    kind: ClassVar[EventKind] = EventKind.TCP_DELIVERY

    flow: Any
    rcv_nxt: int
    nbytes: int


@dataclass(frozen=True, slots=True)
class FaultInjected(TraceEvent):
    """A fault window opened: ``name`` identifies the plan entry."""

    kind: ClassVar[EventKind] = EventKind.FAULT_INJECTED

    name: str
    fault: str


@dataclass(frozen=True, slots=True)
class FaultCleared(TraceEvent):
    """A fault window closed and its perturbation was reverted."""

    kind: ClassVar[EventKind] = EventKind.FAULT_CLEARED

    name: str
    fault: str


@dataclass(frozen=True, slots=True)
class SteerMigration(TraceEvent):
    """A steering rule moved ``flow`` from ``old_queue`` to ``new_queue``.

    In-flight packets of the flow may now land on both queues — the
    self-inflicted reordering window (see repro.steer.flow_director).
    """

    kind: ClassVar[EventKind] = EventKind.STEER_MIGRATION

    flow: Any
    old_queue: int
    new_queue: int


@dataclass(frozen=True, slots=True)
class SteerRebalance(TraceEvent):
    """The steering policy re-assigned ``groups_moved`` affinity groups."""

    kind: ClassVar[EventKind] = EventKind.STEER_REBALANCE

    groups_moved: int
    flushed: bool


@dataclass(frozen=True, slots=True)
class OwnershipTransfer(TraceEvent):
    """An object legally changed shard ownership (see docs/shardcheck.md).

    ``point`` names the rendezvous (``nic.drain``, ``steer.migration``);
    domains are names, or None for the ambient (unowned) state.
    """

    kind: ClassVar[EventKind] = EventKind.OWNERSHIP_TRANSFER

    obj_kind: str
    old_domain: Optional[str]
    new_domain: Optional[str]
    point: str


@dataclass(frozen=True, slots=True)
class FlowcutPin(TraceEvent):
    """A switch created fresh path state for ``flow`` on uplink ``port``.

    ``policy`` names the granularity that pinned it (``flowcut`` or
    ``flowlet``) so the two arms of the fabric comparison share one event
    vocabulary (see docs/fabric.md).
    """

    kind: ClassVar[EventKind] = EventKind.FLOWCUT_PIN

    flow: Any
    policy: str
    port: int


@dataclass(frozen=True, slots=True)
class FlowcutMove(TraceEvent):
    """A drained flowcut/flowlet of ``flow`` changed uplink.

    For flowcut switching this happens only once no packet of the previous
    flowcut is still in the divergent path segment, so the move cannot
    reorder; for flowlet switching the gap heuristic makes it merely
    *unlikely* to reorder — the difference the fabric sweep measures.
    """

    kind: ClassVar[EventKind] = EventKind.FLOWCUT_MOVE

    flow: Any
    policy: str
    old_port: int
    new_port: int


@dataclass(frozen=True, slots=True)
class CcStateChange(TraceEvent):
    """A congestion-control policy's state machine transitioned.

    Emitted by policies with real state machines (BBR's startup → drain →
    probe_bw → probe_rtt); window-based policies transition between
    slow_start and cong_avoid implicitly and stay silent.
    """

    kind: ClassVar[EventKind] = EventKind.CC_STATE

    flow: Any
    algo: str
    old_state: str
    new_state: str
    cwnd: int
    pacing_gbps: Optional[float]


@dataclass(frozen=True, slots=True)
class CcRecovery(TraceEvent):
    """The sender entered recovery; ``trigger`` is fast_retransmit or rto.

    ``cwnd``/``ssthresh`` are the *post-reaction* values — what the policy
    answered to the loss signal (for BBR, deliberately unmoved)."""

    kind: ClassVar[EventKind] = EventKind.CC_RECOVERY

    flow: Any
    algo: str
    trigger: str
    cwnd: int
    ssthresh: int

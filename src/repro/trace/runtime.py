"""Process-wide tracer installation.

Experiments construct their components internally (engines, NICs, TCP
endpoints), so tracing cannot be threaded through every constructor call.
Instead, a tracer is *installed* here; components read :func:`current` once
at construction time and keep the reference (or ``None``).  The ``repro
trace`` CLI subcommand and tests use the :func:`tracing` context manager to
scope an installation to one run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.trace.tracer import Tracer

_current: Optional[Tracer] = None


def current() -> Optional[Tracer]:
    """The installed tracer, or None when tracing is disabled."""
    return _current


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide tracer for components built next."""
    global _current  # det: allow(shard-module-state) -- construction-time wiring only: shards copy the reference at build time and never write here
    _current = tracer
    return tracer


def uninstall() -> None:
    """Disable tracing for components built from now on."""
    global _current  # det: allow(shard-module-state) -- construction-time wiring only: shards copy the reference at build time and never write here
    _current = None


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the block."""
    install(tracer)
    try:
        yield tracer
    finally:
        uninstall()

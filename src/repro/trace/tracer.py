"""The :class:`Tracer`: typed event emission fanned out to sinks.

The cost contract
-----------------
Components hold ``self.tracer`` which is ``None`` when tracing is disabled.
Every hot-path call site guards with ``if tracer is not None`` *before*
calling an emit helper, so the disabled path costs one attribute load and
one identity test per packet — and allocates nothing.  When a tracer is
present, the typed helpers additionally filter by :class:`EventKind` before
constructing the event object, so even an enabled-but-filtered kind stays
allocation-free.

Timeline epochs
---------------
Experiment sweeps build a fresh :class:`~repro.sim.engine.Engine` per cell,
each restarting simulated time at zero.  One tracer can span the whole
sweep: :meth:`bind_engine` opens a new *epoch*, offsetting subsequent
timestamps past everything already emitted, so per-track timestamps stay
monotonically non-decreasing across cells (a Chrome trace requirement).
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from typing import Dict, Iterable, Optional, Set

from repro.trace.events import (
    CcRecovery,
    CcStateChange,
    EventKind,
    Eviction,
    FaultCleared,
    FaultInjected,
    FlowcutMove,
    FlowcutPin,
    Flush,
    Merge,
    OwnershipTransfer,
    PacketRx,
    PhaseTransition,
    SteerMigration,
    SteerRebalance,
    TcpDelivery,
    TimerFire,
    TraceEvent,
)
from repro.trace.metrics import MetricsRegistry
from repro.trace.sinks import Sink


class Tracer:
    """Fan typed events out to sinks; owns a :class:`MetricsRegistry`."""

    def __init__(
        self,
        sinks: Iterable[Sink] = (),
        *,
        metrics: Optional[MetricsRegistry] = None,
        kinds: Optional[Iterable[EventKind]] = None,
    ):
        self.sinks = list(sinks)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: None traces every kind; otherwise only the listed kinds.
        self.kinds: Optional[Set[EventKind]] = (
            None if kinds is None else set(kinds)
        )
        self.events_emitted = 0
        self.by_kind: TallyCounter = TallyCounter()
        self._ts_offset = 0
        self._max_ts = 0
        self._component_counts: Dict[str, int] = {}

    # -- wiring ---------------------------------------------------------------

    def add_sink(self, sink: Sink) -> None:
        """Attach another sink."""
        self.sinks.append(sink)

    def wants(self, kind: EventKind) -> bool:
        """True when events of ``kind`` should be constructed at all."""
        return self.kinds is None or kind in self.kinds

    def component_index(self, prefix: str) -> int:
        """Sequence number for naming per-component metrics (gro0, gro1...)."""
        n = self._component_counts.get(prefix, 0)
        self._component_counts[prefix] = n + 1
        return n

    def bind_engine(self, engine) -> None:
        """A new simulation engine started under this tracer.

        Opens a new timeline epoch and points the event-loop gauges at the
        live engine.
        """
        self._ts_offset = self._max_ts
        self.metrics.gauge("sim.events_processed",
                           lambda: engine.events_processed)
        self.metrics.gauge("sim.pending_events", lambda: engine.pending)
        self.metrics.gauge("sim.pending_live", lambda: engine.pending_live)
        self.metrics.gauge("sim.timer_tombstones", lambda: engine.tombstones)
        self.metrics.gauge("sim.timer_compactions",
                           lambda: engine.compactions)

    def close(self) -> None:
        """Close every sink."""
        for sink in self.sinks:
            sink.close()

    # -- emission -------------------------------------------------------------

    def _stamp(self, now: int) -> int:
        ts = now + self._ts_offset
        if ts > self._max_ts:
            self._max_ts = ts
        return ts

    def emit(self, event: TraceEvent) -> None:
        """Dispatch an already-constructed event to every sink."""
        self.events_emitted += 1
        self.by_kind[event.kind] += 1
        for sink in self.sinks:
            sink.emit(event)

    def packet_rx(self, now: int, flow, seq: int, end_seq: int,
                  payload_len: int) -> None:
        """One packet entered a GRO receive path."""
        if self.wants(EventKind.PACKET_RX):
            self.emit(PacketRx(self._stamp(now), flow, seq, end_seq,
                               payload_len))

    def merge(self, now: int, flow, seq: int, end_seq: int,
              scanned: int) -> None:
        """One packet merged into an existing OOO-queue run."""
        if self.wants(EventKind.MERGE):
            self.emit(Merge(self._stamp(now), flow, seq, end_seq, scanned))

    def flush(self, now: int, flow, seq: int, end_seq: int, mtus: int,
              reason) -> None:
        """One segment delivered up the stack."""
        if self.wants(EventKind.FLUSH):
            self.emit(Flush(self._stamp(now), flow, seq, end_seq, mtus,
                            reason))

    def phase(self, now: int, flow, old_phase, new_phase) -> None:
        """A flow entry changed lifecycle phase."""
        if self.wants(EventKind.PHASE):
            self.emit(PhaseTransition(self._stamp(now), flow, old_phase,
                                      new_phase))

    def eviction(self, now: int, flow, phase) -> None:
        """A flow was evicted from the gro_table."""
        if self.wants(EventKind.EVICTION):
            self.emit(Eviction(self._stamp(now), flow, phase))

    def timer(self, now: int, source: str) -> None:
        """A NIC-level timer (irq / hrtimer) fired."""
        if self.wants(EventKind.TIMER):
            self.emit(TimerFire(self._stamp(now), source))

    def tcp_delivery(self, now: int, flow, rcv_nxt: int, nbytes: int) -> None:
        """The TCP receiver's in-order watermark advanced."""
        if self.wants(EventKind.TCP_DELIVERY):
            self.emit(TcpDelivery(self._stamp(now), flow, rcv_nxt, nbytes))

    def fault_injected(self, now: int, name: str, fault: str) -> None:
        """A fault-plan window opened (see repro.faults)."""
        if self.wants(EventKind.FAULT_INJECTED):
            self.emit(FaultInjected(self._stamp(now), name, fault))

    def fault_cleared(self, now: int, name: str, fault: str) -> None:
        """A fault-plan window closed; its perturbation was reverted."""
        if self.wants(EventKind.FAULT_CLEARED):
            self.emit(FaultCleared(self._stamp(now), name, fault))

    def steer_migration(self, now: int, flow, old_queue: int,
                        new_queue: int) -> None:
        """A steering rule moved a flow between RX queues."""
        if self.wants(EventKind.STEER_MIGRATION):
            self.emit(SteerMigration(self._stamp(now), flow, old_queue,
                                     new_queue))

    def steer_rebalance(self, now: int, groups_moved: int,
                        flushed: bool) -> None:
        """The steering policy rebalanced its affinity assignment."""
        if self.wants(EventKind.STEER_REBALANCE):
            self.emit(SteerRebalance(self._stamp(now), groups_moved, flushed))

    def ownership_transfer(self, now: int, obj_kind: str,
                           old_domain: Optional[str],
                           new_domain: Optional[str], point: str) -> None:
        """An object changed shard ownership at a rendezvous point."""
        if self.wants(EventKind.OWNERSHIP_TRANSFER):
            self.emit(OwnershipTransfer(self._stamp(now), obj_kind,
                                        old_domain, new_domain, point))

    def flowcut_pin(self, now: int, flow, policy: str, port: int) -> None:
        """A switch pinned a new flowcut/flowlet to an uplink."""
        if self.wants(EventKind.FLOWCUT_PIN):
            self.emit(FlowcutPin(self._stamp(now), flow, policy, port))

    def flowcut_move(self, now: int, flow, policy: str, old_port: int,
                     new_port: int) -> None:
        """A drained flowcut/flowlet re-pinned to a different uplink."""
        if self.wants(EventKind.FLOWCUT_MOVE):
            self.emit(FlowcutMove(self._stamp(now), flow, policy, old_port,
                                  new_port))

    def cc_state(self, now: int, flow, algo: str, old_state: str,
                 new_state: str, cwnd: int,
                 pacing_gbps: Optional[float]) -> None:
        """A congestion-control policy's state machine transitioned."""
        if self.wants(EventKind.CC_STATE):
            self.emit(CcStateChange(self._stamp(now), flow, algo, old_state,
                                    new_state, cwnd, pacing_gbps))

    def cc_recovery(self, now: int, flow, algo: str, trigger: str,
                    cwnd: int, ssthresh: int) -> None:
        """The sender entered loss recovery (fast retransmit or RTO)."""
        if self.wants(EventKind.CC_RECOVERY):
            self.emit(CcRecovery(self._stamp(now), flow, algo, trigger,
                                 cwnd, ssthresh))

"""Structured tracing & telemetry for the whole stack.

The pieces (see docs/observability.md for the full catalog):

* :class:`Tracer` — typed, zero-cost-when-disabled event emission (packet
  RX, merge, flush + reason, phase transition, eviction, timer fire, TCP
  delivery), fanned out to pluggable sinks.
* :class:`MetricsRegistry` — counters / gauges / histograms / timeseries
  that components register into.
* Sinks — :class:`RingBufferSink` (tests), :class:`JsonlSink` (archives),
  :class:`ChromeTraceSink` (open any run in Perfetto / chrome://tracing
  with one track per flow), :class:`CallbackSink` (live narration).
* :mod:`repro.trace.runtime` — process-wide installation, which is how the
  ``juggler-repro trace`` subcommand turns tracing on for any experiment
  without rewiring it.

This package depends on nothing else in ``repro`` — the core stays a pure
algorithm, and tracing stays importable from every layer.  (The one
exception is the leaf submodule :mod:`repro.trace.groundtruth`, the exact
reordering oracle used to grade the fabric detector; it reuses the
harness's RFC 4737 metrics and is therefore imported explicitly, never
from this ``__init__``.)
"""

from repro.trace.events import (
    CcRecovery,
    CcStateChange,
    EventKind,
    Eviction,
    FlowcutMove,
    FlowcutPin,
    Flush,
    Merge,
    OwnershipTransfer,
    PacketRx,
    PhaseTransition,
    SteerMigration,
    SteerRebalance,
    TcpDelivery,
    TimerFire,
    TraceEvent,
)
from repro.trace.metrics import (
    Counter,
    Gauge,
    HistogramMetric,
    MetricsRegistry,
    Timeseries,
)
from repro.trace.sinks import (
    CallbackSink,
    ChromeTraceSink,
    JsonlSink,
    RingBufferSink,
    Sink,
    read_jsonl,
)
from repro.trace.tracer import Tracer
from repro.trace import runtime

__all__ = [
    "EventKind",
    "TraceEvent",
    "PacketRx",
    "Merge",
    "Flush",
    "PhaseTransition",
    "Eviction",
    "TimerFire",
    "TcpDelivery",
    "SteerMigration",
    "SteerRebalance",
    "CcStateChange",
    "CcRecovery",
    "OwnershipTransfer",
    "FlowcutPin",
    "FlowcutMove",
    "Counter",
    "Gauge",
    "HistogramMetric",
    "MetricsRegistry",
    "Timeseries",
    "Sink",
    "CallbackSink",
    "RingBufferSink",
    "JsonlSink",
    "ChromeTraceSink",
    "read_jsonl",
    "Tracer",
    "runtime",
]

"""AST determinism linter for the reproduction tree.

Byte-level determinism is the contract everything else leans on: campaign
fingerprints identify task results, derived seeds make sweeps comparable,
and "Juggler vs vanilla on the same workload" is only the *same* workload
because no module reaches outside the simulation for entropy.  This pass
bans the ways that contract silently breaks:

* **wall-clock** — ``time.time()`` & friends, ``datetime.now()``;
* **global-random** — the module-level ``random`` stream (and the
  cryptographic ``SystemRandom``), including unused ``import random``;
* **raw-rng** — ad-hoc ``random.Random(seed)`` construction instead of a
  named stream from :class:`repro.sim.rng.RngRegistry`;
* **mutable-default** — ``def f(x=[])``;
* **set-iteration** — iterating an unordered set into results;
* **float-ns** — float arithmetic landing in integer-nanosecond
  timestamp variables;
* **id-ordering** — ``id()``-based keys or ordering: CPython object
  addresses differ run to run, so any ``dict`` keyed (or list sorted)
  by ``id(obj)`` iterates in an unreproducible order;
* **unordered-pop** — ``dict.popitem()`` and argument-less ``set.pop()``
  remove an *arbitrary* element.

Which rules apply where is decided by :mod:`repro.analysis.policy`; any
single finding can be waived with a justified ``det: allow`` comment
pragma on the same or the preceding line (syntax in docs/analysis.md).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.analysis.policy import (
    ALL_RULES,
    BAD_PRAGMA,
    FLOAT_NS,
    GLOBAL_RANDOM,
    ID_ORDERING,
    MUTABLE_DEFAULT,
    Policy,
    RAW_RNG,
    SET_ITERATION,
    SHARD_RULES,
    UNORDERED_POP,
    WALL_CLOCK,
    module_exemptions,
    parse_pragmas,
    policy_for,
)

#: Functions on the ``time`` module that read host clocks.
_WALL_CLOCK_TIME_FNS = frozenset({
    "time", "monotonic", "perf_counter", "process_time",
    "time_ns", "monotonic_ns", "perf_counter_ns", "process_time_ns",
    "localtime", "gmtime",
})

#: Wall-clock constructors on ``datetime`` / ``datetime.datetime``.
_WALL_CLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

#: ``random`` module attributes that are *not* the global stream.
_RANDOM_ALLOWED_ATTRS = frozenset({"Random"})

#: Builtins whose argument is consumed in iteration order.
_ORDER_SENSITIVE_CONSUMERS = frozenset({
    "list", "tuple", "enumerate", "iter", "reversed",
})

#: Variable names treated as integer-nanosecond timestamps.
_NS_NAME_SUFFIXES = ("_ns", "_since", "_deadline")
_NS_NAME_EXACT = frozenset({"now", "deadline", "timestamp", "flush_timestamp"})


def _is_ns_name(name: str) -> bool:
    return name in _NS_NAME_EXACT or name.endswith(_NS_NAME_SUFFIXES)


@dataclass(frozen=True)
class Finding:
    """One policy violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: " \
               f"[{self.rule}] {self.message}"


class _Visitor(ast.NodeVisitor):
    """Single-pass collector for all rules of one module."""

    def __init__(self, path: str, policy: Policy, waived: frozenset):
        self.path = path
        self.policy = policy
        self.waived = waived
        self.findings: List[Finding] = []
        #: line numbers of ``import random`` statements, resolved at the
        #: end of the pass against whether the module name was ever used.
        self.random_import_lines: List[int] = []
        self.random_name_uses = 0
        #: names ever bound to a set display / set() / frozenset(), and
        #: argument-less ``.pop()`` sites on plain names — resolved at the
        #: end of the pass so assignment order does not matter.
        self.set_like_names: set = set()
        self.bare_pop_sites: List[ast.Call] = []

    # -- helpers -------------------------------------------------------------

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.waived or not self.policy.enabled(rule):
            return
        self.findings.append(Finding(
            self.path, node.lineno, node.col_offset, rule, message))

    @staticmethod
    def _dotted(node: ast.AST) -> Optional[str]:
        """Render an attribute chain like ``datetime.datetime.now``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    # -- wall-clock / random imports ----------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.random_import_lines.append(node.lineno)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            banned = [a.name for a in node.names
                      if a.name in _WALL_CLOCK_TIME_FNS]
            if banned:
                self._flag(node, WALL_CLOCK,
                           f"from time import {', '.join(banned)} reads "
                           "host clocks; use simulation time")
        elif node.module == "random":
            banned = [a.name for a in node.names
                      if a.name not in _RANDOM_ALLOWED_ATTRS]
            if banned:
                self._flag(node, GLOBAL_RANDOM,
                           f"from random import {', '.join(banned)} taps "
                           "the global stream; use repro.sim.rng")
        elif node.module == "datetime":
            # importing the type is fine; calling .now() is caught below
            pass
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "random":
            self.random_name_uses += 1
        self.generic_visit(node)

    # -- calls: clocks, random stream, raw rng, iteration consumers ----------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._dotted(node.func)
        if dotted is not None:
            head, _, tail = dotted.rpartition(".")
            if head in ("time",) and tail in _WALL_CLOCK_TIME_FNS:
                self._flag(node, WALL_CLOCK,
                           f"{dotted}() reads a host clock; thread the "
                           "simulation 'now' through instead")
            elif (tail in _WALL_CLOCK_DATETIME_FNS
                    and head.split(".")[0] in ("datetime", "date")):
                self._flag(node, WALL_CLOCK,
                           f"{dotted}() reads the host calendar clock")
            elif dotted == "random.Random":
                self._flag(node, RAW_RNG,
                           "random.Random(...) built in place; derive a "
                           "named stream from RngRegistry so draw counts "
                           "stay isolated per component")
            elif dotted == "random.SystemRandom":
                self._flag(node, GLOBAL_RANDOM,
                           "random.SystemRandom is OS entropy — never "
                           "reproducible")
            elif (head == "random"
                    and tail not in _RANDOM_ALLOWED_ATTRS):
                self._flag(node, GLOBAL_RANDOM,
                           f"{dotted}() draws from the hidden global "
                           "stream; use repro.sim.rng")
        if (isinstance(node.func, ast.Name) and node.func.id == "id"
                and node.args):
            self._flag(node, ID_ORDERING,
                       "id() yields a per-run object address; key or order "
                       "by a stable field or index instead")
        if isinstance(node.func, ast.Attribute):
            if node.func.attr == "popitem" and not node.args:
                self._flag(node, UNORDERED_POP,
                           ".popitem() removes an arbitrary entry; pop a "
                           "deterministic key (or next(iter(...)) after "
                           "sorting)")
            elif node.func.attr == "pop" and not node.args:
                if self._is_unordered_set(node.func.value):
                    self._flag(node, UNORDERED_POP,
                               "set.pop() removes an arbitrary element; "
                               "sort first or pop a known value")
                elif isinstance(node.func.value, ast.Name):
                    self.bare_pop_sites.append(node)
        if (isinstance(node.func, ast.Name)
                and node.func.id in _ORDER_SENSITIVE_CONSUMERS
                and node.args and self._is_unordered_set(node.args[0])):
            self._flag(node.args[0], SET_ITERATION,
                       f"{node.func.id}() materialises a set in hash "
                       "order; wrap the set in sorted()")
        if (isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args and self._is_unordered_set(node.args[0])):
            self._flag(node.args[0], SET_ITERATION,
                       "str.join over a set concatenates in hash order; "
                       "wrap the set in sorted()")
        self.generic_visit(node)

    # -- set iteration --------------------------------------------------------

    @staticmethod
    def _is_unordered_set(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered_set(node.iter):
            self._flag(node.iter, SET_ITERATION,
                       "for-loop over an unordered set; wrap in sorted()")
        self.generic_visit(node)

    def _check_comprehension(self, node) -> None:
        for gen in node.generators:
            if self._is_unordered_set(gen.iter):
                self._flag(gen.iter, SET_ITERATION,
                           "comprehension over an unordered set; wrap in "
                           "sorted()")
        self.generic_visit(node)

    visit_ListComp = _check_comprehension
    visit_DictComp = _check_comprehension
    visit_GeneratorExp = _check_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set is fine; only consuming one in order matters.
        self.generic_visit(node)

    # -- mutable defaults -----------------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set,
                                    ast.ListComp, ast.DictComp, ast.SetComp)):
                self._flag(default, MUTABLE_DEFAULT,
                           f"mutable default argument in {node.name}(); "
                           "use None and construct inside")
            elif (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set")):
                self._flag(default, MUTABLE_DEFAULT,
                           f"mutable default argument in {node.name}(); "
                           "use None and construct inside")
        self.generic_visit(node)

    visit_FunctionDef = _check_defaults
    visit_AsyncFunctionDef = _check_defaults

    # -- float arithmetic on ns timestamps ------------------------------------

    @staticmethod
    def _target_ns_name(target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Name) and _is_ns_name(target.id):
            return target.id
        if isinstance(target, ast.Attribute) and _is_ns_name(target.attr):
            return target.attr
        return None

    @staticmethod
    def _has_float_arith(node: ast.AST) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
                return True
            if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
                # int(...) around the division makes the result integral
                # again, but the rounding mode is then explicit — require
                # it to be spelled //, int() or round() at the top level.
                return True
        return False

    @staticmethod
    def _is_integralised(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("int", "round"))

    def visit_Assign(self, node: ast.Assign) -> None:
        names = [n for n in (self._target_ns_name(t) for t in node.targets)
                 if n]
        if names and not self._is_integralised(node.value) \
                and self._has_float_arith(node.value):
            self._flag(node, FLOAT_NS,
                       f"float arithmetic assigned to ns timestamp "
                       f"'{names[0]}'; use //, int() or round()")
        if self._is_unordered_set(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.set_like_names.add(target.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        name = self._target_ns_name(node.target)
        if name and (isinstance(node.op, ast.Div)
                     or self._has_float_arith(node.value)):
            self._flag(node, FLOAT_NS,
                       f"float arithmetic folded into ns timestamp "
                       f"'{name}'; use //, int() or round()")
        self.generic_visit(node)

    # -- finalisation ---------------------------------------------------------

    def finish(self) -> None:
        """Resolve checks that need the whole module seen first."""
        # `import random` counts one Name use per import statement itself?
        # No: ast.Import carries no Name node, so uses are genuine ones.
        if self.random_import_lines and self.random_name_uses == 0:
            for lineno in self.random_import_lines:
                node = ast.Module(body=[], type_ignores=[])
                node.lineno, node.col_offset = lineno, 0  # type: ignore[attr-defined]
                self._flag(node, GLOBAL_RANDOM,
                           "import random is unused; drop it (streams come "
                           "from repro.sim.rng)")
        for call in self.bare_pop_sites:
            receiver = call.func.value  # type: ignore[attr-defined]
            if (isinstance(receiver, ast.Name)
                    and receiver.id in self.set_like_names):
                self._flag(call, UNORDERED_POP,
                           f"{receiver.id}.pop() on a set removes an "
                           "arbitrary element; sort first or pop a known "
                           "value")


#: Valid rule names a pragma may reference — determinism *and* shard
#: rules, so a ``det: allow(shard-*)`` pragma in a file both passes scan
#: is not misreported as unknown by the determinism pass.
RULE_NAMES = ALL_RULES | SHARD_RULES


def apply_pragmas(raw_findings: List[Finding], source: str, path: str,
                  *, report_unknown: bool = True) -> List[Finding]:
    """Resolve ``det: allow`` pragmas against a raw finding list.

    A pragma on the finding's line (or the line above) naming the same
    rule waives it — but only with a justification after ``--``; a bare
    pragma becomes a ``bad-pragma`` finding itself.  With
    ``report_unknown`` (the determinism pass only, so two passes over the
    same file don't double-report), pragmas naming rules outside
    :data:`RULE_NAMES` are also flagged.  Returns findings sorted by
    location.
    """
    pragmas = parse_pragmas(source)
    findings: List[Finding] = []
    for finding in raw_findings:
        pragma = pragmas.get(finding.line) or pragmas.get(finding.line - 1)
        if pragma is not None and pragma.rule == finding.rule:
            if pragma.justification:
                continue  # waived, with a reason on record
            findings.append(Finding(
                path, pragma.line, 0, BAD_PRAGMA,
                f"pragma waives [{pragma.rule}] but gives no justification "
                "after '--'"))
            continue
        findings.append(finding)
    if report_unknown:
        for pragma in pragmas.values():
            if pragma.rule not in RULE_NAMES:
                findings.append(Finding(
                    path, pragma.line, 0, BAD_PRAGMA,
                    f"pragma names unknown rule '{pragma.rule}'"))
    findings.sort(key=lambda f: (f.line, f.col, f.rule))
    return findings


def lint_source(source: str, path: str,
                policy: Optional[Policy] = None) -> List[Finding]:
    """Lint one module's source text; returns findings after pragmas."""
    if policy is None:
        policy = policy_for(path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, (exc.offset or 1) - 1,
                        "syntax-error", f"cannot parse: {exc.msg}")]
    visitor = _Visitor(path, policy, module_exemptions(path))
    visitor.visit(tree)
    visitor.finish()
    return apply_pragmas(visitor.findings, source, path)


def lint_file(path: str, policy: Optional[Policy] = None) -> List[Finding]:
    """Lint one file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return lint_source(handle.read(), path, policy)


def iter_python_files(root: str) -> Iterable[str]:
    """Yield ``.py`` files under ``root`` in sorted, deterministic order."""
    if os.path.isfile(root):
        yield root
        return
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames
                             if d != "__pycache__"
                             and not d.endswith(".egg-info"))
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


def lint_tree(root: str) -> List[Finding]:
    """Lint every Python file under ``root`` with per-package policies."""
    findings: List[Finding] = []
    for path in iter_python_files(root):
        findings.extend(lint_file(path))
    return findings

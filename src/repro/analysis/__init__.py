"""Static and runtime enforcement of the reproduction's contracts.

Two halves (docs/analysis.md is the reference):

* :mod:`repro.analysis.lint` — an AST determinism/purity linter with
  per-package policies (:mod:`repro.analysis.policy`): wall-clock reads,
  the global ``random`` stream, ad-hoc RNG construction, mutable default
  arguments, unordered-set iteration and float-contaminated nanosecond
  timestamps all fail ``juggler-repro analyze``.
* :mod:`repro.analysis.sanitizer` — JSAN, a runtime invariant checker for
  the Juggler state machine (Table 1 phase legality, Table 2 flush
  validity, three-list residency, ofo-queue monotonicity, §4.3 eviction
  order), installed process-wide via :mod:`repro.analysis.runtime` or
  ``JUGGLER_SANITIZE=1`` and zero-cost when off.

Plus the shard-isolation race detector (docs/shardcheck.md):

* :mod:`repro.analysis.shardcheck` — a static escape/alias pass over the
  receive-path packages (the ``shard-*`` rules of ``juggler-repro
  analyze``);
* :mod:`repro.analysis.ownership` — OSAN, a runtime ownership sanitizer:
  per-:class:`RxCore` domains, owner tags on the packet-path structures,
  transfers only at documented rendezvous points; enabled with
  ``JUGGLER_OSAN=1``.

This ``__init__`` is deliberately lazy: ``repro.core`` imports
:mod:`repro.analysis.runtime` at module load, and the sanitizer in turn
needs ``repro.core``'s enums — eager re-exports here would close an import
cycle during interpreter start-up.
"""

from __future__ import annotations

_LAZY = {
    "Finding": ("repro.analysis.lint", "Finding"),
    "lint_source": ("repro.analysis.lint", "lint_source"),
    "lint_file": ("repro.analysis.lint", "lint_file"),
    "lint_tree": ("repro.analysis.lint", "lint_tree"),
    "Policy": ("repro.analysis.policy", "Policy"),
    "policy_for": ("repro.analysis.policy", "policy_for"),
    "Sanitizer": ("repro.analysis.sanitizer", "Sanitizer"),
    "SanitizerError": ("repro.analysis.sanitizer", "SanitizerError"),
    "LEGAL_TRANSITIONS": ("repro.analysis.sanitizer", "LEGAL_TRANSITIONS"),
    "check_source": ("repro.analysis.shardcheck", "check_source"),
    "check_file": ("repro.analysis.shardcheck", "check_file"),
    "check_tree": ("repro.analysis.shardcheck", "check_tree"),
    "Domain": ("repro.analysis.ownership", "Domain"),
    "OwnershipError": ("repro.analysis.ownership", "OwnershipError"),
    "OwnershipSanitizer": ("repro.analysis.ownership",
                           "OwnershipSanitizer"),
    "RENDEZVOUS_POINTS": ("repro.analysis.ownership", "RENDEZVOUS_POINTS"),
}

__all__ = sorted(_LAZY) + ["runtime"]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro.analysis' has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value

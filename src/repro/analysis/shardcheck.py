"""Static shard-isolation escape pass (the ``shard-*`` rules).

The parallel-simulation endgame (ROADMAP item 1) needs one property the
type system cannot express: every object a per-core receive context
(:class:`repro.steer.coreset.RxCore`) touches on its packet path is
*private* to that core.  Flow Director's self-inflicted reordering is
exactly what happens when that property quietly breaks — flow state
consulted from two queues at once.  This pass proves the property
mechanically, the way :mod:`repro.analysis.lint` proves determinism:

* **shard-module-state** — module-level mutable containers (and
  ``global`` rebinds from functions) in receive-path packages.  Module
  state is process state; two shards polling concurrently would share
  it.
* **shard-closure-capture** — a closure built inside a loop that
  captures the loop variable freely (late binding: every shard sees the
  last iteration's value) or captures a mutable container bound outside
  the loop (one object threaded into every shard).  The safe idiom —
  ``lambda c=core: ...`` — binds per-iteration values as defaults and is
  not flagged.
* **shard-cross-core-arg** — an object rooted in one core's context
  (``cores[0].gro.table...``) passed into a *different* core's method
  (``cores[1].table.add(entry)``), including through a local alias.
* **shard-shared-container** — one pre-existing mutable container handed
  to several shard constructors in a loop without a per-shard copy.

Which packages are checked is decided by
:func:`repro.analysis.policy.shard_rules_for` (the receive path:
``steer``, ``nic``, ``core``, ``trace``); findings are waived with the
same justified ``det: allow(...)`` pragmas the determinism linter uses.
The dynamic half of the detector is :mod:`repro.analysis.ownership`.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.analysis.lint import Finding, apply_pragmas, iter_python_files
from repro.analysis.policy import (
    SHARD_CLOSURE_CAPTURE,
    SHARD_CROSS_CORE,
    SHARD_MODULE_STATE,
    SHARD_SHARED_CONTAINER,
    shard_rules_for,
)

#: Constructors whose result is a shared-mutable container.
_MUTABLE_CONSTRUCTORS = frozenset({
    "list", "dict", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter",
})

#: Names treated as "the collection of per-core contexts" when they are
#: the base of a subscript: ``cores[0]``, ``self.queues[i]``...
_SHARD_COLLECTION_NAMES = frozenset({
    "cores", "queues", "shards", "rx_cores", "coreset", "engines",
    "tables",
})


def _is_mutable_container(node: ast.AST) -> bool:
    """A literal/display or constructor call yielding a mutable container."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return func.id in _MUTABLE_CONSTRUCTORS
        if isinstance(func, ast.Attribute):
            return func.attr in _MUTABLE_CONSTRUCTORS
    return False


def _subscript_root(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``cores[0].gro.table`` -> ``("cores", <dump of 0>)``, else None.

    Walks the attribute chain down to its base; a subscript of a
    shard-collection name identifies which core's context the expression
    is rooted in.  The index is compared structurally (``ast.dump``), so
    ``cores[i]`` vs ``cores[i]`` agree while ``cores[0]`` vs ``cores[1]``
    (or vs ``cores[j]``) differ.
    """
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name):
            name = base.id
        elif isinstance(base, ast.Attribute):
            name = base.attr
        else:
            return None
        if name in _SHARD_COLLECTION_NAMES:
            return (name, ast.dump(node.slice))
    return None


def _alias_root(value: ast.AST) -> Optional[Tuple[str, str]]:
    """Which core's context an assigned value is rooted in, if any.

    Covers both direct aliases (``q = cores[0].queue``) and method-call
    results (``entry = cores[0].gro.table.pick_victim()``) — an object a
    core's table hands out still belongs to that core.
    """
    root = _subscript_root(value)
    if root is None and isinstance(value, ast.Call):
        root = _subscript_root(value.func)
    return root


def _target_names(target: ast.AST) -> FrozenSet[str]:
    """Every plain name a loop target binds (handles tuple unpacking)."""
    names = set()
    for sub in ast.walk(target):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
    return frozenset(names)


def _free_names(fn) -> FrozenSet[str]:
    """Names a nested def/lambda reads from its enclosing scope.

    Over-approximates Python's scoping just enough for the closure rule:
    arguments, locally assigned names and nested definitions are bound;
    everything else loaded in the body is free.  Default-parameter
    expressions are *not* part of the body — they evaluate at definition
    time in the enclosing scope, which is precisely the safe
    ``lambda c=core:`` idiom.
    """
    args = fn.args
    bound = {a.arg for a in
             list(getattr(args, "posonlyargs", [])) + list(args.args)
             + list(args.kwonlyargs)}
    if args.vararg is not None:
        bound.add(args.vararg.arg)
    if args.kwarg is not None:
        bound.add(args.kwarg.arg)
    body = [fn.body] if isinstance(fn, ast.Lambda) else fn.body
    loads = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name):
                if isinstance(sub.ctx, ast.Load):
                    loads.add(sub.id)
                else:
                    bound.add(sub.id)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                bound.add(sub.name)
    return frozenset(loads - bound)


class _Scope:
    """Per-function fact tables the rules consult."""

    __slots__ = ("mutable", "aliases")

    def __init__(self):
        #: name -> line where it was bound to a mutable container
        #: *outside* any loop in this scope.
        self.mutable: Dict[str, int] = {}
        #: name -> (collection, index dump) when assigned from one
        #: core's context, e.g. ``entry = cores[0].gro.table.pick_...``.
        self.aliases: Dict[str, Tuple[str, str]] = {}


class _Checker:
    """Single-module shard-isolation checker."""

    def __init__(self, path: str, rules: FrozenSet[str]):
        self.path = path
        self.rules = rules
        self.findings: List[Finding] = []

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if rule in self.rules:
            self.findings.append(Finding(
                self.path, node.lineno, node.col_offset, rule, message))

    # -- module-level state ---------------------------------------------------

    def _module_state(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.If):
                self._module_state(stmt.body)
                self._module_state(stmt.orelse)
            elif isinstance(stmt, ast.Try):
                for block in (stmt.body, stmt.orelse, stmt.finalbody):
                    self._module_state(block)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                value = stmt.value
                if value is None or not _is_mutable_container(value):
                    continue
                names = [t.id for t in targets
                         if isinstance(t, ast.Name)
                         and not (t.id.startswith("__")
                                  and t.id.endswith("__"))]
                if names:
                    self._flag(stmt, SHARD_MODULE_STATE,
                               f"module-level mutable container "
                               f"'{names[0]}' would be shared by every "
                               "shard; move it into per-core state or "
                               "freeze it")

    # -- scope scanning -------------------------------------------------------

    def _scan_scope(self, body: List[ast.stmt]) -> None:
        self._scan_block(body, _Scope(), 0, frozenset())

    def _scan_block(self, body, scope: _Scope, depth: int,
                    loop_targets: FrozenSet[str]) -> None:
        for stmt in body:
            self._scan_stmt(stmt, scope, depth, loop_targets)

    def _scan_stmt(self, stmt, scope: _Scope, depth: int,
                   loop_targets: FrozenSet[str]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if depth:
                self._check_closure(stmt, scope, loop_targets)
            self._scan_scope(stmt.body)
            return
        if isinstance(stmt, ast.ClassDef):
            self._scan_block(stmt.body, _Scope(), 0, frozenset())
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, scope, depth, loop_targets)
            inner_targets = loop_targets | _target_names(stmt.target)
            self._scan_block(stmt.body, scope, depth + 1, inner_targets)
            self._scan_block(stmt.orelse, scope, depth, loop_targets)
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, scope, depth, loop_targets)
            self._scan_block(stmt.body, scope, depth + 1, loop_targets)
            self._scan_block(stmt.orelse, scope, depth, loop_targets)
            return
        if isinstance(stmt, ast.If):
            self._scan_expr(stmt.test, scope, depth, loop_targets)
            self._scan_block(stmt.body, scope, depth, loop_targets)
            self._scan_block(stmt.orelse, scope, depth, loop_targets)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, scope, depth,
                                loop_targets)
            self._scan_block(stmt.body, scope, depth, loop_targets)
            return
        if isinstance(stmt, ast.Try):
            for block in (stmt.body, stmt.orelse, stmt.finalbody):
                self._scan_block(block, scope, depth, loop_targets)
            for handler in stmt.handlers:
                self._scan_block(handler.body, scope, depth, loop_targets)
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, scope, depth, loop_targets)
            if len(stmt.targets) == 1 and isinstance(stmt.targets[0],
                                                     ast.Name):
                name = stmt.targets[0].id
                if depth == 0 and _is_mutable_container(stmt.value):
                    scope.mutable[name] = stmt.lineno
                root = _alias_root(stmt.value)
                if root is not None:
                    scope.aliases[name] = root
                else:
                    scope.aliases.pop(name, None)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value, scope, depth, loop_targets)
                if isinstance(stmt.target, ast.Name):
                    name = stmt.target.id
                    if depth == 0 and _is_mutable_container(stmt.value):
                        scope.mutable[name] = stmt.lineno
                    root = _alias_root(stmt.value)
                    if root is not None:
                        scope.aliases[name] = root
                    else:
                        scope.aliases.pop(name, None)
            return
        # everything else (Expr, Return, AugAssign, Raise, Assert, ...):
        # just scan the expressions it contains.
        self._scan_expr(stmt, scope, depth, loop_targets)

    def _scan_expr(self, node, scope: _Scope, depth: int,
                   loop_targets: FrozenSet[str]) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._check_call(sub, scope, depth)
            elif isinstance(sub, ast.Lambda) and depth:
                self._check_closure(sub, scope, loop_targets)

    # -- the rules ------------------------------------------------------------

    def _expr_root(self, node, scope: _Scope) -> Optional[Tuple[str, str]]:
        root = _subscript_root(node)
        if root is not None:
            return root
        while isinstance(node, ast.Attribute):
            node = node.value
        if isinstance(node, ast.Name):
            return scope.aliases.get(node.id)
        return None

    def _check_call(self, call: ast.Call, scope: _Scope,
                    depth: int) -> None:
        arguments = list(call.args) + [kw.value for kw in call.keywords]
        if isinstance(call.func, ast.Attribute):
            receiver = self._expr_root(call.func, scope)
            if receiver is not None:
                for arg in arguments:
                    origin = self._expr_root(arg, scope)
                    if (origin is not None and origin[0] == receiver[0]
                            and origin[1] != receiver[1]):
                        self._flag(
                            arg, SHARD_CROSS_CORE,
                            f"object from one {origin[0]}[...] context "
                            f"passed into a different {receiver[0]}[...] "
                            "method — flow state must not straddle "
                            "shards")
        if depth:
            func = call.func
            callee = (func.id if isinstance(func, ast.Name)
                      else func.attr if isinstance(func, ast.Attribute)
                      else None)
            if callee and callee[:1].isupper():
                for arg in arguments:
                    if (isinstance(arg, ast.Name)
                            and arg.id in scope.mutable):
                        self._flag(
                            arg, SHARD_SHARED_CONTAINER,
                            f"mutable '{arg.id}' handed to {callee}() "
                            "built per-iteration — every shard would "
                            "share one container; copy it per shard "
                            "(dict(...)/list(...))")

    def _check_closure(self, fn, scope: _Scope,
                       loop_targets: FrozenSet[str]) -> None:
        free = _free_names(fn)
        late = sorted(free & loop_targets)
        kind = "lambda" if isinstance(fn, ast.Lambda) else f"'{fn.name}'"
        if late:
            self._flag(fn, SHARD_CLOSURE_CAPTURE,
                       f"{kind} captures loop variable '{late[0]}' "
                       "late-bound — every shard sees the last "
                       "iteration's value; bind it as a default "
                       "parameter instead")
        shared = sorted(name for name in free if name in scope.mutable)
        if shared:
            self._flag(fn, SHARD_CLOSURE_CAPTURE,
                       f"{kind} built per-iteration captures mutable "
                       f"'{shared[0]}' bound outside the loop — one "
                       "container threaded into every shard; copy per "
                       "shard or pass per-core state")


def check_source(source: str, path: str,
                 rules: Optional[FrozenSet[str]] = None) -> List[Finding]:
    """Shard-check one module's source text; findings after pragmas."""
    if rules is None:
        rules = shard_rules_for(path)
    if not rules:
        return []
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, (exc.offset or 1) - 1,
                        "syntax-error", f"cannot parse: {exc.msg}")]
    checker = _Checker(path, rules)
    checker._module_state(tree.body)
    for sub in ast.walk(tree):
        if isinstance(sub, ast.Global):
            for name in sub.names:
                checker._flag(sub, SHARD_MODULE_STATE,
                              f"global '{name}' rebinds module state from "
                              "a function — shared by every shard; keep "
                              "state per-core")
    checker._scan_scope(tree.body)
    # The determinism pass is the one that reports unknown-rule pragmas;
    # reporting them here too would double-count files both passes scan.
    return apply_pragmas(checker.findings, source, path,
                         report_unknown=False)


def check_file(path: str,
               rules: Optional[FrozenSet[str]] = None) -> List[Finding]:
    """Shard-check one file from disk."""
    with open(path, "r", encoding="utf-8") as handle:
        return check_source(handle.read(), path, rules)


def check_tree(root: str) -> List[Finding]:
    """Shard-check every Python file under ``root``."""
    findings: List[Finding] = []
    for path in iter_python_files(root):
        findings.extend(check_file(path))
    return findings

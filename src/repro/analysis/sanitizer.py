"""JSAN — the Juggler state-machine sanitizer.

ASan catches the write through the dangling pointer at the moment it
happens, not when the corrupted heap finally crashes something unrelated.
JSAN does the same for the Juggler state machine: with ``JUGGLER_SANITIZE=1``
(or an explicit install through :mod:`repro.analysis.runtime`), every
phase transition, admission, eviction and flush is checked against the
paper's contracts at the moment it executes:

* **Table 1 / Figure 5** — phase-transition legality (e.g. post-merge can
  only re-enter active merging; nothing ever returns to build-up);
* **Table 2** — flush-reason validity (an ``inseq_timeout`` flush requires
  an in-sequence head whose clock actually expired, an ``ofo_timeout``
  flush requires an armed hole, ...);
* **Figure 4** — every flow entry resident in exactly one of the three
  lists, with list counts matching the gauges the engine exports;
* ofo-queue sequence monotonicity and non-overlap;
* the §4.3 eviction preference (inactive first, loss recovery last).

The structures being checked each expose ``invariant_violations()``
(:class:`~repro.core.flow_entry.FlowEntry`,
:class:`~repro.core.ofo_queue.OfoQueue`,
:class:`~repro.core.gro_table.GroTable`); this module owns the transition
and policy tables and turns violations into loud, readable
:class:`SanitizerError` diagnostics.  When disabled the hooks cost one
``if self.sanitizer is not None`` test and allocate nothing —
``benchmarks/test_sanitizer_overhead.py`` enforces that, the same contract
``repro.trace`` honours.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from repro.core.flush import FlushReason
from repro.core.phases import Phase


class SanitizerError(AssertionError):
    """A Juggler invariant was violated (details in the message)."""


#: Table 1 / Figure 5: the legal phase transitions.  Self-transitions are
#: legal re-enqueues (they implement the FIFO ordering eviction uses).
LEGAL_TRANSITIONS: FrozenSet[Tuple[Phase, Phase]] = frozenset({
    (Phase.INITIAL, Phase.BUILD_UP),       # first packet, build-up enabled
    (Phase.INITIAL, Phase.ACTIVE_MERGE),   # build-up ablation disabled
    (Phase.BUILD_UP, Phase.ACTIVE_MERGE),  # first flush pins seq_next
    (Phase.ACTIVE_MERGE, Phase.POST_MERGE),     # queue drained
    (Phase.ACTIVE_MERGE, Phase.LOSS_RECOVERY),  # ofo_timeout fired
    (Phase.POST_MERGE, Phase.ACTIVE_MERGE),     # fresh data arrived
    (Phase.LOSS_RECOVERY, Phase.ACTIVE_MERGE),  # the hole was filled
})

#: Flush reasons JugglerGRO may emit for buffered data (Table 2 plus the
#: engine-internal bookkeeping reasons).  POLL_END / OUT_OF_SEQUENCE are
#: the *standard* GRO's failure modes — Juggler emitting one is a bug.
JUGGLER_FLUSH_REASONS: FrozenSet[FlushReason] = frozenset({
    FlushReason.RETRANSMISSION,
    FlushReason.SEGMENT_FULL,
    FlushReason.FLAGS,
    FlushReason.UNMERGEABLE,
    FlushReason.INSEQ_TIMEOUT,
    FlushReason.OFO_TIMEOUT,
    FlushReason.EVICTION,
    FlushReason.DUPLICATE,
    FlushReason.SHUTDOWN,
})

#: Reasons for the event-driven (rows 1-4 of Table 2) in-sequence flushes.
EVENT_FLUSH_REASONS: FrozenSet[FlushReason] = frozenset({
    FlushReason.SEGMENT_FULL,
    FlushReason.FLAGS,
    FlushReason.UNMERGEABLE,
})


class Sanitizer:
    """Runtime invariant checker for the Juggler engine and its table.

    One instance can serve any number of engines; it is stateless apart
    from the ``checks_run`` counter (useful to assert coverage in tests).
    """

    __slots__ = ("checks_run",)

    def __init__(self) -> None:
        self.checks_run = 0

    # -- failure plumbing ----------------------------------------------------

    def _fail(self, what: str, *details: str) -> None:
        lines = [f"JSAN: {what}"] + [f"  {d}" for d in details]
        raise SanitizerError("\n".join(lines))

    # -- Table 1: phase lifecycle --------------------------------------------

    def check_transition(self, entry, old_phase: Phase,
                         new_phase: Phase) -> None:
        """A ``gro_table.move`` must follow Table 1 / Figure 5."""
        self.checks_run += 1
        if old_phase is new_phase:
            return  # re-enqueue at the tail: FIFO bookkeeping, not a move
        if (old_phase, new_phase) not in LEGAL_TRANSITIONS:
            self._fail(
                f"illegal phase transition {old_phase.value} -> "
                f"{new_phase.value}",
                f"flow: {entry.key}",
                "legal successors of "
                f"{old_phase.value}: "
                + (", ".join(sorted(t.value for f, t in LEGAL_TRANSITIONS
                                    if f is old_phase)) or "(none)"),
                "see Table 1 / Figure 5 of the paper",
            )

    def check_admission(self, table, entry) -> None:
        """A new entry enters storage in build-up or active merge only."""
        self.checks_run += 1
        if entry.phase not in (Phase.BUILD_UP, Phase.ACTIVE_MERGE):
            self._fail(
                f"flow admitted to gro_table in phase {entry.phase.value}",
                f"flow: {entry.key}",
                "the transient INITIAL phase must resolve to build_up or "
                "active_merge before storage (§4.2.1)",
            )
        if len(table) > table.capacity:
            self._fail(
                f"gro_table over capacity: {len(table)} > {table.capacity}",
                f"flow: {entry.key}",
                "caller must evict before admitting (§4.3)",
            )

    # -- Figure 4: list residency --------------------------------------------

    def check_table(self, table) -> None:
        """Full audit: residency, counts and every entry's invariants."""
        self.checks_run += 1
        violations = table.invariant_violations()
        if violations:
            self._fail("gro_table invariant violation", *violations)

    def check_flow(self, entry) -> None:
        """Audit one entry (and its ofo queue) after a mutation."""
        self.checks_run += 1
        violations = entry.invariant_violations()
        if violations:
            self._fail(f"flow_entry invariant violation on {entry.key}",
                       *violations)

    def check_ofo(self, entry) -> None:
        """Audit only the ofo queue (post-insert hot-path hook)."""
        self.checks_run += 1
        violations = entry.ofo.invariant_violations()
        if violations:
            self._fail(f"ofo_queue invariant violation on {entry.key}",
                       *violations)

    # -- Table 2: flush validity ---------------------------------------------

    def check_event_flush(self, entry, reason: FlushReason) -> None:
        """Rows 1-4 of Table 2: event-driven flush of an in-sequence head."""
        self.checks_run += 1
        if reason not in EVENT_FLUSH_REASONS:
            self._fail(
                f"event-driven flush tagged {reason.value}",
                f"flow: {entry.key}",
                "event checks may only flush for segment_full, flags or "
                "unmergeable (Table 2 rows 1-4)",
            )
        head = entry.ofo.head
        if head is None or head.seq != entry.seq_next:
            self._fail(
                f"{reason.value} flush of a head that is not in sequence",
                f"flow: {entry.key}",
                f"head seq: {None if head is None else head.seq}, "
                f"seq_next: {entry.seq_next}",
            )

    def check_inseq_timeout(self, entry, now: int, timeout: int) -> None:
        """Row 5 of Table 2: the in-sequence clock must have expired."""
        self.checks_run += 1
        if not entry.head_in_sequence:
            self._fail(
                "inseq_timeout flush without an in-sequence head",
                f"flow: {entry.key}",
                f"head seq: "
                f"{None if entry.ofo.head is None else entry.ofo.head.seq}, "
                f"seq_next: {entry.seq_next}",
            )
        elapsed = now - entry.flush_timestamp
        if elapsed < timeout:
            self._fail(
                "inseq_timeout flush before the timeout expired",
                f"flow: {entry.key}",
                f"elapsed: {elapsed}ns < inseq_timeout: {timeout}ns",
            )

    def check_ofo_timeout(self, entry, now: int, timeout: int) -> None:
        """Row 6 of Table 2: an armed hole must have aged past timeout."""
        self.checks_run += 1
        if entry.hole_since is None:
            self._fail(
                "ofo_timeout flush with no hole armed",
                f"flow: {entry.key}",
                "hole_since is None — nothing was presumed lost",
            )
        elapsed = now - entry.hole_since
        if elapsed < timeout:
            self._fail(
                "ofo_timeout flush before the timeout expired",
                f"flow: {entry.key}",
                f"elapsed: {elapsed}ns < ofo_timeout: {timeout}ns",
            )

    def check_flush_reason(self, flow, reason: FlushReason) -> None:
        """Juggler never emits the standard-GRO failure reasons."""
        self.checks_run += 1
        if reason not in JUGGLER_FLUSH_REASONS:
            self._fail(
                f"Juggler flushed with reason {reason.value}",
                f"flow: {flow}",
                "poll_end / out_of_sequence / passthrough are standard-GRO "
                "reasons; Juggler emitting one means the resilient path "
                "was bypassed",
            )

    # -- §4.3: eviction preference -------------------------------------------

    def check_eviction(self, table, victim, policy: str) -> None:
        """The victim must respect the configured preference order."""
        self.checks_run += 1
        if policy == "fifo":
            return
        if policy == "inactive_first":
            order = ("inactive", "active", "loss_recovery")
        elif policy == "active_first":
            order = ("active", "loss_recovery", "inactive")
        else:
            self._fail(f"unknown eviction policy {policy!r}")
            return
        victim_list = victim.phase.list_name
        lens = {
            "active": table.active_len,
            "inactive": table.inactive_len,
            "loss_recovery": table.loss_recovery_len,
        }
        for list_name in order:
            if lens[list_name] > 0:
                if victim_list != list_name:
                    self._fail(
                        f"eviction from the {victim_list} list while the "
                        f"{list_name} list is non-empty",
                        f"victim: {victim.key} (phase "
                        f"{victim.phase.value})",
                        f"policy {policy!r} prefers: "
                        + " > ".join(order),
                        f"list lengths: {lens}",
                    )
                return
        self._fail("eviction from an empty table",
                   f"victim: {victim.key}")


def from_env(environ=None) -> Optional[Sanitizer]:
    """Build a sanitizer if ``JUGGLER_SANITIZE`` asks for one."""
    import os

    env = os.environ if environ is None else environ
    value = env.get("JUGGLER_SANITIZE", "").strip().lower()
    if value in ("", "0", "false", "off", "no"):
        return None
    return Sanitizer()

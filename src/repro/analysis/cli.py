"""``juggler-repro analyze`` — lint the tree, exit nonzero on findings.

::

    juggler-repro analyze                      # lint + shardcheck src/repro
    juggler-repro analyze path/to/file.py dir/ # lint explicit targets
    juggler-repro analyze --format json        # machine-readable findings
    juggler-repro analyze --rules              # print the rule catalog
    juggler-repro analyze --no-shard           # determinism rules only

Every file gets two passes: the determinism linter
(:mod:`repro.analysis.lint`) and the shard-isolation escape pass
(:mod:`repro.analysis.shardcheck`, the ``shard-*`` rules — see
``docs/shardcheck.md``).  Exit status: 0 clean, 1 findings, 2 usage
error.  CI runs this alongside ruff and mypy in the ``analysis`` job
(see ``.github/workflows/ci.yml``); the per-package policies and the
pragma syntax are documented in ``docs/analysis.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional


def default_tree() -> str:
    """The installed ``repro`` package directory — lintable from any cwd."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def main(argv: Optional[List[str]] = None) -> int:
    from repro.analysis.lint import iter_python_files, lint_file
    from repro.analysis.policy import RULE_DESCRIPTIONS, policy_for
    from repro.analysis.shardcheck import check_file

    parser = argparse.ArgumentParser(
        prog="juggler-repro analyze",
        description="Determinism / purity linter and shard-isolation "
                    "escape pass for the reproduction tree "
                    "(docs/analysis.md, docs/shardcheck.md).",
    )
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="finding output format (default: text)")
    parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--no-shard", action="store_true",
        help="skip the shard-isolation pass (determinism rules only)")
    args = parser.parse_args(argv)

    if args.rules:
        for rule in sorted(RULE_DESCRIPTIONS):
            print(f"{rule:24s} {RULE_DESCRIPTIONS[rule]}")
        return 0

    targets = args.paths or [default_tree()]
    findings = []
    files = 0
    for target in targets:
        if not os.path.exists(target):
            print(f"no such path: {target}", file=sys.stderr)
            return 2
        for path in iter_python_files(target):
            files += 1
            findings.extend(lint_file(path))
            if not args.no_shard:
                findings.extend(check_file(path))

    if args.format == "json":
        print(json.dumps([
            {"path": f.path, "line": f.line, "col": f.col + 1,
             "rule": f.rule, "policy": policy_for(f.path).name,
             "message": f.message}
            for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.render())
        noun = "finding" if len(findings) == 1 else "findings"
        print(f"analyze: {len(findings)} {noun} in {files} file(s)")
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - module smoke entry
    raise SystemExit(main())

"""OSAN — the shard ownership sanitizer.

The static escape pass (:mod:`repro.analysis.shardcheck`) proves no
*code shape* leaks state across shards; OSAN proves no *object* does at
runtime, the way ThreadSanitizer would if the per-core engines were real
threads.  Each :class:`~repro.steer.coreset.RxCore` registers an
ownership :class:`Domain`; the structures on its packet path
(:class:`~repro.nic.rxqueue.RxQueue`,
:class:`~repro.core.gro_table.GroTable`,
:class:`~repro.core.flow_entry.FlowEntry`,
:class:`~repro.core.ofo_queue.OfoQueue`) carry an ``owner_domain`` tag
assigned at bind time, and the instrumented entry points verify
*accessor domain == owner domain* on every admission, transition,
eviction and poll.

Ownership may change hands only at the documented rendezvous points
(:data:`RENDEZVOUS_POINTS`):

* ``nic.drain`` — the end-of-run reconciliation barrier, where the NIC
  collapses per-core state back into totals;
* ``steer.migration`` — a steering-table rule moving a flow between
  queues (Flow Director's ATR path).  Migration re-routes *future*
  packets; the flow state already resident on the old core stays there
  until its entry dies, which is exactly why Flow Director reorders —
  OSAN records the migration so the PoC can audit it.

Code running under no domain (test setup, the simulation engine's timer
loop, the TCP endpoints above ``deliver()``) is *ambient* and may touch
anything: the contract polices cross-shard access, not supervision.
Enable with ``JUGGLER_OSAN=1`` (the JSAN pattern — see
:mod:`repro.analysis.runtime`); disabled hooks cost one attribute load
and one identity test, pinned by ``benchmarks/test_shardcheck_overhead``.
The full contract lives in ``docs/shardcheck.md``.
"""

from __future__ import annotations

import os
from typing import List, Optional


class OwnershipError(AssertionError):
    """An object was touched from outside its owner domain."""


#: The only places ownership may legally change hands.
RENDEZVOUS_POINTS = frozenset({"nic.drain", "steer.migration"})


class Domain:
    """One shard's ownership domain (normally one per :class:`RxCore`)."""

    __slots__ = ("ident", "name")

    def __init__(self, ident: int, name: str):
        self.ident = ident
        self.name = name

    def __repr__(self) -> str:
        return f"Domain({self.ident}, {self.name!r})"


class OwnershipSanitizer:
    """Tracks domains, the accessor stack, and legal transfers."""

    __slots__ = ("domains", "checks_run", "transfers",
                 "migrations_recorded", "_stack", "tracer")

    def __init__(self):
        self.domains: List[Domain] = []
        self.checks_run = 0
        self.transfers = 0
        self.migrations_recorded = 0
        self._stack: List[Domain] = []
        from repro.trace import runtime as trace_runtime

        self.tracer = trace_runtime.current()
        if self.tracer is not None:
            metrics = self.tracer.metrics
            metrics.gauge("shardcheck.domains", lambda: len(self.domains))
            metrics.gauge("shardcheck.checks", lambda: self.checks_run)
            metrics.gauge("shardcheck.transfers", lambda: self.transfers)
            metrics.gauge("shardcheck.migrations",
                          lambda: self.migrations_recorded)

    # -- domains --------------------------------------------------------------

    def register_domain(self, name: str) -> Domain:
        """Create the ownership domain for one shard."""
        domain = Domain(len(self.domains), name)
        self.domains.append(domain)
        return domain

    @property
    def current(self) -> Optional[Domain]:
        """The innermost active domain, or None when running ambient."""
        return self._stack[-1] if self._stack else None

    def enter(self, domain: Optional[Domain]) -> None:
        """Begin executing as ``domain`` (poll/timer entry).

        ``None`` pushes an explicit ambient frame, so every ``enter`` is
        paired with exactly one :meth:`exit` regardless of whether the
        caller's queue was ever claimed.
        """
        self._stack.append(domain)

    def exit(self) -> None:
        """Leave the innermost domain (poll/timer exit)."""
        self._stack.pop()

    # -- the check ------------------------------------------------------------

    def check(self, obj, op: str) -> None:
        """Verify the accessor's domain owns ``obj`` (untagged = shared)."""
        self.checks_run += 1
        owner = getattr(obj, "owner_domain", None)
        if owner is None:
            return
        accessor = self._stack[-1] if self._stack else None
        if accessor is None or accessor is owner:
            return
        raise OwnershipError(
            f"OSAN: cross-domain access\n"
            f"  operation: {op} on {type(obj).__name__}\n"
            f"  owner:     {owner.name} (domain {owner.ident})\n"
            f"  accessor:  {accessor.name} (domain {accessor.ident})\n"
            f"  {type(obj).__name__} state is private to its shard; "
            "ownership changes hands only at the rendezvous points "
            f"({', '.join(sorted(RENDEZVOUS_POINTS))}) — "
            "see docs/shardcheck.md")

    # -- rendezvous -----------------------------------------------------------

    def transfer(self, obj, new_domain: Optional[Domain], *,
                 point: str, now: int = 0) -> None:
        """Move ``obj`` to ``new_domain`` at a documented rendezvous."""
        if point not in RENDEZVOUS_POINTS:
            raise OwnershipError(
                f"OSAN: illegal ownership transfer\n"
                f"  object: {type(obj).__name__}\n"
                f"  point:  {point!r} is not a rendezvous point "
                f"({', '.join(sorted(RENDEZVOUS_POINTS))})\n"
                "  transfers outside the documented rendezvous are races "
                "— see docs/shardcheck.md")
        old = getattr(obj, "owner_domain", None)
        obj.owner_domain = new_domain
        self.transfers += 1
        if self.tracer is not None:
            self.tracer.ownership_transfer(
                now, type(obj).__name__,
                old.name if old is not None else None,
                new_domain.name if new_domain is not None else None,
                point)

    def record_migration(self, flow, old_queue: int,
                         new_queue: int) -> None:
        """A steering rule re-routed a flow's *future* packets."""
        self.migrations_recorded += 1


def from_env() -> Optional[OwnershipSanitizer]:
    """Build an OwnershipSanitizer when ``JUGGLER_OSAN`` asks for one."""
    value = os.environ.get("JUGGLER_OSAN", "")
    if value.strip().lower() in ("", "0", "false", "off", "no"):
        return None
    return OwnershipSanitizer()

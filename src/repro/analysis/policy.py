"""Per-package determinism policies and the pragma escape hatch.

The reproduction's contracts are not uniform across the tree.  The
simulated stack (``sim``, ``core``, ``tcp``, ``nic``, ``fabric``, ``qos``,
``cpu``, ``workloads``) must be byte-for-byte deterministic: campaign
fingerprints and derived seeds are only meaningful if no module in those
packages reads the wall clock, draws from the global ``random`` stream, or
lets float rounding creep into integer-nanosecond timestamps.  The driver
layers (``campaign``, ``harness``, the CLI) legitimately measure host
elapsed time and may relax some rules.

A finding can always be silenced *in place* with a justified pragma::

    started = time.perf_counter()  # det: allow(wall-clock) -- host-side elapsed display only

The justification (everything after ``--``) is mandatory; a pragma without
one is itself a finding.  This keeps every exception auditable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

#: Rule identifiers, stable across releases (used in pragmas and docs).
WALL_CLOCK = "wall-clock"
GLOBAL_RANDOM = "global-random"
RAW_RNG = "raw-rng"
MUTABLE_DEFAULT = "mutable-default"
SET_ITERATION = "set-iteration"
FLOAT_NS = "float-ns"
ID_ORDERING = "id-ordering"
UNORDERED_POP = "unordered-pop"
BAD_PRAGMA = "bad-pragma"

#: Shard-isolation rule identifiers (repro.analysis.shardcheck).
SHARD_MODULE_STATE = "shard-module-state"
SHARD_CLOSURE_CAPTURE = "shard-closure-capture"
SHARD_CROSS_CORE = "shard-cross-core-arg"
SHARD_SHARED_CONTAINER = "shard-shared-container"

#: Every rule the determinism linter knows.  ``bad-pragma`` is meta and
#: always on.
ALL_RULES = frozenset({
    WALL_CLOCK,
    GLOBAL_RANDOM,
    RAW_RNG,
    MUTABLE_DEFAULT,
    SET_ITERATION,
    FLOAT_NS,
    ID_ORDERING,
    UNORDERED_POP,
})

#: Every rule the shard-isolation escape pass knows.
SHARD_RULES = frozenset({
    SHARD_MODULE_STATE,
    SHARD_CLOSURE_CAPTURE,
    SHARD_CROSS_CORE,
    SHARD_SHARED_CONTAINER,
})

RULE_DESCRIPTIONS = {
    WALL_CLOCK: "wall-clock read (time.time/monotonic/perf_counter, "
                "datetime.now, ...) — use the simulation clock",
    GLOBAL_RANDOM: "global random stream (random.random(), random.choice(), "
                   "from random import ...) — route through repro.sim.rng",
    RAW_RNG: "direct random.Random(...) construction — derive a named "
             "stream from repro.sim.rng.RngRegistry instead",
    MUTABLE_DEFAULT: "mutable default argument (list/dict/set) — shared "
                     "across calls, a classic state leak",
    SET_ITERATION: "iteration over an unordered set feeds results — wrap "
                   "in sorted() to fix the order",
    FLOAT_NS: "float arithmetic assigned to an integer-nanosecond "
              "timestamp — use // or int(round(...))",
    ID_ORDERING: "id()-based key or ordering — object addresses vary "
                 "across runs; key by a stable field or index",
    UNORDERED_POP: "popitem()/set-pop removes an arbitrary element — "
                   "pop a deterministic key or sort first",
    BAD_PRAGMA: "malformed det: pragma (justification after '--' is "
                "mandatory)",
    SHARD_MODULE_STATE: "module-level mutable state reachable from the "
                        "receive path — shards would share it; move it "
                        "into per-core objects",
    SHARD_CLOSURE_CAPTURE: "closure built in a loop captures shared "
                           "mutable state (or the loop variable late-"
                           "bound) — bind per-core values as defaults",
    SHARD_CROSS_CORE: "object from one core's context passed into "
                      "another core's method — flow state must not "
                      "straddle shards",
    SHARD_SHARED_CONTAINER: "one mutable container handed to multiple "
                            "shard constructors without a copy — wrap "
                            "in dict()/list() per shard",
}


@dataclass(frozen=True)
class Policy:
    """The rule set one package is linted under."""

    name: str
    rules: FrozenSet[str] = field(default_factory=lambda: ALL_RULES)

    def enabled(self, rule: str) -> bool:
        return rule in self.rules or rule == BAD_PRAGMA


#: Everything on: the simulated stack, where determinism is load-bearing.
STRICT = Policy("strict", ALL_RULES)

#: Experiments and tracing: deterministic, but they render float metrics
#: from ns quantities all the time, so the float-ns heuristic is off.
STANDARD = Policy("standard", ALL_RULES - {FLOAT_NS})

#: Driver code that legitimately measures host time (campaign scheduler
#: timing, CLI progress display, harness reporting).
RELAXED = Policy("relaxed", frozenset({GLOBAL_RANDOM, MUTABLE_DEFAULT,
                                       RAW_RNG}))

#: Package (directory under ``repro/``) -> policy.  Single modules at the
#: package root (``cli.py``) are keyed by module name.
PACKAGE_POLICIES: Dict[str, Policy] = {
    "sim": STRICT,
    "core": STRICT,
    "tcp": STRICT,
    "cc": STRICT,
    "nic": STRICT,
    "fabric": STRICT,
    "qos": STRICT,
    "cpu": STRICT,
    "workloads": STRICT,
    "net": STRICT,
    "sctp": STRICT,
    "experiments": STANDARD,
    "trace": STANDARD,
    "analysis": STANDARD,
    "campaign": RELAXED,
    "harness": RELAXED,
    "cli": RELAXED,
    # Benchmarks measure host wall-clock by design; their workloads stay
    # seeded and fixed-size.
    "perf": RELAXED,
}

#: Module-level exemptions: (package, module) pairs allowed specific rules
#: wholesale because they *implement* the sanctioned alternative.
MODULE_EXEMPTIONS: Dict[str, FrozenSet[str]] = {
    # RngRegistry is the one place that may build random.Random streams.
    "repro/sim/rng.py": frozenset({RAW_RNG}),
}


def policy_for(path: str) -> Policy:
    """Resolve the policy for a source file path.

    Matches the first ``repro/<package>/`` (or ``repro/<module>.py``)
    component; anything that cannot be attributed to a known package —
    including files outside the tree, such as test fixtures — is linted
    under the strict policy.
    """
    norm = path.replace("\\", "/")
    match = re.search(r"repro/([A-Za-z_]\w*)(?:/|\.py$)", norm)
    if match:
        policy = PACKAGE_POLICIES.get(match.group(1))
        if policy is not None:
            return policy
    return STRICT


#: Packages under ``repro/`` whose modules are shard-isolation checked:
#: everything the per-core receive path touches (see docs/shardcheck.md).
#: ``net`` joined with the struct-of-arrays batches — PacketBatch columns
#: are per-shard state the moment an RxQueue stages them.
SHARD_PACKAGES = frozenset({"steer", "nic", "core", "trace", "net"})


def shard_rules_for(path: str) -> FrozenSet[str]:
    """Shard-isolation rules active for a source file path.

    Only the packages the receive path runs through are checked; driver
    and experiment layers may share state freely because they never run
    inside a shard.  Unattributable paths (test fixtures) are checked —
    mirroring :func:`policy_for`'s strict default — so planted-escape
    fixtures stay live specimens.
    """
    norm = path.replace("\\", "/")
    match = re.search(r"repro/([A-Za-z_]\w*)(?:/|\.py$)", norm)
    if match and match.group(1) not in SHARD_PACKAGES:
        return frozenset()
    return SHARD_RULES


def module_exemptions(path: str) -> FrozenSet[str]:
    """Rules waived wholesale for this module (see MODULE_EXEMPTIONS)."""
    norm = path.replace("\\", "/")
    for suffix, rules in MODULE_EXEMPTIONS.items():
        if norm.endswith(suffix):
            return rules
    return frozenset()


#: Comment pragma: ``det: allow(<rule>)``, then ``--`` and a justification.
_PRAGMA_RE = re.compile(
    r"#\s*det:\s*allow\(\s*([a-z-]+)\s*\)\s*(?:--\s*(.*\S))?")


@dataclass(frozen=True)
class Pragma:
    """One parsed ``det: allow`` pragma."""

    rule: str
    justification: Optional[str]
    line: int


def parse_pragmas(source: str) -> Dict[int, Pragma]:
    """Extract ``det: allow`` pragmas, keyed by 1-based line number."""
    pragmas: Dict[int, Pragma] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match:
            pragmas[lineno] = Pragma(match.group(1), match.group(2), lineno)
    return pragmas

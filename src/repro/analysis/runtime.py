"""Process-wide sanitizer installation — the same idiom as tracing.

Engines and tables read :func:`current` once, at construction time, and
keep the reference (or ``None``).  Three ways to turn JSAN on:

* ``JUGGLER_SANITIZE=1`` in the environment — picked up lazily on the
  first :func:`current` call, which is how the tier-1 suite and the CI
  sanitize job run the whole stack under checking with zero code changes;
* :func:`install` / :func:`uninstall` for explicit control;
* the :func:`sanitizing` context manager to scope checking to one block.

When nothing installs a sanitizer, :func:`current` returns ``None`` and
every hook in the engine degrades to one attribute load and one identity
test — see ``benchmarks/test_sanitizer_overhead.py``.

OSAN (:mod:`repro.analysis.ownership`) installs through the exact same
idiom, independently: ``JUGGLER_OSAN=1`` / :func:`install_osan` /
:func:`ownership_checking`, read once at construction time via
:func:`current_osan`.  The two sanitizers compose — a run may check
state-machine legality, shard ownership, both, or neither.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

_current = None
_env_checked = False

_current_osan = None
_osan_env_checked = False


def current() -> Optional["Sanitizer"]:
    """The installed sanitizer, or None when sanitizing is disabled.

    The first call consults ``JUGGLER_SANITIZE``; later calls are a plain
    global read.
    """
    global _current, _env_checked
    if _current is None and not _env_checked:
        _env_checked = True
        from repro.analysis.sanitizer import from_env

        _current = from_env()
    return _current


def install(sanitizer: "Sanitizer") -> "Sanitizer":
    """Make ``sanitizer`` process-wide for components built from now on."""
    global _current, _env_checked
    _current = sanitizer
    _env_checked = True
    return sanitizer


def uninstall() -> None:
    """Disable sanitizing for components built from now on."""
    global _current, _env_checked
    _current = None
    _env_checked = True


def reset() -> None:
    """Forget any installation *and* re-arm the environment probe (tests)."""
    global _current, _env_checked, _current_osan, _osan_env_checked
    _current = None
    _env_checked = False
    _current_osan = None
    _osan_env_checked = False


def current_osan() -> Optional["OwnershipSanitizer"]:
    """The installed ownership sanitizer, or None when checking is off.

    The first call consults ``JUGGLER_OSAN``; later calls are a plain
    global read.
    """
    global _current_osan, _osan_env_checked
    if _current_osan is None and not _osan_env_checked:
        _osan_env_checked = True
        from repro.analysis.ownership import from_env

        _current_osan = from_env()
    return _current_osan


def install_osan(osan: "OwnershipSanitizer") -> "OwnershipSanitizer":
    """Make ``osan`` process-wide for components built from now on."""
    global _current_osan, _osan_env_checked
    _current_osan = osan
    _osan_env_checked = True
    return osan


def uninstall_osan() -> None:
    """Disable ownership checking for components built from now on."""
    global _current_osan, _osan_env_checked
    _current_osan = None
    _osan_env_checked = True


@contextmanager
def sanitizing(sanitizer: Optional["Sanitizer"] = None) -> Iterator["Sanitizer"]:
    """Install a (fresh, by default) sanitizer for the duration of a block."""
    global _current, _env_checked
    if sanitizer is None:
        from repro.analysis.sanitizer import Sanitizer

        sanitizer = Sanitizer()
    saved, saved_checked = _current, _env_checked
    install(sanitizer)
    try:
        yield sanitizer
    finally:
        _current, _env_checked = saved, saved_checked


@contextmanager
def ownership_checking(
    osan: Optional["OwnershipSanitizer"] = None,
) -> Iterator["OwnershipSanitizer"]:
    """Install a (fresh, by default) OSAN for the duration of a block."""
    global _current_osan, _osan_env_checked
    if osan is None:
        from repro.analysis.ownership import OwnershipSanitizer

        osan = OwnershipSanitizer()
    saved, saved_checked = _current_osan, _osan_env_checked
    install_osan(osan)
    try:
        yield osan
    finally:
        _current_osan, _osan_env_checked = saved, saved_checked

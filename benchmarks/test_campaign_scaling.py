"""Campaign scaling: serial vs ``--jobs 4`` on a reduced fig13 grid.

The campaign runner's reason to exist is wall-clock: the same tasks, the
same byte-identical rows, finished sooner.  This bench runs one reduced
fig13 sweep twice — inline serial and over four worker processes — and
records the speedup into ``BENCH_campaign.json`` at the repo root to
start the perf trajectory.  The assertion is deliberately loose (workers
pay process startup and result pickling; CI machines are noisy): parallel
must simply not be slower than serial, and even that is only enforced
when the machine actually has ``JOBS`` cores to run on.
"""

import json
import os
import time
from pathlib import Path

import pytest

from conftest import show

from repro.campaign import (
    CampaignSpec,
    ExperimentSpec,
    ResultStore,
    SchedulerConfig,
    expand,
    run_campaign,
)

JOBS = 4

#: 2 x 4 = 8 points, each a few hundred ms of simulation: big enough to
#: amortise pool startup, small enough for CI.
SPEC = CampaignSpec(name="bench", experiments=(
    ExperimentSpec("fig13",
                   overrides={"warmup_ms": 2, "measure_ms": 4},
                   grid={"reorder_delay_us": [250, 500],
                         "ofo_timeout_us": [100, 300, 500, 900]}),
))


def _run(tmp_path, jobs: int) -> float:
    store = ResultStore(tmp_path / f"jobs{jobs}.jsonl")
    started = time.perf_counter()
    stats = run_campaign(expand(SPEC), store,
                         SchedulerConfig(jobs=jobs, retries=0))
    elapsed = time.perf_counter() - started
    assert stats.failed == 0
    assert stats.ok == 8
    return elapsed


def _rows(tmp_path, jobs: int):
    store = ResultStore(tmp_path / f"jobs{jobs}.jsonl")
    return [r["rows"] for r in sorted(store.load(),
                                      key=lambda r: r["index"])]


def test_campaign_scaling(tmp_path, benchmark):
    serial_s = _run(tmp_path, jobs=1)
    parallel_s = benchmark.pedantic(_run, args=(tmp_path, JOBS),
                                    rounds=1, iterations=1)
    speedup = serial_s / parallel_s

    # Parallelism must never change the numbers, only the wall-clock.
    assert _rows(tmp_path, 1) == _rows(tmp_path, JOBS)

    cpu_count = os.cpu_count() or 1
    #: With fewer cores than workers the speedup measures the scheduler's
    #: timeslicing, not the runner — the record is marked so nothing
    #: downstream treats it as a scaling data point.
    degenerate = cpu_count < JOBS
    record = {
        "experiment": "fig13 reduced grid (2 delays x 4 timeouts)",
        "tasks": len(expand(SPEC)),
        "jobs": JOBS,
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(speedup, 2),
        "cpu_count": cpu_count,
        "degenerate": degenerate,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    existing_healthy = False
    if out.exists():
        try:
            existing = json.loads(out.read_text())
            existing_healthy = not existing.get(
                "degenerate", existing.get("cpu_count", 0) < existing.get(
                    "jobs", JOBS))
        except (ValueError, AttributeError):
            existing_healthy = False
    if degenerate and existing_healthy:
        # Never clobber a healthy multi-core baseline with a timeslicing
        # artifact from a 1-core runner.
        show("Campaign scaling — degenerate run (too few cores), "
             "keeping the existing healthy baseline",
             f"  cores: {cpu_count} < jobs={JOBS}; measured "
             f"{speedup:.2f}x (not recorded)")
        return
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    show("Campaign scaling — serial vs 4 workers on reduced fig13",
         f"  serial: {serial_s:.2f}s   jobs={JOBS}: {parallel_s:.2f}s   "
         f"speedup: {speedup:.2f}x"
         + ("   [degenerate: fewer cores than workers]" if degenerate else "")
         + f"\n  written to {out.name}")
    # Loose floor, only meaningful with enough cores: fan-out must at
    # least pay for its own process overhead.  Real speedup on 4 idle
    # cores is ~2-3.5x.  On smaller machines the run still records the
    # honest (possibly < 1x) number for the trajectory.
    if (os.cpu_count() or 1) >= JOBS:
        assert speedup >= 1.0, (
            f"parallel campaign slower than serial ({speedup:.2f}x)")

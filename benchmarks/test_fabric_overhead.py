"""Fabric-telemetry overhead guard: a detector-less switch stays free.

Acceptance contract for the in-fabric subsystem (flowcut routing + the
sketch-based reordering detector): every fig12–15 reproduction builds
switches with ``detector=None`` and an ECMP policy, so the new telemetry
must cost nothing on that configuration.  Two-fold, mirroring
``test_steer_overhead``:

1. **No allocation**: ``tracemalloc`` sees zero allocations from the new
   subsystem files (``repro/fabric/detector.py``, ``repro/fabric/flowcut.py``,
   ``repro/trace/groundtruth.py``) while ``Switch.receive`` forwards a
   multi-flow host-bound packet stream with no detector attached.
2. **≤ 10% runtime**: best-of-interleaved-rounds of ``Switch.receive``
   (which carries the ``detector is not None`` guard) lands within 10% of
   the pre-detector receive body — the same route-lookup-and-enqueue in a
   plain function, minus the guard — over the same link and packet stream.
"""

import time
import tracemalloc

from conftest import show

from repro.fabric import QueuedLink, Switch
from repro.net import FiveTuple, MSS, Packet
from repro.sim import Engine

N = 40_000
FLOWS = 64
DST = 99


def packet_stream():
    flows = [FiveTuple(1 + (i % 16), DST, 5000 + i, 80) for i in range(FLOWS)]
    return [Packet(flows[i % FLOWS], (i // FLOWS) * MSS, MSS)
            for i in range(N)]


def make_switch():
    # One direct route, never-run engine: only the first packet starts a
    # (never-completing) transmission, so the loop measures pure
    # lookup + guard + enqueue.
    engine = Engine()
    switch = Switch("tor0", engine=engine)
    switch.add_route(DST, QueuedLink(engine, 40.0, switch, name="h99"))
    return switch


def drive_switch(packets):
    switch = make_switch()
    receive = switch.receive
    for packet in packets:
        receive(packet)
    return switch


def _receive_unguarded(switch, packet):
    """The pre-detector ``Switch.receive`` direct branch, guard removed.

    A plain function (same call-frame cost as the method) so the timing
    delta isolates the ``detector is not None`` check itself.
    """
    direct = switch._direct.get(packet.flow.dst)
    if direct is not None:
        direct.enqueue(packet)


def drive_inlined(packets):
    switch = make_switch()
    receive = _receive_unguarded
    for packet in packets:
        receive(switch, packet)
    return switch


def _time(fn, packets):
    start = time.perf_counter()
    fn(packets)
    return time.perf_counter() - start


def _delivered(switch):
    link = switch.direct_links()[0]
    return link.stats.packets + link.queued_packets


def test_detectorless_switch_allocates_nothing_in_the_new_subsystem():
    packets = packet_stream()
    switch = make_switch()  # construction may allocate; the path must not
    receive = switch.receive
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for packet in packets:
            receive(packet)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert _delivered(switch) == N
    new_files = ("repro/fabric/detector.py", "repro/fabric/flowcut.py",
                 "repro/trace/groundtruth.py")
    subsystem_allocs = [
        stat for stat in after.compare_to(before, "filename")
        if any(f in stat.traceback[0].filename.replace("\\", "/")
               for f in new_files)
        and stat.size_diff > 0
    ]
    assert subsystem_allocs == [], (
        f"detector-less forwarding allocated in the fabric-telemetry "
        f"subsystem: {subsystem_allocs}")


def test_detector_guard_overhead_under_10pct(benchmark):
    packets = packet_stream()
    rounds = 7
    guarded_times, inlined_times = [], []
    drive_switch(packets)  # warm caches before timing
    drive_inlined(packets)
    for _ in range(rounds):  # interleave to share any machine noise
        guarded_times.append(_time(drive_switch, packets))
        inlined_times.append(_time(drive_inlined, packets))
    best_guarded = min(guarded_times)
    best_inlined = min(inlined_times)

    switch = benchmark.pedantic(drive_switch, args=(packets,),
                                rounds=1, iterations=1)
    assert _delivered(switch) == N
    assert switch.unroutable == 0

    ratio = best_guarded / best_inlined
    show("Microbench — detector guard overhead on Switch.receive "
         "(detector=None)",
         f"  guarded receive: {N / best_guarded / 1e3:.0f} kpps;  "
         f"hand-inlined: {N / best_inlined / 1e3:.0f} kpps  "
         f"(best of {rounds} interleaved rounds)\n"
         f"  guard ratio: {ratio:.3f}x  (bound: 1.10x)")
    assert ratio <= 1.10, (
        f"disabled-detector guard costs {100 * (ratio - 1):.1f}% "
        f"over inline forwarding")

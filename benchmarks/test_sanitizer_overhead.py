"""JSAN overhead guard: disabled sanitizing must be free on the hot path.

The contract (docs/analysis.md, mirroring the tracing guard in
``test_trace_overhead.py``): with no sanitizer installed, the
``JugglerGRO.receive`` hot path pays one ``if sanitizer is not None`` test
per hook and allocates nothing from ``repro.analysis``.  The guard is
two-fold:

1. **No allocation**: ``tracemalloc`` sees zero allocations from
   ``repro/analysis/`` while driving the disabled engine through the same
   workload as ``test_core_microbench``.
2. **< 5% runtime**: best-of-interleaved-rounds of the disabled path is at
   most 5% of the way past the enabled path, which pays for the real
   invariant audits on top of the same guards.
"""

import time
import tracemalloc

from conftest import show
from test_core_microbench import N, shuffled_stream

from repro.analysis import runtime
from repro.analysis.sanitizer import Sanitizer
from repro.core import JugglerConfig, JugglerGRO


def _drive(gro, packets):
    for i, packet in enumerate(packets):
        gro.receive(packet, now=i * 100)
        if i % 64 == 0:
            gro.poll_complete(now=i * 100)
    gro.flush_all(now=N * 100)
    return gro


def _drive_disabled(packets):
    # Pin JSAN off even when the suite itself runs under JUGGLER_SANITIZE=1:
    # this benchmark measures the disabled path's cost specifically.
    gro = JugglerGRO(lambda s: None, config=JugglerConfig())
    gro.attach_sanitizer(None)
    return _drive(gro, packets)


def _drive_enabled(packets):
    gro = JugglerGRO(lambda s: None, config=JugglerConfig())
    gro.attach_sanitizer(Sanitizer())
    return _drive(gro, packets)


def _time(fn, packets):
    start = time.perf_counter()
    fn(packets)
    return time.perf_counter() - start


def test_disabled_sanitizer_allocates_nothing():
    packets = shuffled_stream()
    runtime.uninstall()  # keep construction off the env-probe path too
    try:
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            gro = _drive_disabled(packets)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
    finally:
        runtime.reset()
    assert gro.stats.packets == N
    assert gro.sanitizer is None
    sanitizer_allocs = [
        stat for stat in after.compare_to(before, "filename")
        if "repro/analysis/" in stat.traceback[0].filename.replace("\\", "/")
        and stat.size_diff > 0
    ]
    assert sanitizer_allocs == [], (
        f"disabled-JSAN run allocated in repro.analysis: {sanitizer_allocs}")


def test_disabled_sanitizer_overhead_under_5pct(benchmark):
    packets = shuffled_stream()
    rounds = 5
    disabled, enabled = [], []
    _drive_disabled(packets)  # warm caches before timing
    for _ in range(rounds):   # interleave to share any machine noise
        disabled.append(_time(_drive_disabled, packets))
        enabled.append(_time(_drive_enabled, packets))
    best_disabled = min(disabled)
    best_enabled = min(enabled)

    gro = benchmark.pedantic(_drive_disabled, args=(packets,),
                             rounds=1, iterations=1)
    assert gro.stats.packets == N

    show("Microbench — JSAN overhead on the receive path",
         f"  disabled: {N / best_disabled / 1e3:.0f} kpps;  "
         f"sanitized: {N / best_enabled / 1e3:.0f} kpps  "
         f"(best of {rounds} interleaved rounds)\n"
         f"  sanitizing pays {100 * (best_enabled / best_disabled - 1):.1f}% "
         f"for the invariant audits")
    # The enabled path runs the same guards *plus* full invariant audits.
    # If the guards alone cost < 5%, the disabled path must land at or
    # below the enabled path (5% tolerance for timer noise).
    assert best_disabled <= 1.05 * best_enabled

"""Ablation: the build-up phase (Remark 1).

Paper: learning ``seq_next`` across the first polling interval (letting it
move backwards) yields ~6% fewer segments up the stack.
"""

from conftest import show, run_once

from repro.experiments.ablations import (
    AblationParams,
    render,
    run_buildup_ablation,
)

PARAMS = AblationParams(reorder_delay_us=60, duration_ms=25)


def test_ablation_buildup_phase(benchmark):
    points = run_once(benchmark, run_buildup_ablation, PARAMS)
    show("Ablation — build-up phase on/off "
         "(paper: ~6% fewer segments with the optimisation)",
         render(points))
    on, off = points
    assert on.segments_per_packet < off.segments_per_packet
    saving = 1.0 - on.segments_per_packet / off.segments_per_packet
    assert saving > 0.03  # at least a few percent, as the paper reports
    assert on.throughput_gbps >= off.throughput_gbps - 0.2

"""Steering-layer overhead guard: plain RSS must stay free on the NIC path.

Acceptance contract for the pluggable steering front-end: when the policy
is plain :class:`RssSteering` (the default, and the configuration every
fig12–15 reproduction runs), delegating the demux through the policy object
must cost nothing measurable over the NIC's historical inline
``rss_hash() % n`` dispatch.  Two-fold, mirroring ``test_trace_overhead``:

1. **No allocation**: ``tracemalloc`` sees zero allocations from
   ``repro/steer/`` files while ``Nic.receive`` drives a multi-flow packet
   stream under the default RSS policy (no tracer installed).
2. **≤ 10% runtime**: best-of-interleaved-rounds of ``Nic.receive`` under
   ``RssSteering`` lands within 10% of a hand-inlined
   ``queues[flow.rss_hash() % n].enqueue`` loop over the same queues and
   the same packet stream.
"""

import time
import tracemalloc

from conftest import show

from repro.core import StandardGRO
from repro.net import FiveTuple, MSS, Packet
from repro.nic import Nic, NicConfig
from repro.sim import Engine

N = 40_000
FLOWS = 64
QUEUES = 8


def packet_stream():
    flows = [FiveTuple(1 + (i % 16), 99, 5000 + i, 80) for i in range(FLOWS)]
    return [Packet(flows[i % FLOWS], (i // FLOWS) * MSS, MSS)
            for i in range(N)]


def make_nic():
    engine = Engine()
    # Huge ring + time-only coalescing: nothing fires mid-run, so the
    # timing loop measures pure demux + enqueue.
    return Nic(engine, lambda s: None, lambda d: StandardGRO(d),
               NicConfig(num_queues=QUEUES, ring_size=N + 1,
                         coalesce_ns=10 ** 12))


def drive_policy(packets):
    nic = make_nic()
    receive = nic.receive
    for packet in packets:
        receive(packet)
    return nic


def drive_inlined(packets):
    """The pre-steering NIC demux, hand-inlined over the same queues."""
    nic = make_nic()
    queues = nic.queues
    n = QUEUES
    for packet in packets:
        queues[packet.flow.rss_hash() % n].enqueue(packet)
    return nic


def _time(fn, packets):
    start = time.perf_counter()
    fn(packets)
    return time.perf_counter() - start


def test_rss_steering_allocates_nothing_on_the_data_path():
    packets = packet_stream()
    nic = make_nic()  # construction (policy bind) may allocate; path not
    receive = nic.receive
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for packet in packets:
            receive(packet)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert sum(q.backlog for q in nic.queues) == N
    steer_allocs = [
        stat for stat in after.compare_to(before, "filename")
        if "repro/steer/" in stat.traceback[0].filename.replace("\\", "/")
        and stat.size_diff > 0
    ]
    assert steer_allocs == [], (
        f"RSS data path allocated in repro.steer: {steer_allocs}")


def test_rss_steering_overhead_under_10pct(benchmark):
    packets = packet_stream()
    rounds = 7
    policy_times, inlined_times = [], []
    drive_policy(packets)  # warm caches before timing
    drive_inlined(packets)
    for _ in range(rounds):  # interleave to share any machine noise
        policy_times.append(_time(drive_policy, packets))
        inlined_times.append(_time(drive_inlined, packets))
    best_policy = min(policy_times)
    best_inlined = min(inlined_times)

    nic = benchmark.pedantic(drive_policy, args=(packets,),
                             rounds=1, iterations=1)
    assert sum(q.backlog for q in nic.queues) == N
    # Both paths steer identically packet-for-packet.
    reference = drive_inlined(packets)
    assert [q.backlog for q in nic.queues] == \
        [q.backlog for q in reference.queues]

    ratio = best_policy / best_inlined
    show("Microbench — steering layer overhead on Nic.receive (plain RSS)",
         f"  policy object: {N / best_policy / 1e3:.0f} kpps;  "
         f"hand-inlined: {N / best_inlined / 1e3:.0f} kpps  "
         f"(best of {rounds} interleaved rounds)\n"
         f"  delegation ratio: {ratio:.3f}x  (bound: 1.10x)")
    assert ratio <= 1.10, (
        f"RssSteering delegation costs {100 * (ratio - 1):.1f}% "
        f"over inline demux")

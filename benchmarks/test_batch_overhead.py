"""Columnar fast-path overhead guards (ROADMAP item 2 acceptance).

Two contracts for the struct-of-arrays receive path:

1. **No per-packet allocation**: driving native batches of in-order
   mergeable rows through ``JugglerGRO.receive_batch`` constructs zero
   ``Packet`` objects — proven by the ``next_pid()`` allocation watermark
   (pool resets consume pids too, so recycling cannot hide one) and
   cross-checked by ``tracemalloc`` seeing no allocations from
   ``repro/net/packet.py``.
2. **Degenerate batches stay cheap**: handing the engine length-1 native
   batches (the worst case for the batch entry point — all dispatch, no
   amortization) costs at most 1.10x per-packet ``receive`` over the same
   warmed flows.
"""

import time
import tracemalloc

from conftest import show

from repro.core import JugglerConfig, JugglerGRO
from repro.core.phases import Phase
from repro.net import FiveTuple, MSS, Packet
from repro.net.batch import PacketBatch
from repro.net.packet import next_pid
from repro.sim import US

N = 20_000
FLOWS = 4
BATCH = 32


def warmed_engine():
    """A JugglerGRO with FLOWS flows marched into ACTIVE_MERGE."""
    g = JugglerGRO(lambda s: None, JugglerConfig())
    flows = [FiveTuple(1 + i, 2, 7000 + i, 80) for i in range(FLOWS)]
    now = 0
    for flow in flows:
        for k in range(3):
            g.receive(Packet(flow, k * MSS, MSS), now)
    g.poll_complete(now)
    now += 51 * US
    g.check_timeouts(now)
    for flow in flows:
        entry = g.table.lookup(flow)
        assert entry.phase in (Phase.ACTIVE_MERGE, Phase.POST_MERGE)
    return g, flows, now


def inorder_batches(flows, start_seq, *, n=N, batch=BATCH):
    """Sealed native batches: per-flow in-order MSS runs, round-robin."""
    seqs = {f: start_seq for f in flows}
    batches = []
    i = 0
    while i < n:
        b = PacketBatch()
        for _ in range(min(batch, n - i)):
            f = flows[i % len(flows)]
            b.append_wire(f, seqs[f], MSS)
            seqs[f] += MSS
            i += 1
        batches.append(b.seal())
    return batches


def test_columnar_fast_path_allocates_no_packets():
    g, flows, now = warmed_engine()
    batches = inorder_batches(flows, 3 * MSS)
    watermark = next_pid()
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for b in batches:
            now += 100 * BATCH
            g.receive_batch(b, now)
            g.poll_complete(now)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert g.soa_fast_packets == N
    assert g.soa_fallback_packets == 0
    assert g.stats.packets == N + 3 * FLOWS
    # The pid watermark moved by exactly our own probe call: no Packet was
    # constructed (or pool-reset) anywhere in the columnar drive.
    assert next_pid() == watermark + 1, "fast path constructed a Packet"
    packet_allocs = [
        stat for stat in after.compare_to(before, "filename")
        if "repro/net/packet.py" in stat.traceback[0].filename.replace("\\", "/")
        and stat.size_diff > 0
    ]
    assert packet_allocs == [], (
        f"columnar fast path allocated in packet.py: {packet_allocs}")


def _drive_receive(g, packets, now):
    receive = g.receive
    poll = g.poll_complete
    for p in packets:
        now += 100
        receive(p, now)
        poll(now)


def _drive_batches(g, batches, now):
    receive_batch = g.receive_batch
    poll = g.poll_complete
    for b in batches:
        now += 100
        receive_batch(b, now)
        poll(now)


def test_single_packet_degenerate_batch_overhead_under_10pct(benchmark):
    rounds = 7
    obj_times, soa_times = [], []

    def timed(drive, build_inputs):
        g, flows, now = warmed_engine()
        inputs = build_inputs(flows)
        start = time.perf_counter()
        drive(g, inputs, now)
        elapsed = time.perf_counter() - start
        assert g.stats.packets == N + 3 * FLOWS
        return elapsed, g

    def obj_inputs(flows):
        seqs = {f: 3 * MSS for f in flows}
        out = []
        for i in range(N):
            f = flows[i % len(flows)]
            out.append(Packet(f, seqs[f], MSS))
            seqs[f] += MSS
        return out

    def soa_inputs(flows):
        return inorder_batches(flows, 3 * MSS, batch=1)

    timed(_drive_receive, obj_inputs)  # warm caches before timing
    timed(_drive_batches, soa_inputs)
    for _ in range(rounds):  # interleave to share any machine noise
        obj_times.append(timed(_drive_receive, obj_inputs)[0])
        soa_times.append(timed(_drive_batches, soa_inputs)[0])
    best_obj = min(obj_times)
    best_soa = min(soa_times)

    _, g = benchmark.pedantic(timed, args=(_drive_batches, soa_inputs),
                              rounds=1, iterations=1)
    assert g.soa_fast_packets == N

    ratio = best_soa / best_obj
    show("Microbench — degenerate length-1 native batches vs receive()",
         f"  receive(): {N / best_obj / 1e3:.0f} kpps;  "
         f"1-row batches: {N / best_soa / 1e3:.0f} kpps  "
         f"(best of {rounds} interleaved rounds)\n"
         f"  degenerate-batch ratio: {ratio:.3f}x  (bound: 1.10x)")
    assert ratio <= 1.10, (
        f"length-1 batches cost {100 * (ratio - 1):.1f}% over receive()")

"""Figure 20: RPC tails under per-flow / per-TSO / per-packet balancing."""

from conftest import show, run_once

from repro.experiments.fig20_load_balancing import (
    Fig20Params,
    LbPolicy,
    render,
    run,
)

PARAMS = Fig20Params(loads_pct=(25, 50, 75, 90), warmup_ms=6, measure_ms=20)


def test_fig20_load_balancing_tails(benchmark):
    result = run_once(benchmark, run, PARAMS)
    show("Figure 20 — RPC completion tails vs load "
         "(paper: per-packet >= 2x better small-RPC p99 than ECMP past 50% "
         "load; beats per-TSO by a growing margin)",
         render(result))
    by = {(p.policy, p.load_pct): p for p in result.points}
    for load in (75, 90):
        ecmp = by[(LbPolicy.ECMP, load)]
        tso = by[(LbPolicy.PER_TSO, load)]
        spray = by[(LbPolicy.PER_PACKET, load)]
        # Small RPC tails: per-packet < per-TSO < ECMP.
        assert spray.small_p99_us < tso.small_p99_us
        assert tso.small_p99_us < ecmp.small_p99_us
        # Large RPC tails order the same way (ECMP pins elephants).
        assert spray.large_p99_ms < ecmp.large_p99_ms
    # The headline: >= 2x at 90% load for the small RPCs.
    assert (by[(LbPolicy.ECMP, 90)].small_p99_us
            > 2.0 * by[(LbPolicy.PER_PACKET, 90)].small_p99_us)
    # At low load the typical experience converges (ECMP's *tail* stays
    # worse even at 25% — a hash-pinned elephant congests its one uplink).
    low_medians = [by[(p, 25)].small_p50_us for p in
                   (LbPolicy.ECMP, LbPolicy.PER_TSO, LbPolicy.PER_PACKET)]
    assert max(low_medians) < 1.3 * min(low_medians)

"""Table 2: all six flushing conditions observed on one engine."""

from conftest import show, run_once

from repro.core import FlushReason, JugglerConfig, JugglerGRO
from repro.net import FiveTuple, MSS, Packet, TcpFlags
from repro.net.constants import MAX_GRO_SEGMENT
from repro.sim.time import US

FLOW = FiveTuple(1, 2, 1000, 80)


def exercise_all_conditions():
    sink = []
    gro = JugglerGRO(sink.append, JugglerConfig(inseq_timeout=15 * US,
                                                ofo_timeout=50 * US))
    now = 0
    # Establish the flow.
    gro.receive(Packet(FLOW, 0, MSS), now)
    gro.check_timeouts(20 * US)                     # INSEQ_TIMEOUT
    # RETRANSMISSION: wholly below seq_next.
    gro.receive(Packet(FLOW, 0, MSS), 25 * US)
    # SEGMENT_FULL: a full 64 KB in sequence.
    seq = MSS
    for _ in range(MAX_GRO_SEGMENT // MSS + 1):
        gro.receive(Packet(FLOW, seq, MSS), 30 * US)
        seq += MSS
    # FLAGS: push.
    gro.receive(Packet(FLOW, seq, MSS, flags=TcpFlags.ACK | TcpFlags.PSH),
                35 * US)
    seq += MSS
    # UNMERGEABLE: CE-marked next packet.
    gro.receive(Packet(FLOW, seq, MSS), 40 * US)
    gro.receive(Packet(FLOW, seq + MSS, MSS, ce=True), 41 * US)
    gro.check_timeouts(60 * US)
    seq += 2 * MSS
    # OFO_TIMEOUT: a hole that never fills.
    gro.receive(Packet(FLOW, seq + 2 * MSS, MSS), 70 * US)
    gro.check_timeouts(200 * US)
    return gro.stats.flush_reasons


def test_tab02_all_conditions(benchmark):
    reasons = run_once(benchmark, exercise_all_conditions)
    table2 = [
        FlushReason.RETRANSMISSION,
        FlushReason.SEGMENT_FULL,
        FlushReason.FLAGS,
        FlushReason.UNMERGEABLE,
        FlushReason.INSEQ_TIMEOUT,
        FlushReason.OFO_TIMEOUT,
    ]
    for reason in table2:
        assert reasons.get(reason, 0) > 0, f"{reason} never fired"
    body = "\n".join(f"  {r.value:20s} fired {reasons[r]}x" for r in table2)
    show("Table 2 — flushing conditions (all six exercised)", body)

"""§3.1: linked-list batching costs ~50% more CPU on in-order traffic."""

from conftest import show, run_once

from repro.experiments.sec31_chained_gro_cost import (
    Sec31Params,
    chained_overhead_pct,
    render,
    run,
)
from repro.harness.experiment import GroKind

PARAMS = Sec31Params(warmup_ms=6, measure_ms=12)


def test_sec31_chained_batching_overhead(benchmark):
    points = run_once(benchmark, run, PARAMS)
    show("§3.1 — linked-list vs frags[] batching on in-order traffic "
         "(paper: chaining costs ~50% more CPU from cache misses)",
         render(points))
    overhead = chained_overhead_pct(points)
    assert 25.0 < overhead < 75.0
    by_kind = {p.kind: p for p in points}
    # All three engines move the same bytes; only the CPU bill differs.
    rates = [p.throughput_gbps for p in points]
    assert max(rates) - min(rates) < 0.5
    # Juggler on in-order traffic costs no more than vanilla GRO.
    assert (by_kind[GroKind.JUGGLER].total_pct
            <= by_kind[GroKind.VANILLA].total_pct + 3.0)

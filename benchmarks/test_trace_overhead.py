"""Tracing overhead guard: disabled tracing must be free on the hot path.

The contract (docs/observability.md): with no tracer installed, the
``JugglerGRO.receive`` hot path pays one ``if tracer is not None`` test per
hook and allocates no trace-event objects at all.  Since the
pre-instrumentation engine no longer exists to diff against, the guard is
two-fold:

1. **No allocation**: ``tracemalloc`` sees zero allocations from
   ``repro/trace/events.py`` while driving the disabled engine through the
   same workload as ``test_core_microbench``.
2. **< 5% runtime**: best-of-interleaved-rounds (the low-noise estimator)
   of the disabled path is at most 5% of the way past the enabled path
   (ring sink), which pays for real event construction and fan-out on top
   of the same guards — so the guards themselves cost under 5% at
   ``test_core_microbench`` packet rates.
"""

import time
import tracemalloc

from conftest import show
from test_core_microbench import N, drive, shuffled_stream

from repro.core import JugglerConfig, JugglerGRO
from repro.trace import RingBufferSink, Tracer


def _drive_disabled(packets):
    return drive(JugglerGRO, packets, config=JugglerConfig())


def _drive_enabled(packets):
    gro = JugglerGRO(lambda s: None, config=JugglerConfig())
    gro.attach_tracer(Tracer([RingBufferSink(1024)]))
    for i, packet in enumerate(packets):
        gro.receive(packet, now=i * 100)
        if i % 64 == 0:
            gro.poll_complete(now=i * 100)
    gro.flush_all(now=N * 100)
    return gro


def _time(fn, packets):
    start = time.perf_counter()
    fn(packets)
    return time.perf_counter() - start


def test_disabled_tracer_allocates_no_trace_events():
    packets = shuffled_stream()
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        gro = _drive_disabled(packets)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert gro.stats.packets == N
    assert gro.tracer is None
    trace_allocs = [
        stat for stat in after.compare_to(before, "filename")
        if "repro/trace/" in stat.traceback[0].filename.replace("\\", "/")
        and stat.size_diff > 0
    ]
    assert trace_allocs == [], (
        f"disabled-tracer run allocated in repro.trace: {trace_allocs}")


def test_disabled_tracer_overhead_under_5pct(benchmark):
    packets = shuffled_stream()
    rounds = 5
    disabled, enabled = [], []
    _drive_disabled(packets)  # warm caches before timing
    for _ in range(rounds):   # interleave to share any machine noise
        disabled.append(_time(_drive_disabled, packets))
        enabled.append(_time(_drive_enabled, packets))
    best_disabled = min(disabled)
    best_enabled = min(enabled)

    gro = benchmark.pedantic(_drive_disabled, args=(packets,),
                             rounds=1, iterations=1)
    assert gro.stats.packets == N

    show("Microbench — tracing overhead on the receive path",
         f"  disabled: {N / best_disabled / 1e3:.0f} kpps;  "
         f"enabled+ring: {N / best_enabled / 1e3:.0f} kpps  "
         f"(best of {rounds} interleaved rounds)\n"
         f"  enabled pays {100 * (best_enabled / best_disabled - 1):.1f}% "
         f"for event construction + fan-out")
    # The enabled path runs the same guards *plus* event construction and
    # sink fan-out.  If the guards alone cost < 5%, the disabled path must
    # land at or below the enabled path (5% tolerance for timer noise on
    # the best-of-rounds estimator).
    assert best_disabled <= 1.05 * best_enabled

"""Figure 16: active-list statistics on the realistic Clos workload."""

from conftest import show, run_once

from repro.experiments.fig16_active_list_histogram import (
    Fig16Params,
    render,
    run,
)

PARAMS = Fig16Params(warmup_ms=8, measure_ms=15)


def test_fig16_active_list_statistics(benchmark):
    points = run_once(benchmark, run, PARAMS)
    show("Figure 16 — active/loss-recovery list lengths on the Clos "
         "workload (paper: 40G avg < 1 & p99 < 5; 10G p99 < 6; loss list "
         "almost always empty)",
         render(points))
    at_40g, at_10g = points
    assert at_40g.mean_active < 3.0
    assert at_40g.p99_active <= 8
    assert at_40g.fraction_at_most_5 > 0.9
    assert at_10g.p99_active <= 10
    # The loss-recovery list is almost always empty (§5.2.2).
    assert at_40g.mean_loss_recovery < 0.5
    assert at_10g.mean_loss_recovery < 0.5

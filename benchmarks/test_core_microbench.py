"""Raw engine microbenchmarks: packets/second through each GRO variant.

Not a paper figure — a performance regression guard for the reproduction
itself (the simulator must stay fast enough to run the full grids).
"""

import random

from conftest import show

from repro.core import ChainedGRO, JugglerConfig, JugglerGRO, StandardGRO
from repro.net import FiveTuple, MSS, Packet
from repro.sim.time import US

FLOW = FiveTuple(1, 2, 1000, 80)
N = 20_000


def shuffled_stream(window=16):
    """A lightly reordered packet stream, regenerated per call."""
    rng = random.Random(9)
    order = list(range(N))
    for i in range(0, N - window, window):
        chunk = order[i:i + window]
        rng.shuffle(chunk)
        order[i:i + window] = chunk
    return [Packet(FLOW, i * MSS, MSS) for i in order]


def drive(engine_cls, packets, **kw):
    gro = engine_cls(lambda s: None, **kw)
    for i, packet in enumerate(packets):
        gro.receive(packet, now=i * 100)
        if i % 64 == 0:
            gro.poll_complete(now=i * 100)
    gro.flush_all(now=N * 100)
    return gro


def test_juggler_receive_path_speed(benchmark):
    packets = shuffled_stream()
    gro = benchmark.pedantic(
        drive, args=(JugglerGRO, packets),
        kwargs={"config": JugglerConfig()}, rounds=3, iterations=1)
    assert gro.stats.packets == N
    show("Microbench — JugglerGRO receive path",
         f"  processed {N} lightly-reordered packets; "
         f"batching {gro.stats.batching_extent:.1f} MTUs/segment")


def test_standard_gro_receive_path_speed(benchmark):
    packets = shuffled_stream()
    gro = benchmark.pedantic(drive, args=(StandardGRO, packets),
                             rounds=3, iterations=1)
    assert gro.stats.packets == N


def test_chained_gro_receive_path_speed(benchmark):
    packets = shuffled_stream()
    gro = benchmark.pedantic(drive, args=(ChainedGRO, packets),
                             rounds=3, iterations=1)
    assert gro.stats.packets == N

"""Figure 1: bandwidth guarantee via dynamic packet scheduling."""

from conftest import show, run_once

from repro.experiments.fig01_bandwidth_guarantee import (
    Fig01Params,
    render,
    run,
)
from repro.harness.experiment import GroKind

PARAMS = Fig01Params(before_ms=25, after_ms=60, ofo_timeout_us=200,
                     sample_ms=5)


def test_fig01_guarantee_time_series(benchmark):
    results = run_once(benchmark, run, PARAMS)
    show("Figure 1 — 20 Gb/s guarantee among 8 flows on a 40G link "
         "(paper: Juggler converges quickly and holds steady; vanilla is "
         "below target and far more variable)",
         render(results))
    juggler = next(r for r in results if r.kind is GroKind.JUGGLER)
    vanilla = next(r for r in results if r.kind is GroKind.VANILLA)
    # Juggler converges onto the guarantee and holds it steadily.
    assert abs(juggler.after_mean() - PARAMS.guarantee_gbps) < 2.0
    assert juggler.after_stdev() < 1.5
    # The vanilla kernel undershoots and wobbles more.
    assert vanilla.after_mean() < juggler.after_mean() - 2.0
    assert vanilla.after_stdev() > juggler.after_stdev()
    # Before the controller starts, nobody is near the guarantee.
    assert juggler.before_mean() < PARAMS.guarantee_gbps * 0.6

"""CC-layer overhead guard: the Reno policy split must stay free.

Acceptance contract for the mechanism/policy split: with the default
``cc="reno"`` (the configuration every fig12–15 reproduction runs),
delegating window decisions through the :class:`CongestionControl` object
must cost nothing measurable over the historical monolithic sender whose
Reno arithmetic was inlined into the ACK path.  Two-fold, mirroring
``test_steer_overhead``:

1. **No allocation**: ``tracemalloc`` sees no per-ACK retained allocations
   from ``repro/cc/`` files while the sender processes a steady ACK clock
   (no tracer installed).  A fixed handful of live scalars — the current
   ``cwnd``/``srtt`` ints the policy holds — is allowed; growth with the
   ACK count is not.
2. **≤ 10% runtime**: best-of-interleaved-rounds of the delegating sender
   lands within 10% of a hand-inlined replica that runs the same mechanism
   code with the Reno window arithmetic spliced directly into
   ``_on_new_ack`` (the pre-split shape).
"""

import time
import tracemalloc

from conftest import show

from repro.net import FiveTuple, MSS, Packet
from repro.sim import Engine
from repro.tcp import TcpConfig
from repro.tcp.sender import TcpSender

FLOW = FiveTuple(1, 2, 4000, 80)
N_ACKS = 30_000
#: Advertised window: caps the sender at a steady one-MSS-out-per-MSS-acked
#: clock so every ACK exercises window arithmetic + burst emission.
WINDOW = 64 * MSS


class TxSink:
    """Host stub: swallows transmissions, counts packets."""

    def __init__(self):
        self.packets = 0

    def register_handler(self, flow, handler):
        pass

    def unregister_handler(self, flow):
        pass

    def transmit(self, packet):
        self.packets += 1


class InlinedRenoSender(TcpSender):
    """The pre-split monolith: Reno window arithmetic inlined into the
    ACK path, no policy object consulted anywhere the drive touches."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._i_cwnd = self.config.init_cwnd
        self._i_ssthresh = 1 << 62
        self._i_window_acked = 0
        self._i_window_end = 0

    def _usable_window(self):
        window = min(self._i_cwnd, self.peer_rwnd)
        return self.snd_una + window - self.snd_nxt

    def _pacing_rate(self):
        return self.pacing_gbps

    def _on_new_ack(self, ack):
        acked = ack - self.snd_una
        self.snd_una = ack
        if ack > self.snd_nxt:
            self.snd_nxt = ack
        self.dup_acks = 0
        self._rto_backoff = 1
        self._sample_rtt(ack)
        self.sacked = [(s, e) for s, e in self.sacked if e > ack]
        if self.high_rexmit < ack:
            self.high_rexmit = ack
        if self.in_recovery:
            if ack >= self.recover:
                self.in_recovery = False
                self._i_cwnd = self._i_ssthresh
            else:
                self._sack_retransmit()
        elif self._i_cwnd < self._i_ssthresh:
            self._i_cwnd += acked
        else:
            self._i_cwnd += max(1, MSS * acked // self._i_cwnd)
        # The DCTCP window bookkeeping the old sender always ran (ecn
        # defaults on; no marks arrive in this drive).
        self._i_window_acked += acked
        if ack >= self._i_window_end:
            self._i_window_acked = 0
            self._i_window_end = self.snd_nxt
        if self.flight_size > 0:
            self._arm_rto()
        else:
            self._rto_timer.cancel()


def ack_stream():
    rflow = FLOW.reversed()
    return [Packet(rflow, 0, 0, ack=(i + 1) * MSS) for i in range(N_ACKS)]


def make_sender(cls):
    sender = cls(Engine(), TxSink(), FLOW, TcpConfig(rx_buffer=WINDOW))
    sender.send((N_ACKS + 128) * MSS)
    return sender


def drive(cls, acks):
    sender = make_sender(cls)
    on_ack = sender._on_ack
    for packet in acks:
        on_ack(packet)
    return sender


def _time(cls, acks):
    start = time.perf_counter()
    drive(cls, acks)
    return time.perf_counter() - start


def test_reno_ack_path_retains_nothing_in_repro_cc():
    acks = ack_stream()
    sender = make_sender(TcpSender)
    for packet in acks[:2000]:  # warm: leave slow start, settle steady state
        sender._on_ack(packet)
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for packet in acks[2000:]:
            sender._on_ack(packet)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert sender.snd_una == N_ACKS * MSS
    retained = sum(
        stat.size_diff for stat in after.compare_to(before, "filename")
        if "repro/cc/" in stat.traceback[0].filename.replace("\\", "/")
        and stat.size_diff > 0
    )
    # 28k ACKs processed under trace: anything per-ACK would retain
    # megabytes.  The allowance covers the policy's live scalars (the
    # current cwnd/alpha values), which are replaced, not accumulated.
    assert retained <= 512, (
        f"Reno ack path retained {retained} bytes in repro.cc")


def test_reno_policy_indirection_under_10pct(benchmark):
    acks = ack_stream()
    rounds = 7
    policy_times, inlined_times = [], []
    drive(TcpSender, acks)  # warm caches before timing
    drive(InlinedRenoSender, acks)
    for _ in range(rounds):  # interleave to share any machine noise
        policy_times.append(_time(TcpSender, acks))
        inlined_times.append(_time(InlinedRenoSender, acks))
    best_policy = min(policy_times)
    best_inlined = min(inlined_times)

    sender = benchmark.pedantic(drive, args=(TcpSender, acks),
                                rounds=1, iterations=1)
    reference = drive(InlinedRenoSender, acks)
    # Both paths run the identical window trajectory packet-for-packet.
    assert sender.snd_una == reference.snd_una == N_ACKS * MSS
    assert sender.cwnd == reference._i_cwnd
    assert sender._host.packets == reference._host.packets

    ratio = best_policy / best_inlined
    show("Microbench — CC policy indirection on the Reno ACK path",
         f"  policy object: {N_ACKS / best_policy / 1e3:.0f} kacks/s;  "
         f"hand-inlined: {N_ACKS / best_inlined / 1e3:.0f} kacks/s  "
         f"(best of {rounds} interleaved rounds)\n"
         f"  delegation ratio: {ratio:.3f}x  (bound: 1.10x)")
    assert ratio <= 1.10, (
        f"RenoCC delegation costs {100 * (ratio - 1):.1f}% "
        f"over the inlined ack path")

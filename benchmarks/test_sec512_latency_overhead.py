"""§5.1.2: Juggler adds no latency to short RPCs without reordering."""

import pytest

from conftest import show, run_once

from repro.experiments.sec512_latency_overhead import (
    Sec512Params,
    render,
    run,
)

PARAMS = Sec512Params(duration_ms=40)


def test_sec512_median_latency_unchanged(benchmark):
    points = run_once(benchmark, run, PARAMS)
    show("§5.1.2 — 150B RPC latency, idle network "
         "(paper: median identical with and without Juggler)",
         render(points))
    juggler, vanilla = points
    assert juggler.median_us == pytest.approx(vanilla.median_us, rel=0.02)
    assert juggler.p99_us == pytest.approx(vanilla.p99_us, rel=0.10)
    assert juggler.rpcs > 1000

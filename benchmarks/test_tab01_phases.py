"""Table 1: the five phases in the lifetime of a flow.

Verifies the full lifecycle walk (initial → build-up → active merging ⇄
post merge, plus loss recovery) and benchmarks the per-packet cost of the
receive path that implements it.
"""

from conftest import show, run_once

from repro.core import JugglerConfig, JugglerGRO, Phase
from repro.net import FiveTuple, MSS, Packet
from repro.sim.time import US

FLOW = FiveTuple(1, 2, 1000, 80)


def walk_lifecycle():
    """One flow through every phase; returns the observed phase sequence."""
    sink = []
    gro = JugglerGRO(sink.append, JugglerConfig(inseq_timeout=15 * US,
                                                ofo_timeout=50 * US))
    observed = []

    def phase():
        entry = gro.table.lookup(FLOW)
        return entry.phase if entry is not None else None

    gro.receive(Packet(FLOW, 0, MSS), now=0)          # initial -> build-up
    observed.append(phase())
    gro.check_timeouts(20 * US)                       # first flush
    gro.receive(Packet(FLOW, 2 * MSS, MSS), 25 * US)  # hole -> active merge
    observed.append(phase())
    gro.receive(Packet(FLOW, MSS, MSS), 30 * US)      # fills the hole
    gro.check_timeouts(46 * US)                       # inseq flush empties
    observed.append(phase())                          # -> post merge
    gro.receive(Packet(FLOW, 5 * MSS, MSS), 50 * US)  # hole again
    gro.check_timeouts(120 * US)                      # ofo -> loss recovery
    observed.append(phase())
    gro.receive(Packet(FLOW, 3 * MSS, 2 * MSS), 130 * US)  # hole filled
    observed.append(phase())
    return observed


def test_tab01_lifecycle(benchmark):
    observed = run_once(benchmark, walk_lifecycle)
    assert observed == [
        Phase.BUILD_UP,
        Phase.ACTIVE_MERGE,
        Phase.POST_MERGE,
        Phase.LOSS_RECOVERY,
        Phase.POST_MERGE,
    ]
    rows = "\n".join(f"  {i + 1}. {p.value}" for i, p in enumerate(observed))
    show("Table 1 — flow lifecycle phases (observed walk)",
         f"initial (transient)\n{rows}")

"""Figure 13: throughput vs ofo_timeout."""

from conftest import show, run_once

from repro.experiments.fig13_ofo_timeout_throughput import (
    Fig13Params,
    render,
    run,
)

PARAMS = Fig13Params(
    ofo_timeouts_us=(50, 150, 300, 500, 700, 900),
    reorder_delays_us=(250, 500, 750),
    warmup_ms=8,
    measure_ms=10,
)


def test_fig13_throughput_vs_ofo_timeout(benchmark):
    result = run_once(benchmark, run, PARAMS)
    show("Figure 13 — throughput vs ofo_timeout "
         "(paper: line rate once ofo_timeout >~ tau - tau0, tau0 = 125us)",
         render(result))
    for reorder_us in PARAMS.reorder_delays_us:
        series = {p.ofo_timeout_us: p for p in result.series(reorder_us)}
        # Ample timeout: line rate, no premature flushes or recoveries.
        assert series[900].throughput_gbps > 9.0
        assert series[900].ofo_flushes == 0
        # Starved timeout: premature OOO flushes and lost throughput.
        assert series[50].ofo_flushes > 0
        assert series[50].throughput_gbps < 0.95 * series[900].throughput_gbps
    # More reordering needs a larger timeout: the 250us curve has recovered
    # by 300us while the 750us curve has not.
    assert result.series(250)[2].throughput_gbps > 9.0  # ofo=300
    assert result.series(750)[2].throughput_gbps < 9.0  # ofo=300

"""Fault-layer overhead guard: disabled chaos must be free on the hot path.

The contract (docs/faults.md, mirroring the tracing and JSAN guards):

1. **No plan, no layer**: with no fault plan supplied or installed, the
   testbed builder wires the packet path exactly as before — the receiver
   is the switch queues' direct sink and no ``FaultEngine`` exists.  Zero
   overhead by construction, which is what keeps ``bench --check`` green
   against ``BENCH_core.json``.
2. **No allocation while dormant**: a wrapped chain whose windows are
   closed forwards packets without allocating anything from
   ``repro/faults/`` (no rng draws, no copies, no bookkeeping objects).
3. **Dormant <= active**: best-of-interleaved-rounds of the dormant chain
   is at most 5% past the active chain, which pays for real draws and
   perturbation on top of the same per-packet guard.
"""

import random
import time
import tracemalloc

from conftest import show
from test_core_microbench import N, shuffled_stream

from repro.core import JugglerConfig, JugglerGRO
from repro.faults import runtime as faults_runtime
from repro.faults.controller import FaultEngine
from repro.faults.plan import FaultPlan
from repro.fabric.topology import build_netfpga_pair
from repro.sim.engine import Engine


def _wire_plan(at_us):
    """A three-stage wire chain whose windows open at ``at_us``."""
    return FaultPlan.from_dict({"name": "bench", "seed": 1, "faults": [
        {"name": "l", "kind": "loss", "at_us": at_us, "duration_us": 10 ** 9,
         "params": {"p": 0.01}},
        {"name": "d", "kind": "duplicate", "at_us": at_us,
         "duration_us": 10 ** 9, "params": {"p": 0.01}},
        {"name": "c", "kind": "corrupt", "at_us": at_us,
         "duration_us": 10 ** 9, "params": {"p": 0.005}},
    ]})


class GroSink:
    """Terminal sink driving the GRO exactly like ``test_core_microbench``."""

    def __init__(self):
        self.gro = JugglerGRO(lambda s: None, config=JugglerConfig())
        self.i = 0

    def receive(self, packet):
        now = self.i * 100
        self.gro.receive(packet, now=now)
        if self.i % 64 == 0:
            self.gro.poll_complete(now=now)
        self.i += 1


def _chain(active):
    engine = Engine()
    sink = GroSink()
    faults = FaultEngine(engine, _wire_plan(0 if active else 10 ** 12))
    head = faults.wrap(sink)
    faults.start()
    if active:
        engine.run_until(1)  # fire the window-open events
        assert head.active
    else:
        assert not head.active
    return head, sink


def _drive(head, sink, packets):
    for packet in packets:
        head.receive(packet)
    sink.gro.flush_all(now=N * 100)
    return sink.gro


def test_no_plan_leaves_the_packet_path_untouched():
    assert faults_runtime.current_plan() is None
    bed = build_netfpga_pair(Engine(), random.Random(0),
                             lambda cb: JugglerGRO(cb, JugglerConfig()))
    assert bed.faults is None
    # The switch queues deliver straight into the receiver: no injector,
    # no adapter, not one extra frame on the per-packet call stack.
    assert bed.switch.fast_queue.sink is bed.receiver
    assert bed.switch.slow_queue.sink is bed.receiver


def test_environment_only_plan_does_not_wrap_the_wire():
    plan = FaultPlan.from_dict({"faults": [
        {"name": "p", "kind": "pause_poll", "at_us": 0, "duration_us": 1}]})
    sink = GroSink()
    assert FaultEngine(Engine(), plan).wrap(sink) is sink


def test_dormant_chain_allocates_nothing():
    packets = shuffled_stream()
    head, sink = _chain(active=False)
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        gro = _drive(head, sink, packets)
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert gro.stats.packets == N
    assert head.dropped == head.duplicated == 0
    fault_allocs = [
        stat for stat in after.compare_to(before, "filename")
        if "repro/faults/" in stat.traceback[0].filename.replace("\\", "/")
        and stat.size_diff > 0
    ]
    assert fault_allocs == [], (
        f"dormant fault chain allocated in repro.faults: {fault_allocs}")


def test_dormant_chain_overhead_under_5pct(benchmark):
    def run_dormant(packets):
        head, sink = _chain(active=False)
        return _drive(head, sink, packets)

    def run_active(packets):
        head, sink = _chain(active=True)
        return _drive(head, sink, packets)

    def timed(fn, packets):
        start = time.perf_counter()
        fn(packets)
        return time.perf_counter() - start

    packets = shuffled_stream()
    rounds = 5
    dormant, active = [], []
    run_dormant(packets)  # warm caches before timing
    for _ in range(rounds):  # interleave to share any machine noise
        dormant.append(timed(run_dormant, packets))
        active.append(timed(run_active, packets))
    best_dormant = min(dormant)
    best_active = min(active)

    gro = benchmark.pedantic(run_dormant, args=(packets,),
                             rounds=1, iterations=1)
    assert gro.stats.packets == N

    show("Microbench — fault-layer overhead on the receive path",
         f"  dormant chain: {N / best_dormant / 1e3:.0f} kpps;  "
         f"active chain: {N / best_active / 1e3:.0f} kpps  "
         f"(best of {rounds} interleaved rounds)\n"
         f"  open windows pay "
         f"{100 * (best_active / best_dormant - 1):.1f}% for the draws "
         f"and perturbation")
    # The active chain runs the same per-packet guard *plus* rng draws and
    # real perturbation.  If the guard alone is cheap, the dormant path
    # must land at or below the active one (5% tolerance for timer noise).
    assert best_dormant <= 1.05 * best_active

"""Ablation: eviction-policy ordering (§4.3, Figure 8).

Evicting flows whose OOO queues have holes (active/loss-recovery first)
strands re-entering flows on timeouts; the paper's inactive-first order
avoids that.
"""

from conftest import show, run_once

from repro.experiments.ablations import (
    AblationParams,
    render,
    run_eviction_ablation,
)

PARAMS = AblationParams(duration_ms=30)


def test_ablation_eviction_policy(benchmark):
    points = run_once(benchmark, run_eviction_ablation, PARAMS)
    show("Ablation — eviction policy "
         "(paper's inactive-first vs FIFO vs adversarial active-first)",
         render(points))
    paper, fifo, inverted = points
    # The adversarial inversion fragments batching and churns the table.
    assert inverted.segments_per_packet > 1.1 * paper.segments_per_packet
    assert inverted.evictions > paper.evictions
    # Throughput differences sit near the noise floor at bench scale.
    assert inverted.throughput_gbps <= paper.throughput_gbps * 1.02
    # Plain FIFO lands close to the paper's policy here because old entries
    # are usually inactive anyway — the order matters under adversity.
    assert abs(fifo.segments_per_packet
               - paper.segments_per_packet) < 0.2

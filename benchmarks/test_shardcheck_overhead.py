"""OSAN overhead guard: disabled ownership hooks must stay free.

Acceptance contract for the shard ownership sanitizer (docs/shardcheck.md):
with OSAN uninstalled, every hook it added to the receive path — the
poll/hrtimer domain scoping in :class:`RxQueue`, the admission/transition
checks in :class:`GroTable`, the drain-time transfers in :class:`Nic` —
degrades to one attribute load and one identity test.  Two-fold, mirroring
``test_steer_overhead``:

1. **No allocation**: ``tracemalloc`` sees zero allocations from
   ``repro/analysis/`` files while a multi-queue NIC digests a poll-driven
   packet stream end to end (enqueue, interrupts, GRO admissions, drain) —
   the disabled hooks run on every one of those operations.
2. **≤ 10% runtime**: best-of-interleaved-rounds of ``Nic.receive`` under
   plain RSS (instrumented queues) lands within 10% of a hand-inlined
   ``queues[flow.rss_hash() % n].enqueue`` loop — the same bound the
   steering layer is held to, re-pinned with the ownership hooks in place.
"""

import time
import tracemalloc

import pytest
from conftest import show

from repro.analysis import runtime
from repro.core import JugglerConfig, JugglerGRO, StandardGRO
from repro.net import FiveTuple, MSS, Packet
from repro.nic import Nic, NicConfig
from repro.sim import Engine

N = 40_000
FLOWS = 64
QUEUES = 8


@pytest.fixture(autouse=True)
def _osan_uninstalled():
    """Measure the disabled hooks even when the suite runs JUGGLER_OSAN=1."""
    runtime.uninstall_osan()
    yield
    runtime.reset()


def packet_stream():
    flows = [FiveTuple(1 + (i % 16), 99, 5000 + i, 80) for i in range(FLOWS)]
    return [Packet(flows[i % FLOWS], (i // FLOWS) * MSS, MSS)
            for i in range(N)]


def make_nic(engine=None):
    engine = engine if engine is not None else Engine()
    # Huge ring + time-only coalescing: nothing fires mid-run, so the
    # timing loop measures pure demux + enqueue (with the OSAN hook slots
    # present on every queue).
    return Nic(engine, lambda s: None, lambda d: StandardGRO(d),
               NicConfig(num_queues=QUEUES, ring_size=N + 1,
                         coalesce_ns=10 ** 12))


def drive_policy(packets):
    nic = make_nic()
    receive = nic.receive
    for packet in packets:
        receive(packet)
    return nic


def drive_inlined(packets):
    """The pre-steering NIC demux, hand-inlined over the same queues."""
    nic = make_nic()
    queues = nic.queues
    n = QUEUES
    for packet in packets:
        queues[packet.flow.rss_hash() % n].enqueue(packet)
    return nic


def _time(fn, packets):
    start = time.perf_counter()
    fn(packets)
    return time.perf_counter() - start


def test_disabled_osan_allocates_nothing_end_to_end():
    """Polls, GRO admissions and drain all run their (dark) OSAN hooks."""
    engine = Engine()
    nic = Nic(engine, lambda s: None,
              lambda d: JugglerGRO(d, JugglerConfig(table_capacity=FLOWS)),
              NicConfig(num_queues=QUEUES, ring_size=N + 1,
                        coalesce_ns=10_000))
    packets = packet_stream()
    receive = nic.receive
    tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        for start in range(0, N, 4_000):
            for packet in packets[start:start + 4_000]:
                receive(packet)
            engine.run_until(engine.now + 50_000)  # interrupts + hrtimers
        nic.drain()
        after = tracemalloc.take_snapshot()
    finally:
        tracemalloc.stop()
    assert sum(q.delivered for q in nic.queues) == N
    osan_allocs = [
        stat for stat in after.compare_to(before, "filename")
        if "repro/analysis/" in stat.traceback[0].filename.replace("\\", "/")
        and stat.size_diff > 0
    ]
    assert osan_allocs == [], (
        f"disabled OSAN hooks allocated in repro.analysis: {osan_allocs}")


def test_instrumented_demux_overhead_under_10pct(benchmark):
    packets = packet_stream()
    rounds = 7
    policy_times, inlined_times = [], []
    drive_policy(packets)  # warm caches before timing
    drive_inlined(packets)
    for _ in range(rounds):  # interleave to share any machine noise
        policy_times.append(_time(drive_policy, packets))
        inlined_times.append(_time(drive_inlined, packets))
    best_policy = min(policy_times)
    best_inlined = min(inlined_times)

    nic = benchmark.pedantic(drive_policy, args=(packets,),
                             rounds=1, iterations=1)
    assert sum(q.backlog for q in nic.queues) == N

    ratio = best_policy / best_inlined
    show("Microbench — RSS demux with OSAN hooks present but disabled",
         f"  policy object: {N / best_policy / 1e3:.0f} kpps;  "
         f"hand-inlined: {N / best_inlined / 1e3:.0f} kpps  "
         f"(best of {rounds} interleaved rounds)\n"
         f"  instrumented ratio: {ratio:.3f}x  (bound: 1.10x)")
    assert ratio <= 1.10, (
        f"disabled OSAN hooks cost {100 * (ratio - 1):.1f}% "
        f"over inline demux")

"""Figure 18: achieved vs guaranteed bandwidth sweep."""

from conftest import show, run_once

from repro.experiments.fig18_bandwidth_sweep import (
    Fig18Params,
    render,
    run,
)
from repro.harness.experiment import GroKind

PARAMS = Fig18Params(guarantees_gbps=(5.0, 10.0, 15.0, 20.0, 25.0, 30.0),
                     ramp_ms=25, measure_ms=30)


def test_fig18_guarantee_sweep(benchmark):
    result = run_once(benchmark, run, PARAMS)
    show("Figure 18 — achieved vs guaranteed bandwidth "
         "(paper: Juggler tracks the guarantee up to the single-core CPU "
         "limit; vanilla falls short with high variance; ~5G fair-share "
         "floor)",
         render(result))
    juggler = {p.guarantee_gbps: p for p in result.series(GroKind.JUGGLER)}
    vanilla = {p.guarantee_gbps: p for p in result.series(GroKind.VANILLA)}
    # Juggler tracks the guarantee closely in the feasible region.
    for b in (5.0, 10.0, 15.0, 20.0, 25.0):
        assert abs(juggler[b].achieved_gbps - b) < 2.5, f"B={b}"
    # ... and flattens at the CPU knee rather than reaching 30.
    assert juggler[30.0].achieved_gbps < 29.5
    assert juggler[30.0].app_core_pct >= 99.0
    # Vanilla misses mid-range guarantees and is more variable there.
    assert vanilla[20.0].achieved_gbps < juggler[20.0].achieved_gbps - 2.0
    assert vanilla[25.0].achieved_gbps < juggler[25.0].achieved_gbps - 2.0
    assert vanilla[20.0].stdev_gbps > juggler[20.0].stdev_gbps
    # The fair-share floor: even a tiny guarantee yields ~5 Gb/s.
    assert vanilla[5.0].achieved_gbps > 3.0
    assert juggler[5.0].achieved_gbps > 3.0

"""Figure 15: 99th percentile of active flows vs concurrency."""

from conftest import show, run_once

from repro.experiments.fig15_active_flows import Fig15Params, render, run

PARAMS = Fig15Params(
    concurrent_flows=(64, 128, 256, 512),
    reorder_delays_us=(250, 500, 1000),
    warmup_ms=4,
    measure_ms=15,
)


def test_fig15_active_flow_count(benchmark):
    result = run_once(benchmark, run, PARAMS)
    show("Figure 15 — p99 active flows vs concurrency "
         "(paper: grows slowly with both axes, worst case < 35)",
         render(result))
    # The paper's worst-case bound: a few tens of flows, never hundreds.
    assert all(p.p99_active_flows < 48 for p in result.points)
    # More reordering -> more flows mid-flight to track (compare extremes).
    for nflows in PARAMS.concurrent_flows:
        mild = [p for p in result.series(250)
                if p.concurrent_flows == nflows][0]
        severe = [p for p in result.series(1000)
                  if p.concurrent_flows == nflows][0]
        assert severe.p99_active_flows >= mild.p99_active_flows
    # Tracking demand is a tiny fraction of the concurrent-flow count.
    worst = max(p.p99_active_flows for p in result.points)
    assert worst < 0.25 * max(PARAMS.concurrent_flows)

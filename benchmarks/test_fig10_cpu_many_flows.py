"""Figure 10: CPU overhead, 256 flows at 20 Gb/s."""

from conftest import show, run_once

from repro.experiments.cpu_overhead import (
    CpuOverheadParams,
    render,
    run_figure,
)

BASE = CpuOverheadParams(warmup_ms=10, measure_ms=14)


def test_fig10_many_flows_cpu(benchmark):
    results = run_once(benchmark, run_figure, 256, BASE)
    show("Figure 10 — CPU overhead, 256 flows "
         "(paper: same comparisons and results as the single-flow case)",
         render(results))
    vanilla_inorder, juggler_inorder, vanilla_reorder, juggler_reorder = results
    # Without reordering both kernels hit the target.
    assert vanilla_inorder.throughput_pct_of_target > 90
    assert juggler_inorder.throughput_pct_of_target > 90
    # With reordering the vanilla kernel collapses; Juggler does not.
    assert vanilla_reorder.throughput_pct_of_target < 60
    assert juggler_reorder.throughput_pct_of_target > 90
    # Juggler's CPU with reordering stays near the vanilla in-order cost.
    assert (juggler_reorder.rx_core_pct
            < vanilla_inorder.rx_core_pct + 10)
    assert (juggler_reorder.batching_extent
            > 5 * vanilla_reorder.batching_extent)

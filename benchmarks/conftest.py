"""Shared helpers for the per-figure benchmark harness.

Each bench reproduces one table or figure from the paper: it runs the
(scaled-down) experiment once under pytest-benchmark, prints the rows the
paper plots, and asserts the qualitative shape (who wins, where the knees
fall).  Absolute numbers are not expected to match the authors' hardware
testbed — see EXPERIMENTS.md for the side-by-side record.
"""

from __future__ import annotations


def show(title: str, body: str) -> None:
    """Print one figure's reproduced rows beneath a banner."""
    print()
    print("=" * 74)
    print(title)
    print("=" * 74)
    print(body)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once under the benchmark."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)

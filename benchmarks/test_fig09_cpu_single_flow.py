"""Figure 9: CPU overhead, single flow at 20 Gb/s."""

from conftest import show, run_once

from repro.experiments.cpu_overhead import (
    CpuOverheadParams,
    render,
    run_figure,
)

BASE = CpuOverheadParams(warmup_ms=8, measure_ms=14)


def test_fig09_single_flow_cpu(benchmark):
    results = run_once(benchmark, run_figure, 1, BASE)
    show("Figure 9 — CPU overhead, single flow "
         "(paper: vanilla app core saturates and loses throughput under "
         "reordering; Juggler matches the no-reordering baseline)",
         render(results))
    vanilla_inorder, juggler_inorder, vanilla_reorder, juggler_reorder = results
    # Without reordering, Juggler adds no CPU over vanilla.
    assert abs(juggler_inorder.rx_core_pct
               - vanilla_inorder.rx_core_pct) < 5.0
    assert juggler_inorder.throughput_pct_of_target > 95
    # With reordering, vanilla saturates its app core and loses throughput.
    assert vanilla_reorder.app_core_pct >= 99.0
    assert vanilla_reorder.throughput_pct_of_target < 70
    # Juggler sustains the target at near-baseline CPU (paper: < +10%).
    assert juggler_reorder.throughput_pct_of_target > 95
    assert juggler_reorder.rx_core_pct < vanilla_inorder.rx_core_pct + 10
    # The segment blow-up (paper: ~15x, ~40% OOO).
    assert (vanilla_reorder.batching_extent
            < juggler_reorder.batching_extent / 5)
    assert vanilla_reorder.ooo_segment_fraction > 0.3
    assert juggler_reorder.ooo_segment_fraction < 0.05

"""Extension: §2.1's pFabric/PIAS use case, which the paper motivates
("dynamically changing a flow's priority is a powerful technique for ...
flow scheduling") but does not evaluate.  Demonstrates that the scheduling
win exists only on a reordering-resilient stack."""

from conftest import show, run_once

from repro.experiments.flow_scheduling import (
    SchedulingParams,
    render,
    run,
)

PARAMS = SchedulingParams(warmup_ms=8, measure_ms=30)


def test_ext_flow_scheduling(benchmark):
    points = run_once(benchmark, run, PARAMS)
    show("Extension — PIAS-style flow scheduling over two priorities "
         "(§2.1 motivation: needs a reordering-resilient receiver)",
         render(points))
    baseline, pias_juggler, pias_vanilla = points
    # Prioritisation helps the mice tail substantially under Juggler...
    assert pias_juggler.mice_p99_us < 0.8 * baseline.mice_p99_us
    # ...while the vanilla receiver's reordering tax erases the benefit.
    assert pias_vanilla.mice_p99_us > 1.2 * pias_juggler.mice_p99_us
    # The usual SRPT trade: elephants pay a little.
    assert pias_juggler.elephant_p99_ms >= baseline.elephant_p99_ms
    assert baseline.mice_done > 100  # enough samples to mean something

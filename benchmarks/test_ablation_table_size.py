"""Ablation: gro_table capacity (§5.2.2).

Paper: "a small 8 entry gro_table" suffices for per-packet load balancing;
"even if the application requires Juggler to handle up to 1ms of
reordering, a 64 entry gro_table is adequate".
"""

from conftest import show, run_once

from repro.experiments.ablations import (
    AblationParams,
    render,
    run_table_size_ablation,
)

PARAMS = AblationParams(duration_ms=30)
CAPACITIES = (2, 4, 8, 16, 64)


def test_ablation_table_size(benchmark):
    points = run_once(benchmark, run_table_size_ablation, PARAMS, CAPACITIES)
    show("Ablation — gro_table capacity sweep "
         "(paper: small tables suffice; starving the table hurts)",
         render(points))
    by_cap = {int(p.label.split("=")[1]): p for p in points}
    # A starved table fragments batching relative to an ample one.
    assert (by_cap[2].segments_per_packet
            > 1.5 * by_cap[64].segments_per_packet)
    # Bigger tables never batch worse (monotone within noise).
    caps = sorted(by_cap)
    for small, large in zip(caps, caps[1:]):
        assert (by_cap[large].segments_per_packet
                <= by_cap[small].segments_per_packet * 1.1)
    # With 64 entries and 64 flows, eviction never has to fire.
    assert by_cap[64].evictions == 0
    assert by_cap[64].throughput_gbps >= by_cap[2].throughput_gbps

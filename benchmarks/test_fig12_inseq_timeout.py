"""Figure 12: batching efficiency vs inseq_timeout."""

from conftest import show, run_once

from repro.experiments.fig12_inseq_timeout import Fig12Params, render, run

PARAMS = Fig12Params(
    inseq_timeouts_us=(0, 20, 40, 52, 80, 100),
    reorder_delays_us=(250, 500, 750),
    warmup_ms=6,
    measure_ms=10,
)


def test_fig12_batching_vs_inseq_timeout(benchmark):
    result = run_once(benchmark, run, PARAMS)
    show("Figure 12 — batching extent & CPU vs inseq_timeout "
         "(paper: 25 -> ~44 MTUs, knee at 52us, independent of reordering)",
         render(result))
    for reorder_us in PARAMS.reorder_delays_us:
        series = result.series(reorder_us)
        by_timeout = {p.inseq_timeout_us: p for p in series}
        # Batching rises toward the 64 KB cap and the knee sits at ~52us.
        assert by_timeout[0].batching_extent < 30
        assert by_timeout[52].batching_extent > by_timeout[0].batching_extent
        assert by_timeout[100].batching_extent > 40
        gain_past_knee = (by_timeout[100].batching_extent
                          - by_timeout[80].batching_extent)
        gain_before_knee = (by_timeout[52].batching_extent
                            - by_timeout[20].batching_extent)
        assert gain_before_knee > gain_past_knee
        # CPU falls (or at least never rises) as batching improves.
        assert by_timeout[100].app_core_pct <= by_timeout[0].app_core_pct
        # Line rate throughout.
        assert all(p.throughput_gbps > 9.0 for p in series)

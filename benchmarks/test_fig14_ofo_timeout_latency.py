"""Figure 14: small-RPC tail latency vs ofo_timeout under loss."""

from conftest import show, run_once

from repro.experiments.fig14_ofo_timeout_latency import (
    Fig14Params,
    render,
    run,
)

PARAMS = Fig14Params(
    ofo_timeouts_us=(50, 100, 200, 400, 600, 800, 1000),
    reorder_delays_us=(250, 500, 750),
    duration_ms=150,
)


def test_fig14_latency_vs_ofo_timeout(benchmark):
    result = run_once(benchmark, run, PARAMS)
    show("Figure 14 — 10KB RPC p99 vs ofo_timeout at 0.1% loss "
         "(paper: flat below ~tau - tau0, grows beyond; see EXPERIMENTS.md "
         "for the low-ofo deviation of our SACK model)",
         render(result))
    for reorder_us in PARAMS.reorder_delays_us:
        series = {p.ofo_timeout_us: p for p in result.series(reorder_us)}
        assert all(p.rpcs_completed > 50
                   for p in result.series(reorder_us))
        # The floor scales with the reordering delay itself.
        assert series[1000].median_latency_us > reorder_us * 0.8
    # Oversizing the timeout never helps the tail: for the mildest
    # reordering, p99 at ofo=1000us is no better than at the knee.
    mild = {p.ofo_timeout_us: p for p in result.series(250)}
    assert mild[1000].p99_latency_us >= 0.9 * mild[400].p99_latency_us

"""Setup entry point (classic layout; see setup.cfg for all metadata)."""
from setuptools import setup

setup()

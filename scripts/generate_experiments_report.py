#!/usr/bin/env python3
"""Run every reproduced experiment at benchmark scale and print the rows.

Used to regenerate the measured columns of EXPERIMENTS.md:

    python scripts/generate_experiments_report.py > /tmp/experiments_raw.txt
"""

import time


def section(title):
    print(f"\n{'=' * 74}\n{title}\n{'=' * 74}")


def main():
    t0 = time.time()

    from repro.experiments import fig12_inseq_timeout as f12
    section("Figure 12")
    print(f12.render(f12.run(f12.Fig12Params(
        inseq_timeouts_us=(0, 20, 40, 52, 80, 100),
        reorder_delays_us=(250, 500, 750), warmup_ms=6, measure_ms=10))))

    from repro.experiments import fig13_ofo_timeout_throughput as f13
    section("Figure 13")
    print(f13.render(f13.run(f13.Fig13Params(
        ofo_timeouts_us=(50, 150, 300, 500, 700, 900),
        reorder_delays_us=(250, 500, 750), warmup_ms=8, measure_ms=10))))

    from repro.experiments import fig14_ofo_timeout_latency as f14
    section("Figure 14")
    print(f14.render(f14.run(f14.Fig14Params(
        ofo_timeouts_us=(50, 100, 200, 400, 600, 800, 1000),
        reorder_delays_us=(250, 500, 750), duration_ms=150))))

    from repro.experiments import cpu_overhead as co
    section("Figure 9 (single flow)")
    print(co.render(co.run_figure(1, co.CpuOverheadParams(
        warmup_ms=8, measure_ms=14))))
    section("Figure 10 (256 flows)")
    print(co.render(co.run_figure(256, co.CpuOverheadParams(
        warmup_ms=10, measure_ms=14))))

    from repro.experiments import fig15_active_flows as f15
    section("Figure 15")
    print(f15.render(f15.run(f15.Fig15Params(
        concurrent_flows=(64, 128, 256, 512),
        reorder_delays_us=(250, 500, 1000), warmup_ms=4, measure_ms=15))))

    from repro.experiments import fig16_active_list_histogram as f16
    section("Figure 16")
    print(f16.render(f16.run(f16.Fig16Params(warmup_ms=8, measure_ms=15))))

    from repro.experiments import fig01_bandwidth_guarantee as f01
    section("Figure 1")
    print(f01.render(f01.run(f01.Fig01Params(
        before_ms=25, after_ms=60, ofo_timeout_us=200, sample_ms=5))))

    from repro.experiments import fig18_bandwidth_sweep as f18
    section("Figure 18")
    print(f18.render(f18.run(f18.Fig18Params(ramp_ms=25, measure_ms=30))))

    from repro.experiments import fig20_load_balancing as f20
    section("Figure 20")
    print(f20.render(f20.run(f20.Fig20Params(
        loads_pct=(25, 50, 75, 90), warmup_ms=6, measure_ms=20))))

    from repro.experiments import sec31_chained_gro_cost as s31
    section("Section 3.1 (linked-list batching)")
    print(s31.render(s31.run(s31.Sec31Params(warmup_ms=6, measure_ms=12))))

    from repro.experiments import sec512_latency_overhead as s512
    section("Section 5.1.2 (latency overhead)")
    print(s512.render(s512.run(s512.Sec512Params(duration_ms=40))))

    from repro.experiments import ablations
    section("Ablation: build-up phase")
    print(ablations.render(ablations.run_buildup_ablation(
        ablations.AblationParams(reorder_delay_us=60, duration_ms=25))))
    section("Ablation: eviction policy")
    print(ablations.render(ablations.run_eviction_ablation(
        ablations.AblationParams(duration_ms=30))))
    section("Ablation: gro_table size")
    print(ablations.render(ablations.run_table_size_ablation(
        ablations.AblationParams(duration_ms=30))))

    print(f"\n(total {time.time() - t0:.0f}s)")


if __name__ == "__main__":
    main()

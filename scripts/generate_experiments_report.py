#!/usr/bin/env python3
"""Run every reproduced experiment at benchmark scale and print the rows.

Used to regenerate the measured columns of EXPERIMENTS.md:

    PYTHONPATH=src python scripts/generate_experiments_report.py \
        > /tmp/experiments_raw.txt

Built on the campaign runner (see docs/campaign.md), so it parallelises
and resumes:

    ... generate_experiments_report.py --jobs 4 --store /tmp/report.jsonl
    ... generate_experiments_report.py --resume --store /tmp/report.jsonl
"""

import argparse
import os
import sys
import tempfile
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"))

from repro.campaign import (  # noqa: E402 — after sys.path setup
    CampaignSpec,
    ResultStore,
    SchedulerConfig,
    expand,
    render_report,
    run_campaign,
)

#: Report-scale spec: the sweep figures run one task per grid point, the
#: rest one task per experiment, all at the grid sizes EXPERIMENTS.md uses.
SPEC = CampaignSpec.from_dict({
    "name": "experiments-report",
    "experiments": [
        {"experiment": "fig12",
         "overrides": {"warmup_ms": 6, "measure_ms": 10},
         "grid": {"reorder_delay_us": [250, 500, 750],
                  "inseq_timeout_us": [0, 20, 40, 52, 80, 100]}},
        {"experiment": "fig13",
         "overrides": {"warmup_ms": 8, "measure_ms": 10},
         "grid": {"reorder_delay_us": [250, 500, 750],
                  "ofo_timeout_us": [50, 150, 300, 500, 700, 900]}},
        {"experiment": "fig14",
         "overrides": {"duration_ms": 150},
         "grid": {"reorder_delay_us": [250, 500, 750],
                  "ofo_timeout_us": [50, 100, 200, 400, 600, 800, 1000]}},
        {"experiment": "fig09",
         "overrides": {"warmup_ms": 8, "measure_ms": 14}},
        {"experiment": "fig10",
         "overrides": {"warmup_ms": 10, "measure_ms": 14}},
        {"experiment": "fig15",
         "overrides": {"warmup_ms": 4, "measure_ms": 15},
         "grid": {"reorder_delay_us": [250, 500, 1000],
                  "concurrent_flows": [64, 128, 256, 512]}},
        {"experiment": "fig16",
         "overrides": {"warmup_ms": 8, "measure_ms": 15}},
        {"experiment": "fig01",
         "overrides": {"before_ms": 25, "after_ms": 60,
                       "ofo_timeout_us": 200, "sample_ms": 5}},
        {"experiment": "fig18",
         "overrides": {"ramp_ms": 25, "measure_ms": 30}},
        {"experiment": "fig20",
         "overrides": {"loads_pct": [25, 50, 75, 90],
                       "warmup_ms": 6, "measure_ms": 20}},
        {"experiment": "sec31",
         "overrides": {"warmup_ms": 6, "measure_ms": 12}},
        {"experiment": "sec512",
         "overrides": {"duration_ms": 40}},
        {"experiment": "ablations",
         "overrides": {"duration_ms": 30}},
    ],
})


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default 1, serial)")
    parser.add_argument("--store", default=None, metavar="PATH",
                        help="result store, enables --resume "
                             "(default: a temp file)")
    parser.add_argument("--resume", action="store_true",
                        help="skip tasks already completed in --store")
    args = parser.parse_args()

    store_path = args.store
    if store_path is None:
        fd, store_path = tempfile.mkstemp(prefix="experiments_report_",
                                          suffix=".jsonl")
        os.close(fd)
    store = ResultStore(store_path)
    if store.exists_nonempty() and not args.resume:
        print(f"store {store_path} already has results; pass --resume "
              f"to continue it", file=sys.stderr)
        return 2

    t0 = time.time()
    tasks = expand(SPEC)
    print(f"# {len(tasks)} task(s), jobs={args.jobs}, store={store_path}",
          file=sys.stderr)
    stats = run_campaign(tasks, store, SchedulerConfig(jobs=args.jobs),
                         progress=lambda line: print(line, file=sys.stderr))
    print(stats.summary_line(SPEC.name), file=sys.stderr)

    print(render_report(store.load(), SPEC))
    print(f"\n(total {time.time() - t0:.0f}s)")
    return 1 if stats.failed else 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/usr/bin/env python3
"""Measure a path's reordering and tune Juggler from it (§5.2.1 as a tool).

Step 1: tap the wire behind a reordering fabric and quantify what it does
to a packet stream (RFC 4737-style metrics).
Step 2: apply the paper's tuning rules — inseq_timeout from the line rate,
ofo_timeout ≈ τ − τ₀ from the measured reorder delay.
Step 3: run TCP over the same fabric with the derived configuration and
check it holds line rate.

Run:  python examples/tune_ofo_timeout.py
"""

import random

from repro.core import JugglerConfig, JugglerGRO
from repro.fabric import ReorderingSwitch, build_netfpga_pair
from repro.harness.reorder_metrics import ReorderObserver, recommend_ofo_timeout
from repro.net import FiveTuple, MSS, Packet
from repro.net.constants import transmit_time_ns, MAX_TSO_PAYLOAD
from repro.nic import NicConfig
from repro.sim import Engine, MS, US
from repro.tcp import Connection, TcpConfig

RATE_GBPS = 10.0
TRUE_TAU_US = 400  # what the "network" actually does; we pretend not to know
COALESCE_NS = 125 * US


def measure_reordering() -> ReorderObserver:
    """Step 1: probe the path with a line-rate packet train and observe."""
    engine = Engine()
    observer = ReorderObserver()

    class Tap:
        def receive(self, packet):
            observer.observe(packet.seq, engine.now)

    switch = ReorderingSwitch(engine, Tap(), random.Random(11),
                              rate_gbps=RATE_GBPS,
                              delay_ns=TRUE_TAU_US * US)
    flow = FiveTuple(1, 2, 7, 7)
    gap = transmit_time_ns(MSS, RATE_GBPS)
    for i in range(2_000):
        engine.schedule(i * gap, switch.receive, Packet(flow, i * MSS, MSS))
    engine.run_until(10 * MS)
    return observer


def main() -> None:
    observer = measure_reordering()
    stats = observer.stats()
    print("Step 1 — measured path behaviour:")
    print(f"  packets observed      {stats.packets}")
    print(f"  reordered fraction    {stats.reordered_fraction:.1%}")
    print(f"  max displacement      {stats.max_displacement} packets")
    print(f"  max reorder delay     {stats.max_delay_ns / US:.0f} us "
          f"(true tau = {TRUE_TAU_US} us)")

    inseq = transmit_time_ns(MAX_TSO_PAYLOAD, RATE_GBPS)
    # The paper: "it is better to slightly over-estimate ofo_timeout since
    # packet loss is rare in datacenters."  We take no credit for interrupt
    # coalescing (its reordering help varies with arrival phase) and keep
    # the 20% headroom over the measured worst case.
    ofo = recommend_ofo_timeout(stats, coalesce_ns=0)
    print("\nStep 2 — derived Juggler configuration (§5.2.1 rules):")
    print(f"  inseq_timeout = time to receive one 64KB segment "
          f"= {inseq / US:.0f} us")
    print(f"  ofo_timeout   = measured tau x headroom "
          f"= {ofo / US:.0f} us")

    engine = Engine()
    config = JugglerConfig(inseq_timeout=inseq, ofo_timeout=ofo)
    bed = build_netfpga_pair(engine, random.Random(11),
                             lambda d: JugglerGRO(d, config),
                             rate_gbps=RATE_GBPS,
                             reorder_delay_ns=TRUE_TAU_US * US,
                             nic_config=NicConfig(coalesce_ns=COALESCE_NS))
    conn = Connection(engine, bed.sender, bed.receiver, 1000, 80,
                      TcpConfig(init_cwnd=1 << 20, rx_buffer=8 << 20))
    conn.send(1 << 40)
    engine.run_until(8 * MS)
    base = conn.delivered_bytes
    engine.run_until(28 * MS)
    gbps = (conn.delivered_bytes - base) * 8 / (20 * MS)
    print("\nStep 3 — TCP over the same path with the derived config:")
    print(f"  throughput            {gbps:.2f} Gb/s "
          f"(line rate = {RATE_GBPS:g})")
    print(f"  spurious retransmits  {conn.sender.retransmitted_packets}")
    print(f"  ooo segments to TCP   {conn.receiver.ooo_segments}")


if __name__ == "__main__":
    main()

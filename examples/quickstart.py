#!/usr/bin/env python3
"""Quickstart: Juggler vs the vanilla kernel under severe packet reordering.

One bulk TCP flow crosses a NetFPGA-style switch that sends每 packet down
one of two paths, the second delayed by 250 µs (Figure 11 of the paper).
The vanilla GRO path collapses its batching and churns TCP recovery; the
Juggler-enabled stack hides the reordering entirely.

Run:  python examples/quickstart.py
"""

import random

from repro.core import JugglerConfig, JugglerGRO, StandardGRO
from repro.fabric import build_netfpga_pair
from repro.nic import NicConfig
from repro.sim import Engine, MS, US
from repro.tcp import Connection, TcpConfig


def run(kernel: str) -> dict:
    """Drive one 10 Gb/s bulk flow for 25 ms under 250 µs reordering."""
    engine = Engine()
    rng = random.Random(42)

    if kernel == "juggler":
        # §5.2.1's tuning rules: inseq_timeout = time to receive one 64 KB
        # segment at line rate; ofo_timeout >= the expected path-delay skew.
        config = JugglerConfig(inseq_timeout=52 * US, ofo_timeout=400 * US)
        gro_factory = lambda deliver: JugglerGRO(deliver, config)
    else:
        gro_factory = lambda deliver: StandardGRO(deliver)

    testbed = build_netfpga_pair(
        engine,
        rng,
        gro_factory,
        rate_gbps=10.0,
        reorder_delay_ns=250 * US,
        nic_config=NicConfig(coalesce_frames=25),
    )
    conn = Connection(engine, testbed.sender, testbed.receiver, 1000, 80,
                      TcpConfig(init_cwnd=1 << 20, rx_buffer=8 << 20))
    conn.send(1 << 40)  # a practically-endless stream

    engine.run_until(5 * MS)  # let slow start finish
    baseline = conn.delivered_bytes
    engine.run_until(25 * MS)

    stats = testbed.receiver.gro_engines[0].stats
    return {
        "throughput_gbps": (conn.delivered_bytes - baseline) * 8 / (20 * MS),
        "batching_mtus_per_segment": stats.batching_extent,
        "segments_to_tcp": stats.segments,
        "ooo_segments_to_tcp": stats.ooo_segments,
        "acks_sent": conn.receiver.acks_sent,
        "spurious_retransmissions": conn.sender.retransmitted_packets,
    }


def main() -> None:
    print("One 10 Gb/s TCP flow, every packet sprayed across two paths")
    print("(second path +250 us) -- the reordering Juggler was built for.\n")
    results = {kernel: run(kernel) for kernel in ("juggler", "vanilla")}
    keys = list(next(iter(results.values())))
    width = max(len(k) for k in keys)
    print(f"{'':{width}}  {'juggler':>12}  {'vanilla':>12}")
    for key in keys:
        j, v = results["juggler"][key], results["vanilla"][key]
        fmt = (lambda x: f"{x:12.2f}") if isinstance(j, float) else (
            lambda x: f"{x:12d}")
        print(f"{key:{width}}  {fmt(j)}  {fmt(v)}")
    print("\nJuggler merges out-of-order packets back into full-size "
          "segments;\nthe vanilla stack delivers ~20x more (mostly "
          "out-of-order) segments\nand pays for it in ACKs, spurious "
          "retransmissions and CPU.")


if __name__ == "__main__":
    main()

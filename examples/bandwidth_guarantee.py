#!/usr/bin/env python3
"""Bandwidth guarantees by dynamic packet prioritisation (§2.1, Figure 1).

Eight TCP flows share a 40 Gb/s two-priority bottleneck.  At t = 0 a
controller starts marking one flow's packets high-priority with probability
p, adapting p ← p + α(Rt − Rm) toward a 20 Gb/s guarantee.  Mixing
priorities reorders the flow's own packets — which is why the scheme needs
a reordering-resilient receiver.

Run:  python examples/bandwidth_guarantee.py
"""

from repro.experiments.fig01_bandwidth_guarantee import (
    Fig01Params,
    run_kernel,
)
from repro.harness.experiment import GroKind
from repro.sim import MS


def sparkline(values, lo=0.0, hi=40.0) -> str:
    """Render a throughput series as a unicode sparkline."""
    blocks = "▁▂▃▄▅▆▇█"
    out = []
    for v in values:
        idx = int((min(max(v, lo), hi) - lo) / (hi - lo) * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)


def main() -> None:
    params = Fig01Params(before_ms=25, after_ms=60, ofo_timeout_us=200,
                         sample_ms=5)
    print("Target flow throughput (each char = 5 ms; controller starts at "
          "the '|'):\n")
    for kind in (GroKind.JUGGLER, GroKind.VANILLA):
        result = run_kernel(params, kind)
        before = [v for t, v in result.series if t <= result.start_ns]
        after = [v for t, v in result.series if t > result.start_ns]
        print(f"{kind.value:8s} {sparkline(before)}|{sparkline(after)}")
        print(f"{'':8s} before ~{result.before_mean():.1f} Gb/s   "
              f"after {result.after_mean():.1f} ± "
              f"{result.after_stdev():.1f} Gb/s "
              f"(guarantee {params.guarantee_gbps:g})\n")
    print("With Juggler the flow converges onto its 20 Gb/s guarantee and "
          "holds it;\nthe vanilla kernel cannot digest the priority-mixing "
          "reordering and lands\nbelow the guarantee with visible churn.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A microscope on Juggler's state machine (Figures 5, 6, 7 of the paper).

Feeds a hand-crafted packet arrival sequence into a bare JugglerGRO engine
and narrates every buffering decision, flush (and its Table 2 reason), and
phase transition — the exact walks the paper's Figures 6 and 7 illustrate.

The narration is driven by the ``repro.trace`` subsystem: a Tracer with a
CallbackSink is attached to the engine, and the engine's own FLUSH events
feed the printout — no monkey-patching of engine internals.

Run:  python examples/reordering_microscope.py
"""

from repro.core import JugglerConfig, JugglerGRO
from repro.net import FiveTuple, MSS, Packet
from repro.sim import US
from repro.trace import CallbackSink, EventKind, Tracer

FLOW = FiveTuple(1, 2, 1000, 80)


class Microscope:
    """Narrates a JugglerGRO engine through its trace events."""

    def __init__(self):
        config = JugglerConfig(inseq_timeout=15 * US, ofo_timeout=50 * US)
        self.gro = JugglerGRO(lambda segment: None, config)
        tracer = Tracer([CallbackSink(self._narrate)],
                        kinds={EventKind.FLUSH})
        self.gro.attach_tracer(tracer)

    @staticmethod
    def _narrate(event):
        print(f"    {event.ts / 1000:7.1f}us  FLUSH [{event.seq // MSS}"
              f"..{event.end_seq // MSS}) x{event.mtus} MTU "
              f"({event.reason.value})")

    def packet(self, index, now_us, note=""):
        print(f"    {now_us:7.1f}us  packet #{index} arrives  {note}")
        self.gro.receive(Packet(FLOW, index * MSS, MSS), int(now_us * 1000))
        self.state()

    def tick(self, now_us, note=""):
        print(f"    {now_us:7.1f}us  (timer check)  {note}")
        self.gro.check_timeouts(int(now_us * 1000))
        self.state()

    def state(self):
        entry = self.gro.table.lookup(FLOW)
        if entry is None:
            print("               flow not tracked")
            return
        nodes = [f"[{n.seq // MSS}..{n.end_seq // MSS})"
                 for n in entry.ofo.nodes]
        lost = (f" lost_seq=#{entry.lost_seq // MSS}"
                if entry.lost_seq is not None else "")
        print(f"               phase={entry.phase.value} "
              f"seq_next=#{(entry.seq_next or 0) // MSS} "
              f"queue={' '.join(nodes) or '(empty)'}{lost}")


def main() -> None:
    scope = Microscope()

    print("\n=== Figure 6: build-up, merging, and retransmission inference "
          "===\n")
    scope.packet(3, 0.0, "(first packet seen: build-up starts)")
    scope.packet(5, 1.0, "(buffered out of order)")
    scope.packet(2, 2.0, "(seq_next moves BACKWARD in build-up)")
    scope.tick(20.0, "inseq_timeout: flush the in-sequence run #2-#3")
    scope.packet(1, 25.0, "(below seq_next now: inferred retransmission, "
                          "flushed alone)")

    print("\n=== Figure 7: loss recovery ===\n")
    scope.tick(80.0, "ofo_timeout: #4 presumed lost; flush #5, enter "
                     "loss recovery")
    scope.packet(7, 85.0, "(buffered: loss recovery still merges)")
    scope.packet(6, 86.0, "(merges with #7)")
    scope.packet(4, 90.0, "(the 'lost' packet returns: hole filled, back "
                          "to active merging)")
    scope.tick(110.0, "inseq_timeout: flush #6-#7")

    print("\nEverything above reached TCP in the best order Juggler could "
          "manage,\nwhile holding at most a few hundred microseconds of "
          "packets.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Per-packet load balancing on a Clos fabric (§5.3.2, Figure 20).

Eight servers send to eight clients across a two-spine Clos: four pairs
stream 1 MB RPCs, four pairs latency-sensitive 150 B RPCs.  We compare
per-flow ECMP, Presto-style per-TSO spraying, and per-packet spraying —
the finest granularity, possible only because every receiver runs Juggler.

Run:  python examples/per_packet_load_balancing.py
"""

from repro.experiments.fig20_load_balancing import (
    Fig20Params,
    LbPolicy,
    run_cell,
)


def main() -> None:
    params = Fig20Params(warmup_ms=6, measure_ms=20)
    load = 90
    print(f"All-to-all RPCs at {load}% fabric load, Juggler receivers:\n")
    print(f"{'policy':>14}  {'small RPC p50':>13}  {'small RPC p99':>13}  "
          f"{'large RPC p99':>13}")
    rows = {}
    for policy in (LbPolicy.ECMP, LbPolicy.PER_TSO, LbPolicy.PER_PACKET):
        point = run_cell(params, policy, load)
        rows[policy] = point
        print(f"{policy.value:>14}  {point.small_p50_us:>11.1f}us  "
              f"{point.small_p99_us:>11.1f}us  {point.large_p99_ms:>11.2f}ms")
    speedup = (rows[LbPolicy.ECMP].small_p99_us
               / rows[LbPolicy.PER_PACKET].small_p99_us)
    print(f"\nPer-packet spraying cuts the small-RPC tail {speedup:.1f}x "
          "versus per-flow ECMP\n(the paper reports >= 2x past 50% load) — "
          "but only a reordering-resilient\nstack can use it.")


if __name__ == "__main__":
    main()

"""Timer-wheel internals: fire-order fidelity, tombstone bounds, recycling.

The wheel/overflow-heap split and the tombstone compaction pass are pure
implementation detail — these tests pin the observable contract: the fire
order is the (time, seq) total order a single heap would produce, resident
cancelled events stay bounded under sustained re-arm churn, and recycled
events can never confuse a stale handle or timer.
"""

import heapq

from repro.sim import Engine, RngRegistry, Timer
from repro.sim.engine import COMPACT_FLOOR, WHEEL_HORIZON_NS


def _fire_order(schedule_plan):
    """Run a plan of (delay_from_start, tag) through the engine; return the
    tags in fire order."""
    engine = Engine()
    fired = []
    for delay, tag in schedule_plan:
        engine.schedule(delay, lambda t=tag: fired.append(t))
    engine.run()
    return fired


def test_fire_order_matches_reference_heap_across_horizon():
    # Delays spanning the wheel horizon: some land in slot buckets, some in
    # the overflow heap.  The order must match a plain (time, seq) heap.
    rng = RngRegistry(7).stream("wheel-order")
    plan = []
    for i in range(2_000):
        region = i % 4
        if region == 0:
            delay = rng.randrange(0, 1 << 16)  # inside one slot
        elif region == 1:
            delay = rng.randrange(0, WHEEL_HORIZON_NS)  # anywhere on wheel
        elif region == 2:
            delay = rng.randrange(WHEEL_HORIZON_NS,
                                  4 * WHEEL_HORIZON_NS)  # overflow heap
        else:
            delay = WHEEL_HORIZON_NS + (i % 3) - 1  # hug the boundary
        plan.append((delay, i))
    reference = [tag for _, _, tag in
                 sorted((delay, seq, tag)
                        for seq, (delay, tag) in enumerate(plan))]
    assert _fire_order(plan) == reference


def test_fire_order_ties_at_wheel_heap_boundary():
    # An event far in the future files into the overflow heap; an event for
    # the *same instant* scheduled later (once the wheel covers it) files
    # into a bucket.  The earlier-scheduled (heap) event must fire first.
    engine = Engine()
    fired = []
    target = 2 * WHEEL_HORIZON_NS
    engine.schedule(target, fired.append, "heap-resident")
    engine.schedule(target - 10, lambda: (
        engine.schedule(10, fired.append, "wheel-resident")))
    engine.run()
    assert fired == ["heap-resident", "wheel-resident"]


def test_golden_seed_fire_sequence_is_reproducible():
    rng_a = RngRegistry(42).stream("golden")
    rng_b = RngRegistry(42).stream("golden")

    def sequence(rng):
        plan = [(rng.randrange(0, 3 * WHEEL_HORIZON_NS), i)
                for i in range(500)]
        return _fire_order(plan)

    assert sequence(rng_a) == sequence(rng_b)


def test_tombstones_bounded_under_sustained_rearm_churn():
    # The hrtimer pattern: 64 timers re-armed every poll against deadlines
    # ~1000 polls out.  Without compaction, resident cancelled events grow
    # with churn (tens of thousands here); with it they stay bounded.
    engine = Engine()
    timers = [Timer(engine, lambda: None) for _ in range(64)]
    max_resident = 0

    def poll(round_no):
        nonlocal max_resident
        for k, timer in enumerate(timers):
            timer.arm_at(engine.now + 1_000_000 + k * 100)
        max_resident = max(max_resident, engine.pending)
        assert engine.tombstones <= max(engine.pending_live, COMPACT_FLOOR)
        if round_no < 1_000:
            engine.schedule(1_000, poll, round_no + 1)

    engine.schedule(0, poll, 0)
    engine.run()
    assert engine.compactions > 0
    # 64k cancellations happened; residency stayed near the live count.
    assert max_resident <= 2 * max(64 + 2, COMPACT_FLOOR)
    # A fully drained engine holds nothing — live or tombstoned.
    assert engine.pending == 0
    assert engine.pending_live == 0


def test_pending_live_vs_pending_accounting():
    engine = Engine()
    keep = engine.schedule(100, lambda: None)
    drop = engine.schedule(200, lambda: None)
    assert engine.pending == 2
    assert engine.pending_live == 2
    drop.cancel()
    assert engine.pending_live == 1
    assert engine.pending == 2  # the tombstone is still resident
    assert engine.tombstones == 1
    engine.run()
    assert keep.active is False
    assert engine.pending == 0


def test_recycled_event_is_inert_to_stale_handles():
    engine = Engine()
    fired = []
    stale = engine.schedule(10, fired.append, "a")
    engine.run()
    # Force the pooled event to be reused by a new schedule.
    fresh = engine.schedule(10, fired.append, "b")
    assert not stale.active
    stale.cancel()  # must not cancel the recycled occupant
    assert fresh.active
    engine.run()
    assert fired == ["a", "b"]


def test_timer_rearm_is_generation_safe_after_fire():
    engine = Engine()
    fires = []
    timer = Timer(engine, lambda: fires.append(engine.now))
    timer.arm_after(50)
    engine.run()
    assert fires == [50]
    assert not timer.armed
    # Cancelling a fired (and possibly recycled) timer is a no-op.
    timer.cancel()
    timer.arm_after(25)
    assert timer.armed and timer.expires_at == 75
    engine.run()
    assert fires == [50, 75]


def test_event_pool_reuses_allocations():
    engine = Engine()
    for _ in range(100):
        engine.post(1, lambda: None)
        engine.run()
    # A steady-state schedule/fire loop touches one event object.
    assert engine.events_allocated <= 2
    assert engine.events_processed == 100

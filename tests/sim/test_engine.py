"""Engine ordering, scheduling and run-control semantics."""

import pytest

from repro.sim import Engine, SimulationError


def test_starts_at_time_zero():
    assert Engine().now == 0


def test_runs_events_in_time_order():
    engine = Engine()
    fired = []
    engine.schedule(300, fired.append, 3)
    engine.schedule(100, fired.append, 1)
    engine.schedule(200, fired.append, 2)
    engine.run()
    assert fired == [1, 2, 3]


def test_same_time_events_fire_in_scheduling_order():
    engine = Engine()
    fired = []
    for i in range(10):
        engine.schedule(50, fired.append, i)
    engine.run()
    assert fired == list(range(10))


def test_now_advances_to_event_time():
    engine = Engine()
    seen = []
    engine.schedule(123, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [123]
    assert engine.now == 123


def test_zero_delay_event_fires_after_current():
    engine = Engine()
    fired = []

    def outer():
        engine.schedule(0, fired.append, "inner")
        fired.append("outer")

    engine.schedule(10, outer)
    engine.run()
    assert fired == ["outer", "inner"]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule(-1, lambda: None)


def test_schedule_at_in_past_rejected():
    engine = Engine()
    engine.schedule(100, lambda: None)
    engine.run()
    with pytest.raises(SimulationError):
        engine.schedule_at(50, lambda: None)


def test_cancel_prevents_firing():
    engine = Engine()
    fired = []
    handle = engine.schedule(100, fired.append, 1)
    engine.schedule(50, handle.cancel)
    engine.run()
    assert fired == []


def test_cancel_is_idempotent():
    engine = Engine()
    handle = engine.schedule(100, lambda: None)
    handle.cancel()
    handle.cancel()
    engine.run()
    assert not handle.active


def test_handle_reports_time_and_activity():
    engine = Engine()
    handle = engine.schedule(250, lambda: None)
    assert handle.time == 250
    assert handle.active
    engine.run()
    assert not handle.active


def test_run_until_stops_at_boundary():
    engine = Engine()
    fired = []
    engine.schedule(100, fired.append, 1)
    engine.schedule(200, fired.append, 2)
    engine.run_until(150)
    assert fired == [1]
    assert engine.now == 150
    engine.run_until(300)
    assert fired == [1, 2]


def test_run_until_includes_boundary_events():
    engine = Engine()
    fired = []
    engine.schedule(150, fired.append, 1)
    engine.run_until(150)
    assert fired == [1]


def test_run_until_backwards_rejected():
    engine = Engine()
    engine.run_until(100)
    with pytest.raises(SimulationError):
        engine.run_until(50)


def test_events_scheduled_during_run_execute():
    engine = Engine()
    fired = []
    engine.schedule(10, lambda: engine.schedule(10, fired.append, "chained"))
    engine.run()
    assert fired == ["chained"]
    assert engine.now == 20


def test_max_events_bound():
    engine = Engine()
    count = []

    def recur():
        count.append(1)
        engine.schedule(1, recur)

    engine.schedule(1, recur)
    engine.run(max_events=5)
    assert len(count) == 5


def test_events_processed_counter_skips_cancelled():
    engine = Engine()
    handle = engine.schedule(10, lambda: None)
    engine.schedule(20, lambda: None)
    handle.cancel()
    engine.run()
    assert engine.events_processed == 1


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_step_executes_single_event():
    engine = Engine()
    fired = []
    engine.schedule(5, fired.append, "a")
    engine.schedule(6, fired.append, "b")
    assert engine.step() is True
    assert fired == ["a"]


def test_callback_args_passed_through():
    engine = Engine()
    seen = []
    engine.schedule(1, lambda a, b, c: seen.append((a, b, c)), 1, "x", None)
    engine.run()
    assert seen == [(1, "x", None)]


def test_pending_counts_heap_entries():
    engine = Engine()
    engine.schedule(1, lambda: None)
    engine.schedule(2, lambda: None)
    assert engine.pending == 2

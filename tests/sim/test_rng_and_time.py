"""Seeded RNG registry and time formatting."""

from repro.sim import NS, US, MS, SEC, RngRegistry, format_time


def test_time_unit_ratios():
    assert US == 1_000 * NS
    assert MS == 1_000 * US
    assert SEC == 1_000 * MS


def test_format_time_picks_readable_units():
    assert format_time(5) == "5ns"
    assert format_time(1_500) == "1.500us"
    assert format_time(250 * US) == "250.000us"
    assert format_time(3 * MS) == "3.000ms"
    assert format_time(2 * SEC) == "2.000s"


def test_format_time_negative():
    assert format_time(-1_500) == "-1.500us"


def test_same_seed_same_stream():
    a = RngRegistry(7).stream("spray")
    b = RngRegistry(7).stream("spray")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_independent_streams():
    reg = RngRegistry(7)
    a = reg.stream("a")
    b = reg.stream("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_stream_identity_cached():
    reg = RngRegistry(1)
    assert reg.stream("x") is reg.stream("x")


def test_creation_order_does_not_matter():
    reg1 = RngRegistry(3)
    reg1.stream("first")
    late = reg1.stream("second").random()
    reg2 = RngRegistry(3)
    early = reg2.stream("second").random()
    assert late == early


def test_fork_derives_independent_registry():
    root = RngRegistry(9)
    child = root.fork("host0")
    assert child.seed != root.seed
    assert child.stream("x").random() != root.stream("x").random()


def test_fork_deterministic():
    a = RngRegistry(9).fork("host0").stream("x").random()
    b = RngRegistry(9).fork("host0").stream("x").random()
    assert a == b

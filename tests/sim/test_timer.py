"""Re-armable hrtimer semantics."""

from repro.sim import Engine, Timer


def make(engine):
    fired = []
    timer = Timer(engine, lambda: fired.append(engine.now))
    return timer, fired


def test_fires_once_at_deadline():
    engine = Engine()
    timer, fired = make(engine)
    timer.arm_after(100)
    engine.run()
    assert fired == [100]


def test_disarmed_after_fire():
    engine = Engine()
    timer, fired = make(engine)
    timer.arm_after(100)
    engine.run()
    assert not timer.armed
    assert timer.expires_at is None


def test_rearm_moves_deadline():
    engine = Engine()
    timer, fired = make(engine)
    timer.arm_after(100)
    timer.arm_after(200)
    engine.run()
    assert fired == [200]


def test_cancel_prevents_fire():
    engine = Engine()
    timer, fired = make(engine)
    timer.arm_after(100)
    timer.cancel()
    engine.run()
    assert fired == []


def test_cancel_idempotent():
    engine = Engine()
    timer, _ = make(engine)
    timer.cancel()
    timer.cancel()
    assert not timer.armed


def test_arm_at_absolute_time():
    engine = Engine()
    timer, fired = make(engine)
    engine.schedule(50, lambda: None)
    engine.run()
    timer.arm_at(80)
    engine.run()
    assert fired == [80]


def test_arm_if_earlier_keeps_sooner_deadline():
    engine = Engine()
    timer, fired = make(engine)
    timer.arm_at(100)
    timer.arm_if_earlier(200)
    assert timer.expires_at == 100
    engine.run()
    assert fired == [100]


def test_arm_if_earlier_moves_later_deadline_forward():
    engine = Engine()
    timer, fired = make(engine)
    timer.arm_at(200)
    timer.arm_if_earlier(100)
    assert timer.expires_at == 100
    engine.run()
    assert fired == [100]


def test_arm_if_earlier_on_disarmed_timer_arms():
    engine = Engine()
    timer, fired = make(engine)
    timer.arm_if_earlier(150)
    engine.run()
    assert fired == [150]


def test_rearm_inside_callback():
    engine = Engine()
    fired = []

    def cb():
        fired.append(engine.now)
        if len(fired) < 3:
            timer.arm_after(10)

    timer = Timer(engine, cb)
    timer.arm_after(10)
    engine.run()
    assert fired == [10, 20, 30]


def test_expires_at_reports_pending_deadline():
    engine = Engine()
    timer, _ = make(engine)
    timer.arm_at(42)
    assert timer.expires_at == 42

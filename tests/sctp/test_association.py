"""The SCTP-style message transport, alone and over a reordering fabric."""

import random

import pytest

from repro.core import JugglerConfig, JugglerGRO
from repro.fabric import build_netfpga_pair
from repro.net import FiveTuple, MSS
from repro.nic import NicConfig
from repro.sctp import SCTP_PROTO, SctpReceiver, SctpSender
from repro.sim import Engine, MS, US


def juggler_factory(protocols=(6, 132)):
    config = JugglerConfig(inseq_timeout=52 * US, ofo_timeout=400 * US,
                           protocols=protocols)
    return lambda deliver: JugglerGRO(deliver, config)


def build(engine, *, reorder_us=0, protocols=(6, 132)):
    bed = build_netfpga_pair(
        engine, random.Random(4), juggler_factory(protocols),
        rate_gbps=10.0, reorder_delay_ns=reorder_us * US,
        nic_config=NicConfig(coalesce_frames=25))
    flow = FiveTuple(0, 1, 5000, 5000, proto=SCTP_PROTO)
    delivered = []
    receiver = SctpReceiver(engine, bed.receiver, flow,
                            on_message=lambda i, t: delivered.append((i, t)))
    sender = SctpSender(engine, bed.sender, flow)
    return bed, sender, receiver, delivered


def test_proto_validation():
    engine = Engine()
    bed, sender, receiver, _ = build(engine)
    tcp_flow = FiveTuple(0, 1, 5000, 5000, proto=6)
    with pytest.raises(ValueError):
        SctpSender(engine, bed.sender, tcp_flow)
    with pytest.raises(ValueError):
        SctpReceiver(engine, bed.receiver, tcp_flow)


def test_message_validation():
    engine = Engine()
    _, sender, _, _ = build(engine)
    with pytest.raises(ValueError):
        sender.send_message(0)


def test_single_message_delivery():
    engine = Engine()
    bed, sender, receiver, delivered = build(engine)
    receiver.expect_message(10_000)
    sender.send_message(10_000)
    engine.run_until(2 * MS)
    assert delivered and delivered[0][0] == 0
    assert receiver.rcv_nxt == 10_000


def test_messages_delivered_in_order():
    engine = Engine()
    bed, sender, receiver, delivered = build(engine)
    sizes = [5_000, 20_000, 150, 70_000]
    for size in sizes:
        receiver.expect_message(size)
        sender.send_message(size)
    engine.run_until(5 * MS)
    assert [i for i, _ in delivered] == [0, 1, 2, 3]


def test_reordering_hidden_by_juggler():
    engine = Engine()
    bed, sender, receiver, delivered = build(engine, reorder_us=250)
    for _ in range(40):
        receiver.expect_message(30_000)
        sender.send_message(30_000)
    engine.run_until(20 * MS)
    assert receiver.messages_delivered == 40
    # Juggler absorbed the path-delay skew: no retransmissions needed.
    assert sender.retransmitted_chunks == 0
    assert sender.rtos == 0
    stats = bed.receiver.gro_engines[0].stats
    assert stats.ooo_fraction < 0.05


def test_without_protocol_registration_juggler_passes_through():
    engine = Engine()
    bed, sender, receiver, delivered = build(engine, reorder_us=250,
                                             protocols=(6,))
    for _ in range(10):
        receiver.expect_message(30_000)
        sender.send_message(30_000)
    engine.run_until(20 * MS)
    stats = bed.receiver.gro_engines[0].stats
    # Everything bypassed the flow table...
    assert stats.passthrough_packets > 0
    assert stats.packets == 0
    # ...so the transport saw the raw reordering (and survived via SACK).
    assert receiver.messages_delivered == 10


def test_loss_recovered_via_gap_reports():
    engine = Engine()
    rng = random.Random(4)
    bed = build_netfpga_pair(
        engine, rng, juggler_factory(),
        rate_gbps=10.0, reorder_delay_ns=0, drop_p=0.01,
        nic_config=NicConfig(coalesce_frames=25))
    flow = FiveTuple(0, 1, 5000, 5000, proto=SCTP_PROTO)
    delivered = []
    receiver = SctpReceiver(engine, bed.receiver, flow,
                            on_message=lambda i, t: delivered.append(i))
    sender = SctpSender(engine, bed.sender, flow, rto_ns=2 * MS)
    for _ in range(20):
        receiver.expect_message(50_000)
        sender.send_message(50_000)
    engine.run_until(100 * MS)
    assert bed.dropper.dropped > 0
    assert receiver.messages_delivered == 20
    assert sender.retransmitted_chunks > 0


def test_window_limits_flight():
    engine = Engine()
    bed, sender, receiver, _ = build(engine)
    sender.window_bytes = 10 * MSS
    receiver.expect_message(1_000_000)
    sender.send_message(1_000_000)
    assert sender.flight_bytes <= 10 * MSS

"""Cost table, meters, saturating cores and GRO accounting."""

import pytest

from repro.cpu import (
    CostTable,
    CoreMeter,
    CpuCore,
    DEFAULT_COSTS,
    GroCpuAccountant,
    NullAccountant,
)
from repro.net import BatchingMode, FiveTuple, MSS, Packet, Segment
from repro.sim import Engine

FLOW = FiveTuple(1, 2, 1000, 80)


def seg(n=1):
    packets = [Packet(FLOW, i * MSS, MSS) for i in range(n)]
    return Segment(packets)


# --- CoreMeter -----------------------------------------------------------------


def test_meter_accumulates():
    meter = CoreMeter()
    meter.charge(100)
    meter.charge(50)
    assert meter.busy_ns == 150


def test_meter_rejects_negative():
    with pytest.raises(ValueError):
        CoreMeter().charge(-1)


def test_utilization_window():
    meter = CoreMeter()
    meter.charge(1000)
    meter.mark(now=0)
    meter.charge(500)
    assert meter.utilization_since(now=1000) == 0.5


def test_utilization_can_exceed_one():
    meter = CoreMeter()
    meter.mark(now=0)
    meter.charge(5000)
    assert meter.utilization_since(now=1000) == 5.0


def test_utilization_empty_window():
    meter = CoreMeter()
    meter.mark(now=100)
    assert meter.utilization_since(now=100) == 0.0


# --- CpuCore --------------------------------------------------------------------


def test_core_serialises_jobs():
    engine = Engine()
    core = CpuCore(engine)
    done = []
    core.submit(100, done.append, "a")
    core.submit(100, done.append, "b")
    engine.run()
    assert done == ["a", "b"]
    assert engine.now == 200


def test_core_backlog_grows_under_overload():
    engine = Engine()
    core = CpuCore(engine)
    for _ in range(10):
        core.submit(1000)
    assert core.backlog_ns == 10_000


def test_core_idles_between_jobs():
    engine = Engine()
    core = CpuCore(engine)
    core.submit(100, lambda: None)
    engine.run()
    engine.schedule(900, lambda: None)
    engine.run()
    core.submit(100, lambda: None)
    engine.run()
    # Second job starts at t=1000, not queued behind idle time.
    assert engine.now == 1100


def test_core_jobs_completed_counter():
    engine = Engine()
    core = CpuCore(engine)
    core.submit(10, lambda: None)
    core.submit(10)  # no callback still counts
    engine.run()
    assert core.jobs_completed == 2


def test_core_rejects_negative_work():
    with pytest.raises(ValueError):
        CpuCore(Engine()).submit(-5)


def test_core_charge_without_queueing():
    engine = Engine()
    core = CpuCore(engine)
    core.charge(500)
    assert core.meter.busy_ns == 500


# --- accounting -----------------------------------------------------------------


def test_accountant_prices_operations():
    meter = CoreMeter()
    acct = GroCpuAccountant(meter, DEFAULT_COSTS)
    acct.on_rx_packet()
    acct.on_gro_packet()
    expected = DEFAULT_COSTS.rx_per_packet + DEFAULT_COSTS.gro_per_packet
    assert meter.busy_ns == pytest.approx(expected)


def test_accountant_chain_merge_costs_more():
    meter = CoreMeter()
    acct = GroCpuAccountant(meter)
    acct.on_merge(BatchingMode.FRAGS_ARRAY)
    frag_cost = meter.busy_ns
    acct.on_merge(BatchingMode.LINKED_LIST)
    chain_cost = meter.busy_ns - frag_cost
    assert chain_cost > 3 * frag_cost  # the Figure 3 cache-miss penalty


def test_accountant_node_scans_scale():
    meter = CoreMeter()
    acct = GroCpuAccountant(meter)
    acct.on_node_scan(10)
    assert meter.busy_ns == pytest.approx(10 * DEFAULT_COSTS.gro_node_scan)
    acct.on_node_scan(0)  # free
    assert meter.busy_ns == pytest.approx(10 * DEFAULT_COSTS.gro_node_scan)


def test_accountant_flush_segment():
    meter = CoreMeter()
    acct = GroCpuAccountant(meter)
    acct.on_flush_segment(seg())
    assert meter.busy_ns == pytest.approx(DEFAULT_COSTS.rx_per_segment)


def test_null_accountant_is_free():
    acct = NullAccountant()
    acct.on_rx_packet()
    acct.on_gro_packet()
    acct.on_merge(BatchingMode.LINKED_LIST)
    acct.on_node_scan(100)
    acct.on_flush_segment(seg())
    acct.on_poll()
    assert acct.meter.busy_ns == 0


def test_cost_table_immutable():
    with pytest.raises(Exception):
        DEFAULT_COSTS.rx_per_packet = 0  # frozen dataclass


def test_custom_cost_table():
    costs = CostTable(rx_per_packet=1.0)
    meter = CoreMeter()
    GroCpuAccountant(meter, costs).on_rx_packet()
    assert meter.busy_ns == 1.0

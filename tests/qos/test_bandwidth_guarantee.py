"""The p <- p + alpha(Rt - Rm) marking controller."""

import random

import pytest

from tests.tcp.helpers import DirectPair

from repro.net.constants import PRIORITY_HIGH, PRIORITY_LOW
from repro.net import FiveTuple, MSS, Packet
from repro.qos import BandwidthGuaranteeController
from repro.sim import Engine, MS, US
from repro.tcp import TcpSender, TcpConfig


class TxCapture:
    def __init__(self):
        self.packets = []

    def register_handler(self, flow, handler):
        pass

    def unregister_handler(self, flow):
        pass

    def transmit(self, packet):
        self.packets.append(packet)


def make(target_gbps=20.0, line=40.0, alpha=0.1, interval=100 * US):
    engine = Engine()
    sender = TcpSender(engine, TxCapture(), FiveTuple(0, 1, 1000, 80),
                       TcpConfig())
    controller = BandwidthGuaranteeController(
        engine, sender, random.Random(0), target_gbps=target_gbps,
        line_rate_gbps=line, alpha=alpha, update_interval_ns=interval)
    return engine, sender, controller


def test_p_starts_at_zero():
    _, _, controller = make()
    assert controller.p == 0.0


def test_p_rises_when_below_target():
    engine, sender, controller = make()
    controller.start()
    engine.run_until(2 * MS)  # sender never acked anything: Rm = 0
    assert controller.p > 0.0


def test_p_clamped_to_one():
    engine, sender, controller = make(target_gbps=40.0, alpha=5.0)
    controller.start()
    engine.run_until(5 * MS)
    assert controller.p == 1.0


def test_p_falls_when_above_target():
    engine, sender, controller = make(target_gbps=1.0, alpha=0.5)
    controller.p = 1.0
    controller.start()
    # Simulate heavy acking: rate far above 1 Gb/s.
    def pump():
        sender.snd_una += 1 << 20
        engine.schedule(100 * US, pump)
    pump()
    engine.run_until(5 * MS)
    assert controller.p < 1.0


def test_priority_fn_distribution_follows_p():
    _, sender, controller = make()
    controller.p = 0.7
    picks = [controller.priority_fn(Packet(FiveTuple(0, 1, 1, 2), 0, MSS))
             for _ in range(2000)]
    high = sum(1 for p in picks if p == PRIORITY_HIGH)
    assert 0.62 < high / 2000 < 0.78


def test_priority_fn_all_low_at_p_zero():
    _, _, controller = make()
    picks = {controller.priority_fn(Packet(FiveTuple(0, 1, 1, 2), 0, MSS))
             for _ in range(100)}
    assert picks == {PRIORITY_LOW}


def test_trace_records_samples():
    engine, _, controller = make(interval=100 * US)
    controller.start()
    engine.run_until(1 * MS)
    assert len(controller.trace) >= 9
    t0, rate, p = controller.trace[0]
    assert rate == 0.0


def test_stop_halts_updates():
    engine, _, controller = make()
    controller.start()
    engine.run_until(1 * MS)
    n = len(controller.trace)
    controller.stop()
    engine.run_until(2 * MS)
    assert len(controller.trace) == n


def test_start_idempotent():
    engine, _, controller = make()
    controller.start()
    controller.start()
    engine.run_until(1 * MS)
    # One update chain, not two.
    times = [t for t, _, _ in controller.trace]
    assert len(times) == len(set(times))


def test_measured_gbps_none_before_first_update():
    _, _, controller = make()
    assert controller.measured_gbps() is None


def test_parameter_validation():
    engine = Engine()
    sender = TcpSender(engine, TxCapture(), FiveTuple(0, 1, 1, 2))
    with pytest.raises(ValueError):
        BandwidthGuaranteeController(engine, sender, random.Random(0),
                                     target_gbps=1, line_rate_gbps=0)
    with pytest.raises(ValueError):
        BandwidthGuaranteeController(engine, sender, random.Random(0),
                                     target_gbps=1, line_rate_gbps=10,
                                     smoothing=0.0)

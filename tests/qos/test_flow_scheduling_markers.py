"""SRPT/PIAS packet markers."""

import pytest

from repro.net import FiveTuple, MSS, Packet
from repro.net.constants import PRIORITY_HIGH, PRIORITY_LOW
from repro.qos import PiasMarker, SrptMarker
from repro.sim import Engine
from repro.tcp import TcpConfig
from repro.tcp.sender import TcpSender

FLOW = FiveTuple(0, 1, 1000, 80)


class NullHost:
    def register_handler(self, flow, handler):
        pass

    def unregister_handler(self, flow):
        pass

    def transmit(self, packet):
        pass


def pkt(seq):
    return Packet(FLOW, seq, MSS)


def test_pias_first_bytes_high_then_demoted():
    marker = PiasMarker(threshold_bytes=10 * MSS)
    assert marker.priority_fn(pkt(0)) == PRIORITY_HIGH
    assert marker.priority_fn(pkt(9 * MSS)) == PRIORITY_HIGH
    assert marker.priority_fn(pkt(10 * MSS)) == PRIORITY_LOW
    assert marker.priority_fn(pkt(100 * MSS)) == PRIORITY_LOW
    assert marker.high_marked == 2 and marker.low_marked == 2


def test_pias_retransmission_keeps_offset_class():
    marker = PiasMarker(threshold_bytes=10 * MSS)
    retx = Packet(FLOW, 50 * MSS, MSS, is_retransmission=True)
    assert marker.priority_fn(retx) == PRIORITY_LOW


def test_pias_validates_threshold():
    with pytest.raises(ValueError):
        PiasMarker(-1)


def test_srpt_promotes_near_completion():
    sender = TcpSender(Engine(), NullHost(), FLOW, TcpConfig())
    sender.send(100 * MSS)
    marker = SrptMarker(sender, threshold_bytes=10 * MSS)
    assert marker.priority_fn(pkt(0)) == PRIORITY_LOW
    assert marker.priority_fn(pkt(89 * MSS)) == PRIORITY_LOW
    assert marker.priority_fn(pkt(91 * MSS)) == PRIORITY_HIGH
    assert marker.priority_fn(pkt(99 * MSS)) == PRIORITY_HIGH


def test_srpt_tracks_growing_target():
    sender = TcpSender(Engine(), NullHost(), FLOW, TcpConfig())
    sender.send(20 * MSS)
    marker = SrptMarker(sender, threshold_bytes=5 * MSS)
    assert marker.priority_fn(pkt(16 * MSS)) == PRIORITY_HIGH
    sender.send(20 * MSS)  # more data queued: no longer near completion
    assert marker.priority_fn(pkt(16 * MSS)) == PRIORITY_LOW


def test_srpt_validates_threshold():
    sender = TcpSender(Engine(), NullHost(), FLOW, TcpConfig())
    with pytest.raises(ValueError):
        SrptMarker(sender, -5)


def test_whole_short_flow_rides_high_priority():
    """Mice below the threshold never touch the low-priority queue."""
    marker = PiasMarker(threshold_bytes=100_000)
    picks = {marker.priority_fn(pkt(i * MSS)) for i in range(30)}
    assert picks == {PRIORITY_HIGH}

"""The host_vs_fabric family: where resilience lives, and its plumbing."""

import dataclasses

import pytest

from repro.campaign import registry
from repro.campaign.spec import derive_seed
from repro.experiments.host_vs_fabric import (
    HostFabricParams,
    HostFabricResult,
    render,
    run_point,
)

#: Short cells keep the suite fast; the effects are visible at 10 ms.
FAST = HostFabricParams(warmup_ms=2, measure_ms=8)


@pytest.fixture(scope="module")
def corner_rows():
    """The interesting diagonal of the comparison, computed once at
    load 2 (fault 0): host-side resilience vs fabric-side resilience."""
    return {
        (engine, routing): run_point(FAST, engine=engine, routing=routing,
                                     load=2, fault=0)
        for engine, routing in (("standard", "ecmp"),
                                ("standard", "per_packet"),
                                ("standard", "flowcut"),
                                ("juggler", "per_packet"))
    }


def test_flowcut_is_in_order_where_per_packet_is_not(corner_rows):
    """The fabric-side answer: flowcut keeps TCP-visible reordering at
    ECMP's level while per-packet spraying floods the host with OOO."""
    spray = corner_rows[("standard", "per_packet")]
    flowcut = corner_rows[("standard", "flowcut")]
    ecmp = corner_rows[("standard", "ecmp")]
    assert spray.tcp_ooo_segments > 10 * max(1, flowcut.tcp_ooo_segments)
    assert flowcut.tcp_ooo_segments <= ecmp.tcp_ooo_segments + 10
    # And it did so while actually adapting (pins happened).
    assert flowcut.pins > 0


def test_flowcut_balances_better_than_ecmp(corner_rows):
    """Adaptivity is not free ECMP: the congestion-aware pinning spreads
    bytes across uplinks better than static per-flow hashing."""
    assert (corner_rows[("standard", "flowcut")].uplink_imbalance
            < corner_rows[("standard", "ecmp")].uplink_imbalance)


def test_host_side_answer_absorbs_spray_reordering(corner_rows):
    """The host-side answer: under identical spraying, Juggler absorbs
    the reordering below the transport — TCP sees an order of magnitude
    fewer OOO segments, and GRO batching survives (the paper's CPU
    claim), where standard GRO degenerates toward one MTU per segment."""
    standard = corner_rows[("standard", "per_packet")]
    juggler = corner_rows[("juggler", "per_packet")]
    assert juggler.tcp_ooo_segments * 10 < standard.tcp_ooo_segments
    assert juggler.batching > 2 * standard.batching
    # The resilience is visible in its mechanism: OFO-timeout flushes.
    assert juggler.ofo_timeout_flushes > 0
    assert standard.ofo_timeout_flushes == 0


def test_detector_sees_the_reordering_the_fabric_creates(corner_rows):
    """The in-network observer agrees with the arm semantics: spraying
    shows up in the detectors, flowcut does not."""
    spray = corner_rows[("standard", "per_packet")]
    flowcut = corner_rows[("standard", "flowcut")]
    assert spray.det_reordered > 0
    assert flowcut.det_reordered <= spray.det_reordered // 10


def test_cell_seeds_pair_across_engine_and_routing():
    """The cell seed excludes engine and routing, so all eight arms of a
    (load, fault) cell face identical randomness."""
    expected = derive_seed(FAST.seed, "host_vs_fabric", "2:0")
    assert expected == derive_seed(FAST.seed, "host_vs_fabric", f"{2}:{0}")
    assert expected != derive_seed(FAST.seed, "host_vs_fabric", "2:1")


def test_unknown_levels_rejected():
    with pytest.raises(ValueError, match="unknown load"):
        run_point(FAST, engine="juggler", routing="ecmp", load=9, fault=0)
    with pytest.raises(ValueError, match="unknown fault"):
        run_point(FAST, engine="juggler", routing="ecmp", load=1, fault=9)
    with pytest.raises(ValueError, match="unknown routing"):
        run_point(FAST, engine="juggler", routing="valiant", load=1, fault=0)


def test_rows_deterministic_and_adapter_parity():
    """Same cell twice -> byte-identical row; the registry adapter path
    produces the exact run_point row (resume/store equivalence)."""
    direct = run_point(FAST, engine="standard", routing="flowcut",
                       load=1, fault=0)
    again = run_point(FAST, engine="standard", routing="flowcut",
                      load=1, fault=0)
    assert direct == again

    adapter = registry.get("host_vs_fabric")
    assert adapter.hidden and adapter.is_grid
    base = {"warmup_ms": FAST.warmup_ms, "measure_ms": FAST.measure_ms}
    rows = adapter.execute(base, None,
                           {"engine": "standard", "routing": "flowcut",
                            "load": 1, "fault": 0})
    assert rows == [dataclasses.asdict(direct)]


def test_faulted_cell_actually_hurts():
    """A fault-level-2 cell (6 KB buffer windows on one uplink) costs
    ECMP — which cannot route around the sick path — goodput and tail
    latency versus the clean cell."""
    clean = run_point(FAST, engine="juggler", routing="ecmp",
                      load=2, fault=0)
    sick = run_point(FAST, engine="juggler", routing="ecmp",
                     load=2, fault=2)
    assert sick.goodput_gbps < clean.goodput_gbps
    assert sick.small_p99_us > clean.small_p99_us


def test_render_shapes_one_row_per_point():
    point = run_point(FAST, engine="juggler", routing="flowlet",
                      load=1, fault=0)
    table = render(HostFabricResult(points=[point]))
    assert "goodput_gbps" in table and "flowlet" in table
    assert len(table.splitlines()) == 3  # header, rule, one row

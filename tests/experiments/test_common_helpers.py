"""Experiment-support helpers: snapshots, HostCpu, unit conversions."""

import pytest

from repro.core import FlushReason, GroStats, JugglerConfig, JugglerGRO
from repro.experiments.common import (
    HostCpu,
    StatsSnapshot,
    gbps,
    merged_stats,
)
from repro.net import FiveTuple
from repro.sim import Engine

FLOW = FiveTuple(1, 2, 1000, 80)


def stats_with(packets, segments, mtus, ooo=0):
    stats = GroStats()
    stats.packets = packets
    stats.segments = segments
    stats.batched_mtus = mtus
    stats.ooo_segments = ooo
    return stats


def test_snapshot_diffs():
    stats = stats_with(100, 10, 100)
    snap = StatsSnapshot.of(stats)
    stats.packets += 50
    stats.segments += 2
    stats.batched_mtus += 50
    stats.ooo_segments += 1
    assert snap.packets_since(stats) == 50
    assert snap.segments_since(stats) == 2
    assert snap.batching_since(stats) == 25.0
    assert snap.ooo_since(stats) == 1


def test_snapshot_batching_zero_segments():
    stats = stats_with(10, 5, 50)
    snap = StatsSnapshot.of(stats)
    assert snap.batching_since(stats) == 0.0


def test_merged_stats_sums_engines():
    a = JugglerGRO(lambda s: None, JugglerConfig())
    b = JugglerGRO(lambda s: None, JugglerConfig())
    a.stats.packets = 5
    b.stats.packets = 7
    a.stats.segments = 1
    b.stats.segments = 2
    merged = merged_stats([a, b])
    assert merged.packets == 12
    assert merged.segments == 3


def test_host_cpu_windows():
    engine = Engine()
    cpu = HostCpu(engine)
    cpu.mark(0)
    cpu.rx_meter.charge(500)
    cpu.app_core.meter.charge(250)
    assert cpu.rx_utilization(1000) == 0.5
    assert cpu.app_utilization(1000) == 0.25


def test_host_cpu_attach():
    from repro.core import StandardGRO
    from repro.fabric import Host

    engine = Engine()
    cpu = HostCpu(engine)
    host = Host(engine, 1, lambda d: StandardGRO(d))
    cpu.attach(host)
    assert host.app_core is cpu.app_core


def test_gbps_conversion():
    assert gbps(1250, 1000) == pytest.approx(10.0)
    assert gbps(100, 0) == 0.0


def test_experiment_modules_render_strings():
    """Every experiment module's render() produces printable text."""
    from repro.experiments import (
        ablations,
        cpu_overhead,
        fig12_inseq_timeout,
        fig13_ofo_timeout_throughput,
        fig14_ofo_timeout_latency,
        sec512_latency_overhead,
    )

    r12 = fig12_inseq_timeout.Fig12Result()
    r12.points.append(fig12_inseq_timeout.Fig12Point(250, 0, 25.0, 50.0,
                                                     40.0, 9.5))
    assert "batching" in fig12_inseq_timeout.render(r12)

    r13 = fig13_ofo_timeout_throughput.Fig13Result()
    r13.points.append(fig13_ofo_timeout_throughput.Fig13Point(
        250, 100, 9.4, 0, 2))
    assert "throughput" in fig13_ofo_timeout_throughput.render(r13)

    r14 = fig14_ofo_timeout_latency.Fig14Result()
    r14.points.append(fig14_ofo_timeout_latency.Fig14Point(
        250, 100, 900.0, 400.0, 100))
    assert "latency" in fig14_ofo_timeout_latency.render(r14)

    point = ablations.AblationPoint("x", 0.1, 0.0, 0, 0, 9.0)
    assert "x" in ablations.render([point])

    sp = sec512_latency_overhead.Sec512Point(
        __import__("repro.harness.experiment",
                   fromlist=["GroKind"]).GroKind.JUGGLER, 11.0, 12.0, 100)
    assert "11" in sec512_latency_overhead.render([sp])

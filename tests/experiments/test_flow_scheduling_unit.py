"""Unit-level checks on the flow-scheduling extension experiment."""

import pytest

from repro.experiments.flow_scheduling import (
    SchedulingParams,
    SchedulingPoint,
    render,
    run_config,
)
from repro.harness.experiment import GroKind


def test_render_produces_rows():
    point = SchedulingPoint("pias/juggler", 150.0, 260.0, 5.1, 100, 20)
    text = render([point])
    assert "pias/juggler" in text
    assert "mice_p99_us" in text


def test_params_defaults_sane():
    params = SchedulingParams()
    assert params.mice_bytes < params.threshold_bytes < params.elephant_bytes
    assert 0.0 < params.mice_fraction < 1.0
    assert 0.0 < params.load < 1.0


def test_tiny_run_completes_flows():
    params = SchedulingParams(warmup_ms=3, measure_ms=8)
    point = run_config(params, kind=GroKind.JUGGLER, prioritize=True)
    assert point.mice_done > 10
    assert point.mice_p50_us > 0
    assert point.label == "pias/juggler"


def test_prioritisation_label():
    params = SchedulingParams(warmup_ms=3, measure_ms=6)
    point = run_config(params, kind=GroKind.VANILLA, prioritize=False)
    assert point.label == "none/vanilla"

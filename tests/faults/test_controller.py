"""FaultEngine: timeline activation, environment perturbation, telemetry."""

import pytest

from repro.core.standard_gro import StandardGRO
from repro.faults.controller import FaultEngine
from repro.faults.injectors import CorruptInjector, LossInjector
from repro.faults.plan import FaultPlan
from repro.net import MSS, FiveTuple, Packet
from repro.nic.rxqueue import RxQueue
from repro.sim.engine import Engine
from repro.sim.time import US
from repro.trace import CallbackSink, EventKind, Tracer

FLOW = FiveTuple(1, 2, 1000, 80)


class Collect:
    def __init__(self):
        self.packets = []

    def receive(self, packet):
        self.packets.append(packet)


def plan_of(*faults, seed=11):
    return FaultPlan.from_dict({"name": "t", "seed": seed,
                                "faults": list(faults)})


def wire(kind, at_us=10, duration_us=10, **extra):
    entry = {"name": f"{kind}-f", "kind": kind, "at_us": at_us,
             "duration_us": duration_us}
    entry.update(extra)
    return entry


def test_wrap_without_wire_faults_returns_sink_unchanged():
    engine = Engine()
    sink = Collect()
    faults = FaultEngine(engine, plan_of(wire("pause_poll")), tracer=None)
    assert faults.wrap(sink) is sink


def test_wrap_chains_in_plan_order_first_spec_outermost():
    engine = Engine()
    sink = Collect()
    faults = FaultEngine(
        engine, plan_of(wire("loss"), wire("corrupt")), tracer=None)
    head = faults.wrap(sink)
    assert isinstance(head, LossInjector)
    assert isinstance(head.sink, CorruptInjector)
    assert head.sink.sink is sink
    assert not head.active  # chains start dormant


def test_windows_toggle_injectors_on_the_timeline():
    engine = Engine()
    sink = Collect()
    faults = FaultEngine(
        engine,
        plan_of(wire("blackhole", at_us=10, duration_us=5,
                     every_us=20, repeats=2)),
        tracer=None)
    head = faults.wrap(sink)
    faults.start()

    # One packet per microsecond straddling both windows.
    for i in range(60):
        engine.post_at(i * US, head.receive, Packet(FLOW, i * MSS, MSS))
    engine.run_until(100 * US)

    # Windows [10,15) and [30,35) eat 5 packets each.
    dropped_seqs = {i for i in range(60)
                    if i * MSS not in {p.seq for p in sink.packets}}
    assert dropped_seqs == {10, 11, 12, 13, 14, 30, 31, 32, 33, 34}
    assert faults.injected == 2
    assert faults.cleared == 2
    assert faults.totals()["dropped"] == 10


def test_window_boundaries_emit_trace_events_and_metrics():
    seen = []
    tracer = Tracer([CallbackSink(seen.append)])
    engine = Engine()
    faults = FaultEngine(engine, plan_of(wire("loss", at_us=5, duration_us=5)),
                         tracer=tracer)
    faults.wrap(Collect())
    faults.start()
    engine.run_until(20 * US)

    kinds = [e.kind for e in seen]
    assert kinds == [EventKind.FAULT_INJECTED, EventKind.FAULT_CLEARED]
    assert seen[0].name == "loss-f"
    assert seen[0].fault == "loss"
    assert seen[0].ts == 5 * US
    assert seen[1].ts == 10 * US
    snapshot = tracer.metrics.snapshot()
    assert snapshot["faults.injected"] == 1
    assert snapshot["faults.cleared"] == 1
    assert snapshot["faults.active"] == 0


def test_queue_saturation_clamps_and_restores_link_capacity():
    class FakeLink:
        capacity_bytes = 100_000
        ecn_threshold_bytes = None

    engine = Engine()
    link = FakeLink()
    faults = FaultEngine(
        engine,
        plan_of({"name": "sq", "kind": "queue_saturation", "at_us": 10,
                 "duration_us": 10, "params": {"capacity_bytes": 4_000}}),
        tracer=None)
    faults.bind(links=[link])
    faults.start()
    engine.run_until(15 * US)
    assert link.capacity_bytes == 4_000
    engine.run_until(30 * US)
    assert link.capacity_bytes == 100_000


def test_ce_storm_zeroes_and_restores_ecn_threshold():
    class FakeLink:
        capacity_bytes = None
        ecn_threshold_bytes = 80_000

    engine = Engine()
    link = FakeLink()
    faults = FaultEngine(engine, plan_of(wire("ce_storm")), tracer=None)
    faults.bind(links=[link])
    faults.start()
    engine.run_until(15 * US)
    assert link.ecn_threshold_bytes == 0
    engine.run_until(30 * US)
    assert link.ecn_threshold_bytes == 80_000


def _rxqueue(engine):
    gro = StandardGRO(lambda segment: None)
    return RxQueue(engine, gro, coalesce_ns=5 * US, ring_size=4096)


def test_ring_overflow_shrinks_and_restores_the_ring():
    engine = Engine()
    rxq = _rxqueue(engine)
    faults = FaultEngine(
        engine,
        plan_of({"name": "ro", "kind": "ring_overflow", "at_us": 10,
                 "duration_us": 10, "params": {"ring_size": 2}}),
        tracer=None)
    faults.bind(rxqueues=[rxq])
    faults.start()

    def burst(n):
        for i in range(n):
            rxq.enqueue(Packet(FLOW, i * MSS, MSS))

    engine.post_at(12 * US, burst, 5)
    engine.run_until(15 * US)
    assert rxq.ring_size == 2
    assert rxq.dropped == 3  # 5 arrivals into a 2-slot ring
    engine.run_until(40 * US)
    assert rxq.ring_size == 4096


def test_pause_poll_stalls_service_until_the_window_closes():
    engine = Engine()
    rxq = _rxqueue(engine)
    faults = FaultEngine(
        engine, plan_of(wire("pause_poll", at_us=10, duration_us=30)),
        tracer=None)
    faults.bind(rxqueues=[rxq])
    faults.start()

    engine.post_at(12 * US, rxq.enqueue, Packet(FLOW, 0, MSS))
    # Well past the 5 us coalescing period, still inside the stall window.
    engine.run_until(30 * US)
    assert rxq.stalled
    assert rxq.delivered == 0
    assert rxq.backlog == 1
    # Window closes at 40 us; the backlog is polled immediately after.
    engine.run_until(45 * US)
    assert not rxq.stalled
    assert rxq.delivered == 1
    assert rxq.backlog == 0


def test_receiver_stall_closes_window_then_reannounces():
    class FakeConfig:
        rx_buffer = 64 * 1024

    class FakeReceiver:
        def __init__(self):
            self.config = FakeConfig()
            self.occupancy = 0
            self.announced = 0

        def announce_window(self):
            self.announced += 1

    engine = Engine()
    receiver = FakeReceiver()
    faults = FaultEngine(
        engine, plan_of(wire("receiver_stall", at_us=10, duration_us=20)),
        tracer=None)
    faults.bind(receivers=[receiver])
    faults.start()
    engine.run_until(15 * US)
    assert receiver.occupancy == 64 * 1024  # window forced shut
    assert receiver.announced == 0
    engine.run_until(40 * US)
    assert receiver.occupancy == 0
    assert receiver.announced == 1  # reopened window announced (no persist
    # timer exists in the sim to discover it otherwise)


def test_shared_spec_toggles_every_wrapped_path():
    engine = Engine()
    sinks = [Collect(), Collect()]
    faults = FaultEngine(engine, plan_of(wire("blackhole", at_us=0,
                                              duration_us=10)), tracer=None)
    heads = [faults.wrap(s) for s in sinks]
    assert heads[0] is not heads[1]
    faults.start()
    engine.run_until(1)
    assert all(h.active for h in heads)
    engine.run_until(20 * US)
    assert not any(h.active for h in heads)


def test_injector_streams_are_per_fault_and_deterministic():
    def casualties(seed):
        engine = Engine()
        sink = Collect()
        faults = FaultEngine(
            engine,
            plan_of(wire("loss", at_us=0, duration_us=1000,
                         params={"p": 0.5}), seed=seed),
            tracer=None)
        head = faults.wrap(sink)
        faults.start()
        for i in range(200):
            engine.post_at(i * US, head.receive, Packet(FLOW, i * MSS, MSS))
        engine.run_until(2000 * US)
        return [p.seq for p in sink.packets]

    assert casualties(1) == casualties(1)
    assert casualties(1) != casualties(2)


def test_start_twice_is_an_error():
    engine = Engine()
    faults = FaultEngine(engine, plan_of(wire("loss")), tracer=None)
    faults.start()
    with pytest.raises(RuntimeError, match="twice"):
        faults.start()


def test_explicit_rng_registry_wins_over_plan_seed():
    from repro.sim.rng import RngRegistry

    engine = Engine()
    registry = RngRegistry(123)
    faults = FaultEngine(engine, plan_of(wire("loss"), seed=0),
                         rng=registry, tracer=None)
    head = faults.wrap(Collect())
    assert head._rng is registry.stream("faults.loss-f")
